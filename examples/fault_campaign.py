"""Monte-Carlo fault campaign over an instrumented benchmark.

Injects random 2-bit flips into random cells at random moments of the
execution and reports what happened to each: detected by the verifier,
harmless (the corrupted value was dead or overwritten), or pre-window
(struck before the value's definition — outside any def/use scheme's
coverage).  The paper's guarantee holds when no fault silently
propagates into the results.

Usage:  python examples/fault_campaign.py [benchmark] [trials]
"""

import random
import sys

from repro.instrument.pipeline import (
    InstrumentationOptions,
    instrument_program,
)
from repro.programs import ALL_BENCHMARKS
from repro.runtime.faults import RandomCellFlipper
from repro.runtime.interpreter import run_program


def copy_values(values):
    return {k: (v.copy() if hasattr(v, "copy") else v) for k, v in values.items()}


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "trisolv"
    trials = int(sys.argv[2]) if len(sys.argv) > 2 else 200
    module = ALL_BENCHMARKS[name]
    program = module.program()
    params = module.SMALL_PARAMS
    values = module.initial_values(params)

    instrumented, _ = instrument_program(
        program, InstrumentationOptions(index_set_splitting=True)
    )
    clean = run_program(instrumented, params, initial_values=copy_values(values))
    assert not clean.mismatches
    total_loads = clean.memory.load_count
    clean_words = clean.memory.snapshot()
    arrays = [d.name for d in program.arrays]

    detected = harmless = propagated = 0
    for seed in range(trials):
        injector = RandomCellFlipper(
            num_bits=2,
            expected_loads=total_loads,
            rng=random.Random(seed),
            target_arrays=arrays,
        )
        result = run_program(
            instrumented,
            params,
            initial_values=copy_values(values),
            injector=injector,
            wild_reads=True,
        )
        if result.error_detected:
            detected += 1
            continue
        # Undetected: did anything beyond the injected cell change?
        record = injector.record
        silent = False
        faulty_words = result.memory.snapshot()
        for array in arrays:
            for offset, (a, b) in enumerate(
                zip(clean_words[array], faulty_words[array])
            ):
                if a != b:
                    shape = result.memory.shape(array)
                    cell, rest = [], offset
                    for extent in reversed(shape):
                        cell.append(rest % extent)
                        rest //= extent
                    cell = tuple(reversed(cell))
                    if (array, cell) != (record.array, record.indices):
                        silent = True
        if silent:
            propagated += 1
        else:
            harmless += 1

    print(f"campaign: {name}, {trials} trials, 2-bit flips")
    print(f"  detected by checksums : {detected:4d}  ({100*detected/trials:.1f}%)")
    print(f"  harmless (dead value) : {harmless:4d}  ({100*harmless/trials:.1f}%)")
    print(f"  silent + propagated   : {propagated:4d}  (pre-definition-window faults)")
    print()
    print(
        "Every fault that struck a value inside its def->use window was\n"
        "either caught or had no effect — the paper's coverage claim."
    )


if __name__ == "__main__":
    main()
