"""Checksum-operator trade-offs (Sections 5 and 6.1).

Compares the Maxino operator set on identical 2-bit fault campaigns —
showing why the paper picks integer modulo addition over XOR — and
demonstrates the two-checksum (address-rotated) scheme closing the
aligned-cancellation hole.

Usage:  python examples/checksum_tradeoffs.py [trials]
"""

import random
import sys

from repro.instrument.operators import operator_by_name
from repro.runtime.faults import flip_random_bits_in_words

OPERATORS = [
    "modadd",
    "xor",
    "ones_complement",
    "fletcher",
    "adler",
    "modadd+rotadd",
]


def campaign(op_name: str, trials: int, words: int = 128) -> float:
    op = operator_by_name(op_name)
    rng = random.Random(20140609)  # PLDI'14 opening day
    missed = 0
    for _ in range(trials):
        data = [rng.getrandbits(64) for _ in range(words)]
        corrupted = list(data)
        flip_random_bits_in_words(corrupted, 2, rng)
        if not op.detects(data, corrupted, base_address=0x1000):
            missed += 1
    return 100.0 * missed / trials


def main() -> None:
    trials = int(sys.argv[1]) if len(sys.argv) > 1 else 20_000
    print(f"2-bit fault campaigns, {trials} trials each, random 64-bit data\n")
    print(f"{'operator':>18} | {'% undetected':>12} | commutative (usable as def/use)")
    print("-" * 66)
    for name in OPERATORS:
        op = operator_by_name(name)
        missed = campaign(name, trials)
        usable = "yes" if op.commutative else "no"
        print(f"{name:>18} | {missed:>11.3f}% | {usable}")
    print()
    print("Expected analytically: xor ~1.56% (misses every aligned double")
    print("flip), modadd ~0.78% (only opposite-polarity alignments cancel),")
    print("modadd+rotadd ~0.02% (the second, address-rotated sum catches")
    print("almost all remaining alignments) — the paper's Table 1 bands.")


if __name__ == "__main__":
    main()
