"""Baseline comparison: def/use checksums vs. duplication vs. scrubbing.

Reproduces the paper's two framing arguments with measurements:

* Section 1: duplication detects memory errors too, but "significantly
  increases memory space and bandwidth requirements";
* Section 7: periodic scrubbing is cheaper per access but "lowers fault
  coverage" — it never checks reads, so corruption consumed and then
  overwritten escapes.

Also demonstrates the per-array localization extension: with one
checksum group per array, a verifier mismatch *names* the corrupted
structure.

Usage:  python examples/baselines_comparison.py
"""

import numpy as np

from repro.instrument.duplication import duplicate_program
from repro.instrument.localize import corrupted_groups
from repro.instrument.pipeline import (
    InstrumentationOptions,
    instrument_program,
)
from repro.programs import trisolv
from repro.runtime.costmodel import CostModel
from repro.runtime.faults import ScheduledBitFlip
from repro.runtime.interpreter import run_program
from repro.runtime.scrubbing import run_with_scrubbing


def copy_values(values):
    return {k: v.copy() for k, v in values.items()}


def main() -> None:
    program = trisolv.program()
    params = trisolv.DEFAULT_PARAMS
    values = trisolv.initial_values(params)
    cost = CostModel()

    plain = run_program(program, params, initial_values=copy_values(values))

    print("=== cost comparison (trisolv, original = 1.0) ===")
    checksummed, _ = instrument_program(
        program, InstrumentationOptions(index_set_splitting=True)
    )
    r_cs = run_program(checksummed, params, initial_values=copy_values(values))
    duplicated = duplicate_program(program)
    r_dup = run_program(duplicated, params, initial_values=copy_values(values))
    print(
        f"  def/use checksums : {cost.overhead(plain.counts, r_cs.counts):.2f}x "
        f"time, +0 data copies, loads {r_cs.counts.loads} "
        f"stores {r_cs.counts.stores}"
    )
    print(
        f"  duplication       : {cost.overhead(plain.counts, r_dup.counts):.2f}x "
        f"time, 2x memory, loads {r_dup.counts.loads} "
        f"stores {r_dup.counts.stores}"
    )
    print(
        f"  (plain             : loads {plain.counts.loads} "
        f"stores {plain.counts.stores})"
    )

    print()
    print("=== coverage comparison against a slow scrubber ===")
    # A fault injected into L right before one of its reads.
    detected_cs = detected_scrub = trials = 0
    for at_load in range(250, 320, 4):
        trials += 1
        f1 = ScheduledBitFlip("L", (5, 2), [17, 42], at_load=at_load)
        r = run_program(
            checksummed,
            params,
            initial_values=copy_values(values),
            injector=f1,
        )
        detected_cs += r.error_detected
        f2 = ScheduledBitFlip("L", (5, 2), [17, 42], at_load=at_load)
        _, report = run_with_scrubbing(
            program,
            params,
            initial_values=copy_values(values),
            fault_source=f2,
            interval=100_000,  # termination-only sweep
        )
        detected_scrub += report.detected
    print(f"  def/use checksums : {detected_cs}/{trials} detected")
    print(f"  scrubbing         : {detected_scrub}/{trials} detected "
          "(read-time corruption of read-only data IS at rest, so the "
          "final sweep still sees this one; see tests for the "
          "overwritten-corruption case it misses)")

    print()
    print("=== localization: the mismatch names the array ===")
    localized, _ = instrument_program(
        program,
        InstrumentationOptions(index_set_splitting=True, localize=True),
    )
    clean = run_program(localized, params, initial_values=copy_values(values))
    total_loads = clean.memory.load_count
    # L[7][3] is consumed once, while solving row 7 — scan for a moment
    # inside its def->use window.
    for at_load in range(1, total_loads, 199):
        injector = ScheduledBitFlip("L", (7, 3), [9, 51], at_load=at_load)
        outcome = run_program(
            localized,
            params,
            initial_values=copy_values(values),
            injector=injector,
        )
        if outcome.error_detected:
            print("  detected:", outcome.error_detected)
            print("  implicated array(s):", corrupted_groups(outcome.mismatches))
            break
    else:
        raise AssertionError("expected a detectable L corruption")


if __name__ == "__main__":
    main()
