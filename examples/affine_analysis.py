"""Affine analysis walkthrough: dependences, use counts, splitting.

Reproduces the paper's Section 3 development on the full three-statement
Cholesky factorization:

* exact flow dependences (last writers, Section 3.1),
* Algorithm 1's symbolic use counts (e.g. ``n-1-k`` for the pivot),
* live-in counts feeding the Algorithm 3 prologue,
* Algorithm 2 index-set splitting and its measured effect on the
  dynamic operation counts.

Usage:  python examples/affine_analysis.py
"""

import numpy as np

from repro.instrument.pipeline import (
    InstrumentationOptions,
    instrument_program,
)
from repro.poly.dependences import compute_flow_dependences
from repro.poly.model import extract_model
from repro.poly.usecount import compute_live_in_counts, compute_use_counts
from repro.programs import cholesky
from repro.runtime.costmodel import CostModel
from repro.runtime.interpreter import run_program


def main() -> None:
    program = cholesky.program()
    print("=== program ===")
    from repro.ir.printer import program_to_text

    print(program_to_text(program))

    model = extract_model(program)
    dependences = compute_flow_dependences(model)
    print("=== exact flow dependences (last-writer, non-transitive) ===")
    for dep in dependences:
        print(
            f"  {dep.source.label} -> {dep.target.label}"
            f"  via read {dep.read.ref}"
        )

    print()
    print("=== Algorithm 1: compile-time use counts ===")
    table = compute_use_counts(model, dependences)
    for entry in table.entries():
        print(f"  {entry.statement.label}: {entry.count}")

    print()
    print("=== live-in counts (Algorithm 3 prologue) ===")
    for array, count in compute_live_in_counts(model, dependences).items():
        print(f"  {array}: {count}")

    print()
    print("=== Algorithm 2: index-set splitting, measured ===")
    params = {"n": 20}
    values = cholesky.initial_values(params)
    baseline = run_program(
        program, params, initial_values={"A": values["A"].copy()}
    )
    cost = CostModel()
    for label, options in [
        ("resilient (conditionals in loops)", InstrumentationOptions()),
        (
            "resilient + index-set splitting",
            InstrumentationOptions(index_set_splitting=True),
        ),
    ]:
        instrumented, _ = instrument_program(program, options)
        result = run_program(
            instrumented, params, initial_values={"A": values["A"].copy()}
        )
        assert not result.mismatches
        overhead = cost.overhead(baseline.counts, result.counts)
        print(
            f"  {label:36s}: {overhead:5.3f}x normalized time, "
            f"branches={result.counts.branches}"
        )


if __name__ == "__main__":
    main()
