"""Irregular iterative codes: inspectors and hoisting (Section 4).

Walks the CG benchmark (sparse matrix-vector iteration with
data-dependent accesses ``p[colidx[i][k]]``) through:

* the per-array protection plans (Section 5's classification),
* the generated Figure-9-style code: hoisted inspector, inspector-
  provided def counts, ``iter``-scaled epilogue,
* the measured benefit of hoisting the inspector out of the while loop
  (the paper: CG 81.1s -> 52.7s from hoisting alone),
* detection of a fault injected into the sparse structure itself.

Usage:  python examples/sparse_iterative.py
"""

from repro.instrument.pipeline import (
    InstrumentationOptions,
    instrument_program,
)
from repro.ir.printer import program_to_text
from repro.programs import cg
from repro.runtime.costmodel import CostModel
from repro.runtime.faults import ScheduledBitFlip
from repro.runtime.interpreter import run_program


def copy_values(values):
    return {k: (v.copy() if hasattr(v, "copy") else v) for k, v in values.items()}


def main() -> None:
    program = cg.program()
    instrumented, report = instrument_program(program)

    print("=== per-array protection plans ===")
    for name, plan in report.plans.items():
        print(f"  {name:8s} {plan.kind.value:14s} ({plan.reason})")

    print()
    print("=== instrumented program (inspector hoisted, Figure 9) ===")
    print(program_to_text(instrumented))

    params = dict(cg.SMALL_PARAMS)
    values = cg.initial_values(params)

    print("=== fault-free run balances ===")
    clean = run_program(instrumented, params, initial_values=copy_values(values))
    assert not clean.mismatches
    print("  mismatches: none")

    print()
    print("=== inspector hoisting, measured ===")
    baseline = run_program(program, params, initial_values=copy_values(values))
    cost = CostModel()
    for label, options in [
        ("inspector re-run every iteration", InstrumentationOptions(hoist_inspectors=False)),
        ("inspector hoisted (Section 4.2)", InstrumentationOptions(hoist_inspectors=True)),
    ]:
        variant, _ = instrument_program(program, options)
        result = run_program(variant, params, initial_values=copy_values(values))
        assert not result.mismatches
        print(
            f"  {label:34s}: {cost.overhead(baseline.counts, result.counts):5.3f}x"
        )

    print()
    print("=== corrupting the indexing structure is detected ===")
    injector = ScheduledBitFlip("colidx", (0, 0), [1], at_load=40)
    faulty = run_program(
        instrumented,
        params,
        initial_values=copy_values(values),
        injector=injector,
        wild_reads=True,
    )
    print("  fault injected:", injector.fired)
    print("  detected:", faulty.error_detected)
    assert faulty.error_detected
    print()
    print("OK: the def/use checksums also cover the sparse index arrays.")


if __name__ == "__main__":
    main()
