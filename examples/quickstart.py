"""Quickstart: protect a program, inject a fault, catch it.

Runs the paper's running example (Figure 2's Cholesky column kernel)
through the full pipeline:

1. parse the mini-language source,
2. instrument it with def/use checksums (Algorithms 1 and 3),
3. execute fault-free — checksums balance,
4. flip two bits in a live value mid-run — the verifier flags it.

Usage:  python examples/quickstart.py
"""

import numpy as np

from repro import instrument_program, parse_program, program_to_text, run_program
from repro.runtime.faults import ScheduledBitFlip

SOURCE = """
program cholesky_column(n) {
  array A[n][n];
  for j = 0 .. n - 1 {
    S1: A[j][j] = sqrt(A[j][j]);
    for i = j + 1 .. n - 1 {
      S2: A[i][j] = A[i][j] / A[j][j];
    }
  }
}
"""


def spd_matrix(n: int, seed: int = 0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    m = rng.standard_normal((n, n))
    return m @ m.T + n * np.eye(n)


def main() -> None:
    program = parse_program(SOURCE)
    resilient, report = instrument_program(program)

    print("=== instrumented program (paper Figure 5 shape) ===")
    print(program_to_text(resilient))
    print("compile-time use counts:", report.static_counts)

    n = 8
    values = {"A": spd_matrix(n)}

    print("=== fault-free run ===")
    clean = run_program(resilient, {"n": n}, initial_values={"A": values["A"].copy()})
    print("checksums:", clean.checksums)
    print("mismatches:", clean.mismatches or "none — def_cs == use_cs")

    print()
    print("=== run with an injected 2-bit flip in A[0][0] ===")
    # A[0][0] is the first column's divisor: it is read n-1 times after
    # its definition, so corrupting it while live must be detected.
    injector = ScheduledBitFlip("A", (0, 0), bit_positions=[17, 44], at_load=2)
    faulty = run_program(
        resilient,
        {"n": n},
        initial_values={"A": values["A"].copy()},
        injector=injector,
    )
    print("fault injected:", injector.fired)
    print("detected:", faulty.error_detected)
    for mismatch in faulty.mismatches:
        print("  ", mismatch)
    assert faulty.error_detected, "the corrupted divisor must be flagged"
    print()
    print("OK: transient memory error detected by the def/use checksums.")


if __name__ == "__main__":
    main()
