"""Pseudo-assembly lowering and machine-model tests."""

import pytest

from repro.codegen.lowering import Instr, lower_assign
from repro.ir.accesses import program_data_names
from repro.ir.analysis import statement_contexts
from repro.ir.parser import parse_program
from repro.runtime.pipeline_model import (
    HARDWARE_MACHINE,
    SOFTWARE_MACHINE,
    Machine,
    block_cycles,
    program_cycles,
)


def ops(instrs):
    from collections import Counter

    return Counter(i.op for i in instrs)


def lowered(source: str, label: str):
    program = parse_program(source)
    (ctx,) = [
        c for c in statement_contexts(program) if c.assign.label == label
    ]
    return lower_assign(ctx.assign, program_data_names(program)), program


class TestLowering:
    def test_simple_statement(self):
        instrs, _ = lowered(
            """
            program p(n) {
              array A[n];
              for i = 0 .. n - 1 { S1: A[i] = A[i] * 2.0; }
            }
            """,
            "S1",
        )
        counted = ops(instrs)
        assert counted["LD"] == 1
        assert counted["ST"] == 1
        assert counted["FMUL"] == 1

    def test_distinct_loads_only(self):
        instrs, _ = lowered(
            """
            program p(n) {
              array A[n];
              scalar a;
              S1: a = A[0] * A[0];
            }
            """,
            "S1",
        )
        assert ops(instrs)["LD"] == 1  # register reuse

    def test_instrumented_statement_has_chk(self):
        from repro.instrument.pipeline import instrument_program
        from repro.ir.nodes import Assign, walk_statements

        program = parse_program(
            """
            program p(n) {
              array A[n];
              for t = 0 .. 3 {
                for i = 0 .. n - 1 { S1: A[i] = A[i] + 1.0; }
              }
            }
            """
        )
        instrumented, _ = instrument_program(program)
        assigns = [
            s
            for s in walk_statements(instrumented.body)
            if isinstance(s, Assign) and s.instrumentation
        ]
        target = next(s for s in assigns if s.label and s.label.startswith("S1"))
        instrs = lower_assign(target, program_data_names(instrumented))
        assert ops(instrs)["CHK"] >= 2  # use + def contributions

    def test_sqrt_and_div(self):
        instrs, _ = lowered(
            """
            program p(n) {
              array A[n];
              S1: A[0] = sqrt(A[1]) / A[2];
            }
            """,
            "S1",
        )
        counted = ops(instrs)
        assert counted["FSQRT"] == 1 and counted["FDIV"] == 1

    def test_unknown_op_rejected(self):
        with pytest.raises(ValueError):
            Instr("XYZ")


class TestMachineModel:
    def test_frontend_bound(self):
        instrs = [Instr("IOP")] * 16
        cost = block_cycles(instrs, Machine(fetch_width=4, int_alus=8))
        assert cost.bound == "frontend"
        assert cost.cycles == pytest.approx(4.0)

    def test_memory_bound(self):
        instrs = [Instr("LD")] * 8
        cost = block_cycles(instrs, SOFTWARE_MACHINE)
        assert cost.bound == "memory"
        assert cost.cycles == pytest.approx(4.0)

    def test_fdiv_occupancy(self):
        instrs = [Instr("FDIV")]
        cost = block_cycles(instrs, SOFTWARE_MACHINE)
        assert cost.cycles == pytest.approx(SOFTWARE_MACHINE.fdiv_occupancy)

    def test_chk_competes_for_alus_in_software(self):
        # Integer work plus checksum work: in software they share the
        # two ALUs; in hardware the CHKs drain through their own units.
        instrs = [Instr("CHK")] * 4 + [Instr("IOP")] * 4
        software = block_cycles(instrs, SOFTWARE_MACHINE)
        hardware = block_cycles(instrs, HARDWARE_MACHINE)
        assert software.cycles > hardware.cycles
        assert software.bound == "int"

    def test_chk_still_occupies_fetch_in_hardware(self):
        """The paper's nop semantics: a hardware checksum instruction is
        free to execute but still fetched/decoded."""
        instrs = [Instr("CHK")] * 16
        cost = block_cycles(instrs, HARDWARE_MACHINE)
        assert cost.cycles >= 16 / HARDWARE_MACHINE.fetch_width


class TestProgramCycles:
    def test_hardware_never_slower(self):
        from repro.instrument.pipeline import instrument_program
        from repro.programs import cholesky

        params = cholesky.SMALL_PARAMS
        values = cholesky.initial_values(params)
        instrumented, _ = instrument_program(cholesky.program())
        software = program_cycles(
            instrumented, params,
            {k: v.copy() for k, v in values.items()}, SOFTWARE_MACHINE,
        )
        hardware = program_cycles(
            instrumented, params,
            {k: v.copy() for k, v in values.items()}, HARDWARE_MACHINE,
        )
        assert hardware <= software

    def test_instrumentation_costs_cycles(self):
        from repro.instrument.pipeline import instrument_program
        from repro.programs import cholesky

        params = cholesky.SMALL_PARAMS
        values = cholesky.initial_values(params)
        base = program_cycles(
            cholesky.program(), params,
            {k: v.copy() for k, v in values.items()}, SOFTWARE_MACHINE,
        )
        instrumented, _ = instrument_program(cholesky.program())
        resilient = program_cycles(
            instrumented, params,
            {k: v.copy() for k, v in values.items()}, SOFTWARE_MACHINE,
        )
        assert resilient > base
