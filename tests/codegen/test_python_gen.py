"""Generated-Python tests: compiled results equal interpreted results."""

import numpy as np
import pytest

from repro.codegen.python_gen import compile_to_python
from repro.instrument.pipeline import (
    InstrumentationOptions,
    instrument_program,
)
from repro.ir.parser import parse_program
from repro.programs import ALL_BENCHMARKS
from repro.runtime.interpreter import run_program

from tests.conftest import copy_values


def to_arrays(module, params, values):
    arrays = {}
    for decl in module.program().arrays:
        dtype = np.float64 if decl.elem_type == "f64" else np.int64
        arrays[decl.name] = np.array(values[decl.name], dtype=dtype)
    for decl in module.program().scalars:
        if decl.name in values:
            arrays[decl.name] = values[decl.name]
    return arrays


class TestEquivalenceWithInterpreter:
    @pytest.mark.parametrize("name", sorted(ALL_BENCHMARKS))
    def test_original_programs(self, name):
        module = ALL_BENCHMARKS[name]
        params = module.SMALL_PARAMS
        values = module.initial_values(params)
        interpreted = run_program(
            module.program(), params, initial_values=copy_values(values)
        )
        compiled = compile_to_python(module.program())
        arrays = to_arrays(module, params, copy_values(values))
        compiled(params, arrays)
        for decl in module.program().arrays:
            np.testing.assert_allclose(
                arrays[decl.name],
                interpreted.memory.to_array(decl.name),
                rtol=1e-12,
                err_msg=f"{name}:{decl.name}",
            )

    @pytest.mark.parametrize("name", ["cholesky", "cg", "moldyn", "trisolv"])
    def test_instrumented_programs(self, name):
        """Instrumented code compiles and its float checksums balance."""
        module = ALL_BENCHMARKS[name]
        params = module.SMALL_PARAMS
        values = module.initial_values(params)
        instrumented, _ = instrument_program(
            module.program(),
            InstrumentationOptions(index_set_splitting=True),
        )
        compiled = compile_to_python(instrumented)
        arrays = {}
        for decl in instrumented.arrays:
            if decl.name in values:
                dtype = np.float64 if decl.elem_type == "f64" else np.int64
                arrays[decl.name] = np.array(values[decl.name], dtype=dtype)
            else:
                shape = _shape_of(decl, params)
                dtype = np.float64 if decl.elem_type == "f64" else np.int64
                arrays[decl.name] = np.zeros(shape, dtype=dtype)
        for decl in instrumented.scalars:
            if decl.name in values:
                arrays[decl.name] = values[decl.name]
        outcome = compiled(params, arrays)
        assert not outcome["mismatch"], name
        cks = outcome["checksums"]
        assert cks["def"] == pytest.approx(cks["use"], rel=1e-9)


def _shape_of(decl, params):
    from repro.ir.analysis import to_affine

    shape = []
    for dim in decl.dims:
        affine = to_affine(dim, set(params))
        shape.append(int(affine.evaluate(params)))
    return tuple(shape)


class TestLanguageFeatures:
    def test_while_and_if(self):
        p = parse_program(
            """
            program p(n) {
              scalar t : i64;
              scalar acc;
              while (t < n) {
                if (t % 2 == 0) { acc = acc + 1.0; } else { acc = acc + 0.5; }
                t = t + 1;
              }
            }
            """
        )
        compiled = compile_to_python(p)
        outcome = compiled({"n": 5}, {})
        assert outcome["scalars"]["acc"] == 1.0 * 3 + 0.5 * 2

    def test_select_and_intrinsics(self):
        p = parse_program(
            """
            program p() {
              scalar a;
              a = max(1.0, 2.0) + (3 > 2 ? 10.0 : 20.0) + sqrt(4.0);
            }
            """
        )
        outcome = compile_to_python(p)({}, {})
        assert outcome["scalars"]["a"] == 14.0

    def test_integer_division_semantics_match(self):
        p = parse_program("program p() { scalar a : i64; a = 7 / 2; }")
        outcome = compile_to_python(p)({}, {})
        assert outcome["scalars"]["a"] == 3

    def test_source_available(self):
        compiled = compile_to_python(
            parse_program("program p() { scalar a; a = 1.0; }")
        )
        assert "def _kernel" in compiled.source
