"""Batched multi-trial execution (``campaign run --batch T``).

The batcher's contract: records are *canonical-identical* to the
serial per-trial loop — same verdicts, same injection records (so the
per-trial RNG/seeding discipline survives batching), same extras —
for every fault model, any batch size (including sizes that don't
divide the trial count), and in combination with worker pools.
Unsupported specs (interp backend, recovery) must silently fall back
to the serial path, never fail.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.campaign import ProgramCampaignSpec, run_campaign
from repro.campaign.batch import BatchContext, run_batch, spec_supports_batch
from repro.runtime.faults import FAULT_MODELS


def _spec(**overrides):
    fields = dict(
        benchmark="cholesky",
        scale="small",
        trials=10,
        seed=77,
        fault_model="random_cell",
        backend="compiled",
    )
    fields.update(overrides)
    return ProgramCampaignSpec(**fields)


def _canonical(spec, **kwargs):
    result = run_campaign(spec, **kwargs)
    assert result.records is not None
    return [record.canonical() for record in result.records]


@pytest.mark.parametrize("model", FAULT_MODELS)
def test_batched_records_identical_per_model(model):
    """Every fault model: --batch 4 reproduces the serial records."""
    serial = _spec(fault_model=model, seed=300 + FAULT_MODELS.index(model))
    batched = replace(serial, batch=4)
    assert _canonical(serial) == _canonical(batched)


def test_batch_size_not_dividing_trials():
    """A ragged final group (10 trials, batch 4 → 4+4+2) is exact."""
    serial = _spec(trials=10)
    assert _canonical(serial) == _canonical(replace(serial, batch=4))
    assert _canonical(serial) == _canonical(replace(serial, batch=64))


def test_batched_injection_sites_identical():
    """RNG discipline: trial i's injector strikes the same site (same
    trigger index, array, cell, bits) batched and unbatched — the
    per-trial SHA-256 seed derivation must not observe batching."""
    serial = _canonical(_spec(trials=8))
    batched = _canonical(_spec(trials=8, batch=8))
    for s, b in zip(serial, batched):
        assert s["seed"] == b["seed"]
        assert s["injection"] == b["injection"]


def test_batch_with_workers():
    """Worker pools and batching compose; records stay identical."""
    serial = _spec(trials=12)
    batched = replace(serial, batch=3)
    assert _canonical(serial) == _canonical(batched, workers=2)


def test_batch_digest_excludes_batch_size():
    """Batch size is an execution strategy, not an experiment
    parameter: the golden digest (and so resume identity) ignores it,
    while the opt level — which selects the kernel — stays in."""
    base = _spec()
    assert base.golden_digest() == replace(base, batch=8).golden_digest()
    assert (
        base.golden_digest()
        != replace(base, opt_level=0).golden_digest()
    )


def test_batch_validation():
    with pytest.raises(ValueError):
        _spec(batch=0)
    with pytest.raises(ValueError):
        _spec(opt_level=5)


def test_unsupported_specs_fall_back():
    """Interp-backend and recovery specs run through the serial path
    inside BatchContext and still match plain serial records."""
    interp = _spec(backend="interp", trials=4)
    prepared = interp.prepare()
    assert not spec_supports_batch(interp, prepared)
    records = run_batch(interp, prepared, list(range(4)))
    serial = [interp.run_trial(i, prepared) for i in range(4)]
    assert [r.canonical() for r in records] == [
        r.canonical() for r in serial
    ]

    recover = _spec(recover=True, trials=2, batch=4)
    assert not spec_supports_batch(recover, recover.prepare())
    # End-to-end: run_campaign on a batched recovery spec still works.
    assert _canonical(recover) == _canonical(replace(recover, batch=1))


def test_context_reuse_across_groups():
    """One BatchContext serves successive index groups (the worker
    chunk pattern) without cross-trial contamination."""
    spec = _spec(trials=9, batch=3)
    prepared = spec.prepare()
    context = BatchContext(spec, prepared)
    assert context.native
    records = []
    for group in ([0, 1, 2], [3, 4, 5], [6, 7, 8]):
        records.extend(context.run(group))
    serial = [spec.run_trial(i, prepared) for i in range(9)]
    assert [r.canonical() for r in records] == [
        r.canonical() for r in serial
    ]


def test_batch_round_trips_spec_dict():
    """batch and opt_level survive to_dict/from_dict (log headers)."""
    from repro.campaign.spec import spec_from_dict

    spec = _spec(batch=6, opt_level=1)
    clone = spec_from_dict(spec.to_dict())
    assert clone.batch == 6
    assert clone.opt_level == 1
    assert clone.golden_digest() == spec.golden_digest()
