"""Engine contracts: deterministic sharding, resume, verdicts.

The two headline guarantees (ISSUE 1 acceptance criteria):

* **Differential** — the same campaign seed yields bit-identical
  per-trial verdicts and aggregate rows for 1, 2, and 4 workers.
* **Resume** — a campaign killed mid-log (truncated JSONL) resumes to
  exactly the record set of an uninterrupted run.
"""

import json

import pytest

from repro.campaign import (
    ChecksumCampaignSpec,
    ProgramCampaignSpec,
    read_log,
    resume_campaign,
    run_campaign,
)
from repro.campaign.records import NO_INJECTION
from repro.experiments.table1 import Table1Config, run_cell_campaign

DEMO = """
program demo(n) {
  array A[n][n];
  for j = 0 .. n - 1 {
    S1: A[j][j] = sqrt(A[j][j]);
    for i = j + 1 .. n - 1 {
      S2: A[i][j] = A[i][j] / A[j][j];
    }
  }
}
"""


def canonical(result):
    return [record.canonical() for record in result.records]


CHECKSUM_SPEC = ChecksumCampaignSpec(
    size=64, bits=2, pattern="random", trials=240, seed=20140609
)


class TestDeterministicSharding:
    """The differential guard: serial vs. parallel, same campaign seed."""

    def test_table1_campaign_serial_vs_parallel(self):
        serial = run_campaign(CHECKSUM_SPEC, workers=1)
        two = run_campaign(CHECKSUM_SPEC, workers=2)
        four = run_campaign(CHECKSUM_SPEC, workers=4)
        assert canonical(serial) == canonical(two) == canonical(four)
        assert serial.counts == two.counts == four.counts

    def test_table1_aggregate_rows_identical(self):
        config = Table1Config(
            sizes=(64,), bit_counts=(2,), patterns=("random",),
            trials=240, seed=5,
        )
        serial_row = run_cell_campaign(config, 2, 64, "random")
        config_parallel = Table1Config(
            sizes=(64,), bit_counts=(2,), patterns=("random",),
            trials=240, seed=5, workers=4,
        )
        parallel_row = run_cell_campaign(config_parallel, 2, 64, "random")
        assert serial_row == parallel_row

    def test_program_campaign_serial_vs_parallel(self):
        spec = ProgramCampaignSpec(
            trials=6,
            seed=77,
            program_text=DEMO,
            params={"n": 6},
            init={"A": "randspd"},
        )
        serial = run_campaign(spec, workers=1)
        parallel = run_campaign(spec, workers=2)
        assert canonical(serial) == canonical(parallel)

    def test_different_seeds_differ(self):
        other = ChecksumCampaignSpec(
            size=64, bits=2, pattern="random", trials=240, seed=999
        )
        a = run_campaign(CHECKSUM_SPEC, workers=1)
        b = run_campaign(other, workers=1)
        assert canonical(a) != canonical(b)

    def test_counts_only_mode_matches(self):
        full = run_campaign(CHECKSUM_SPEC, workers=1)
        lean = run_campaign(CHECKSUM_SPEC, workers=1, keep_records=False)
        assert lean.records is None
        assert lean.counts == full.counts


class TestResume:
    """Kill-and-resume equals an uninterrupted run."""

    def _truncate(self, path, keep_lines, torn_bytes=17):
        lines = open(path).readlines()
        assert len(lines) > keep_lines + 1
        with open(path, "w") as handle:
            handle.write("".join(lines[:keep_lines]))
            handle.write(lines[keep_lines][:torn_bytes])

    def test_resume_after_truncation_matches_uninterrupted(self, tmp_path):
        log = str(tmp_path / "trials.jsonl")
        uninterrupted = run_campaign(CHECKSUM_SPEC, workers=1)

        run_campaign(CHECKSUM_SPEC, workers=1, log_path=log)
        # Kill mid-log: keep the header + ~half the records, tear the
        # next line in two.
        self._truncate(log, keep_lines=1 + CHECKSUM_SPEC.trials // 2)
        assert read_log(log).truncated

        resumed = run_campaign(
            CHECKSUM_SPEC, workers=2, log_path=log, resume=True
        )
        assert resumed.resumed_trials == CHECKSUM_SPEC.trials // 2
        assert canonical(resumed) == canonical(uninterrupted)
        # The rewritten log is clean and complete.
        contents = read_log(log)
        assert not contents.truncated
        assert [r.canonical() for r in contents.records] == canonical(
            uninterrupted
        )

    def test_resume_from_header_alone(self, tmp_path):
        """resume_campaign reconstructs the spec from the log header."""
        log = str(tmp_path / "trials.jsonl")
        run_campaign(CHECKSUM_SPEC, workers=1, log_path=log)
        self._truncate(log, keep_lines=1 + 20)
        resumed = resume_campaign(log, workers=1)
        assert resumed.spec == CHECKSUM_SPEC
        assert canonical(resumed) == canonical(
            run_campaign(CHECKSUM_SPEC, workers=1)
        )

    def test_resume_header_only_log(self, tmp_path):
        """A log killed before any trial completed still resumes."""
        log = str(tmp_path / "trials.jsonl")
        run_campaign(CHECKSUM_SPEC, workers=1, log_path=log)
        self._truncate(log, keep_lines=1)
        resumed = resume_campaign(log)
        assert resumed.resumed_trials == 0
        assert canonical(resumed) == canonical(
            run_campaign(CHECKSUM_SPEC, workers=1)
        )

    def test_resume_refuses_foreign_log(self, tmp_path):
        log = str(tmp_path / "trials.jsonl")
        run_campaign(CHECKSUM_SPEC, workers=1, log_path=log)
        other = ChecksumCampaignSpec(
            size=64, bits=2, pattern="random", trials=240, seed=1
        )
        with pytest.raises(ValueError):
            run_campaign(other, log_path=log, resume=True)

    def test_resume_requires_log_path(self):
        with pytest.raises(ValueError):
            run_campaign(CHECKSUM_SPEC, resume=True)

    def test_completed_log_resumes_to_noop(self, tmp_path):
        log = str(tmp_path / "trials.jsonl")
        first = run_campaign(CHECKSUM_SPEC, workers=1, log_path=log)
        again = resume_campaign(log)
        assert again.resumed_trials == CHECKSUM_SPEC.trials
        assert canonical(again) == canonical(first)


class TestLogFormat:
    def test_header_and_records(self, tmp_path):
        log = str(tmp_path / "trials.jsonl")
        run_campaign(CHECKSUM_SPEC, workers=1, log_path=log)
        lines = [json.loads(line) for line in open(log)]
        assert lines[0]["type"] == "header"
        assert lines[0]["spec"] == CHECKSUM_SPEC.to_dict()
        # header + one line per trial + the stats trailer
        assert len(lines) == 1 + CHECKSUM_SPEC.trials + 1
        assert {line["type"] for line in lines[1:-1]} == {"trial"}
        assert lines[-1]["type"] == "stats"
        assert "store" in lines[-1]

    def test_reader_tolerates_garbage_tail(self, tmp_path):
        log = str(tmp_path / "trials.jsonl")
        run_campaign(CHECKSUM_SPEC, workers=1, log_path=log)
        with open(log, "a") as handle:
            handle.write('{"type": "trial", "index"')
        contents = read_log(log)
        assert contents.truncated
        assert len(contents.records) == CHECKSUM_SPEC.trials


class TestVerdicts:
    def test_no_injection_when_program_never_loads(self):
        """A store-only program gives the injector no load event to
        fire on: the trial must be no_injection, not undetected."""
        spec = ProgramCampaignSpec(
            trials=3,
            seed=1,
            program_text=(
                "program noload(n) { array A[n]; "
                "for i = 0 .. n - 1 { S1: A[i] = 0.5; } }"
            ),
            params={"n": 4},
            instrument=False,
        )
        result = run_campaign(spec, workers=1)
        assert result.counts == {NO_INJECTION: 3}
        summary = result.summary()
        assert summary.injected == 0
        assert summary.detection_rate == 0.0

    def test_instrumented_demo_detects_some_faults(self):
        spec = ProgramCampaignSpec(
            trials=12,
            seed=3,
            program_text=DEMO,
            params={"n": 6},
            init={"A": "randspd"},
        )
        result = run_campaign(spec, workers=1)
        assert result.counts.get("detected", 0) > 0
        assert sum(result.counts.values()) == 12
