"""Wilson intervals and campaign summaries."""

import math

import pytest

from repro.campaign.records import (
    BENIGN,
    DETECTED,
    DETECTED_SECOND,
    NO_INJECTION,
    SDC,
    UNDETECTED,
    TrialRecord,
)
from repro.campaign.stats import (
    CampaignSummary,
    summarize,
    summarize_counts,
    wilson_interval,
)


class TestWilson:
    def test_reference_value(self):
        """8/10 at 95%: the textbook Wilson interval ~ (0.490, 0.943)."""
        low, high = wilson_interval(8, 10)
        assert math.isclose(low, 0.4901625, abs_tol=1e-4)
        assert math.isclose(high, 0.9433178, abs_tol=1e-4)

    def test_degenerate_zero(self):
        low, high = wilson_interval(0, 100)
        assert low == 0.0
        assert 0.0 < high < 0.05

    def test_degenerate_all(self):
        low, high = wilson_interval(100, 100)
        assert high == 1.0
        assert 0.95 < low < 1.0

    def test_empty(self):
        assert wilson_interval(0, 0) == (0.0, 1.0)

    def test_contains_point_estimate(self):
        for k, n in [(1, 7), (3, 9), (250, 500), (499, 500)]:
            low, high = wilson_interval(k, n)
            assert low <= k / n <= high

    def test_narrows_with_trials(self):
        small = wilson_interval(5, 10)
        large = wilson_interval(500, 1000)
        assert large[1] - large[0] < small[1] - small[0]

    def test_rejects_nonsense(self):
        with pytest.raises(ValueError):
            wilson_interval(5, 3)
        with pytest.raises(ValueError):
            wilson_interval(-1, 3)


def _records(verdicts):
    return [
        TrialRecord(index=i, seed=i, verdict=v) for i, v in enumerate(verdicts)
    ]


class TestSummaries:
    def test_counts_and_rate(self):
        summary = summarize(
            _records([DETECTED, DETECTED, SDC, BENIGN, NO_INJECTION])
        )
        assert summary.trials == 5
        assert summary.injected == 4  # no_injection excluded
        assert summary.detected == 2
        assert summary.detection_rate == 0.5

    def test_detected_second_counts_as_detected(self):
        summary = summarize(
            _records([DETECTED, DETECTED_SECOND, UNDETECTED])
        )
        assert summary.detected == 2
        # Table 1 views: the first checksum missed the latter two.
        assert summary.missed_one == 2
        assert summary.missed_two == 1

    def test_no_injection_only(self):
        summary = summarize(_records([NO_INJECTION, NO_INJECTION]))
        assert summary.injected == 0
        assert summary.detection_rate == 0.0
        assert "no faults injected" in summary.format()

    def test_summarize_counts_equivalent(self):
        records = _records([DETECTED, SDC, SDC])
        assert summarize(records) == summarize_counts(
            {DETECTED: 1, SDC: 2}
        )

    def test_format_mentions_ci(self):
        text = summarize(_records([DETECTED] * 8 + [SDC] * 2)).format()
        assert "95% CI" in text
        assert "8/10" in text
