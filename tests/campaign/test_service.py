"""Service-dispatcher contracts: bit-identity, crash reissue, warm store.

The tentpole guarantee (ISSUE 10 acceptance criteria): a serviced
campaign — shard dispatcher plus unified artifact store — produces
records bit-identical to ``campaign run --workers N`` for every fault
model, backend, batch size and ``--prune static``; a worker killed
mid-shard costs a reissue, never a record; and a warm second run over
a shared disk store is nearly pure cache hits.
"""

import asyncio
import json

import pytest

from repro.campaign import (
    ChecksumCampaignSpec,
    ProgramCampaignSpec,
    read_log,
    run_campaign,
)
from repro.runtime.faults import FAULT_MODELS
from repro.service import (
    ENV_STORE_DIR,
    LocalProcessEndpoint,
    ServiceProgress,
    Shard,
    ShardFailed,
    run_service_campaign,
    set_store_dir,
)
from repro.service.store import namespace_hit_rate


@pytest.fixture(autouse=True)
def no_disk_store(monkeypatch):
    monkeypatch.delenv(ENV_STORE_DIR, raising=False)
    set_store_dir(None)
    yield
    set_store_dir(None)


DEMO = """
program demo(n) {
  array A[n][n];
  for j = 0 .. n - 1 {
    S1: A[j][j] = sqrt(A[j][j]);
    for i = j + 1 .. n - 1 {
      S2: A[i][j] = A[i][j] / A[j][j];
    }
  }
}
"""

CHECKSUM_SPEC = ChecksumCampaignSpec(
    size=64, bits=2, pattern="random", trials=120, seed=20140609
)


def canonical(result):
    return [record.canonical() for record in result.records]


def _program_spec(**kwargs):
    defaults = dict(
        trials=8,
        seed=77,
        program_text=DEMO,
        params={"n": 6},
        init={"A": "randspd"},
    )
    defaults.update(kwargs)
    return ProgramCampaignSpec(**defaults)


class TestBitIdentity:
    """Serviced campaign == engine campaign, canonically."""

    def test_checksum_campaign(self):
        base = run_campaign(CHECKSUM_SPEC, workers=2)
        svc = run_service_campaign(CHECKSUM_SPEC, workers=2)
        assert canonical(base) == canonical(svc)
        assert base.counts == svc.counts

    def test_program_campaign(self):
        spec = _program_spec()
        base = run_campaign(spec, workers=2)
        svc = run_service_campaign(spec, workers=2)
        assert canonical(base) == canonical(svc)

    @pytest.mark.parametrize("model", FAULT_MODELS)
    def test_every_fault_model(self, model):
        spec = ProgramCampaignSpec(
            trials=6,
            seed=31,
            benchmark="jacobi1d",
            scale="small",
            fault_model=model,
        )
        base = run_campaign(spec, workers=1)
        svc = run_service_campaign(spec, workers=2, shard_trials=2)
        assert canonical(base) == canonical(svc)

    @pytest.mark.parametrize("backend", ("interp", "compiled", "vector"))
    def test_every_backend(self, backend):
        spec = _program_spec(backend=backend)
        base = run_campaign(spec, workers=1)
        svc = run_service_campaign(spec, workers=2, shard_trials=3)
        assert canonical(base) == canonical(svc)

    def test_batched_trials(self):
        spec = _program_spec(trials=10, batch=4)
        base = run_campaign(spec, workers=1)
        svc = run_service_campaign(spec, workers=2, shard_trials=5)
        assert canonical(base) == canonical(svc)

    def test_static_prune(self):
        spec = ProgramCampaignSpec(
            trials=10,
            seed=9,
            benchmark="jacobi1d",
            scale="small",
            prune="static",
        )
        base = run_campaign(spec, workers=1)
        svc = run_service_campaign(spec, workers=2, shard_trials=3)
        assert canonical(base) == canonical(svc)
        assert base.pruned == svc.pruned

    def test_recovery_campaign(self):
        spec = _program_spec(trials=6, recover=True)
        base = run_campaign(spec, workers=1)
        svc = run_service_campaign(spec, workers=2, shard_trials=2)
        assert canonical(base) == canonical(svc)

    def test_worker_and_shard_count_invariance(self):
        one = run_service_campaign(CHECKSUM_SPEC, workers=1, shard_trials=7)
        three = run_service_campaign(CHECKSUM_SPEC, workers=3, shard_trials=13)
        assert canonical(one) == canonical(three)


class TestLogAndResume:
    def test_log_matches_engine_log(self, tmp_path):
        engine_log = str(tmp_path / "engine.jsonl")
        service_log = str(tmp_path / "service.jsonl")
        run_campaign(CHECKSUM_SPEC, workers=2, log_path=engine_log)
        run_service_campaign(CHECKSUM_SPEC, workers=2, log_path=service_log)
        left = [r.canonical() for r in read_log(engine_log).records]
        right = [r.canonical() for r in read_log(service_log).records]
        assert left == right

    def test_stats_trailer_written(self, tmp_path):
        log = str(tmp_path / "svc.jsonl")
        run_service_campaign(CHECKSUM_SPEC, workers=2, log_path=log)
        contents = read_log(log)
        assert contents.stats is not None
        assert "golden" in contents.stats["store"]
        assert contents.stats["service"]["shards"] >= 1
        # The trailer is valid JSONL understood (skipped or parsed) by
        # every reader — the last line of the file.
        last = json.loads(open(log).read().splitlines()[-1])
        assert last["type"] == "stats"

    def test_resume_from_truncated_log(self, tmp_path):
        log = str(tmp_path / "svc.jsonl")
        full = run_service_campaign(CHECKSUM_SPEC, workers=2, log_path=log)
        with open(log) as handle:
            lines = handle.readlines()
        keep = 1 + 40  # header + 40 trials
        with open(log, "w") as handle:
            handle.writelines(lines[:keep])
            handle.write('{"type": "trial", "ind')  # torn tail
        resumed = run_service_campaign(
            CHECKSUM_SPEC, workers=2, log_path=log, resume=True
        )
        assert resumed.resumed_trials == 40
        assert canonical(resumed) == canonical(full)

    def test_progress_callbacks_stream(self):
        seen: list[ServiceProgress] = []
        run_service_campaign(
            CHECKSUM_SPEC, workers=2, shard_trials=30, progress=seen.append
        )
        assert len(seen) == 4  # one per shard
        assert seen[-1].done_trials == CHECKSUM_SPEC.trials
        assert seen[-1].completed_shards == 4
        low, high = seen[-1].detection_interval
        assert 0.0 <= low <= high <= 1.0
        assert all(p.last_report is not None for p in seen)


class _CrashingEndpoint:
    """Wraps LocalProcessEndpoint; kills its worker mid-shard, once
    per campaign, after a few records have streamed (so the dispatcher
    must merge partials with the reissued remainder)."""

    def __init__(self, spec, crashes):
        self._inner = LocalProcessEndpoint(spec)
        self._crashes = crashes

    async def start(self):
        await self._inner.start()

    async def run_shard(self, shard, on_record):
        if self._crashes["remaining"] > 0:
            self._crashes["remaining"] -= 1
            seen = 0

            def tripwire(record):
                nonlocal seen
                on_record(record)
                seen += 1

            task = asyncio.ensure_future(
                self._inner.run_shard(shard, tripwire)
            )
            while not task.done() and seen == 0:
                await asyncio.sleep(0.001)
            self._inner.process.kill()
            try:
                return await task
            except ShardFailed:
                raise
            except Exception as error:  # pragma: no cover - defensive
                raise ShardFailed(str(error)) from error
        return await self._inner.run_shard(shard, on_record)

    async def close(self):
        await self._inner.close()


class TestCrashReissue:
    def test_killed_worker_reissues_missing_indices(self, tmp_path):
        log = str(tmp_path / "crash.jsonl")
        crashes = {"remaining": 1}
        svc = run_service_campaign(
            CHECKSUM_SPEC,
            workers=2,
            shard_trials=30,
            log_path=log,
            endpoint_factory=lambda: _CrashingEndpoint(
                CHECKSUM_SPEC, crashes
            ),
        )
        assert crashes["remaining"] == 0
        assert svc.service["reissued"] >= 1
        serial = run_campaign(CHECKSUM_SPEC, workers=1)
        # Verdict-by-index identity with an uninterrupted serial run —
        # in memory and in the rewritten JSONL log.
        assert canonical(svc) == canonical(serial)
        logged = {r.index: r.verdict for r in read_log(log).records}
        expected = {r.index: r.verdict for r in serial.records}
        assert logged == expected

    def test_persistent_failure_gives_up(self):
        class _DeadEndpoint:
            async def start(self):
                pass

            async def run_shard(self, shard, on_record):
                raise ShardFailed("always down")

            async def close(self):
                pass

        with pytest.raises(RuntimeError, match="giving up"):
            run_service_campaign(
                ChecksumCampaignSpec(
                    size=64, bits=2, pattern="random", trials=6, seed=1
                ),
                workers=1,
                max_attempts=2,
                endpoint_factory=lambda: _DeadEndpoint(),
            )


class TestWarmStore:
    def test_second_run_hits_store(self, tmp_path):
        set_store_dir(tmp_path / "store")
        spec = ProgramCampaignSpec(
            trials=6, seed=11, benchmark="cholesky", scale="small"
        )
        cold = run_service_campaign(spec, workers=2)
        warm = run_service_campaign(spec, workers=2)
        assert canonical(cold) == canonical(warm)
        rate = namespace_hit_rate(
            warm.store, ("golden", "kernel", "instrument")
        )
        assert rate >= 0.90, warm.store

    def test_shards_share_one_golden_run(self, tmp_path):
        # Forked workers inherit the driver's in-memory golden cache;
        # clear it so this campaign's preparations are observable.
        from repro.campaign.golden import clear_cache

        clear_cache()
        set_store_dir(tmp_path / "store")
        spec = ProgramCampaignSpec(
            trials=6, seed=11, benchmark="jacobi1d", scale="small"
        )
        result = run_service_campaign(spec, workers=2, shard_trials=2)
        golden = result.store["golden"]
        # Three shards, two workers: each worker prepares at most once
        # (shards reuse the worker's prepared context), so golden-run
        # work is bounded by the worker count, not the shard count.
        assert result.service["shards"] == 3
        assert golden["misses"] + golden["disk_hits"] <= 2
        assert golden["misses"] + golden["disk_hits"] >= 1


class TestShardPlanning:
    def test_shards_cover_pending_exactly(self):
        from repro.service.dispatcher import _make_shards

        shards, size = _make_shards(list(range(100)), workers=3, shard_trials=None)
        flat = [i for shard in shards for i in shard.indices]
        assert flat == list(range(100))
        assert size <= 32
        assert all(isinstance(shard, Shard) for shard in shards)

    def test_explicit_shard_trials(self):
        from repro.service.dispatcher import _make_shards

        shards, size = _make_shards(list(range(10)), workers=2, shard_trials=4)
        assert size == 4
        assert [len(s.indices) for s in shards] == [4, 4, 2]

    def test_empty_pending(self):
        from repro.service.dispatcher import _make_shards

        assert _make_shards([], workers=2, shard_trials=None) == ([], 0)
