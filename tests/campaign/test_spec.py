"""Campaign spec tests: seed derivation, round-trips, initial values."""

import pickle
import random

import pytest

from repro.campaign.spec import (
    ChecksumCampaignSpec,
    ProgramCampaignSpec,
    build_initial_values,
    derive_seed,
    spec_from_dict,
    trial_seed,
)

DEMO = """
program demo(n) {
  array A[n][n];
  for j = 0 .. n - 1 {
    S1: A[j][j] = sqrt(A[j][j]);
    for i = j + 1 .. n - 1 {
      S2: A[i][j] = A[i][j] / A[j][j];
    }
  }
}
"""


class TestSeedDerivation:
    def test_stable_across_calls(self):
        assert trial_seed(42, 7) == trial_seed(42, 7)
        assert derive_seed(42, "data", "random", 100) == derive_seed(
            42, "data", "random", 100
        )

    def test_distinct_per_index(self):
        seeds = {trial_seed(42, i) for i in range(1000)}
        assert len(seeds) == 1000

    def test_distinct_per_campaign(self):
        assert trial_seed(1, 0) != trial_seed(2, 0)

    def test_trial_stream_independent_of_data_stream(self):
        assert trial_seed(1, 0) != derive_seed(1, "data")

    def test_negative_index_rejected(self):
        with pytest.raises(ValueError):
            trial_seed(1, -1)

    def test_known_value_pinned(self):
        """The derivation is part of the log format: logs written today
        must replay identically forever, so the function is pinned."""
        assert trial_seed(12345, 0) == derive_seed(12345, "trial", 0)
        # SHA-256 of b"12345:trial:0", top 8 bytes, mod 2^63 — computed
        # once and frozen here.
        import hashlib

        digest = hashlib.sha256(b"12345:trial:0").digest()
        assert trial_seed(12345, 0) == int.from_bytes(digest[:8], "big") % (
            1 << 63
        )


class TestSpecRoundTrips:
    def test_checksum_spec(self):
        spec = ChecksumCampaignSpec(
            size=100, bits=3, pattern="random", trials=50, seed=9
        )
        assert spec_from_dict(spec.to_dict()) == spec

    def test_program_spec_file_mode(self):
        spec = ProgramCampaignSpec(
            trials=10,
            seed=3,
            program_text=DEMO,
            params={"n": 6},
            init={"A": "randspd"},
        )
        again = spec_from_dict(spec.to_dict())
        assert again == spec
        assert dict(again.params) == {"n": 6}

    def test_program_spec_benchmark_mode(self):
        spec = ProgramCampaignSpec(
            trials=10, seed=3, benchmark="cholesky", scale="small"
        )
        assert spec_from_dict(spec.to_dict()) == spec

    def test_json_round_trip_through_log_header(self):
        import json

        spec = ProgramCampaignSpec(
            trials=5, seed=1, benchmark="lu", target_arrays=("A",)
        )
        assert spec_from_dict(json.loads(json.dumps(spec.to_dict()))) == spec

    def test_specs_are_picklable(self):
        for spec in (
            ChecksumCampaignSpec(
                size=10, bits=2, pattern="all0", trials=5, seed=1
            ),
            ProgramCampaignSpec(trials=5, seed=1, benchmark="cholesky"),
        ):
            assert pickle.loads(pickle.dumps(spec)) == spec

    def test_program_spec_needs_exactly_one_source(self):
        with pytest.raises(ValueError):
            ProgramCampaignSpec(trials=1, seed=0)
        with pytest.raises(ValueError):
            ProgramCampaignSpec(
                trials=1, seed=0, program_text=DEMO, benchmark="lu"
            )

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            spec_from_dict({"kind": "quantum"})


class TestInitialValues:
    def test_kinds(self):
        import numpy as np

        from repro.ir.parser import parse_program

        program = parse_program(
            "program p(n) { array A[n][n]; array B[n]; "
            "for i = 0 .. n - 1 { S1: B[i] = A[i][i]; } }"
        )
        values = build_initial_values(
            program, {"n": 4}, {"A": "randspd", "B": "arange"}, seed=0
        )
        assert values["A"].shape == (4, 4)
        # SPD: symmetric with positive diagonal.
        assert np.allclose(values["A"], values["A"].T)
        assert list(values["B"]) == [0.0, 1.0, 2.0, 3.0]

    def test_deterministic(self):
        import numpy as np

        from repro.ir.parser import parse_program

        program = parse_program(
            "program p(n) { array A[n]; for i = 0 .. n - 1 "
            "{ S1: A[i] = A[i]; } }"
        )
        a = build_initial_values(program, {"n": 8}, {"A": "rand"}, seed=5)
        b = build_initial_values(program, {"n": 8}, {"A": "rand"}, seed=5)
        assert np.array_equal(a["A"], b["A"])

    def test_unknown_initializer(self):
        from repro.ir.parser import parse_program

        program = parse_program(
            "program p(n) { array A[n]; for i = 0 .. n - 1 "
            "{ S1: A[i] = A[i]; } }"
        )
        with pytest.raises(ValueError):
            build_initial_values(program, {"n": 4}, {"A": "frobnicate"}, 0)

    def test_randspd_requires_square(self):
        from repro.ir.parser import parse_program

        program = parse_program(
            "program p(n) { array A[n]; for i = 0 .. n - 1 "
            "{ S1: A[i] = A[i]; } }"
        )
        with pytest.raises(ValueError):
            build_initial_values(program, {"n": 4}, {"A": "randspd"}, 0)


class TestTrialReplay:
    def test_single_trial_replay_matches_campaign(self):
        """Any trial can be reproduced in isolation by its index."""
        from repro.campaign.engine import replay_trial, run_campaign

        spec = ChecksumCampaignSpec(
            size=64, bits=2, pattern="random", trials=40, seed=11
        )
        full = run_campaign(spec, workers=1)
        for index in (0, 17, 39):
            solo = replay_trial(spec, index)
            assert solo.canonical() == full.records[index].canonical()

    def test_trial_rng_is_self_contained(self):
        """Trial i's outcome does not depend on trials 0..i-1 having
        run (the per-index seeding contract)."""
        spec = ChecksumCampaignSpec(
            size=32, bits=2, pattern="all0", trials=10, seed=4
        )
        prepared = spec.prepare()
        forward = [spec.run_trial(i, prepared) for i in range(10)]
        backward = [spec.run_trial(i, prepared) for i in reversed(range(10))]
        backward.reverse()
        assert [r.canonical() for r in forward] == [
            r.canonical() for r in backward
        ]
