"""Resume semantics across the fault-model taxonomy.

A crash-interrupted campaign log now carries records whose injection
dicts come from *different* ``InjectorSpec`` shapes depending on the
spec's ``fault_model`` — addrgen records have ``actual``/``cells``,
stuck-bit records have ``window``/``stuck_to``, value records keep the
legacy four-key shape.  Resume must (a) round-trip every shape through
the JSONL log losslessly, (b) re-run exactly the missing indices (no
double-running, no mis-attribution of a logged record to a fresh
trial), and (c) refuse a log whose header was written by a campaign
with a different fault model, so records of two models can never merge
into one result.
"""

from __future__ import annotations

import json

import pytest

from repro.campaign import (
    ProgramCampaignSpec,
    read_log,
    resume_campaign,
    run_campaign,
)
from repro.runtime.faults import FAULT_MODELS


def canonical(result):
    return [record.canonical() for record in result.records]


def _spec(model: str, **overrides) -> ProgramCampaignSpec:
    fields = dict(
        trials=6,
        seed=31 + list(FAULT_MODELS).index(model),
        benchmark="trisolv",
        scale="small",
        fault_model=model,
        backend="compiled",
    )
    fields.update(overrides)
    return ProgramCampaignSpec(**fields)


def _truncate(path, keep_lines, torn_bytes=23):
    lines = open(path).readlines()
    assert len(lines) > keep_lines + 1
    with open(path, "w") as handle:
        handle.write("".join(lines[:keep_lines]))
        handle.write(lines[keep_lines][:torn_bytes])


@pytest.mark.parametrize("model", FAULT_MODELS)
def test_truncated_log_resumes_to_uninterrupted_run(model, tmp_path):
    spec = _spec(model)
    log = str(tmp_path / f"{model}.jsonl")
    uninterrupted = run_campaign(spec, workers=1)
    run_campaign(spec, workers=1, log_path=log)
    _truncate(log, keep_lines=1 + 3)  # header + 3 whole records
    resumed = run_campaign(spec, workers=1, log_path=log, resume=True)
    assert resumed.resumed_trials == 3
    assert canonical(resumed) == canonical(uninterrupted)
    # The rewritten log itself must also round-trip the model-specific
    # injection fields bit-exactly.
    reread = read_log(log)
    assert [r.canonical() for r in reread.records] == canonical(uninterrupted)


@pytest.mark.parametrize("model", ("addrgen_store", "stuck_bit"))
def test_resume_reruns_only_missing_indices(model, tmp_path):
    """The logged prefix is trusted verbatim: resumed records are the
    logged objects, not re-executions, and the fresh run covers exactly
    the complement."""
    spec = _spec(model)
    log = str(tmp_path / "trials.jsonl")
    run_campaign(spec, workers=1, log_path=log)
    _truncate(log, keep_lines=1 + 4)
    logged_before = {r.index: r.canonical() for r in read_log(log).records}
    resumed = run_campaign(spec, workers=1, log_path=log, resume=True)
    assert sorted(logged_before) == [0, 1, 2, 3]
    assert resumed.resumed_trials == 4
    by_index = {r.index: r for r in resumed.records}
    assert sorted(by_index) == list(range(spec.trials))
    for index, before in logged_before.items():
        assert by_index[index].canonical() == before
    # Attribution: every record still names the spec's model.
    for record in resumed.records:
        assert record.extra["fault_model"] == model


def test_resume_refuses_log_from_different_fault_model(tmp_path):
    """Records of two injector specs must never merge: a burst log
    cannot seed an addrgen resume even though seeds and trial counts
    agree."""
    log = str(tmp_path / "trials.jsonl")
    burst = _spec("burst", seed=11)
    run_campaign(burst, workers=1, log_path=log)
    _truncate(log, keep_lines=1 + 2)
    addrgen = _spec("addrgen_load", seed=11)
    with pytest.raises(ValueError, match="different campaign"):
        run_campaign(addrgen, workers=1, log_path=log, resume=True)
    # Changing only a model knob (window) is refused just the same.
    stuck_a = _spec("stuck_bit", seed=11)
    run_campaign(stuck_a, workers=1, log_path=log)
    _truncate(log, keep_lines=1 + 2)
    stuck_b = _spec("stuck_bit", seed=11, stuck_window=7)
    with pytest.raises(ValueError, match="different campaign"):
        run_campaign(stuck_b, workers=1, log_path=log, resume=True)


def test_resume_from_header_reconstructs_model_spec(tmp_path):
    """resume_campaign rebuilds the full spec — fault model and its
    knobs included — from the log header alone."""
    spec = _spec("stuck_bit", stuck_window=9, burst_cells=2)
    log = str(tmp_path / "trials.jsonl")
    run_campaign(spec, workers=1, log_path=log)
    _truncate(log, keep_lines=1 + 2)
    resumed = resume_campaign(log, workers=1)
    assert resumed.spec == spec
    assert canonical(resumed) == canonical(run_campaign(spec, workers=1))


def test_mixed_model_logs_in_one_directory_stay_separate(tmp_path):
    """The operational shape of a fault-model sweep: one log per model
    in the same directory, each resumable independently, none bleeding
    into another's result set."""
    logs = {}
    interrupted = {}
    for model in ("random_cell", "addrgen_store", "burst"):
        spec = _spec(model, trials=4)
        log = str(tmp_path / f"{model}.jsonl")
        run_campaign(spec, workers=1, log_path=log)
        _truncate(log, keep_lines=1 + 2)
        logs[model] = (spec, log)
        interrupted[model] = {
            r.index for r in read_log(log).records
        }
    for model, (spec, log) in logs.items():
        resumed = resume_campaign(log)
        assert resumed.spec == spec
        assert resumed.resumed_trials == len(interrupted[model])
        assert {r.extra["fault_model"] for r in resumed.records} == {model}
        assert canonical(resumed) == canonical(run_campaign(spec, workers=1))


def test_injection_dicts_survive_json_round_trip(tmp_path):
    """Every model's injection record must be JSON-stable: writing and
    re-reading the log cannot lose or mutate model-specific keys."""
    for model in FAULT_MODELS:
        spec = _spec(model, trials=4)
        log = str(tmp_path / f"{model}.jsonl")
        result = run_campaign(spec, workers=1, log_path=log)
        with open(log) as handle:
            lines = [json.loads(line) for line in handle]
        records = [line for line in lines[1:] if line["type"] == "trial"]
        assert len(records) == spec.trials
        by_index = {r.index: r for r in result.records}
        for line in records:
            assert line["injection"] == by_index[line["index"]].injection
