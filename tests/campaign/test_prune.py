"""``--prune static``: identical results, fewer executed trials."""

from __future__ import annotations

import pytest

from repro.campaign import ProgramCampaignSpec, run_campaign
from repro.campaign.records import read_log


def _spec(**overrides):
    kwargs = dict(
        trials=40,
        seed=3,
        benchmark="jacobi1d",
        scale="small",
    )
    kwargs.update(overrides)
    return ProgramCampaignSpec(**kwargs)


def test_pruned_equals_unpruned():
    """Pruning changes which trials execute, never any verdict or
    injection: the Wilson-CI-bearing aggregate is identical."""
    baseline = run_campaign(_spec())
    pruned = run_campaign(_spec(prune="static"))
    assert pruned.pruned > 0
    assert len(pruned.records) == len(baseline.records)
    by_index = {r.index: r for r in baseline.records}
    for record in pruned.records:
        reference = by_index[record.index]
        assert record.verdict == reference.verdict, record.index
        assert record.injection == reference.injection, record.index
        assert record.seed == reference.seed
    assert (
        pruned.summary().counts == baseline.summary().counts
    )
    assert pruned.summary().detection_interval() == (
        baseline.summary().detection_interval()
    )


@pytest.mark.parametrize(
    "model", ["burst", "stuck_bit", "addrgen_store", "addrgen_load"]
)
def test_pruned_equals_unpruned_other_models(model):
    baseline = run_campaign(_spec(trials=20, fault_model=model))
    pruned = run_campaign(_spec(trials=20, fault_model=model, prune="static"))
    by_index = {r.index: r for r in baseline.records}
    for record in pruned.records:
        reference = by_index[record.index]
        assert record.verdict == reference.verdict, (model, record.index)
        assert record.injection == reference.injection


def test_predicted_records_marked():
    result = run_campaign(_spec(prune="static"))
    predicted = [
        r for r in result.records if r.extra.get("predicted")
    ]
    assert len(predicted) == result.pruned
    for record in predicted:
        assert record.extra["predicted_class"] in ("detected", "masked",
                                                   "no_injection")
        assert record.extra["fault_model"] == "random_cell"


def test_vector_stats_surfaced():
    result = run_campaign(_spec(trials=5))
    assert result.vector is not None
    assert set(result.vector) == {
        "runs", "fallbacks", "probes", "engaged_keys", "scalar_keys"
    }


def test_prune_resume_safe(tmp_path):
    """Predicted records land in the log like any other trial: a
    resumed campaign re-executes nothing and reproduces the result."""
    log = tmp_path / "trials.jsonl"
    first = run_campaign(_spec(prune="static"), log_path=str(log))
    assert first.pruned > 0
    contents = read_log(str(log))
    assert len(contents.records) == 40
    resumed = run_campaign(
        _spec(prune="static"), log_path=str(log), resume=True
    )
    assert resumed.resumed_trials == 40
    assert resumed.pruned == 0  # nothing left to prune
    by_index = {r.index: r.verdict for r in first.records}
    for record in resumed.records:
        assert record.verdict == by_index[record.index]


def test_golden_digest_ignores_prune():
    assert (
        _spec().golden_digest() == _spec(prune="static").golden_digest()
    )


def test_prune_validation():
    with pytest.raises(ValueError):
        _spec(prune="bogus")
    with pytest.raises(ValueError):
        _spec(prune="static", recover=True)
