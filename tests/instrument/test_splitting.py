"""Index-set splitting (Algorithm 2) tests."""

import numpy as np
import pytest

from repro.instrument.pipeline import (
    InstrumentationOptions,
    instrument_program,
)
from repro.ir.nodes import Loop, Select, walk_expressions, walk_statements
from repro.ir.parser import parse_program
from repro.programs import ALL_BENCHMARKS
from repro.runtime.interpreter import run_program

from tests.conftest import copy_values, spd_matrix

SPLIT = InstrumentationOptions(index_set_splitting=True)
NO_SPLIT = InstrumentationOptions(index_set_splitting=False)


def selects_in_loops(program) -> int:
    """Count Select conditionals inside loops (incl. instrumentation)."""
    from repro.instrument.splitting import _loop_expressions

    count = 0
    for stmt in walk_statements(program.body):
        if isinstance(stmt, Loop):
            for expr in _loop_expressions(stmt):
                for node in walk_expressions(expr):
                    if isinstance(node, Select):
                        count += 1
    return count


class TestPaperFigure6:
    def test_peeled_structure(self, paper_example):
        """Figure 6: the last j iteration is peeled; the main loop's
        def contribution is the unconditional n-1-j."""
        split, _ = instrument_program(paper_example, SPLIT)
        from repro.ir.printer import program_to_text

        text = program_to_text(split)
        # No conditional (Select) remains in the main computation.
        assert "?" not in text.split("for j")[1]

    def test_kernel_selects_eliminated(self, paper_example):
        unsplit, _ = instrument_program(paper_example, NO_SPLIT)
        split, _ = instrument_program(paper_example, SPLIT)
        assert selects_in_loops(unsplit) > 0
        # Splitting is only applied to the kernel; the prologue keeps
        # its piecewise conditionals (they run O(array) times).
        kernel_selects = 0
        from repro.instrument.splitting import _loop_expressions

        for stmt in walk_statements(split.body):
            if isinstance(stmt, Loop) and stmt.var not in ("__x0", "__x1"):
                for expr in _loop_expressions(stmt):
                    for node in walk_expressions(expr):
                        if isinstance(node, Select):
                            kernel_selects += 1
        assert kernel_selects == 0

    def test_labels_unique_after_split(self, paper_example):
        split, _ = instrument_program(paper_example, SPLIT)
        from repro.ir.nodes import statement_labels

        labels = statement_labels(split.body)
        assert len(labels) == len(set(labels))


class TestSemanticEquivalence:
    @pytest.mark.parametrize("name", sorted(ALL_BENCHMARKS))
    def test_split_equals_unsplit(self, name):
        module = ALL_BENCHMARKS[name]
        params = module.SMALL_PARAMS
        values = module.initial_values(params)
        split, _ = instrument_program(module.program(), SPLIT)
        unsplit, _ = instrument_program(module.program(), NO_SPLIT)
        r_split = run_program(
            split, params, initial_values=copy_values(values)
        )
        r_unsplit = run_program(
            unsplit, params, initial_values=copy_values(values)
        )
        assert not r_split.mismatches and not r_unsplit.mismatches
        for decl in module.program().arrays:
            np.testing.assert_allclose(
                r_split.memory.to_array(decl.name),
                r_unsplit.memory.to_array(decl.name),
                rtol=1e-12,
            )
        # Identical checksums, too (same contributions in a different
        # grouping — the operator is commutative).
        for which in ("def", "use", "e_def", "e_use"):
            assert r_split.checksums.get(which) == r_unsplit.checksums.get(
                which
            ), which

    def test_split_reduces_branches(self, paper_example):
        n = 12
        values = {"A": spd_matrix(n)}
        split, _ = instrument_program(paper_example, SPLIT)
        unsplit, _ = instrument_program(paper_example, NO_SPLIT)
        r_split = run_program(split, {"n": n}, initial_values=copy_values(values))
        r_unsplit = run_program(
            unsplit, {"n": n}, initial_values=copy_values(values)
        )
        assert r_split.counts.branches < r_unsplit.counts.branches
        assert r_split.counts.int_ops < r_unsplit.counts.int_ops


class TestMechanics:
    def test_equality_condition_peels_single_iteration(self):
        p = parse_program(
            """
            program p(n) {
              array A[n];
              array B[n];
              for i = 0 .. n - 1 {
                S1: A[i] = 1.0;
                S2: B[0] = A[i] + 1.0;
              }
            }
            """
        )
        # A[i] written then read in the same iteration; B[0]
        # repeatedly overwritten: its count is 0 except the last write.
        split, report = instrument_program(p, SPLIT)
        r = run_program(split, {"n": 5})
        assert not r.mismatches

    def test_split_budget_degrades_gracefully(self, paper_example):
        from repro.instrument.splitting import split_index_sets

        instrumented, _ = instrument_program(paper_example, NO_SPLIT)
        limited = split_index_sets(instrumented, max_splits=0)
        # With no budget nothing is split, but the program still runs.
        r = run_program(limited, {"n": 5}, initial_values={"A": spd_matrix(5)})
        assert not r.mismatches

    def test_min_max_bounds_clamp_empty_ranges(self):
        """Peeled pieces outside the range simply do not execute."""
        p = parse_program(
            """
            program p(n) {
              array A[n];
              for i = 0 .. n - 1 { S1: A[i] = 2.0; }
              for i2 = 0 .. n - 1 { S2: A[i2] = A[i2] * 2.0; }
            }
            """
        )
        split, _ = instrument_program(p, SPLIT)
        for n in (1, 2, 5):
            r = run_program(split, {"n": n})
            assert not r.mismatches
            np.testing.assert_allclose(
                r.memory.to_array("A"), np.full(n, 4.0)
            )
