"""Localized checksums: interpreter vs compiled-kernel differential.

The recovery controller trusts per-array localization to decide which
regions to restore, on whichever backend a campaign picked — so the
localized builds must behave *identically* on both: same checksum
sums per group fault-free, and the same implicated groups under the
same fault.
"""

import random

import pytest

from repro.instrument.localize import corrupted_groups, localize_checksums
from repro.instrument.pipeline import (
    InstrumentationOptions,
    instrument_program,
)
from repro.programs import ALL_BENCHMARKS
from repro.runtime.compile import compile_program
from repro.runtime.faults import RandomCellFlipper, ScheduledBitFlip
from repro.runtime.interpreter import run_program

from tests.conftest import copy_values

LOCALIZED = InstrumentationOptions(index_set_splitting=True, localize=True)

BENCHMARKS = ["cholesky", "trisolv", "jacobi1d", "cg"]


def _build(name):
    module = ALL_BENCHMARKS[name]
    params = dict(module.SMALL_PARAMS)
    values = module.initial_values(params)
    instrumented, _ = instrument_program(module.program(), LOCALIZED)
    return module, params, values, instrumented


class TestFaultFree:
    @pytest.mark.parametrize("name", BENCHMARKS)
    def test_group_sums_identical(self, name):
        _, params, values, instrumented = _build(name)
        interp = run_program(
            instrumented, params, initial_values=copy_values(values)
        )
        kernel = compile_program(instrumented)
        compiled = kernel.execute(
            params, initial_values=copy_values(values)
        )
        assert not interp.mismatches and not compiled.mismatches
        # The full per-group accumulator maps, not just the verdict:
        # every def@A / use@A pair must agree bit for bit.
        assert interp.checksums.sums == compiled.checksums.sums
        assert any(
            "@" in key for key in interp.checksums.sums[0]
        ), "localized build should carry per-array groups"


class TestSeededFaults:
    @pytest.mark.parametrize("name", BENCHMARKS)
    def test_implicated_groups_identical(self, name):
        _, params, values, instrumented = _build(name)
        clean = run_program(
            instrumented, params, initial_values=copy_values(values)
        )
        total_loads = max(1, clean.memory.load_count)
        targets = [d.name for d in instrumented.arrays if not d.is_shadow]
        kernel = compile_program(instrumented)
        disagreements = []
        implicated_any = False
        for seed in range(25):
            outcomes = []
            for backend in ("interp", "compiled"):
                injector = RandomCellFlipper(
                    2, total_loads, random.Random(seed), target_arrays=targets
                )
                if backend == "interp":
                    result = run_program(
                        instrumented,
                        params,
                        initial_values=copy_values(values),
                        injector=injector,
                        wild_reads=True,
                    )
                else:
                    result = kernel.execute(
                        params,
                        initial_values=copy_values(values),
                        injector=injector,
                        wild_reads=True,
                    )
                groups = corrupted_groups(result.mismatches)
                outcomes.append(
                    (bool(result.mismatches), tuple(sorted(groups)))
                )
            if outcomes[0] != outcomes[1]:
                disagreements.append((seed, outcomes))
            implicated_any = implicated_any or outcomes[0][1]
        assert not disagreements
        assert implicated_any, "no seed implicated any group — weak test"

    def test_scheduled_flip_names_same_array_both_backends(self):
        _, params, values, instrumented = _build("trisolv")
        injector_args = ("L", (3, 1), [21, 40], 180)
        kernel = compile_program(instrumented)
        groups = []
        for backend in ("interp", "compiled"):
            injector = ScheduledBitFlip(*injector_args)
            if backend == "interp":
                result = run_program(
                    instrumented,
                    params,
                    initial_values=copy_values(values),
                    injector=injector,
                )
            else:
                result = kernel.execute(
                    params,
                    initial_values=copy_values(values),
                    injector=injector,
                )
            assert injector.fired
            groups.append(sorted(corrupted_groups(result.mismatches)))
        assert groups[0] == groups[1]
        assert "L" in groups[0]


class TestLocalizeOfEpochBody:
    """`localize_checksums` applied after instrumentation (the recovery
    plan's composition order) is also backend-identical."""

    @pytest.mark.parametrize("name", ["jacobi1d", "cholesky"])
    def test_post_localized_build_identical(self, name):
        module = ALL_BENCHMARKS[name]
        params = dict(module.SMALL_PARAMS)
        values = module.initial_values(params)
        base, _ = instrument_program(
            module.program(),
            InstrumentationOptions(index_set_splitting=True),
        )
        localized = localize_checksums(base)
        interp = run_program(
            localized, params, initial_values=copy_values(values)
        )
        compiled = compile_program(localized).execute(
            params, initial_values=copy_values(values)
        )
        assert not interp.mismatches and not compiled.mismatches
        assert interp.checksums.sums == compiled.checksums.sums
