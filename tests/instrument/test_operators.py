"""Checksum operator library tests."""

import random

import pytest
from hypothesis import given, strategies as st

from repro.instrument.operators import (
    AdlerChecksum,
    Crc64Checksum,
    FletcherChecksum,
    ModularAddChecksum,
    MultiChecksum,
    OnesComplementChecksum,
    RotatedModularAddChecksum,
    XorChecksum,
    operator_by_name,
)

WORDS = st.lists(
    st.integers(min_value=0, max_value=(1 << 64) - 1), max_size=16
)

ALL_OPERATORS = [
    ModularAddChecksum(),
    XorChecksum(),
    OnesComplementChecksum(),
    FletcherChecksum(),
    AdlerChecksum(),
    Crc64Checksum(),
    RotatedModularAddChecksum(),
]


class TestBasicProperties:
    @pytest.mark.parametrize("op", ALL_OPERATORS, ids=lambda o: o.name)
    @given(words=WORDS)
    def test_checksum_fits_64_bits(self, op, words):
        assert 0 <= op.compute(words) < (1 << 64)

    @pytest.mark.parametrize("op", ALL_OPERATORS, ids=lambda o: o.name)
    def test_deterministic(self, op):
        words = [17, 2**63, 12345678901234567890 % 2**64]
        assert op.compute(words) == op.compute(words)

    @given(words=WORDS)
    def test_commutative_operators_are_order_independent(self, words):
        for op in (ModularAddChecksum(), XorChecksum(), OnesComplementChecksum()):
            shuffled = list(words)
            random.Random(0).shuffle(shuffled)
            assert op.compute(words) == op.compute(shuffled), op.name

    def test_fletcher_is_position_aware(self):
        op = FletcherChecksum()
        assert op.compute([1, 2]) != op.compute([2, 1])
        assert not op.commutative

    def test_rotadd_depends_on_address(self):
        op = RotatedModularAddChecksum()
        assert op.compute([3], base_address=0) != op.compute([3], base_address=8)


class TestDetection:
    def test_single_bit_always_caught_by_modadd(self):
        """One-bit errors are always caught (paper Section 6.1)."""
        op = ModularAddChecksum()
        rng = random.Random(5)
        for _ in range(200):
            words = [rng.getrandbits(64) for _ in range(8)]
            corrupted = list(words)
            index = rng.randrange(8)
            corrupted[index] ^= 1 << rng.randrange(64)
            assert op.detects(words, corrupted)

    def test_modadd_misses_aligned_opposite_flips(self):
        """The known 2-bit miss: same bit position, opposite values."""
        op = ModularAddChecksum()
        words = [0b1000, 0b0000]
        corrupted = [0b0000, 0b1000]  # bit 3 flipped 1->0 and 0->1
        assert not op.detects(words, corrupted)

    def test_rotation_catches_aligned_opposite_flips(self):
        op = RotatedModularAddChecksum()
        words = [0b1000, 0b0000]
        corrupted = [0b0000, 0b1000]
        assert op.detects(words, corrupted)  # rotations 0 and 1 differ

    def test_xor_misses_any_aligned_double_flip(self):
        """XOR cancels *every* aligned double flip; integer addition
        cancels only the opposite-polarity case — the paper's reason
        for choosing addition (superior fault coverage, Section 5)."""
        # Same polarity (both 0 -> 1): caught by modadd, missed by xor.
        words = [0b0000, 0b0000]
        corrupted = [0b1000, 0b1000]
        assert ModularAddChecksum().detects(words, corrupted)
        assert not XorChecksum().detects(words, corrupted)
        # Opposite polarity (1 -> 0 and 0 -> 1): both miss.
        words2 = [0b1000, 0b0000]
        corrupted2 = [0b0000, 0b1000]
        assert not ModularAddChecksum().detects(words2, corrupted2)
        assert not XorChecksum().detects(words2, corrupted2)


class TestCrc64:
    def test_detects_every_two_bit_error(self):
        """CRC-64's whole point: guaranteed 2-bit detection within the
        polynomial window (Maxino's strongest entry)."""
        op = Crc64Checksum()
        rng = random.Random(11)
        for _ in range(300):
            words = [rng.getrandbits(64) for _ in range(16)]
            corrupted = list(words)
            positions = rng.sample(range(16 * 64), 2)
            for p in positions:
                corrupted[p // 64] ^= 1 << (p % 64)
            assert op.detects(words, corrupted)

    def test_known_vector(self):
        # CRC of a single zero word is zero; of a one-bit word, nonzero.
        op = Crc64Checksum()
        assert op.compute([0]) == 0
        assert op.compute([1]) != 0

    def test_not_commutative(self):
        op = Crc64Checksum()
        assert op.compute([1, 2]) != op.compute([2, 1])
        assert not op.commutative


class TestMulti:
    def test_multi_detects_when_any_component_does(self):
        multi = MultiChecksum([ModularAddChecksum(), RotatedModularAddChecksum()])
        words = [0b1000, 0b0000]
        corrupted = [0b0000, 0b1000]
        assert multi.detects(words, corrupted)

    def test_registry(self):
        assert operator_by_name("modadd").name == "modadd"
        assert operator_by_name("xor").name == "xor"
        two = operator_by_name("modadd+rotadd")
        assert isinstance(two, MultiChecksum)

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            operator_by_name("crc99")
