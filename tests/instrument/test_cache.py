"""Content-addressed instrumentation cache: correctness and tolerance.

The contract under test: a cache hit (memory or disk) is
indistinguishable from a fresh ``instrument_program`` call; distinct
programs or options never share a key; and a corrupted on-disk entry
degrades to a recompute, never an error.
"""

import pickle

import pytest

from repro.instrument import cache as icache
from repro.instrument.cache import cache_key, instrument_cached
from repro.instrument.pipeline import (
    InstrumentationOptions,
    instrument_program,
)
from repro.ir.parser import parse_program
from repro.ir.printer import program_to_text

PROGRAM_TEXT = """
program p(n) {
  array A[n];
  array B[n];
  for i = 0 .. n - 1 { S0: B[i] = A[i] + 1; }
  for i = 0 .. n - 1 { S1: A[i] = B[i] * 2; }
}
"""

OPT = InstrumentationOptions(index_set_splitting=True, hoist_inspectors=True)


@pytest.fixture(autouse=True)
def clean_cache(monkeypatch):
    monkeypatch.delenv(icache.ENV_CACHE_DIR, raising=False)
    icache.set_cache_dir(None)
    icache.clear_cache()
    yield
    icache.set_cache_dir(None)
    icache.clear_cache()
    icache.set_cache_limit(128)


@pytest.fixture
def program():
    return parse_program(PROGRAM_TEXT)


class TestMemoryLayer:
    def test_hit_identical_to_fresh(self, program):
        fresh_program, fresh_report = instrument_program(program, OPT)
        first = instrument_cached(program, OPT)
        second = instrument_cached(program, OPT)
        assert second[0] is first[0]  # shared frozen instance
        assert program_to_text(first[0]) == program_to_text(fresh_program)
        assert set(first[1].plans) == set(fresh_report.plans)
        stats = icache.cache_stats()
        assert stats["hits"] == 1 and stats["misses"] == 1

    def test_distinct_options_distinct_keys(self, program):
        plain = InstrumentationOptions()
        assert cache_key(program, OPT) != cache_key(program, plain)
        instrument_cached(program, OPT)
        instrument_cached(program, plain)
        # Same program, different options: two independent entries even
        # when the instrumented output happens to coincide.
        stats = icache.cache_stats()
        assert stats["misses"] == 2 and stats["size"] == 2

    def test_distinct_programs_distinct_keys(self, program):
        other = parse_program(PROGRAM_TEXT.replace("+ 1", "+ 2"))
        assert cache_key(program, OPT) != cache_key(other, OPT)

    def test_default_options_key_matches_explicit(self, program):
        assert cache_key(program) == cache_key(
            program, InstrumentationOptions()
        )

    def test_lru_eviction(self, program):
        icache.set_cache_limit(1)
        instrument_cached(program, OPT)
        instrument_cached(program, InstrumentationOptions())
        stats = icache.cache_stats()
        assert stats["size"] == 1
        assert stats["evictions"] == 1


class TestDiskLayer:
    def test_roundtrip(self, program, tmp_path):
        icache.set_cache_dir(tmp_path)
        first = instrument_cached(program, OPT)
        icache.clear_cache()  # drop memory, keep disk
        second = instrument_cached(program, OPT)
        stats = icache.cache_stats()
        assert stats["disk_hits"] == 1 and stats["misses"] == 0
        assert program_to_text(second[0]) == program_to_text(first[0])
        assert set(second[1].plans) == set(first[1].plans)

    def test_corrupted_entry_recomputed(self, program, tmp_path):
        icache.set_cache_dir(tmp_path)
        first = instrument_cached(program, OPT)
        path = tmp_path / f"{cache_key(program, OPT)}.pkl"
        path.write_bytes(b"not a pickle")
        icache.clear_cache()
        second = instrument_cached(program, OPT)
        assert icache.cache_stats()["misses"] == 1  # recomputed
        assert program_to_text(second[0]) == program_to_text(first[0])
        # The recompute rewrote a valid entry.
        icache.clear_cache()
        instrument_cached(program, OPT)
        assert icache.cache_stats()["disk_hits"] == 1

    def test_wrong_payload_type_rejected(self, program, tmp_path):
        icache.set_cache_dir(tmp_path)
        path = tmp_path / f"{cache_key(program, OPT)}.pkl"
        path.write_bytes(pickle.dumps({"not": "an entry"}))
        instrument_cached(program, OPT)
        assert icache.cache_stats()["misses"] == 1

    def test_env_var_enables_disk(self, program, tmp_path, monkeypatch):
        monkeypatch.setenv(icache.ENV_CACHE_DIR, str(tmp_path))
        assert icache.cache_dir() == tmp_path
        instrument_cached(program, OPT)
        assert (tmp_path / f"{cache_key(program, OPT)}.pkl").exists()

    def test_unwritable_dir_degrades_to_memory(self, program, tmp_path):
        target = tmp_path / "sub"
        target.mkdir()
        target.chmod(0o500)  # read/execute only
        icache.set_cache_dir(target)
        try:
            first = instrument_cached(program, OPT)
            second = instrument_cached(program, OPT)
            assert second[0] is first[0]
        finally:
            target.chmod(0o700)
