"""Per-array checksum localization tests."""

import numpy as np
import pytest

from repro.instrument.localize import corrupted_groups
from repro.instrument.pipeline import (
    InstrumentationOptions,
    instrument_program,
)
from repro.programs import ALL_BENCHMARKS
from repro.runtime.faults import ScheduledBitFlip
from repro.runtime.interpreter import run_program

from tests.conftest import copy_values

LOCALIZED = InstrumentationOptions(index_set_splitting=True, localize=True)


class TestBalance:
    @pytest.mark.parametrize("name", ["cholesky", "trisolv", "cg", "moldyn"])
    def test_fault_free_balance(self, name):
        module = ALL_BENCHMARKS[name]
        params = module.SMALL_PARAMS
        values = module.initial_values(params)
        instrumented, _ = instrument_program(module.program(), LOCALIZED)
        result = run_program(
            instrumented, params, initial_values=copy_values(values)
        )
        assert not result.mismatches

    def test_per_group_pairs_in_verifier(self):
        from repro.ir.nodes import ChecksumAssert, walk_statements

        module = ALL_BENCHMARKS["trisolv"]
        instrumented, _ = instrument_program(module.program(), LOCALIZED)
        (assertion,) = [
            s
            for s in walk_statements(instrumented.body)
            if isinstance(s, ChecksumAssert)
        ]
        names = {pair[0] for pair in assertion.pairs}
        assert "def@L" in names and "def@x" in names and "def@b" in names


class TestLocalization:
    def test_mismatch_names_the_corrupted_array(self):
        module = ALL_BENCHMARKS["trisolv"]
        params = module.SMALL_PARAMS
        values = module.initial_values(params)
        instrumented, _ = instrument_program(module.program(), LOCALIZED)
        # Corrupt L mid-run: only L's group may trip.
        injector = ScheduledBitFlip("L", (3, 1), [21, 40], at_load=180)
        result = run_program(
            instrumented,
            params,
            initial_values=copy_values(values),
            injector=injector,
        )
        assert injector.fired
        assert result.error_detected
        groups = corrupted_groups(result.mismatches)
        assert groups == {"L"}

    def test_localizes_vector_corruption(self):
        module = ALL_BENCHMARKS["trisolv"]
        params = module.SMALL_PARAMS
        values = module.initial_values(params)
        instrumented, _ = instrument_program(module.program(), LOCALIZED)
        clean = run_program(
            instrumented, params, initial_values=copy_values(values)
        )
        # Find an injection into x that is detected, then check blame.
        for at_load in range(160, clean.memory.load_count, 7):
            injector = ScheduledBitFlip("x", (2,), [33], at_load=at_load)
            result = run_program(
                instrumented,
                params,
                initial_values=copy_values(values),
                injector=injector,
            )
            if result.error_detected:
                assert corrupted_groups(result.mismatches) == {"x"}
                return
        pytest.fail("no detectable x corruption found")

    def test_same_contribution_count_as_global(self):
        """Localization re-routes contributions; it does not add any."""
        module = ALL_BENCHMARKS["cholesky"]
        params = module.SMALL_PARAMS
        values = module.initial_values(params)
        global_version, _ = instrument_program(
            module.program(), InstrumentationOptions(index_set_splitting=True)
        )
        localized, _ = instrument_program(module.program(), LOCALIZED)
        r_global = run_program(
            global_version, params, initial_values=copy_values(values)
        )
        r_local = run_program(
            localized, params, initial_values=copy_values(values)
        )
        assert (
            r_local.counts.checksum_ops == r_global.counts.checksum_ops
        )
