"""Array protection-plan classification tests."""

from repro.instrument.classify import PlanKind, classify_arrays
from repro.ir.parser import parse_program
from repro.poly.model import extract_model
from repro.programs import ALL_BENCHMARKS


def classify(source: str):
    program = parse_program(source)
    model = extract_model(program)
    return classify_arrays(program, model)


class TestBenchmarkPlans:
    def test_affine_benchmarks_fully_static(self):
        from repro.programs import AFFINE_BENCHMARKS

        for name in AFFINE_BENCHMARKS:
            program = ALL_BENCHMARKS[name].program()
            result = classify_arrays(program, extract_model(program))
            for plan in result.plans.values():
                assert plan.kind == PlanKind.STATIC, f"{name}:{plan.name}"

    def test_cg_plans(self):
        program = ALL_BENCHMARKS["cg"].program()
        result = classify_arrays(program, extract_model(program))
        assert result.kind("val") == PlanKind.ITER_READONLY
        assert result.kind("colidx") == PlanKind.ITER_READONLY
        assert result.kind("p") == PlanKind.ITER_WRITTEN
        assert result.kind("q") == PlanKind.ITER_WRITTEN
        assert result.kind("s") == PlanKind.DYNAMIC
        assert result.kind("t") == PlanKind.DYNAMIC

    def test_moldyn_positions_dynamic(self):
        """The paper: moldyn's inspector cannot be hoisted because the
        neighbor list is rebuilt in the loop — x falls back to counters."""
        program = ALL_BENCHMARKS["moldyn"].program()
        result = classify_arrays(program, extract_model(program))
        assert result.kind("x") == PlanKind.DYNAMIC
        assert "modified in loop" in result.plan("x").reason
        assert result.kind("nbr") == PlanKind.ITER_WRITTEN
        assert result.kind("f") == PlanKind.ITER_WRITTEN


class TestEdgeCases:
    def test_data_dependent_guard_forces_dynamic(self):
        result = classify(
            """
            program p(n) {
              array x[n];
              array out[n];
              scalar temp;
              S0: temp = 1;
              if (x[0] > 0) { S1: out[0] = temp; }
            }
            """
        )
        assert result.kind("temp") == PlanKind.DYNAMIC
        assert result.kind("out") == PlanKind.DYNAMIC

    def test_irregular_outside_while_is_dynamic(self):
        result = classify(
            """
            program p(n) {
              array A[n];
              array idx[n] : i64;
              scalar s;
              for i = 0 .. n - 1 { S1: s = s + A[idx[i]]; }
            }
            """
        )
        assert result.kind("A") == PlanKind.DYNAMIC
        assert result.kind("idx") == PlanKind.STATIC

    def test_two_while_loops_force_dynamic(self):
        result = classify(
            """
            program p(n) {
              array A[n];
              scalar t : i64;
              while (t < n) { S1: t = t + 1; }
              while (t > 0) {
                S2: t = t - 1;
                for i = 0 .. n - 1 { S3: A[i] = 1.0; }
              }
            }
            """
        )
        assert result.kind("A") == PlanKind.DYNAMIC

    def test_mixed_inside_outside_access_dynamic(self):
        result = classify(
            """
            program p(n) {
              array A[n];
              scalar t : i64;
              for i = 0 .. n - 1 { S0: A[i] = 1.0; }
              while (t < n) {
                for i2 = 0 .. n - 1 { S1: A[i2] = A[i2] + 1.0; }
                S2: t = t + 1;
              }
            }
            """
        )
        assert result.kind("A") == PlanKind.DYNAMIC

    def test_never_accessed_is_static(self):
        result = classify("program p(n) { array A[n]; }")
        assert result.kind("A") == PlanKind.STATIC

    def test_non_affine_domain_forces_dynamic(self):
        result = classify(
            """
            program p(n) {
              array A[n];
              array ptr[n] : i64;
              scalar s;
              for i = 0 .. n - 2 {
                for k = ptr[i] .. ptr[i + 1] - 1 { S1: s = s + A[k]; }
              }
            }
            """
        )
        assert result.kind("A") == PlanKind.DYNAMIC
        assert result.kind("s") == PlanKind.DYNAMIC

    def test_iterative_disabled_all_dynamic(self):
        program = ALL_BENCHMARKS["cg"].program()
        result = classify_arrays(
            program, extract_model(program), enable_iterative=False
        )
        for name in ("val", "colidx", "p", "q"):
            assert result.kind(name) == PlanKind.DYNAMIC
