"""Duplication-baseline tests."""

import numpy as np
import pytest

from repro.instrument.duplication import duplicate_program
from repro.ir.parser import parse_program
from repro.programs import ALL_BENCHMARKS
from repro.runtime.faults import ScheduledBitFlip
from repro.runtime.interpreter import run_program

from tests.conftest import copy_values


class TestTransparency:
    @pytest.mark.parametrize("name", ["cholesky", "trisolv", "cg", "moldyn"])
    def test_fault_free_balance_and_results(self, name):
        module = ALL_BENCHMARKS[name]
        params = module.SMALL_PARAMS
        values = module.initial_values(params)
        duplicated = duplicate_program(module.program())
        plain = run_program(
            module.program(), params, initial_values=copy_values(values)
        )
        result = run_program(
            duplicated, params, initial_values=copy_values(values)
        )
        assert not result.mismatches
        for decl in module.program().arrays:
            np.testing.assert_allclose(
                result.memory.to_array(decl.name),
                plain.memory.to_array(decl.name),
            )
            # The shadow equals the primary after a clean run.
            np.testing.assert_allclose(
                result.memory.to_array("__dup_" + decl.name),
                plain.memory.to_array(decl.name),
            )


class TestCost:
    def test_memory_footprint_doubles(self):
        module = ALL_BENCHMARKS["cholesky"]
        duplicated = duplicate_program(module.program())
        assert len(duplicated.arrays) == 2 * len(module.program().arrays)

    def test_bandwidth_roughly_doubles(self):
        """The paper's complaint: duplication doubles memory traffic."""
        module = ALL_BENCHMARKS["trisolv"]
        params = module.SMALL_PARAMS
        values = module.initial_values(params)
        plain = run_program(
            module.program(), params, initial_values=copy_values(values)
        )
        duplicated = duplicate_program(module.program())
        result = run_program(
            duplicated, params, initial_values=copy_values(values)
        )
        assert result.counts.stores >= 2 * plain.counts.stores
        assert result.counts.loads >= 2 * plain.counts.loads


class TestDetection:
    def test_corrupted_primary_detected(self):
        p = parse_program(
            """
            program p(n) {
              array A[n];
              scalar acc;
              for i = 0 .. n - 1 { S1: acc = acc + A[i]; }
            }
            """
        )
        duplicated = duplicate_program(p)
        values = {"A": np.arange(1.0, 5.0)}
        clean = run_program(
            duplicated, {"n": 4}, initial_values=copy_values(values)
        )
        assert not clean.mismatches
        # Corrupt the primary copy mid-run: the duplicate disagrees.
        injector = ScheduledBitFlip("A", (2,), [11], at_load=clean.memory.load_count // 2)
        faulty = run_program(
            duplicated,
            {"n": 4},
            initial_values=copy_values(values),
            injector=injector,
        )
        assert injector.fired
        assert faulty.error_detected

    def test_corrupted_duplicate_also_detected(self):
        """Symmetric coverage: a flip in the shadow copy unbalances the
        comparison stream just the same."""
        p = parse_program(
            """
            program p(n) {
              array A[n];
              scalar acc;
              for i = 0 .. n - 1 { S1: acc = acc + A[i]; }
            }
            """
        )
        duplicated = duplicate_program(p)
        values = {"A": np.arange(1.0, 7.0)}
        injector = ScheduledBitFlip("__dup_A", (3,), [5], at_load=8)
        faulty = run_program(
            duplicated,
            {"n": 6},
            initial_values=copy_values(values),
            injector=injector,
        )
        assert injector.fired
        assert faulty.error_detected

    def test_printer_shows_duplicated_store(self):
        from repro.ir.printer import program_to_text

        p = parse_program(
            "program p(n) { array A[n]; for i = 0 .. n - 1 { S1: A[i] = 1.0; } }"
        )
        text = program_to_text(duplicate_program(p))
        assert "__dup_A[i] = A[i];  // duplicated store" in text

    def test_codegen_equivalence(self):
        from repro.codegen.python_gen import compile_to_python

        module = ALL_BENCHMARKS["trisolv"]
        params = module.SMALL_PARAMS
        values = module.initial_values(params)
        duplicated = duplicate_program(module.program())
        compiled = compile_to_python(duplicated)
        arrays = {}
        from repro.ir.analysis import to_affine

        for decl in duplicated.arrays:
            dtype = np.float64 if decl.elem_type == "f64" else np.int64
            if decl.name in values:
                arrays[decl.name] = np.array(values[decl.name], dtype=dtype)
            else:
                shape = tuple(
                    int(to_affine(d, set(params)).evaluate(params))
                    for d in decl.dims
                )
                arrays[decl.name] = np.zeros(shape, dtype=dtype)
        outcome = compiled(params, arrays)
        assert not outcome["mismatch"]
        interpreted = run_program(
            duplicated, params, initial_values=copy_values(values)
        )
        np.testing.assert_allclose(
            arrays["x"], interpreted.memory.to_array("x")
        )
