"""End-to-end instrumentation tests: balance, equivalence, structure.

The two key correctness properties of the whole compiler (Theorem 5.1):

* **No false positives** — fault-free runs of every benchmark, under
  every instrumentation configuration, end with matching checksums.
* **Transparency** — instrumentation never changes the computation's
  results.
"""

import numpy as np
import pytest

from repro.instrument.pipeline import (
    InstrumentationOptions,
    instrument_program,
)
from repro.ir.nodes import ChecksumAssert, walk_statements
from repro.ir.parser import parse_program
from repro.programs import ALL_BENCHMARKS
from repro.runtime.interpreter import run_program

from tests.conftest import copy_values

CONFIGS = {
    "resilient": InstrumentationOptions(
        index_set_splitting=False, hoist_inspectors=False
    ),
    "optimized": InstrumentationOptions(
        index_set_splitting=True, hoist_inspectors=True
    ),
    "split_only": InstrumentationOptions(
        index_set_splitting=True, hoist_inspectors=False
    ),
    "hoist_only": InstrumentationOptions(
        index_set_splitting=False, hoist_inspectors=True
    ),
}


@pytest.mark.parametrize("name", sorted(ALL_BENCHMARKS))
@pytest.mark.parametrize("config", sorted(CONFIGS))
def test_fault_free_balance_and_transparency(name, config):
    module = ALL_BENCHMARKS[name]
    program = module.program()
    params = module.SMALL_PARAMS
    values = module.initial_values(params)
    instrumented, _ = instrument_program(program, CONFIGS[config])
    plain = run_program(program, params, initial_values=copy_values(values))
    resilient = run_program(
        instrumented, params, initial_values=copy_values(values)
    )
    assert not resilient.mismatches, f"{name}/{config}: false positive"
    for decl in program.arrays:
        np.testing.assert_allclose(
            resilient.memory.to_array(decl.name),
            plain.memory.to_array(decl.name),
            rtol=1e-12,
            err_msg=f"{name}/{config}/{decl.name}",
        )


@pytest.mark.parametrize("name", sorted(ALL_BENCHMARKS))
@pytest.mark.parametrize("config", sorted(CONFIGS))
def test_instrumented_builds_lint_clean(name, config):
    """Every instrumentation configuration of every benchmark passes
    the static well-formedness checks (``repro lint``)."""
    from repro.analysis.lint import lint_program

    module = ALL_BENCHMARKS[name]
    instrumented, _ = instrument_program(module.program(), CONFIGS[config])
    issues = lint_program(instrumented, module.SMALL_PARAMS)
    errors = [i for i in issues if i.severity == "error"]
    assert not errors, f"{name}/{config}: " + "; ".join(map(str, errors))


@pytest.mark.parametrize("name", sorted(ALL_BENCHMARKS))
def test_multi_channel_balance(name):
    """Two-checksum runs (Section 6.1) also balance fault-free."""
    module = ALL_BENCHMARKS[name]
    instrumented, _ = instrument_program(module.program())
    result = run_program(
        instrumented,
        module.SMALL_PARAMS,
        initial_values=module.initial_values(module.SMALL_PARAMS),
        channels=2,
    )
    assert not result.mismatches


class TestStructure:
    def test_verifier_present(self, paper_example):
        instrumented, _ = instrument_program(paper_example)
        asserts = [
            s
            for s in walk_statements(instrumented.body)
            if isinstance(s, ChecksumAssert)
        ]
        assert len(asserts) == 1

    def test_verifier_optional(self, paper_example):
        instrumented, _ = instrument_program(
            paper_example, InstrumentationOptions(verify=False)
        )
        asserts = [
            s
            for s in walk_statements(instrumented.body)
            if isinstance(s, ChecksumAssert)
        ]
        assert not asserts

    def test_report_static_counts(self, paper_example):
        _, report = instrument_program(paper_example)
        assert "S1" in report.static_counts

    def test_program_renamed(self, paper_example):
        instrumented, _ = instrument_program(paper_example)
        assert instrumented.name.endswith("__resilient")

    def test_shadow_declarations_for_dynamic(self):
        p = parse_program(
            """
            program p(n) {
              array x[n];
              array out[n];
              scalar temp;
              S0: temp = 1;
              if (x[0] > 0) { S1: out[0] = temp; }
            }
            """
        )
        instrumented, report = instrument_program(p)
        assert instrumented.has_scalar("__uc_temp")
        assert instrumented.has_array("__uc_out")
        # STATIC x needs no shadow
        assert not instrumented.has_array("__uc_x")

    def test_cg_inspector_array_declared(self):
        instrumented, _ = instrument_program(ALL_BENCHMARKS["cg"].program())
        assert instrumented.has_array("__cnt_p")
        assert instrumented.has_scalar("__iter")


class TestZeroTripAndDegenerate:
    @pytest.mark.parametrize(
        "name,params",
        [
            ("cholesky", {"n": 1}),
            ("cholesky", {"n": 2}),
            ("trisolv", {"n": 1}),
            ("jacobi1d", {"n": 3, "tsteps": 1}),
            ("jacobi1d", {"n": 4, "tsteps": 0}),
            ("cg", {"n": 2, "m": 1, "tsteps": 0}),
            ("cg", {"n": 2, "m": 1, "tsteps": 1}),
            ("moldyn", {"n": 2, "tsteps": 0}),
            ("seidel", {"n": 3, "tsteps": 1}),
            ("dsyrk", {"n": 1}),
            ("strsm", {"n": 1, "m": 1}),
        ],
    )
    def test_boundary_sizes_balance(self, name, params):
        module = ALL_BENCHMARKS[name]
        values = module.initial_values(params)
        for config in ("resilient", "optimized"):
            instrumented, _ = instrument_program(
                module.program(), CONFIGS[config]
            )
            result = run_program(
                instrumented, params, initial_values=copy_values(values)
            )
            assert not result.mismatches, f"{name}{params}/{config}"


class TestScalarPrograms:
    def test_figure1_temp_example(self):
        """The paper's opening example: temp defined once, used twice."""
        p = parse_program(
            """
            program fig1() {
              scalar temp;
              scalar sum1;
              scalar sum2;
              S0: temp = 10 + 20;
              S1: sum1 = temp + 30;
              S2: sum2 = temp + 40;
            }
            """
        )
        instrumented, report = instrument_program(p)
        assert report.static_counts.get("S0") == "2"
        result = run_program(instrumented, {})
        assert not result.mismatches
        assert result.memory.load("sum1", ()) == 60.0
        assert result.memory.load("sum2", ()) == 70.0
