"""Epoch-verification tests: balance, latency, overhead trade-off."""

import numpy as np
import pytest

from repro.instrument.epochs import EpochError, instrument_with_epochs
from repro.instrument.pipeline import (
    InstrumentationOptions,
    instrument_program,
)
from repro.ir.parser import parse_program
from repro.programs import ALL_BENCHMARKS
from repro.runtime.faults import ScheduledBitFlip
from repro.runtime.interpreter import run_program

from tests.conftest import copy_values

EPOCH_BENCHMARKS = ["jacobi1d", "seidel", "adi"]


class TestBalance:
    @pytest.mark.parametrize("name", EPOCH_BENCHMARKS)
    def test_fault_free_balance(self, name):
        module = ALL_BENCHMARKS[name]
        params = module.SMALL_PARAMS
        values = module.initial_values(params)
        epoch_version, _ = instrument_with_epochs(module.program())
        result = run_program(
            epoch_version, params, initial_values=copy_values(values)
        )
        assert not result.mismatches, name

    @pytest.mark.parametrize("name", EPOCH_BENCHMARKS)
    def test_transparency(self, name):
        module = ALL_BENCHMARKS[name]
        params = module.SMALL_PARAMS
        values = module.initial_values(params)
        plain = run_program(
            module.program(), params, initial_values=copy_values(values)
        )
        epoch_version, _ = instrument_with_epochs(module.program())
        result = run_program(
            epoch_version, params, initial_values=copy_values(values)
        )
        for decl in module.program().arrays:
            np.testing.assert_allclose(
                result.memory.to_array(decl.name),
                plain.memory.to_array(decl.name),
                rtol=1e-12,
            )

    def test_requires_single_outer_loop(self):
        with pytest.raises(EpochError):
            instrument_with_epochs(ALL_BENCHMARKS["cg"].program())
        with pytest.raises(EpochError):
            instrument_with_epochs(
                parse_program("program p() { scalar a; a = 1; }")
            )

    def test_dynamic_counters_reset_between_epochs(self):
        """A guarded (dynamic-counter) access inside the time loop must
        not leak stale counts into the next epoch."""
        p = parse_program(
            """
            program p(n, tsteps) {
              array flags[n];
              array A[n];
              scalar acc;
              for t = 0 .. tsteps - 1 {
                for i = 0 .. n - 1 {
                  if (flags[i] > 0.0) {
                    S1: acc = acc + A[i];
                  }
                  S2: A[i] = A[i] * 0.5 + 1.0;
                }
              }
            }
            """
        )
        epoch_version, report = instrument_with_epochs(p)
        rng = np.random.default_rng(1)
        values = {
            "flags": rng.choice([-1.0, 1.0], size=6),
            "A": rng.standard_normal(6),
        }
        result = run_program(
            epoch_version,
            {"n": 6, "tsteps": 4},
            initial_values=copy_values(values),
        )
        assert not result.mismatches


class TestLatency:
    def test_epochs_detect_earlier_than_termination(self):
        module = ALL_BENCHMARKS["jacobi1d"]
        params = {"n": 24, "tsteps": 8}
        values = module.initial_values(params)
        end_only, _ = instrument_program(
            module.program(), InstrumentationOptions(index_set_splitting=True)
        )
        epoch_version, _ = instrument_with_epochs(
            module.program(),
            InstrumentationOptions(index_set_splitting=True),
        )
        # Inject early; both must detect, epochs much sooner.
        improved = 0
        compared = 0
        for at_load in (60, 90, 120):
            inj1 = ScheduledBitFlip("A", (7,), [11, 43], at_load=at_load)
            late = run_program(
                end_only,
                params,
                initial_values=copy_values(values),
                injector=inj1,
            )
            inj2 = ScheduledBitFlip("A", (7,), [11, 43], at_load=at_load)
            early = run_program(
                epoch_version,
                params,
                initial_values=copy_values(values),
                injector=inj2,
                halt_on_mismatch=True,
            )
            if not (late.error_detected and early.error_detected):
                continue
            compared += 1
            latency_late = late.first_detection_step
            latency_early = early.first_detection_step
            if latency_early < latency_late:
                improved += 1
        assert compared > 0
        assert improved == compared, "epochs must shorten detection latency"

    def test_halt_on_mismatch_stops_execution(self):
        module = ALL_BENCHMARKS["jacobi1d"]
        params = {"n": 24, "tsteps": 8}
        values = module.initial_values(params)
        epoch_version, _ = instrument_with_epochs(module.program())
        injector = ScheduledBitFlip("A", (7,), [11], at_load=60)
        halted = run_program(
            epoch_version,
            params,
            initial_values=copy_values(values),
            injector=injector,
            halt_on_mismatch=True,
        )
        full = run_program(
            epoch_version,
            params,
            initial_values=copy_values(values),
            injector=ScheduledBitFlip("A", (7,), [11], at_load=60),
        )
        if halted.error_detected:
            assert halted.statements_executed < full.statements_executed


class TestOverheadTradeoff:
    def test_epochs_cost_more_than_end_only(self):
        """The latency gain is paid for with per-epoch prologue work."""
        from repro.runtime.costmodel import CostModel

        module = ALL_BENCHMARKS["jacobi1d"]
        params = module.SMALL_PARAMS
        values = module.initial_values(params)
        plain = run_program(
            module.program(), params, initial_values=copy_values(values)
        )
        end_only, _ = instrument_program(module.program())
        epoch_version, _ = instrument_with_epochs(module.program())
        r_end = run_program(
            end_only, params, initial_values=copy_values(values)
        )
        r_epoch = run_program(
            epoch_version, params, initial_values=copy_values(values)
        )
        cost = CostModel()
        assert cost.overhead(plain.counts, r_epoch.counts) > cost.overhead(
            plain.counts, r_end.counts
        )
