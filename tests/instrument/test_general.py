"""General (dynamic-count) scheme tests — Algorithm 3 and Section 4.1."""

import numpy as np
import pytest

from repro.instrument.pipeline import instrument_program
from repro.ir.parser import parse_program
from repro.ir.printer import program_to_text
from repro.runtime.interpreter import run_program

from tests.conftest import copy_values

FIGURE7 = """
program figure7(n) {
  array x[n];
  array z[n];
  array out[n];
  scalar temp;
  S0: temp = 10 + 20;
  if (x[1] > 0) {
    S1: out[0] = temp + 1;
  }
  if (z[2] > 0) {
    S2: out[1] = temp + 2;
  }
}
"""


class TestFigure7:
    @pytest.mark.parametrize(
        "x_sign,z_sign", [(1, 1), (1, -1), (-1, 1), (-1, -1)]
    )
    def test_balance_all_branch_combinations(self, x_sign, z_sign):
        """temp used 0, 1 or 2 times depending on the data — the
        dynamic counters always balance."""
        program = parse_program(FIGURE7)
        instrumented, _ = instrument_program(program)
        n = 4
        values = {
            "x": np.full(n, float(x_sign)),
            "z": np.full(n, float(z_sign)),
        }
        result = run_program(instrumented, {"n": n}, initial_values=values)
        assert not result.mismatches, (x_sign, z_sign)

    def test_figure7b_structure(self):
        """The generated text shows Figure 7(b)'s scheme: auxiliary
        checksums at the def site, counter increments at use sites, and
        the epilogue adjustment."""
        program = parse_program(FIGURE7)
        instrumented, _ = instrument_program(program)
        text = program_to_text(instrumented)
        assert "add_to_chksm(e_def_cs, temp, 1);" in text
        assert "inc_use_count(__uc_temp);" in text
        assert "add_to_chksm(def_cs, temp, __uc_temp - 1);" in text
        assert "add_to_chksm(e_use_cs, temp, 1);" in text

    def test_redefinition_resets_counter(self):
        """A second definition adjusts for the first (Algorithm 3,
        lines 13-16) whatever the first's dynamic use count was."""
        p = parse_program(
            """
            program p(n) {
              array x[n];
              array out[n];
              scalar temp;
              S0: temp = 1;
              if (x[0] > 0) { S1: out[0] = temp; }
              S2: temp = 2;
              if (x[1] > 0) { S3: out[1] = temp; }
              if (x[2] > 0) { S4: out[2] = temp; }
            }
            """
        )
        instrumented, _ = instrument_program(p)
        for pattern in ([1, 1, 1], [0, 1, 0], [1, 0, 1], [0, 0, 0]):
            values = {"x": np.array(pattern, dtype=float)}
            result = run_program(
                instrumented, {"n": 3}, initial_values=copy_values(values)
            )
            assert not result.mismatches, pattern

    def test_zero_use_definition(self):
        """n = 0 uses: def checksum gets v * (0 - 1) in the epilogue
        (Theorem 5.1, case 2a)."""
        p = parse_program(
            """
            program p(n) {
              array x[n];
              array out[n];
              scalar temp;
              S0: temp = 7;
              if (x[0] > 0) { S1: out[0] = temp; }
            }
            """
        )
        instrumented, _ = instrument_program(p)
        result = run_program(
            instrumented,
            {"n": 2},
            initial_values={"x": np.array([-1.0, -1.0])},
        )
        assert not result.mismatches


class TestDynamicArrays:
    def test_indirect_writes(self):
        """Irregular *stores* (scatter) under dynamic counters."""
        p = parse_program(
            """
            program p(n) {
              array A[n];
              array idx[n] : i64;
              for i = 0 .. n - 1 {
                S1: A[idx[i]] = A[idx[i]] + 1.0;
              }
            }
            """
        )
        instrumented, report = instrument_program(p)
        from repro.instrument.classify import PlanKind

        assert report.plans["A"].kind == PlanKind.DYNAMIC
        for idx in ([0, 1, 2, 3], [0, 0, 0, 0], [3, 1, 3, 1]):
            values = {
                "A": np.arange(4, dtype=float),
                "idx": np.array(idx, dtype=np.int64),
            }
            result = run_program(
                instrumented, {"n": 4}, initial_values=copy_values(values)
            )
            assert not result.mismatches, idx

    def test_gather_scatter_combination(self):
        p = parse_program(
            """
            program p(n) {
              array src[n];
              array dst[n];
              array perm[n] : i64;
              for i = 0 .. n - 1 {
                S1: dst[perm[i]] = src[perm[i]] * 2.0;
              }
            }
            """
        )
        instrumented, _ = instrument_program(p)
        rng = np.random.default_rng(0)
        values = {
            "src": rng.standard_normal(5),
            "dst": np.zeros(5),
            "perm": rng.permutation(5).astype(np.int64),
        }
        result = run_program(
            instrumented, {"n": 5}, initial_values=copy_values(values)
        )
        assert not result.mismatches
        expected = np.zeros(5)
        expected[values["perm"]] = values["src"][values["perm"]] * 2.0
        np.testing.assert_allclose(result.memory.to_array("dst"), expected)
