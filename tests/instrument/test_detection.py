"""Fault-detection tests — the system's core claim.

A transient error in a value between its definition and any of its
uses must be flagged by the checksum verifier.  Deterministic tests
pin faults next to known reads; statistical campaigns measure the
detection rate over random injections (faults into *dead* values are
invisible to any def/use scheme and are excluded from the must-detect
set).
"""

import random

import numpy as np
import pytest

from repro.instrument.pipeline import (
    InstrumentationOptions,
    instrument_program,
)
from repro.ir.parser import parse_program
from repro.programs import ALL_BENCHMARKS
from repro.runtime.faults import RandomCellFlipper, ScheduledBitFlip
from repro.runtime.interpreter import run_program

from tests.conftest import copy_values


class TestDeterministicDetection:
    def test_corrupt_live_divisor(self, paper_example):
        """A[0][0] is read n-1 times after its definition; corrupting it
        while live must be caught."""
        instrumented, _ = instrument_program(paper_example)
        n = 6
        from tests.conftest import spd_matrix

        values = {"A": spd_matrix(n)}
        # Fault-free run to measure the load budget.
        clean = run_program(
            instrumented, {"n": n}, initial_values=copy_values(values)
        )
        assert not clean.mismatches
        # A[0][0] is defined at the very first bundle; its n-1 uses
        # follow. Inject right after the definition.
        injector = ScheduledBitFlip("A", (0, 0), [17, 44], at_load=2)
        faulty = run_program(
            instrumented,
            {"n": n},
            initial_values=copy_values(values),
            injector=injector,
        )
        assert injector.fired
        assert faulty.error_detected

    def test_single_bit_flip_detected(self, paper_example):
        instrumented, _ = instrument_program(paper_example)
        from tests.conftest import spd_matrix

        n = 5
        injector = ScheduledBitFlip("A", (0, 0), [3], at_load=2)
        result = run_program(
            instrumented,
            {"n": n},
            initial_values={"A": spd_matrix(n)},
            injector=injector,
        )
        assert result.error_detected

    def test_dead_value_not_detectable(self, paper_example):
        """A value never read again cannot be (and is not) flagged —
        def/use checksums protect consumed data, exactly as designed."""
        instrumented, _ = instrument_program(paper_example)
        from tests.conftest import spd_matrix

        n = 5
        values = {"A": spd_matrix(n)}
        clean = run_program(
            instrumented, {"n": n}, initial_values=copy_values(values)
        )
        total_loads = clean.memory.load_count
        # Corrupt A[n-1][0] at the very end: column 0 is complete and
        # never re-read (dead), so the checksums still balance.
        injector = ScheduledBitFlip(
            "A", (n - 1, 0), [9], at_load=total_loads
        )
        faulty = run_program(
            instrumented,
            {"n": n},
            initial_values=copy_values(values),
            injector=injector,
        )
        assert injector.fired
        assert not faulty.error_detected

    def test_detection_in_dynamic_scheme(self):
        p = parse_program(
            """
            program p(n) {
              array x[n];
              array out[n];
              scalar temp;
              S0: temp = 42;
              if (x[0] > 0) { S1: out[0] = temp + 1; }
              if (x[1] > 0) { S2: out[1] = temp + 2; }
            }
            """
        )
        instrumented, _ = instrument_program(p)
        values = {"x": np.ones(4)}
        # temp is read by S1 then S2; corrupt it between those reads.
        # Loads: prologue out (4) + temp (1) + x[0] + temp(S1) ...
        clean = run_program(
            instrumented, {"n": 4}, initial_values=copy_values(values)
        )
        assert not clean.mismatches
        detected_any = False
        for at_load in range(1, clean.memory.load_count + 1):
            injector = ScheduledBitFlip("temp", (), [13, 50], at_load=at_load)
            result = run_program(
                instrumented,
                {"n": 4},
                initial_values=copy_values(values),
                injector=injector,
            )
            if result.error_detected:
                detected_any = True
        assert detected_any

    def test_persistent_error_caught_by_auxiliary_checksums(self):
        """Section 4.1's scenario: with two dynamic uses, a persistent
        corruption after the first use fools def/use alone; the
        e_def/e_use pair catches it."""
        p = parse_program(
            """
            program p(n) {
              array x[n];
              array out[n];
              scalar temp;
              S0: temp = 42;
              if (x[0] > 0) { S1: out[0] = temp + 1; }
              if (x[1] > 0) { S2: out[1] = temp + 2; }
            }
            """
        )
        instrumented, _ = instrument_program(p)
        values = {"x": np.ones(2)}
        detected_by_aux_only = False
        clean = run_program(
            instrumented, {"n": 2}, initial_values=copy_values(values)
        )
        for at_load in range(1, clean.memory.load_count + 1):
            injector = ScheduledBitFlip("temp", (), [7], at_load=at_load)
            result = run_program(
                instrumented,
                {"n": 2},
                initial_values=copy_values(values),
                injector=injector,
            )
            if not injector.fired:
                continue
            kinds = {(m.left, m.right) for m in result.mismatches}
            if ("e_def", "e_use") in kinds and ("def", "use") not in kinds:
                detected_by_aux_only = True
        assert detected_by_aux_only


class TestStatisticalCampaigns:
    @pytest.mark.parametrize("name", ["cholesky", "trisolv", "cg", "moldyn"])
    def test_no_silent_propagation(self, name):
        """The paper's guarantee, stated operationally: a fault that
        escapes the verifier must not have *propagated* — apart from
        the injected cell itself, the final memory image equals the
        fault-free one.  (Faults into dead cells, or before a value's
        definition window, are undetectable by any def/use scheme and
        harmless by the same token.)"""
        module = ALL_BENCHMARKS[name]
        program = module.program()
        params = module.SMALL_PARAMS
        values = module.initial_values(params)
        instrumented, _ = instrument_program(
            program,
            InstrumentationOptions(index_set_splitting=True),
        )
        from repro.runtime.faults import FaultInjector

        class AccessRecorder(FaultInjector):
            """First load-event index at which each cell is touched."""

            def __init__(self):
                self.first_access: dict = {}

            def before_load(self, memory, array, indices, word):
                self.first_access.setdefault(
                    (array, tuple(indices)), memory.load_count
                )
                return None

            def after_store(self, memory, array, indices, word):
                self.first_access.setdefault(
                    (array, tuple(indices)), memory.load_count
                )
                return None

        recorder = AccessRecorder()
        clean = run_program(
            instrumented,
            params,
            initial_values=copy_values(values),
            injector=recorder,
        )
        assert not clean.mismatches
        total_loads = clean.memory.load_count
        target_arrays = [d.name for d in program.arrays]
        clean_words = clean.memory.snapshot()
        detected = 0
        trials = 40
        for seed in range(trials):
            rng = random.Random(seed)
            injector = RandomCellFlipper(
                num_bits=2,
                expected_loads=max(1, total_loads // 2),
                rng=rng,
                target_arrays=target_arrays,
            )
            result = run_program(
                instrumented,
                params,
                initial_values=copy_values(values),
                injector=injector,
                wild_reads=True,
            )
            record = injector.record
            assert record is not None
            if result.error_detected:
                detected += 1
                continue
            # Pre-window faults (before the cell's very first access,
            # i.e. before its def-checksum contribution) are
            # indistinguishable from changed input — out of scope for
            # any def/use scheme.
            first = recorder.first_access.get(
                (record.array, record.indices)
            )
            if first is None or record.at_load <= first + 1:
                continue
            # In-window and undetected: nothing but the injected cell
            # may differ from the fault-free final state.
            faulty_words = result.memory.snapshot()
            for array in target_arrays:
                shape = result.memory.shape(array)
                for offset, (a, b) in enumerate(
                    zip(clean_words[array], faulty_words[array])
                ):
                    if a == b:
                        continue
                    cell = []
                    rest = offset
                    for extent in reversed(shape):
                        cell.append(rest % extent)
                        rest //= extent
                    cell = tuple(reversed(cell))
                    assert array == record.array and cell == record.indices, (
                        f"{name} seed {seed}: silent corruption of "
                        f"{array}{cell} escaped (injected "
                        f"{record.array}{record.indices} at load "
                        f"{record.at_load}, first access {first})"
                    )
        # Non-vacuity: a healthy share of injections must land in live
        # data and be caught.
        assert detected >= trials // 4, f"{name}: only {detected}/{trials}"

    def test_no_false_positives_across_seeds(self):
        """Different inputs never trigger the verifier without a fault."""
        module = ALL_BENCHMARKS["cholesky"]
        instrumented, _ = instrument_program(module.program())
        for seed in range(10):
            values = module.initial_values(module.SMALL_PARAMS, seed=seed)
            result = run_program(
                instrumented,
                module.SMALL_PARAMS,
                initial_values=values,
            )
            assert not result.mismatches, f"seed {seed}"

    def test_two_checksums_catch_aligned_cancellation(self):
        """A crafted double flip that cancels in channel 0 is caught by
        the rotated channel (Section 6.1)."""
        p = parse_program(
            """
            program p(n) {
              array A[n];
              scalar acc;
              for rep = 0 .. 1 {
                for i = 0 .. n - 1 {
                  S1: acc = acc + A[i];
                }
              }
            }
            """
        )
        instrumented, _ = instrument_program(p)
        values = {"A": np.array([1.0, 2.0, 3.0, 4.0])}

        class AlignedCancel(ScheduledBitFlip):
            """Flip the same bit with opposite polarity in two cells."""

            def before_load(self, memory, name, indices, word):
                if not self.fired and memory.load_count >= self.at_load:
                    self.fired = True
                    w0 = memory.peek_bits("A", (0,))
                    w1 = memory.peek_bits("A", (1,))
                    bit = 1 << 52
                    # Force opposite polarity at bit 52.
                    memory.poke_bits("A", (0,), w0 | bit)
                    memory.poke_bits("A", (1,), w1 & ~bit)
                return None

        # Choose initial values whose bit-52 states are opposite so the
        # "corruption" is a genuine double flip that cancels in the sum.
        import struct

        w0 = struct.unpack("<Q", struct.pack("<d", 1.0))[0]
        w1 = w0 | (1 << 52)
        values = {
            "A": np.array(
                [
                    struct.unpack("<d", struct.pack("<Q", w0))[0],
                    struct.unpack("<d", struct.pack("<Q", w1))[0],
                    3.0,
                    4.0,
                ]
            )
        }

        # Prologue loads A[0..3] and acc (5 loads); the first rep's four
        # bundles load (acc, A[i]) each (8 loads). Injecting at load 14
        # corrupts the array exactly between the two reps.
        injector = AlignedCancel("A", (0,), [52], at_load=14)
        one = run_program(
            instrumented,
            {"n": 4},
            initial_values=copy_values(values),
            injector=injector,
            channels=1,
        )
        injector2 = AlignedCancel("A", (0,), [52], at_load=14)
        two = run_program(
            instrumented,
            {"n": 4},
            initial_values=copy_values(values),
            injector=injector2,
            channels=2,
        )
        # The crafted flips set w0's bit and clear w1's: +2^52 - 2^52 = 0
        # in the plain sum...
        if not one.error_detected:
            # ... and then the rotated channel must catch it.
            assert two.error_detected
