"""Rendering tests: symbolic values -> IR expressions."""

from fractions import Fraction

import pytest
from hypothesis import given, strategies as st

from repro.instrument.render import (
    RenderError,
    constraint_to_condition,
    gist_constraints,
    linexpr_to_ir,
    piecewise_constant_value,
    piecewise_to_ir,
    polynomial_to_ir,
)
from repro.isl.basic_set import BasicSet, parse_constraints
from repro.isl.constraints import Constraint
from repro.isl.linear import LinExpr
from repro.isl.piecewise import PiecewisePolynomial
from repro.isl.polynomial import Polynomial
from repro.isl.space import Space
from repro.runtime.interpreter import Interpreter
from repro.ir.nodes import Program

NAMES = ["n", "j", "k"]


def evaluate_ir(expr, env):
    """Evaluate an IR expression with a bare interpreter."""
    program = Program(name="t", params=tuple(env), arrays=(), scalars=(), body=())
    interp = Interpreter(program, env)
    return interp._eval(expr, None)


@st.composite
def lin_exprs(draw):
    coeffs = draw(
        st.dictionaries(
            st.sampled_from(NAMES), st.integers(-5, 5), max_size=3
        )
    )
    return LinExpr(coeffs, draw(st.integers(-8, 8)))


ENV = st.fixed_dictionaries({n: st.integers(-6, 6) for n in NAMES})


class TestLinExpr:
    @given(lin_exprs(), ENV)
    def test_roundtrip_evaluation(self, e, env):
        rendered = linexpr_to_ir(e)
        assert evaluate_ir(rendered, env) == e.evaluate(env)

    def test_fractional_rejected(self):
        with pytest.raises(RenderError):
            linexpr_to_ir(LinExpr({"j": Fraction(1, 2)}))

    def test_constant(self):
        from repro.ir.nodes import Const

        assert linexpr_to_ir(LinExpr.constant(-3)) == Const(-3)


class TestPolynomial:
    @given(ENV, st.integers(-4, 4), st.integers(-4, 4), st.integers(0, 2))
    def test_roundtrip_evaluation(self, env, a, b, e1):
        poly = (
            a * Polynomial.var("n") * Polynomial.var("j") ** e1
            + b * Polynomial.var("k")
            + 7
        )
        rendered = polynomial_to_ir(poly)
        assert evaluate_ir(rendered, env) == poly.evaluate(env)

    def test_fractional_rejected(self):
        with pytest.raises(RenderError):
            polynomial_to_ir(Polynomial.constant(Fraction(1, 2)))


class TestConstraints:
    def test_condition(self):
        c = Constraint.ge(LinExpr.var("j"), LinExpr.constant(2))
        cond = constraint_to_condition(c)
        assert evaluate_ir(cond, {"j": 2, "n": 0, "k": 0}) == 1
        assert evaluate_ir(cond, {"j": 1, "n": 0, "k": 0}) == 0

    def test_gist_drops_implied(self):
        space = Space.set_space((), params=("n", "j"))
        domain = BasicSet(space, parse_constraints("0 <= j <= n - 1"))
        constraints = tuple(
            parse_constraints("j >= 0") + parse_constraints("j <= n - 2")
        )
        kept = gist_constraints(domain, constraints)
        assert len(kept) == 1  # j >= 0 implied by the domain


class TestPiecewise:
    SPACE = Space.set_space((), params=("n", "j", "k"))

    def make(self, pieces):
        return PiecewisePolynomial(
            self.SPACE,
            [
                (BasicSet(self.SPACE, parse_constraints(text)), poly)
                for text, poly in pieces
            ],
        )

    def test_zero(self):
        from repro.ir.nodes import Const

        assert piecewise_to_ir(PiecewisePolynomial.zero(self.SPACE)) == Const(0)

    def test_single_piece_with_context_is_unconditional(self):
        pwp = self.make([("0 <= j <= n - 2", Polynomial.var("n") - Polynomial.var("j") - 1)])
        context = BasicSet(self.SPACE, parse_constraints("0 <= j <= n - 2"))
        rendered = piecewise_to_ir(pwp, context)
        from repro.ir.nodes import Select

        assert not isinstance(rendered, Select)

    def test_multi_piece_renders_select(self):
        pwp = self.make(
            [
                ("0 <= j <= n - 2", Polynomial.var("n")),
                ("j >= n", Polynomial.var("j")),
            ]
        )
        rendered = piecewise_to_ir(pwp)
        for env in [
            {"n": 5, "j": 2, "k": 0},
            {"n": 5, "j": 7, "k": 0},
            {"n": 5, "j": 4, "k": 0},  # in no piece -> 0
        ]:
            assert evaluate_ir(rendered, env) == pwp.evaluate(env)

    def test_piecewise_values_match_everywhere(self):
        pwp = self.make(
            [
                ("j >= 1 and j <= k", Polynomial.var("k") - Polynomial.var("j")),
                ("j >= k + 1", Polynomial.constant(2)),
            ]
        )
        rendered = piecewise_to_ir(pwp)
        for j in range(-2, 6):
            for k in range(-2, 6):
                env = {"n": 0, "j": j, "k": k}
                assert evaluate_ir(rendered, env) == pwp.evaluate(env)

    def test_constant_detection(self):
        pwp = self.make([("j >= 0", Polynomial.constant(3))])
        assert piecewise_constant_value(pwp) == 3
        pwp2 = self.make([("j >= 0", Polynomial.var("j"))])
        assert piecewise_constant_value(pwp2) is None
        assert piecewise_constant_value(PiecewisePolynomial.zero(self.SPACE)) == 0
