"""Property-based tests for the checksum operator algebra.

The def/use scheme is sound only because of algebraic facts the unit
tests so far spot-checked: modulo addition is commutative and
associative (contributions may interleave in any order), the rotation
hardening is a bijection per word (it cannot *create* collisions), and
on a fault-free run the def and use checksums of any affine program
balance.  These are exactly the properties hypothesis can attack.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.instrument.operators import (
    MASK64,
    ModularAddChecksum,
    RotatedModularAddChecksum,
    XorChecksum,
    _rotate_left,
)

words = st.integers(min_value=0, max_value=MASK64)
word_lists = st.lists(words, min_size=0, max_size=40)
rotations = st.integers(min_value=0, max_value=63)
addresses = st.integers(min_value=0, max_value=2**32).map(lambda a: a & ~0x7)

modadd = ModularAddChecksum()
rotadd = RotatedModularAddChecksum()
xor = XorChecksum()


class TestModularAddAlgebra:
    @given(word_lists, st.randoms(use_true_random=False))
    def test_commutative_under_permutation(self, values, rng):
        shuffled = list(values)
        rng.shuffle(shuffled)
        assert modadd.compute(shuffled) == modadd.compute(values)

    @given(word_lists, word_lists)
    def test_associative_composition(self, left, right):
        """Checksum of a concatenation = modular sum of the parts'
        checksums — the property that lets contributions accumulate in
        registers in any grouping."""
        combined = (modadd.compute(left) + modadd.compute(right)) & MASK64
        assert modadd.compute(left + right) == combined

    @given(word_lists, st.integers(min_value=0, max_value=39), words)
    def test_incremental_update_equals_recompute(self, values, index, new):
        """A single-word change moves the checksum by (new - old): the
        incremental update Table 1 relies on."""
        if not values:
            return
        index %= len(values)
        old = values[index]
        changed = list(values)
        changed[index] = new
        delta = (new - old) & MASK64
        assert modadd.compute(changed) == (
            (modadd.compute(values) + delta) & MASK64
        )

    @given(word_lists)
    def test_xor_is_self_inverse(self, values):
        doubled = values + values
        assert xor.compute(doubled) == 0


class TestRotationBijection:
    @given(words, rotations)
    def test_rotate_inverse(self, word, amount):
        """rotl(·, r) composed with rotl(·, 64-r) is the identity —
        rotation is a bijection on 64-bit words, so the hardened
        checksum never merges two distinct words."""
        back = _rotate_left(_rotate_left(word, amount), (64 - amount) % 64)
        assert back == word

    @given(words, rotations)
    def test_rotate_preserves_popcount(self, word, amount):
        assert bin(_rotate_left(word, amount)).count("1") == bin(word).count(
            "1"
        )

    @given(words, words, rotations)
    def test_rotate_injective(self, a, b, amount):
        if a != b:
            assert _rotate_left(a, amount) != _rotate_left(b, amount)

    @given(word_lists, word_lists, addresses)
    def test_rotadd_composition_with_addresses(self, left, right, base):
        """The rotated checksum composes like the plain one when the
        second block's base address accounts for the first block."""
        combined = (
            rotadd.compute(left, base)
            + rotadd.compute(right, base + 8 * len(left))
        ) & MASK64
        assert rotadd.compute(left + right, base) == combined


class TestFaultFreeBalance:
    """Def/use checksums balance on fault-free runs of random affine
    programs — the soundness half of the paper's scheme, fuzzed."""

    @settings(max_examples=6, deadline=None)
    @given(st.integers(min_value=0, max_value=10**6))
    def test_generated_program_balances(self, seed):
        from repro.instrument.pipeline import (
            InstrumentationOptions,
            instrument_program,
        )
        from repro.ir.generate import MIN_PARAM, random_affine_program
        from repro.runtime.interpreter import run_program

        program = random_affine_program(seed)
        instrumented, _ = instrument_program(
            program, InstrumentationOptions(index_set_splitting=seed % 2 == 0)
        )
        rng = np.random.default_rng(seed)
        values = {
            decl.name: rng.uniform(-1.0, 1.0, size=(MIN_PARAM + 2,) * len(decl.dims))
            for decl in program.arrays
        }
        result = run_program(
            instrumented, {"n": MIN_PARAM + 2}, initial_values=values
        )
        assert not result.mismatches

    def test_seeded_loop_balances_with_two_channels(self):
        """The rotated second channel must balance too (seeded loop
        rather than hypothesis: each case is an interpreter run)."""
        from repro.instrument.pipeline import (
            InstrumentationOptions,
            instrument_program,
        )
        from repro.ir.generate import MIN_PARAM, random_affine_program
        from repro.runtime.interpreter import run_program

        for seed in (1, 2, 3):
            program = random_affine_program(seed)
            instrumented, _ = instrument_program(
                program, InstrumentationOptions()
            )
            rng = np.random.default_rng(seed + 100)
            values = {
                decl.name: rng.uniform(
                    -1.0, 1.0, size=(MIN_PARAM + 2,) * len(decl.dims)
                )
                for decl in program.arrays
            }
            result = run_program(
                instrumented,
                {"n": MIN_PARAM + 2},
                initial_values=values,
                channels=2,
            )
            assert not result.mismatches
