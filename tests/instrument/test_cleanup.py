"""Cleanup pass tests: dead weight removal is semantics-preserving."""

import numpy as np

from repro.instrument.cleanup import cleanup_program
from repro.ir.nodes import (
    Assign,
    BinOp,
    Call,
    ChecksumAdd,
    Const,
    Loop,
    Program,
    VarRef,
)
from repro.ir.parser import parse_expression, parse_program
from repro.runtime.interpreter import run_program


def clean_expr(text: str):
    from repro.instrument.cleanup import _clean_expr

    return _clean_expr(parse_expression(text))


class TestExpressionCleanup:
    def test_affine_normalization(self):
        assert clean_expr("i - 1 + 1") == VarRef("i")
        assert clean_expr("0 + j") == VarRef("j")

    def test_minmax_dedup(self):
        assert clean_expr("min(a, min(a, b))") == clean_expr("min(a, b)")
        assert clean_expr("max(a, a)") == VarRef("a")

    def test_minmax_dominated_args_dropped(self):
        # max(i, i + 1) is always i + 1.
        result = clean_expr("max(i, i + 1)")
        assert result == clean_expr("i + 1")
        result = clean_expr("min(i, i + 1)")
        assert result == VarRef("i")

    def test_non_affine_untouched(self):
        e = clean_expr("A[i] * A[j]")
        assert isinstance(e, BinOp)

    def test_minmax_symbolic_kept(self):
        # min(n - 1, j) cannot be resolved statically.
        result = clean_expr("min(n - 1, j)")
        assert isinstance(result, Call)


class TestStatementCleanup:
    def test_zero_count_checksum_dropped(self):
        p = Program(
            name="p",
            params=(),
            arrays=(),
            scalars=(),
            body=(
                ChecksumAdd(checksum="def", value=Const(1.0), count=Const(0)),
            ),
        )
        assert cleanup_program(p).body == ()

    def test_empty_loop_dropped(self):
        inner = ChecksumAdd(checksum="def", value=Const(1.0), count=Const(0))
        p = Program(
            name="p",
            params=("n",),
            arrays=(),
            scalars=(),
            body=(
                Loop(var="i", lower=Const(0), upper=Const(5), body=(inner,)),
            ),
        )
        assert cleanup_program(p).body == ()

    def test_statically_empty_range_dropped(self):
        p = parse_program(
            """
            program p(n) {
              array A[n];
              for i = max(0, 2) .. min(n - 1, 0) {
                S1: A[i] = 1.0;
              }
            }
            """
        )
        assert cleanup_program(p).body == ()

    def test_nonempty_range_kept(self):
        p = parse_program(
            """
            program p(n) {
              array A[n];
              for i = max(0, 2) .. min(n - 1, 7) {
                S1: A[i] = 1.0;
              }
            }
            """
        )
        assert len(cleanup_program(p).body) == 1

    def test_semantics_preserved_on_benchmarks(self):
        from repro.instrument.pipeline import instrument_program
        from repro.programs import ALL_BENCHMARKS

        for name in ("cholesky", "jacobi1d"):
            module = ALL_BENCHMARKS[name]
            params = module.SMALL_PARAMS
            values = module.initial_values(params)
            instrumented, _ = instrument_program(module.program())
            cleaned = cleanup_program(instrumented)
            r1 = run_program(
                instrumented,
                params,
                initial_values={k: v.copy() for k, v in values.items()},
            )
            r2 = run_program(
                cleaned,
                params,
                initial_values={k: v.copy() for k, v in values.items()},
            )
            for decl in module.program().arrays:
                np.testing.assert_array_equal(
                    r1.memory.to_array(decl.name),
                    r2.memory.to_array(decl.name),
                )
            for which in ("def", "use", "e_def", "e_use"):
                assert r1.checksums.get(which) == r2.checksums.get(which)
