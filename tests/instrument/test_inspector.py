"""Inspector and iterative-scheme tests (paper Section 4.2, Figures 8/9)."""

import numpy as np
import pytest

from repro.instrument.pipeline import (
    InstrumentationOptions,
    instrument_program,
)
from repro.ir.nodes import CounterIncrement, Loop, WhileLoop, walk_statements
from repro.ir.parser import parse_program
from repro.ir.printer import program_to_text
from repro.programs import ALL_BENCHMARKS
from repro.runtime.interpreter import run_program

from tests.conftest import copy_values

FIGURE8 = """
program figure8(n, tsteps) {
  array p_new[n];
  array cols[n] : i64;
  scalar temp1;
  scalar temp2;
  scalar temp3;
  scalar t : i64;
  S0: t = 0;
  while (t < tsteps) {
    for j1 = 0 .. n - 1 {
      S1: temp1 = temp1 + p_new[cols[j1]];
    }
    for j2 = 0 .. n - 1 {
      S2: temp2 = temp2 + p_new[j2];
    }
    for j3 = 0 .. n - 1 {
      S3: p_new[j3] = temp3;
    }
    S4: t = t + 1;
  }
}
"""


def figure8_values(n: int, seed: int = 0) -> dict:
    rng = np.random.default_rng(seed)
    return {
        "p_new": rng.standard_normal(n),
        "cols": rng.integers(0, n, size=n, dtype=np.int64),
        "temp3": 5.0,
    }


class TestFigure9Structure:
    def test_inspector_hoisted_before_while(self):
        program = parse_program(FIGURE8)
        instrumented, report = instrument_program(program)
        assert report.inspectors_hoisted
        # The first statements are the inspector loop counting
        # count_p_new[cols[j1]] — before the while loop.
        before_while = []
        for stmt in instrumented.body:
            if isinstance(stmt, WhileLoop):
                break
            before_while.append(stmt)
        increments = [
            s
            for stmt in before_while
            for s in walk_statements([stmt])
            if isinstance(s, CounterIncrement)
        ]
        assert increments, "no hoisted inspector found"
        assert "__cnt_p_new" in str(increments[0].counter)

    def test_figure9_def_count_shape(self):
        program = parse_program(FIGURE8)
        instrumented, _ = instrument_program(program)
        text = program_to_text(instrumented)
        # S3's def contribution: count_p_new[j3] + 1 (paper Figure 9).
        assert "add_to_chksm(def_cs, p_new[j3], 1 + __cnt_p_new[j3]);" in text
        # cols epilogue: iter - 1 times plus the auxiliary balance.
        assert "add_to_chksm(def_cs, cols[__x0], __iter - 1);" in text
        assert "add_to_chksm(e_use_cs, cols[__x0], 1);" in text
        # p_new epilogue: the last iteration's definitions go unused.
        assert "add_to_chksm(use_cs, p_new[__x0], 1 + __cnt_p_new[__x0]);" in text

    def test_unhoisted_inspector_runs_inside_loop(self):
        program = parse_program(FIGURE8)
        instrumented, report = instrument_program(
            program, InstrumentationOptions(hoist_inspectors=False)
        )
        assert not report.inspectors_hoisted
        whiles = [
            s
            for s in walk_statements(instrumented.body)
            if isinstance(s, WhileLoop)
        ]
        (loop,) = whiles
        inner_increments = [
            s
            for s in walk_statements(loop.body)
            if isinstance(s, CounterIncrement)
            and "__cnt" in str(s.counter)
        ]
        assert inner_increments


class TestIterativeCorrectness:
    @pytest.mark.parametrize("tsteps", [0, 1, 2, 5])
    @pytest.mark.parametrize("hoist", [True, False])
    def test_balance_across_trip_counts(self, tsteps, hoist):
        program = parse_program(FIGURE8)
        instrumented, _ = instrument_program(
            program, InstrumentationOptions(hoist_inspectors=hoist)
        )
        n = 7
        result = run_program(
            instrumented,
            {"n": n, "tsteps": tsteps},
            initial_values=figure8_values(n),
        )
        assert not result.mismatches, f"tsteps={tsteps} hoist={hoist}"

    def test_duplicate_indirect_targets(self):
        """cols mapping many j to the same cell: counts accumulate."""
        program = parse_program(FIGURE8)
        instrumented, _ = instrument_program(program)
        n = 6
        values = figure8_values(n)
        values["cols"] = np.zeros(n, dtype=np.int64)  # all hit cell 0
        result = run_program(
            instrumented, {"n": n, "tsteps": 3}, initial_values=values
        )
        assert not result.mismatches

    def test_hoisting_reduces_work(self):
        program = parse_program(FIGURE8)
        hoisted, _ = instrument_program(
            program, InstrumentationOptions(hoist_inspectors=True)
        )
        unhoisted, _ = instrument_program(
            program, InstrumentationOptions(hoist_inspectors=False)
        )
        n, tsteps = 10, 6
        r_hoisted = run_program(
            hoisted,
            {"n": n, "tsteps": tsteps},
            initial_values=figure8_values(n),
        )
        r_unhoisted = run_program(
            unhoisted,
            {"n": n, "tsteps": tsteps},
            initial_values=figure8_values(n),
        )
        assert (
            r_hoisted.counts.counter_ops < r_unhoisted.counts.counter_ops
        )
        assert r_hoisted.counts.total_ops() < r_unhoisted.counts.total_ops()


class TestMixedReadPositions:
    @pytest.mark.parametrize("tsteps", [0, 1, 2, 5])
    def test_reads_before_and_after_write_balance(self, tsteps):
        """ITER_WRITTEN with r_b > 0 AND r_a > 0: reads straddle the
        write (S1 before, S2's own operand, S3 after) — the prologue
        credits r_b, the def site r_b + r_a, the epilogue consumes the
        final values' r_b."""
        program = parse_program(
            """
            program mixed(n, tsteps) {
              array A[n];
              scalar acc1;
              scalar acc2;
              scalar t : i64;
              S0: t = 0;
              while (t < tsteps) {
                for i = 0 .. n - 1 { S1: acc1 = acc1 + A[i]; }
                for i2 = 0 .. n - 1 { S2: A[i2] = A[i2] * 0.5 + 1.0; }
                for i3 = 0 .. n - 1 { S3: acc2 = acc2 + A[i3] * 2.0; }
                S4: t = t + 1;
              }
            }
            """
        )
        instrumented, report = instrument_program(program)
        from repro.instrument.classify import PlanKind

        assert report.plans["A"].kind == PlanKind.ITER_WRITTEN
        result = run_program(
            instrumented,
            {"n": 6, "tsteps": tsteps},
            initial_values={"A": np.arange(1.0, 7.0)},
        )
        assert not result.mismatches, tsteps


class TestCgAndMoldyn:
    def test_cg_reads_after_write_balance(self):
        """q is read *after* its write in the same iteration (r_a > 0):
        the prologue/epilogue balance differs from Figure 9's
        reads-before-write case and must still hold."""
        module = ALL_BENCHMARKS["cg"]
        instrumented, report = instrument_program(module.program())
        for tsteps in (0, 1, 4):
            params = dict(module.SMALL_PARAMS)
            params["tsteps"] = tsteps
            result = run_program(
                instrumented,
                params,
                initial_values=module.initial_values(params),
            )
            assert not result.mismatches, f"tsteps={tsteps}"

    def test_moldyn_rebuilt_neighbor_list(self):
        """nbr rebuilt every iteration (ITER_WRITTEN with reads-after-
        write); x on dynamic counters — both must balance."""
        module = ALL_BENCHMARKS["moldyn"]
        instrumented, report = instrument_program(module.program())
        from repro.instrument.classify import PlanKind

        assert report.plans["x"].kind == PlanKind.DYNAMIC
        for tsteps in (0, 1, 3):
            params = dict(module.SMALL_PARAMS)
            params["tsteps"] = tsteps
            result = run_program(
                instrumented,
                params,
                initial_values=module.initial_values(params),
            )
            assert not result.mismatches, f"tsteps={tsteps}"
