"""Cost-model tests."""

import pytest

from repro.runtime.costmodel import CostModel, CostParams, OpCounts


class TestEstimates:
    def test_zero_counts(self):
        assert CostModel().estimate(OpCounts()) == 0.0

    def test_weighted_sum(self):
        params = CostParams(load=2.0, fp_div=10.0, checksum_op=1.0)
        counts = OpCounts(loads=3, fp_divs=2, checksum_ops=5)
        model = CostModel(params)
        assert model.estimate(counts) == 3 * 2.0 + 2 * 10.0 + 5 * 1.0

    def test_hardware_mode_discounts_checksums_only(self):
        params = CostParams(checksum_op=1.5, nop_cost=0.1)
        counts = OpCounts(loads=10, checksum_ops=100)
        model = CostModel(params)
        software = model.estimate(counts)
        hardware = model.estimate(counts, hardware_checksums=True)
        assert software - hardware == pytest.approx(100 * (1.5 - 0.1))

    def test_overhead_normalization(self):
        model = CostModel()
        base = OpCounts(loads=100)
        heavier = OpCounts(loads=150)
        assert model.overhead(base, heavier) == pytest.approx(1.5)

    def test_overhead_rejects_empty_baseline(self):
        with pytest.raises(ValueError):
            CostModel().overhead(OpCounts(), OpCounts(loads=1))


class TestOpCounts:
    def test_total_ops(self):
        counts = OpCounts(loads=1, stores=2, fp_adds=3, checksum_ops=4)
        assert counts.total_ops() == 10

    def test_merged_with(self):
        a = OpCounts(loads=1, branches=5)
        b = OpCounts(loads=2, counter_ops=7)
        merged = a.merged_with(b)
        assert merged.loads == 3
        assert merged.branches == 5
        assert merged.counter_ops == 7
        # inputs untouched
        assert a.loads == 1 and b.loads == 2

    def test_counter_ops_not_double_priced(self):
        """Counter traffic is already in loads/stores; the counter_ops
        field is informational and carries no weight of its own."""
        model = CostModel()
        with_counters = OpCounts(loads=10, stores=10, counter_ops=10)
        without = OpCounts(loads=10, stores=10)
        assert model.estimate(with_counters) == model.estimate(without)
