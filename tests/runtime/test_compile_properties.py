"""Property test: random affine programs round-trip through codegen.

For any program from :func:`repro.ir.generate.random_affine_program`,
the instrumented build must (a) compile without falling back, (b) run
bit-identically on both backends, and (c) keep the fault-free def/use
checksum balance — the invariant the whole detection scheme rests on.
"""

from __future__ import annotations

from functools import lru_cache

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.instrument.pipeline import (
    InstrumentationOptions,
    instrument_program,
)
from repro.ir.generate import MIN_PARAM, random_affine_program
from repro.runtime.compile import compile_program, run_compiled
from repro.runtime.interpreter import run_program

OPTIMIZED = InstrumentationOptions(
    index_set_splitting=True, hoist_inspectors=True
)


@lru_cache(maxsize=None)
def _program_for(seed: int):
    return random_affine_program(seed)


@lru_cache(maxsize=None)
def _instrumented_for(seed: int):
    # Instrumentation (polyhedral counting) dominates example cost, so
    # memoize it per seed and keep the seed space small.
    return instrument_program(_program_for(seed), OPTIMIZED)[0]


@settings(max_examples=8, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=24),
    n=st.integers(min_value=MIN_PARAM, max_value=MIN_PARAM + 2),
)
def test_roundtrip_preserves_balance(seed, n):
    instrumented = _instrumented_for(seed)
    params = {"n": n}

    # (a) the generator's output is always compilable — no fallback.
    kernel = compile_program(instrumented)
    assert kernel.entry is not None

    # (b) backends agree observable-for-observable.
    interp = run_program(instrumented, params, channels=2)
    compiled = run_compiled(
        instrumented, params, channels=2, fallback=False
    )
    assert interp.checksums.sums == compiled.checksums.sums
    assert (
        interp.checksums.contribution_count
        == compiled.checksums.contribution_count
    )
    assert interp.counts == compiled.counts
    assert interp.statements_executed == compiled.statements_executed
    assert interp.memory.snapshot() == compiled.memory.snapshot()

    # (c) fault-free instrumented runs stay balanced on every channel.
    assert not compiled.mismatches
    for sums in compiled.checksums.sums:
        assert sums.get("def", 0) == sums.get("use", 0)
        assert sums.get("e_def", 0) == sums.get("e_use", 0)


@settings(max_examples=6, deadline=None)
@given(seed=st.integers(min_value=0, max_value=24))
def test_uninstrumented_roundtrip(seed):
    """The plain (no-checksum) build also lowers and agrees."""
    program = _program_for(seed)
    params = {"n": MIN_PARAM}
    interp = run_program(program, params)
    compiled = run_compiled(program, params, fallback=False)
    assert interp.memory.snapshot() == compiled.memory.snapshot()
    assert interp.counts == compiled.counts
