"""Interpreter semantics tests: results match numpy references."""

import math

import numpy as np
import pytest

from repro.ir.parser import parse_program
from repro.programs import ALL_BENCHMARKS
from repro.runtime.interpreter import (
    Interpreter,
    InterpreterError,
    StepLimitExceeded,
    run_program,
)

from tests.conftest import copy_values


class TestBenchmarkSemantics:
    @pytest.mark.parametrize(
        "name", ["cholesky", "trisolv", "strsm", "dsyrk", "jacobi1d", "cg", "moldyn", "seidel"]
    )
    def test_matches_reference(self, name):
        module = ALL_BENCHMARKS[name]
        if not hasattr(module, "reference"):
            pytest.skip("no reference")
        params = module.SMALL_PARAMS
        values = module.initial_values(params)
        result = run_program(
            module.program(), params, initial_values=copy_values(values)
        )
        reference = module.reference(params, values)
        for key, expected in reference.items():
            if key.endswith("_lower"):
                array = key[: -len("_lower")]
                actual = np.tril(result.memory.to_array(array))
            elif key in [d.name for d in module.program().arrays]:
                actual = result.memory.to_array(key)
            else:
                continue
            np.testing.assert_allclose(actual, expected, rtol=1e-9, err_msg=key)

    def test_lu_factors_reconstruct(self):
        module = ALL_BENCHMARKS["lu"]
        params = {"n": 6}
        values = module.initial_values(params)
        result = run_program(
            module.program(), params, initial_values=copy_values(values)
        )
        packed = result.memory.to_array("A")
        # The kernel scales row k of U by the pivot, producing
        # A = L * U with L = tril(packed) (pivots on the diagonal) and
        # U unit upper triangular (PLUTO lu.c convention).
        lower = np.tril(packed)
        upper = np.triu(packed, 1) + np.eye(6)
        np.testing.assert_allclose(lower @ upper, values["A"], rtol=1e-8)


class TestControlFlow:
    def test_loop_bounds_inclusive(self):
        p = parse_program(
            """
            program p(n) {
              array A[n];
              for i = 2 .. 4 { S1: A[i] = 1; }
            }
            """
        )
        result = run_program(p, {"n": 6})
        np.testing.assert_array_equal(
            result.memory.to_array("A"), [0, 0, 1, 1, 1, 0]
        )

    def test_empty_loop(self):
        p = parse_program(
            """
            program p(n) {
              array A[n];
              for i = 3 .. 2 { S1: A[i] = 1; }
            }
            """
        )
        result = run_program(p, {"n": 4})
        assert result.memory.to_array("A").sum() == 0

    def test_while_and_if(self):
        p = parse_program(
            """
            program p(n) {
              scalar t : i64;
              scalar acc;
              while (t < n) {
                if (t % 2 == 0) { acc = acc + 1.0; }
                t = t + 1;
              }
            }
            """
        )
        result = run_program(p, {"n": 7})
        assert result.memory.load("acc", ()) == 4.0

    def test_step_limit(self):
        p = parse_program(
            """
            program p(n) {
              scalar t : i64;
              while (t < 1) { S1: t = t * 1; }
            }
            """
        )
        with pytest.raises(StepLimitExceeded):
            run_program(p, {"n": 1}, max_steps=1000)

    def test_select_expression(self):
        p = parse_program(
            """
            program p(n) {
              array A[n];
              for i = 0 .. n - 1 { A[i] = i > 1 ? 5.0 : 2.0; }
            }
            """
        )
        result = run_program(p, {"n": 4})
        np.testing.assert_array_equal(
            result.memory.to_array("A"), [2.0, 2.0, 5.0, 5.0]
        )


class TestArithmetic:
    def test_integer_division_floors(self):
        p = parse_program(
            "program p() { scalar a : i64; a = 7 / 2; }"
        )
        assert run_program(p, {}).memory.load("a", ()) == 3

    def test_float_division(self):
        p = parse_program("program p() { scalar a; a = 7.0 / 2; }")
        assert run_program(p, {}).memory.load("a", ()) == 3.5

    def test_float_division_by_zero_is_ieee(self):
        p = parse_program("program p() { scalar a; a = 1.0 / 0; }")
        assert run_program(p, {}).memory.load("a", ()) == float("inf")
        p2 = parse_program("program p() { scalar a; a = (0 - 1.0) / 0; }")
        assert run_program(p2, {}).memory.load("a", ()) == float("-inf")
        p3 = parse_program("program p() { scalar a; a = 0.0 / 0.0; }")
        assert math.isnan(run_program(p3, {}).memory.load("a", ()))

    def test_integer_division_by_zero_raises(self):
        p = parse_program("program p() { scalar a : i64; a = 1 / 0; }")
        with pytest.raises(InterpreterError):
            run_program(p, {})

    def test_sqrt_negative_is_nan(self):
        p = parse_program("program p() { scalar a; a = sqrt(0 - 1); }")
        assert math.isnan(run_program(p, {}).memory.load("a", ()))

    def test_intrinsics(self):
        p = parse_program(
            """
            program p() {
              scalar a; scalar b; scalar c : i64;
              a = min(3.0, 2.0) + max(1.0, 4.0);
              b = abs(0 - 2.5);
              c = mod(7, 3);
            }
            """
        )
        result = run_program(p, {})
        assert result.memory.load("a", ()) == 6.0
        assert result.memory.load("b", ()) == 2.5
        assert result.memory.load("c", ()) == 1

    def test_unbound_name(self):
        from repro.ir.nodes import Assign, Program, ScalarDecl, VarRef

        p = Program(
            name="p",
            params=(),
            arrays=(),
            scalars=(ScalarDecl("a"),),
            body=(Assign(lhs=VarRef("a"), rhs=VarRef("ghost")),),
        )
        with pytest.raises(InterpreterError, match="unbound"):
            run_program(p, {})


class TestOperationCounts:
    def test_flop_counts_cholesky(self):
        module = ALL_BENCHMARKS["cholesky"]
        n = module.SMALL_PARAMS["n"]
        result = run_program(
            module.program(),
            module.SMALL_PARAMS,
            initial_values=module.initial_values(module.SMALL_PARAMS),
        )
        counts = result.counts
        assert counts.fp_sqrts == n
        assert counts.fp_divs == n * (n - 1) // 2
        # S3 performs one sub and one mul per instance.
        s3_instances = sum(
            (n - 1 - k) * (n - k) // 2 for k in range(n)
        )
        assert counts.fp_muls == s3_instances
        assert counts.fp_adds == s3_instances

    def test_load_store_counts_simple(self):
        p = parse_program(
            """
            program p(n) {
              array A[n];
              for i = 0 .. n - 1 { S1: A[i] = A[i] + 1.0; }
            }
            """
        )
        result = run_program(p, {"n": 5})
        assert result.counts.loads == 5
        assert result.counts.stores == 5

    def test_bundle_load_cache_no_double_count(self):
        """Two syntactic reads of the same cell load once per bundle."""
        p = parse_program(
            """
            program p(n) {
              array A[n];
              scalar a;
              S1: a = A[0] * A[0];
            }
            """
        )
        result = run_program(p, {"n": 2})
        assert result.counts.loads == 1
