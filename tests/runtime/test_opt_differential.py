"""Differential suite for the kernel optimizer (``runtime/opt``).

The optimizer's contract is stricter than "same answer": a kernel
compiled at any ``--opt-level`` must replay the interpreter's exact
observable trace — checksum sums, op counts, memory words, load/store
*event order* (pinned by where a seeded injector strikes), and the
injector's record of the fault site.  These tests sweep
(opt level × fault model × benchmark) cells and compare canonical
trial records element-wise, plus direct ExecutionResult comparisons
fault-free and injected.

Also here: the kernel-LRU aliasing regression (a level-0 and a
level-2 kernel of the same program must never be the same cache
entry) and the instrumentation-cache backend-fingerprint keying.
"""

from __future__ import annotations

import random
from dataclasses import replace
from functools import lru_cache

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.campaign import ProgramCampaignSpec, run_campaign
from repro.instrument.pipeline import (
    InstrumentationOptions,
    instrument_program,
)
from repro.ir.generate import MIN_PARAM, random_affine_program
from repro.programs import ALL_BENCHMARKS
from repro.runtime.compile import (
    clear_kernel_cache,
    compile_program,
    run_compiled,
)
from repro.runtime.faults import FAULT_MODELS, RandomCellFlipper
from repro.runtime.interpreter import run_program
from repro.runtime.opt import OPT_LEVELS, config_for_level

OPTIMIZED = InstrumentationOptions(
    index_set_splitting=True, hoist_inspectors=True
)

# The campaign sweep uses a representative benchmark subset (dense
# triangular, stencil, and the irregular cutoff kernel) — the full
# 10-benchmark × model matrix already runs interp-vs-compiled in
# test_fault_models_differential; here the axis under test is the
# optimizer level.
SWEEP_BENCHMARKS = ("cholesky", "jacobi1d", "moldyn")


def _build(name: str, instrumented: bool = True):
    module = ALL_BENCHMARKS[name]
    program = module.program()
    params = dict(module.SMALL_PARAMS)
    values = module.initial_values(params, seed=7)
    if instrumented:
        program, _ = instrument_program(program, OPTIMIZED)
    return program, params, values


def _copy(values):
    return {
        k: (v.copy() if hasattr(v, "copy") else v) for k, v in values.items()
    }


def assert_identical(interp, compiled, injectors=None):
    """Field-by-field equality of two ExecutionResults."""
    assert interp.checksums.sums == compiled.checksums.sums
    assert (
        interp.checksums.contribution_count
        == compiled.checksums.contribution_count
    )
    assert [str(m) for m in interp.mismatches] == [
        str(m) for m in compiled.mismatches
    ]
    assert interp.counts == compiled.counts
    assert interp.statements_executed == compiled.statements_executed
    assert interp.first_detection_step == compiled.first_detection_step
    assert interp.error_detected == compiled.error_detected
    assert interp.memory.snapshot() == compiled.memory.snapshot()
    assert interp.memory.load_count == compiled.memory.load_count
    assert interp.memory.store_count == compiled.memory.store_count
    assert interp.memory.wild_accesses == compiled.memory.wild_accesses
    if injectors is not None:
        assert repr(injectors[0].record) == repr(injectors[1].record)


@pytest.mark.parametrize("level", OPT_LEVELS)
@pytest.mark.parametrize("name", sorted(ALL_BENCHMARKS))
def test_fault_free_identical_at_level(name, level):
    """Every benchmark, every level: bit-identical to the interpreter."""
    program, params, values = _build(name)
    interp = run_program(
        program, params, initial_values=_copy(values), channels=2
    )
    compiled = run_compiled(
        program,
        params,
        initial_values=_copy(values),
        channels=2,
        fallback=False,
        opt_level=level,
    )
    assert_identical(interp, compiled)
    assert not interp.mismatches


@pytest.mark.parametrize("level", OPT_LEVELS)
@pytest.mark.parametrize("name", SWEEP_BENCHMARKS)
def test_injected_identical_at_level(name, level):
    """Seeded value-flip trials: the injector must strike the same
    load event and the run must unwind identically at every level —
    this pins load/store *order*, not just totals."""
    program, params, values = _build(name)
    baseline = run_program(program, params, initial_values=_copy(values))
    window = max(1, baseline.memory.load_count)
    for seed in (13, 29):
        inj_interp = RandomCellFlipper(2, window, random.Random(seed))
        inj_compiled = RandomCellFlipper(2, window, random.Random(seed))
        interp = run_program(
            program,
            params,
            initial_values=_copy(values),
            injector=inj_interp,
            channels=2,
            wild_reads=True,
            halt_on_mismatch=True,
        )
        compiled = run_compiled(
            program,
            params,
            initial_values=_copy(values),
            injector=inj_compiled,
            channels=2,
            wild_reads=True,
            halt_on_mismatch=True,
            fallback=False,
            opt_level=level,
        )
        assert_identical(interp, compiled, (inj_interp, inj_compiled))


def _canonical_records(spec: ProgramCampaignSpec):
    result = run_campaign(spec, workers=1)
    assert result.records is not None
    return [record.canonical() for record in result.records]


@pytest.mark.parametrize("model", FAULT_MODELS)
@pytest.mark.parametrize("name", SWEEP_BENCHMARKS)
def test_campaign_records_identical_across_levels(name, model):
    """(opt level × fault model × benchmark): canonical trial records
    — verdicts, injector trigger indices, detection steps — must be
    equal across the interpreter and every optimizer level."""
    base = ProgramCampaignSpec(
        benchmark=name,
        scale="small",
        trials=3,
        seed=2000 + FAULT_MODELS.index(model),
        fault_model=model,
        backend="interp",
    )
    reference = _canonical_records(base)
    for level in OPT_LEVELS:
        spec = replace(base, backend="compiled", opt_level=level)
        assert spec.prepare().kernel is not None, (
            f"{name} L{level}: compiled campaign silently fell back "
            f"to the interpreter"
        )
        assert _canonical_records(spec) == reference, (
            f"{name} × {model} diverges at opt level {level}"
        )


class TestKernelCacheKeying:
    """Opt level and batch shape are part of the kernel-LRU key."""

    def test_levels_never_alias(self):
        program, _, _ = _build("trisolv")
        clear_kernel_cache()
        k0 = compile_program(program, opt_level=0)
        k2 = compile_program(program, opt_level=2)
        assert k0 is not k2
        assert k0.source != k2.source
        assert k0.opt_level == 0 and k2.opt_level == 2
        # Repeat lookups hit the per-level entries, never cross-serve.
        assert compile_program(program, opt_level=0) is k0
        assert compile_program(program, opt_level=2) is k2

    def test_batch_shape_in_key(self):
        program, _, _ = _build("trisolv")
        clear_kernel_cache()
        plain = compile_program(program, opt_level=2)
        batched = compile_program(program, opt_level=2, batch_shape=(8,))
        assert plain is not batched
        assert compile_program(program, opt_level=2, batch_shape=(8,)) is (
            batched
        )

    def test_invalid_level_rejected(self):
        program, _, _ = _build("trisolv")
        with pytest.raises(ValueError):
            compile_program(program, opt_level=7)

    def test_level2_has_fast_entry_level0_does_not(self):
        program, _, _ = _build("trisolv")
        clear_kernel_cache()
        k0 = compile_program(program, opt_level=0)
        k2 = compile_program(program, opt_level=2)
        assert k0.fast_entry is None
        assert k2.fast_entry is not None
        assert k2.fast_source != k2.source


class TestInstrumentCacheKeying:
    """The content-addressed instrumentation cache partitions per
    backend fingerprint (optimizer configuration)."""

    def test_fingerprints_partition_keys(self):
        from repro.instrument.cache import cache_key

        program, _, _ = _build("trisolv", instrumented=False)
        fp0 = config_for_level(0).fingerprint()
        fp2 = config_for_level(2).fingerprint()
        assert fp0 != fp2
        keys = {
            cache_key(program, OPTIMIZED, backend_fingerprint=fp)
            for fp in (None, fp0, fp2)
        }
        assert len(keys) == 3
        # Deterministic: the same fingerprint re-addresses the same key.
        assert cache_key(
            program, OPTIMIZED, backend_fingerprint=fp2
        ) == cache_key(program, OPTIMIZED, backend_fingerprint=fp2)


@lru_cache(maxsize=None)
def _random_instrumented(seed: int):
    return instrument_program(random_affine_program(seed), OPTIMIZED)[0]


@settings(max_examples=8, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=24),
    n=st.integers(min_value=MIN_PARAM, max_value=MIN_PARAM + 2),
    level=st.sampled_from(OPT_LEVELS),
)
def test_random_programs_roundtrip_op_counts(seed, n, level):
    """Property: for any generated affine program, optimized codegen
    round-trips the interpreter's op counts, checksums, and memory
    image at every level."""
    instrumented = _random_instrumented(seed)
    params = {"n": n}
    interp = run_program(instrumented, params, channels=2)
    compiled = run_compiled(
        instrumented, params, channels=2, fallback=False, opt_level=level
    )
    assert interp.counts == compiled.counts
    assert interp.checksums.sums == compiled.checksums.sums
    assert (
        interp.checksums.contribution_count
        == compiled.checksums.contribution_count
    )
    assert interp.statements_executed == compiled.statements_executed
    assert interp.memory.snapshot() == compiled.memory.snapshot()
    assert interp.memory.load_count == compiled.memory.load_count
    assert interp.memory.store_count == compiled.memory.store_count
    assert not compiled.mismatches
