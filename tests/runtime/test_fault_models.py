"""Unit tests for the new fault-model injectors.

The differential suite (test_fault_models_differential.py) pins
cross-backend equality end to end; these tests pin the *semantics* of
each injector in isolation against a hand-built :class:`Memory`:
redirect targets, window arithmetic, burst extents, record shapes,
masked cells, and the zero-probability/no-target contract shared with
``RandomCellFlipper``.
"""

from __future__ import annotations

import random

import pytest

from repro.runtime.faults import (
    AddressGenerationFault,
    BurstCorruption,
    InjectionRecord,
    IntermittentStuckBit,
    MultiInjector,
    ScheduledBitFlip,
)
from repro.runtime.memory import Memory


def make_memory(size: int = 8, wild_reads: bool = True) -> Memory:
    mem = Memory(wild_reads=wild_reads)
    mem.declare("A", (size,))
    for i in range(size):
        mem.store("A", (i,), float(i + 1))
    mem.load_count = 0
    mem.store_count = 0
    return mem


class TestAddressGenerationFault:
    def test_load_redirect_reads_wrong_cell(self):
        mem = make_memory()
        inj = AddressGenerationFault("load", 1, random.Random(0))
        mem.injector = inj
        value = mem.load("A", (2,))
        record = inj.record
        assert record is not None
        assert record.kind == "addrgen_load"
        assert record.indices == (2,)
        assert record.actual != (2,)
        # The read came from the actual cell; nothing at rest changed.
        if record.actual[0] < 8:
            assert value == float(record.actual[0] + 1)
        assert [mem.peek("A", (i,)) for i in range(8)] == [
            float(i + 1) for i in range(8)
        ]

    def test_load_redirect_masks_nothing(self):
        inj = AddressGenerationFault("load", 1, random.Random(0))
        mem = make_memory()
        mem.injector = inj
        mem.load("A", (2,))
        assert inj.record.cells == ()
        assert inj.record.masked_cells() == ()

    def test_store_redirect_leaves_intended_stale(self):
        for seed in range(40):
            mem = make_memory()
            inj = AddressGenerationFault("store", 1, random.Random(seed))
            mem.injector = inj
            mem.store("A", (3,), 99.0)
            record = inj.record
            assert record is not None
            assert record.kind == "addrgen_store"
            if record.actual[0] < 8:
                # In-bounds redirect: intended stale, actual clobbered,
                # both masked.
                assert mem.peek("A", (3,)) == 4.0
                assert mem.peek("A", record.actual) == 99.0
                assert set(record.masked_cells()) == {(3,), record.actual}
                return
        pytest.fail("no seed in range produced an in-bounds redirect")

    def test_store_redirect_out_of_bounds_drops_store(self):
        for seed in range(60):
            mem = make_memory(size=8)
            inj = AddressGenerationFault("store", 1, random.Random(seed))
            mem.injector = inj
            before = mem.snapshot()
            mem.store("A", (7,), 99.0)
            record = inj.record
            if record.actual[0] >= 8:
                # Wild store: memory image completely untouched, only
                # the intended (stale) cell is masked.
                assert mem.snapshot() == before
                assert mem.wild_accesses == 1
                assert record.masked_cells() == ((7,),)
                return
        pytest.fail("no seed in range produced an out-of-bounds redirect")

    def test_fires_exactly_once(self):
        mem = make_memory()
        inj = AddressGenerationFault("load", 1, random.Random(1))
        mem.injector = inj
        for _ in range(4):
            for i in range(8):
                mem.load("A", (i,))
        assert inj.injected
        # One redirected read cannot corrupt anything at rest, and the
        # injector must not keep redirecting later loads.
        assert inj.record.at_load <= 8
        assert [mem.peek("A", (i,)) for i in range(8)] == [
            float(i + 1) for i in range(8)
        ]

    def test_store_mode_ignores_loads(self):
        mem = make_memory()
        inj = AddressGenerationFault("store", 1, random.Random(2))
        mem.injector = inj
        for i in range(8):
            mem.load("A", (i,))
        assert not inj.injected
        mem.store("A", (0,), 5.0)
        assert inj.injected

    def test_scalars_not_redirected(self):
        mem = make_memory()
        mem.declare("s", ())
        mem.store("s", (), 1.5)
        mem.load_count = 0
        inj = AddressGenerationFault(
            "load", 1, random.Random(0), target_arrays=["s"]
        )
        mem.injector = inj
        assert mem.load("s", ()) == 1.5
        assert not inj.injected

    def test_empty_target_tuple_rng_untouched(self):
        rng, pristine = random.Random(9), random.Random(9)
        inj = AddressGenerationFault("load", 10, rng, target_arrays=())
        assert inj.no_targets
        assert rng.getstate() == pristine.getstate()
        mem = make_memory()
        mem.injector = inj
        mem.load("A", (0,))
        assert not inj.injected
        assert rng.getstate() == pristine.getstate()

    def test_rejects_bad_mode(self):
        with pytest.raises(ValueError, match="mode"):
            AddressGenerationFault("branch", 1, random.Random(0))


class TestIntermittentStuckBit:
    def _stuck(self, mem, **kwargs):
        kwargs.setdefault("rng", random.Random(kwargs.pop("seed", 0)))
        inj = IntermittentStuckBit(**kwargs)
        mem.injector = inj
        return inj

    def test_window_bounds(self):
        mem = make_memory()
        inj = self._stuck(
            mem, expected_loads=4, window=5, seed=3, stuck_to=1
        )
        for _ in range(3):
            for i in range(8):
                mem.load("A", (i,))
        record = inj.record
        assert record is not None
        assert record.kind == "stuck_bit"
        arm, end = record.window
        assert arm == inj.start or arm >= inj.start
        assert end == arm + 4  # window=5 covers loads [arm, arm+4]
        assert record.stuck_to == 1
        assert record.cells == (record.indices,)

    def test_forces_bit_on_every_access_in_window(self):
        mem = make_memory()
        inj = self._stuck(
            mem, expected_loads=1, window=100, seed=1, stuck_to=1
        )
        mem.load("A", (0,))  # arms the defect
        cell = inj.record.indices
        bit = inj.record.bits[0]
        # Overwrite the cell: the stuck bit must reassert on the store.
        mem.store("A", cell, 0.0)
        assert mem.peek_bits("A", cell) == (1 << bit)
        # And on a load even if someone poked clean words underneath.
        mem.poke_bits("A", cell, 0)
        assert mem.load_bits("A", cell) == (1 << bit)

    def test_heals_after_window(self):
        mem = make_memory()
        inj = self._stuck(
            mem, expected_loads=1, window=2, seed=5, stuck_to=1
        )
        mem.load("A", (0,))  # arm (load 1); window covers loads 1-2
        cell = inj.record.indices
        mem.load("A", (0,))  # load 2: last active load
        mem.load("A", (0,))  # load 3: healed
        mem.store("A", cell, 0.0)
        assert mem.peek_bits("A", cell) == 0
        assert mem.load("A", cell) == 0.0

    def test_recorrupts_after_external_restore(self):
        """The scenario recovery rollback hits: restoring clean words
        does not cure an active defect."""
        mem = make_memory()
        inj = self._stuck(
            mem, expected_loads=1, window=10_000, seed=2, stuck_to=1
        )
        mem.load("A", (0,))
        cell = inj.record.indices
        clean = mem.copy_region_words("A")
        mem.restore_region_words("A", [0] * 8)
        assert mem.load_bits("A", cell) == (1 << inj.record.bits[0])
        mem.restore_region_words("A", clean)

    def test_stuck_at_zero(self):
        mem = make_memory()
        inj = self._stuck(
            mem, expected_loads=1, window=100, seed=4, stuck_to=0
        )
        mem.load("A", (0,))
        cell = inj.record.indices
        bit = inj.record.bits[0]
        mem.store_bits("A", cell, (1 << bit) | 0b1)
        assert mem.peek_bits("A", cell) & (1 << bit) == 0

    def test_empty_target_tuple_rng_untouched(self):
        rng, pristine = random.Random(6), random.Random(6)
        inj = IntermittentStuckBit(10, 4, rng, target_arrays=())
        assert inj.no_targets
        mem = make_memory()
        mem.injector = inj
        mem.load("A", (0,))
        assert not inj.injected
        assert rng.getstate() == pristine.getstate()

    def test_validates_window(self):
        with pytest.raises(ValueError, match="window"):
            IntermittentStuckBit(1, 0, random.Random(0))
        with pytest.raises(ValueError, match="stuck_to"):
            IntermittentStuckBit(1, 1, random.Random(0), stuck_to=2)


class TestBurstCorruption:
    def test_strikes_consecutive_cells(self):
        mem = make_memory(size=16)
        inj = BurstCorruption(1, 4, 1, random.Random(0))
        mem.injector = inj
        mem.load("A", (0,))
        record = inj.record
        assert record is not None
        assert record.kind == "burst"
        offsets = [cell[0] for cell in record.cells]
        assert offsets == list(range(offsets[0], offsets[-1] + 1))
        assert 1 <= len(record.cells) <= 4
        assert record.masked_cells() == record.cells
        for cell in record.cells:
            assert mem.peek("A", cell) != float(cell[0] + 1)

    def test_clips_at_region_end(self):
        for seed in range(60):
            mem = make_memory(size=8)
            inj = BurstCorruption(1, 4, 1, random.Random(seed))
            mem.injector = inj
            mem.load("A", (0,))
            if inj.record.cells[0][0] > 4:
                assert len(inj.record.cells) < 4
                assert inj.record.cells[-1] == (7,)
                return
        pytest.fail("no seed in range started a burst near the end")

    def test_zero_burst_cells_rng_untouched(self):
        rng, pristine = random.Random(8), random.Random(8)
        inj = BurstCorruption(1, 0, 10, rng)
        assert inj.no_targets
        assert rng.getstate() == pristine.getstate()
        mem = make_memory()
        mem.injector = inj
        mem.load("A", (0,))
        assert not inj.injected
        assert rng.getstate() == pristine.getstate()

    def test_zero_bits_rng_untouched(self):
        rng, pristine = random.Random(8), random.Random(8)
        inj = BurstCorruption(0, 4, 10, rng)
        assert inj.no_targets
        assert rng.getstate() == pristine.getstate()


class TestRecordShapes:
    def test_value_record_dict_keeps_legacy_shape(self):
        """Old random_cell logs must keep parsing: a value record's dict
        has exactly the original four keys."""
        record = InjectionRecord(
            array="A", indices=(1,), bits=(3, 5), at_load=7
        )
        assert record.to_dict() == {
            "array": "A",
            "indices": [1],
            "bits": [3, 5],
            "at_load": 7,
        }
        assert InjectionRecord.from_dict(record.to_dict()) == record

    def test_model_records_round_trip(self):
        records = [
            InjectionRecord(
                array="A",
                indices=(2,),
                bits=(1,),
                at_load=4,
                kind="addrgen_store",
                cells=((2,), (6,)),
                actual=(6,),
            ),
            InjectionRecord(
                array="A",
                indices=(0,),
                bits=(9,),
                at_load=2,
                kind="stuck_bit",
                cells=((0,),),
                window=(2, 17),
                stuck_to=0,
            ),
            InjectionRecord(
                array="A",
                indices=(4,),
                bits=(1, 2),
                at_load=3,
                kind="burst",
                cells=((4,), (5,), (6,)),
            ),
        ]
        for record in records:
            assert InjectionRecord.from_dict(record.to_dict()) == record

    def test_masked_cells_default_is_struck_cell(self):
        record = InjectionRecord(array="A", indices=(1,), bits=(0,), at_load=1)
        assert record.masked_cells() == ((1,),)


class TestRedirectComposition:
    def test_multi_injector_forwards_redirects(self):
        mem = make_memory()
        addr = AddressGenerationFault("load", 1, random.Random(0))
        multi = MultiInjector(
            [ScheduledBitFlip("A", (5,), [0], at_load=3), addr]
        )
        assert multi.redirects
        mem.injector = multi
        mem.load("A", (2,))
        assert addr.injected

    def test_value_only_multi_does_not_redirect(self):
        multi = MultiInjector([ScheduledBitFlip("A", (5,), [0], at_load=3)])
        assert not multi.redirects
