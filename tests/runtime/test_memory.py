"""Simulated memory subsystem tests."""

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.runtime.memory import (
    MASK64,
    Memory,
    MemoryError64,
    decode_value,
    encode_value,
)


class TestEncoding:
    @given(st.floats(allow_nan=False, allow_infinity=False))
    def test_f64_roundtrip(self, value):
        assert decode_value(encode_value(value, "f64"), "f64") == value

    @given(st.integers(min_value=-(2**63), max_value=2**63 - 1))
    def test_i64_roundtrip(self, value):
        assert decode_value(encode_value(value, "i64"), "i64") == value

    def test_nan_roundtrip_bits(self):
        bits = encode_value(float("nan"), "f64")
        assert math.isnan(decode_value(bits, "f64"))

    def test_negative_int_two_complement(self):
        assert encode_value(-1, "i64") == MASK64

    def test_unknown_type(self):
        with pytest.raises(ValueError):
            encode_value(1, "f32")


class TestRegions:
    def test_declare_and_access(self):
        mem = Memory()
        mem.declare("A", (2, 3))
        mem.store("A", (1, 2), 2.5)
        assert mem.load("A", (1, 2)) == 2.5
        assert mem.load("A", (0, 0)) == 0.0

    def test_scalar_region(self):
        mem = Memory()
        mem.declare("t", (), elem_type="i64")
        mem.store("t", (), -7)
        assert mem.load("t", ()) == -7

    def test_duplicate_declaration(self):
        mem = Memory()
        mem.declare("A", (2,))
        with pytest.raises(MemoryError64):
            mem.declare("A", (2,))

    def test_out_of_bounds(self):
        mem = Memory()
        mem.declare("A", (2, 2))
        with pytest.raises(MemoryError64):
            mem.load("A", (2, 0))
        with pytest.raises(MemoryError64):
            mem.load("A", (0, -1))

    def test_rank_mismatch(self):
        mem = Memory()
        mem.declare("A", (2, 2))
        with pytest.raises(MemoryError64):
            mem.load("A", (0,))

    def test_undeclared(self):
        mem = Memory()
        with pytest.raises(MemoryError64):
            mem.load("Z", (0,))

    def test_row_major_layout(self):
        mem = Memory()
        mem.declare("A", (2, 3))
        base = mem.address_of("A", (0, 0))
        assert mem.address_of("A", (0, 1)) == base + 8
        assert mem.address_of("A", (1, 0)) == base + 24

    def test_distinct_addresses(self):
        mem = Memory()
        mem.declare("A", (4,))
        mem.declare("B", (4,))
        a_addrs = {mem.address_of("A", (i,)) for i in range(4)}
        b_addrs = {mem.address_of("B", (i,)) for i in range(4)}
        assert not (a_addrs & b_addrs)

    def test_aligned_addresses(self):
        mem = Memory()
        mem.declare("A", (4,))
        for i in range(4):
            assert mem.address_of("A", (i,)) % 8 == 0


class TestBulk:
    def test_initialize_and_to_array(self):
        mem = Memory()
        mem.declare("A", (2, 2))
        data = np.array([[1.0, 2.0], [3.0, 4.0]])
        mem.initialize("A", data)
        np.testing.assert_array_equal(mem.to_array("A"), data)

    def test_initialize_int_array(self):
        mem = Memory()
        mem.declare("idx", (3,), elem_type="i64")
        mem.initialize("idx", [5, -2, 0])
        np.testing.assert_array_equal(mem.to_array("idx"), [5, -2, 0])

    def test_initializer_size_mismatch(self):
        mem = Memory()
        mem.declare("A", (2,))
        with pytest.raises(MemoryError64):
            mem.initialize("A", [1.0, 2.0, 3.0])

    def test_flip_bits(self):
        mem = Memory()
        mem.declare("A", (1,))
        mem.store("A", (0,), 1.0)
        before = mem.peek_bits("A", (0,))
        mem.flip_bits("A", (0,), [0, 63])
        after = mem.peek_bits("A", (0,))
        assert before ^ after == (1 << 63) | 1

    def test_flip_bad_position(self):
        mem = Memory()
        mem.declare("A", (1,))
        with pytest.raises(ValueError):
            mem.flip_bits("A", (0,), [64])

    def test_snapshot(self):
        mem = Memory()
        mem.declare("A", (2,))
        mem.store("A", (0,), 3.0)
        snap = mem.snapshot()
        mem.store("A", (0,), 4.0)
        assert snap["A"][0] == encode_value(3.0, "f64")


class TestCounters:
    def test_load_store_counts(self):
        mem = Memory()
        mem.declare("A", (2,))
        mem.load("A", (0,))
        mem.load("A", (1,))
        mem.store("A", (0,), 1.0)
        assert mem.load_count == 2
        assert mem.store_count == 1

    def test_peek_poke_do_not_count(self):
        mem = Memory()
        mem.declare("A", (2,))
        mem.peek("A", (0,))
        mem.poke("A", (0,), 5.0)
        assert mem.load_count == 0 and mem.store_count == 0


class TestProgramMemory:
    def test_build_for_program(self, paper_example):
        from repro.runtime.memory import build_memory_for_program

        mem = build_memory_for_program(paper_example, {"n": 4})
        assert mem.shape("A") == (4, 4)

    def test_shadow_regions_marked(self):
        from repro.instrument.pipeline import instrument_program
        from repro.ir.parser import parse_program
        from repro.runtime.memory import build_memory_for_program

        p = parse_program(
            """
            program p(n) {
              array x[n];
              scalar temp;
              if (x[0] > 0) { S1: temp = 1; }
            }
            """
        )
        inst, _ = instrument_program(p)
        mem = build_memory_for_program(inst, {"n": 2})
        names = set(mem.region_names(include_shadow=False))
        assert "__uc_temp" not in names
        assert "__uc_temp" in mem.region_names(include_shadow=True)
