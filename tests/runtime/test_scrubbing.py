"""Scrubbing-baseline tests (coverage gap vs. def/use checksums)."""

import numpy as np
import pytest

from repro.ir.parser import parse_program
from repro.programs import ALL_BENCHMARKS
from repro.runtime.faults import ScheduledBitFlip
from repro.runtime.scrubbing import ScrubbingMonitor, run_with_scrubbing

from tests.conftest import copy_values

SUM_PROGRAM = """
program p(n) {
  array A[n];
  scalar acc;
  for rep = 0 .. 3 {
    for i = 0 .. n - 1 {
      S1: acc = acc + A[i];
    }
  }
}
"""


class TestBasics:
    def test_clean_run_no_detections(self):
        p = parse_program(SUM_PROGRAM)
        result, report = run_with_scrubbing(
            p, {"n": 8}, initial_values={"A": np.arange(8.0)}, interval=16
        )
        assert not report.detected
        assert report.scrubs >= 2

    def test_interval_validation(self):
        with pytest.raises(ValueError):
            ScrubbingMonitor(interval=0)

    def test_detects_corruption_at_rest(self):
        p = parse_program(SUM_PROGRAM)
        fault = ScheduledBitFlip("A", (3,), [7], at_load=10)
        result, report = run_with_scrubbing(
            p,
            {"n": 8},
            initial_values={"A": np.arange(8.0)},
            fault_source=fault,
            interval=8,  # scrubs often: corruption is seen at rest
        )
        assert fault.fired
        assert report.detected

    def test_final_sweep_catches_late_corruption(self):
        p = parse_program(SUM_PROGRAM)
        fault = ScheduledBitFlip("A", (3,), [7], at_load=30)
        result, report = run_with_scrubbing(
            p,
            {"n": 8},
            initial_values={"A": np.arange(8.0)},
            fault_source=fault,
            interval=10_000,  # never scrubs during the run
        )
        assert fault.fired
        assert report.detected  # the termination sweep
        assert report.scrubs == 1


class TestCoverageGap:
    def test_overwritten_corruption_missed(self):
        """The paper's criticism: corruption consumed by reads and then
        overwritten before the next scrub escapes the scrubber — while
        the def/use scheme catches it at the read."""
        source = """
        program p(n) {
          array A[n];
          scalar acc;
          for rep = 0 .. 9 {
            for i = 0 .. n - 1 {
              S1: acc = acc + A[i];
            }
            for i2 = 0 .. n - 1 {
              S2: A[i2] = A[i2] * 1.0;
            }
          }
        }
        """
        p = parse_program(source)
        n = 6
        values = {"A": np.arange(1.0, n + 1.0)}

        # Fault strikes A[2] just before its read in some rep; the
        # refresh loop S2 rewrites every cell right after, healing the
        # scrubber's reference before any scan runs.
        fault = ScheduledBitFlip("A", (2,), [13], at_load=15)
        result, report = run_with_scrubbing(
            p,
            {"n": n},
            initial_values=copy_values(values),
            fault_source=fault,
            interval=1_000_000,  # scrubs only at termination
        )
        assert fault.fired
        assert not report.detected, "scrubber blind: corruption overwritten"
        # The corrupted value DID flow into acc: silent data corruption.
        clean, _ = run_with_scrubbing(
            p, {"n": n}, initial_values=copy_values(values), interval=10**6
        )
        assert result.memory.load("acc", ()) != clean.memory.load("acc", ())

        # The def/use scheme catches the same fault.
        from repro.instrument.pipeline import instrument_program
        from repro.runtime.interpreter import run_program

        instrumented, _ = instrument_program(p)
        fault2 = ScheduledBitFlip("A", (2,), [13], at_load=15 + 7)
        # (offset roughly compensates the prologue's extra loads)
        detected_somewhere = False
        for at in range(10, 60):
            injector = ScheduledBitFlip("A", (2,), [13], at_load=at)
            outcome = run_program(
                instrumented,
                {"n": n},
                initial_values=copy_values(values),
                injector=injector,
            )
            if outcome.error_detected:
                detected_somewhere = True
                break
        assert detected_somewhere

    def test_scan_bandwidth_scales_with_rate(self):
        p = parse_program(SUM_PROGRAM)
        _, sparse = run_with_scrubbing(
            p, {"n": 8}, initial_values={"A": np.arange(8.0)}, interval=64
        )
        _, dense = run_with_scrubbing(
            p, {"n": 8}, initial_values={"A": np.arange(8.0)}, interval=4
        )
        assert dense.words_scanned > 4 * sparse.words_scanned


class TestOnBenchmarks:
    @pytest.mark.parametrize("name", ["trisolv", "jacobi1d"])
    def test_clean_benchmarks_scrub_clean(self, name):
        module = ALL_BENCHMARKS[name]
        params = module.SMALL_PARAMS
        result, report = run_with_scrubbing(
            module.program(),
            params,
            initial_values=module.initial_values(params),
            interval=128,
        )
        assert not report.detected
