"""Checksum-state tests: modular arithmetic, rotation, verification."""

import pytest
from hypothesis import given, strategies as st

from repro.runtime.state import (
    ChecksumState,
    address_rotation,
    rotate_left,
)

WORDS = st.integers(min_value=0, max_value=(1 << 64) - 1)


class TestRotation:
    @given(WORDS, st.integers(0, 63))
    def test_rotation_invertible(self, bits, amount):
        rotated = rotate_left(bits, amount)
        assert rotate_left(rotated, 64 - amount if amount else 0) == bits

    @given(WORDS)
    def test_zero_rotation_identity(self, bits):
        assert rotate_left(bits, 0) == bits

    def test_known_rotation(self):
        assert rotate_left(1, 1) == 2
        assert rotate_left(1 << 63, 1) == 1

    def test_address_rotation_uses_bits_3_to_7(self):
        """Section 6.1: 8-byte aligned elements rotate by 0..31."""
        assert address_rotation(0) == 0
        assert address_rotation(8) == 1
        assert address_rotation(8 * 31) == 31
        assert address_rotation(8 * 32) == 0  # wraps after 32 elements

    @given(st.integers(min_value=0, max_value=2**40))
    def test_rotation_in_range(self, address):
        assert 0 <= address_rotation(address) <= 31


class TestChecksumArithmetic:
    def test_basic_balance(self):
        cs = ChecksumState()
        cs.add("def", 100, count=2)
        cs.add("use", 100)
        cs.add("use", 100)
        assert cs.matches()

    def test_mismatch_detected(self):
        cs = ChecksumState()
        cs.add("def", 100, count=2)
        cs.add("use", 100)
        cs.add("use", 101)
        mismatches = cs.verify()
        assert len(mismatches) == 1
        assert mismatches[0].left == "def"

    def test_negative_count(self):
        """use_count - 1 can be -1 (zero uses, Algorithm 3 case 2a)."""
        cs = ChecksumState()
        cs.add("def", 42, count=1)
        cs.add("def", 42, count=-1)
        assert cs.get("def") == 0

    def test_modular_wraparound(self):
        cs = ChecksumState()
        big = (1 << 64) - 1
        cs.add("def", big)
        cs.add("def", 1)
        assert cs.get("def") == 0

    @given(st.lists(WORDS, max_size=20))
    def test_order_independence(self, words):
        """The operator is commutative — contribution order must not matter."""
        forward = ChecksumState()
        backward = ChecksumState()
        for w in words:
            forward.add("use", w, address=w % 1024 * 8)
        for w in reversed(words):
            backward.add("use", w, address=w % 1024 * 8)
        assert forward.get("use") == backward.get("use")

    def test_unknown_checksum(self):
        with pytest.raises(ValueError):
            ChecksumState().add("bogus", 1)

    def test_auxiliary_pair(self):
        cs = ChecksumState()
        cs.add("e_def", 5)
        cs.add("e_use", 5)
        assert cs.matches()
        cs.add("e_use", 1)
        assert not cs.matches()


class TestMultiChannel:
    def test_second_channel_rotates(self):
        cs = ChecksumState(channels=2)
        cs.add("def", 3, address=8)  # rotation 1 on channel 1
        assert cs.get("def", channel=0) == 3
        assert cs.get("def", channel=1) == 6

    def test_aligned_cancellation_caught_by_rotation(self):
        """Two-bit errors cancelling in the plain sum are caught by the
        rotated channel when the rotations differ (Section 6.1)."""
        cs_def = ChecksumState(channels=2)
        # value v1 at addr 0 (rot 0), v2 at addr 8 (rot 1)
        cs_def.add("def", 0b1000, address=0)
        cs_def.add("def", 0b0100, address=8)
        cs_use = ChecksumState(channels=2)
        # Same bit position flipped with opposite polarity: +16 and -16
        # into channel 0 (net zero), but rotations distinguish them.
        cs_use.add("use", 0b1000 + 16, address=0)
        cs_use.add("use", 0b0100 - 16, address=8)
        assert cs_def.get("def", 0) == cs_use.get("use", 0)  # ch0 fooled
        assert cs_def.get("def", 1) != cs_use.get("use", 1)  # ch1 catches

    def test_channel_validation(self):
        with pytest.raises(ValueError):
            ChecksumState(channels=0)

    def test_verify_reports_channel(self):
        cs = ChecksumState(channels=2)
        cs.add("def", 1, address=8)
        mismatches = cs.verify()
        channels = {m.channel for m in mismatches}
        assert channels == {0, 1}

    def test_str_of_mismatch(self):
        cs = ChecksumState()
        cs.add("def", 1)
        (m,) = cs.verify()
        assert "def" in str(m) and "use" in str(m)
