"""Differential suite: the vector backend is bit-identical to the
scalar kernel on every contract field, for every bundled benchmark.

The vector identity contract is *final-image + final-checksum-state*
equality plus the memory access totals the campaign layer consumes:
region words, checksum sums, contribution count, load/store counts,
statements executed, mismatch events and the first detection step.
The per-op :class:`OpCounts` breakdown and intra-run event *order* are
explicitly out of contract (whole-array execution reorders them); an
injector on the memory image disables vector dispatch entirely, so
injected runs keep the scalar event-order guarantees.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.instrument.pipeline import (
    InstrumentationOptions,
    instrument_program,
)
from repro.ir.generate import MIN_PARAM, random_affine_program
from repro.ir.parser import parse_program
from repro.programs import ALL_BENCHMARKS
from repro.runtime import vector as vec
from repro.runtime.compile import (
    VectorVerificationError,
    _check_vector_identity,
    clear_kernel_cache,
    compile_program,
    run_compiled,
)
from repro.runtime.interpreter import run_program
from repro.runtime.memory import build_memory_for_program
from repro.runtime.state import ChecksumState
from repro.runtime.vector import runner as vrunner
from repro.runtime.vector.plan import plan_program

OPTIMIZED = InstrumentationOptions(
    index_set_splitting=True, hoist_inspectors=True
)

#: seidel's in-place stencil aliases its own write cells at run time in
#: every lane configuration; the runner must always bounce it.
RUNTIME_FALLBACK = {"seidel"}


@pytest.fixture(autouse=True)
def _fresh_vector_state():
    vec.clear_profit_memo()
    vec.clear_dispatch_caches()
    vrunner.reset_stats()
    yield
    vec.clear_profit_memo()
    vec.clear_dispatch_caches()


def _kernel_with_plan(program):
    kernel = compile_program(program)
    kernel._vector_plan_for()
    return kernel


def _build(name: str):
    module = ALL_BENCHMARKS[name]
    program, _ = instrument_program(module.program(), OPTIMIZED)
    params = dict(module.SMALL_PARAMS)
    values = module.initial_values(params, seed=7)
    return program, params, values


def _copy(values):
    return {
        k: (v.copy() if hasattr(v, "copy") else v)
        for k, v in values.items()
    }


def _force_vector(kernel, params, channels):
    """Pre-seed the profitability memo so dispatch skips the probe."""
    run_params = {p: int(params[p]) for p in kernel.program.params}
    vec.record_profit(
        vec.profit_key(kernel, run_params, channels), 0.0, 1.0
    )


def _assert_contract_equal(scalar, memory, checksums, out):
    """Vector (memory, checksums, out-dict) vs a scalar ExecutionResult."""
    for name, region in scalar.memory._regions.items():
        assert list(memory._regions[name].words) == list(region.words), name
    assert checksums.sums == scalar.checksums.sums
    assert (
        checksums.contribution_count
        == scalar.checksums.contribution_count
    )
    assert memory.load_count == scalar.memory.load_count
    assert memory.store_count == scalar.memory.store_count
    assert out["statements_executed"] == scalar.statements_executed
    assert out["mismatches"] == list(scalar.mismatches)
    assert out["first_detection_step"] == scalar.first_detection_step


@pytest.mark.parametrize("channels", [1, 2])
@pytest.mark.parametrize("name", sorted(ALL_BENCHMARKS))
def test_benchmark_differential(name, channels):
    """Every Figure 10 benchmark: vector commit is bit-identical (or a
    clean runtime fallback that leaves the state untouched)."""
    program, params, values = _build(name)
    scalar = run_program(
        program, params, initial_values=_copy(values), channels=channels
    )
    plan = plan_program(program)
    assert plan is not None, f"{name}: expected a compile-time plan"
    memory = build_memory_for_program(program, params)
    for rname, array in values.items():
        memory.initialize(rname, array)
    checksums = ChecksumState(channels=channels)
    kernel = _kernel_with_plan(program)
    out = vrunner.execute_vector(
        kernel, params, memory, checksums, 50_000_000, False
    )
    if name in RUNTIME_FALLBACK:
        assert out is None
        # the transactional attempt must not have touched the state
        assert memory.load_count == 0 and memory.store_count == 0
        assert checksums.contribution_count == 0
        return
    assert out is not None, f"{name}: unexpected runtime fallback"
    _assert_contract_equal(scalar, memory, checksums, out)


def test_dispatch_path_commits_vector():
    """run_compiled(vectorize=True) with a won memo takes the vector
    path and returns a contract-identical ExecutionResult."""
    program, params, values = _build("jacobi1d")
    scalar = run_compiled(program, params, initial_values=_copy(values))
    kernel = compile_program(program)
    _force_vector(kernel, params, 1)
    vrunner.reset_stats()
    result = run_compiled(
        program, params, initial_values=_copy(values), vectorize=True
    )
    assert vrunner.VECTOR_RUNS == 1, "vector path did not engage"
    assert result.checksums.sums == scalar.checksums.sums
    assert (
        result.checksums.contribution_count
        == scalar.checksums.contribution_count
    )
    assert result.memory.load_count == scalar.memory.load_count
    assert result.memory.store_count == scalar.memory.store_count
    assert (
        result.statements_executed == scalar.statements_executed
    )
    assert result.memory.snapshot() == scalar.memory.snapshot()
    # the per-op breakdown is out of contract and zeroed on this path
    assert result.counts.loads == 0


def test_probe_protocol_returns_scalar_result():
    """An undecided key probes, returns the (authoritative) scalar
    result, and memoizes a verdict for later dispatches."""
    program, params, values = _build("dsyrk")
    kernel = compile_program(program)
    run_params = {p: int(params[p]) for p in program.params}
    key = vec.profit_key(kernel, run_params, 1)
    assert vec.profit_state(key) is None
    result = run_compiled(
        program, params, initial_values=_copy(values), vectorize=True
    )
    # the probe run itself answers with scalar counts (not zeroed)
    assert result.counts.loads > 0
    assert vec.profit_state(key) is not None


def test_injector_disables_vector():
    """Any injector on the memory image forces the scalar path."""
    import random

    from repro.runtime.faults import RandomCellFlipper

    program, params, values = _build("jacobi1d")
    kernel = compile_program(program)
    _force_vector(kernel, params, 1)
    vrunner.reset_stats()
    injector = RandomCellFlipper(
        num_bits=1, expected_loads=100, rng=random.Random(3)
    )
    run_compiled(
        program,
        params,
        initial_values=_copy(values),
        injector=injector,
        vectorize=True,
        wild_reads=True,
    )
    assert vrunner.VECTOR_RUNS == 0


def test_kill_switch(monkeypatch):
    program, params, values = _build("jacobi1d")
    kernel = compile_program(program)
    _force_vector(kernel, params, 1)
    monkeypatch.setenv("REPRO_VECTOR", "0")
    vrunner.reset_stats()
    run_compiled(
        program, params, initial_values=_copy(values), vectorize=True
    )
    assert vrunner.VECTOR_RUNS == 0


def test_verify_vector_clean():
    program, params, values = _build("cholesky")
    result = run_compiled(
        program,
        params,
        initial_values=_copy(values),
        vectorize=True,
        verify_vector=True,
    )
    scalar = run_compiled(program, params, initial_values=_copy(values))
    assert result.checksums.sums == scalar.checksums.sums


def test_verify_vector_raises_on_divergence():
    """The comparator flags every contract field independently."""
    program, params, values = _build("jacobi1d")
    scalar = run_compiled(program, params, initial_values=_copy(values))
    memory = scalar.memory
    checksums = scalar.checksums
    good = {
        "statements_executed": scalar.statements_executed,
        "mismatches": list(scalar.mismatches),
        "first_detection_step": scalar.first_detection_step,
    }
    # identical inputs pass
    _check_vector_identity(
        "jacobi1d", memory, checksums, scalar, memory, checksums, good
    )
    bad = dict(good, statements_executed=good["statements_executed"] + 1)
    with pytest.raises(VectorVerificationError, match="steps"):
        _check_vector_identity(
            "jacobi1d", memory, checksums, scalar, memory, checksums, bad
        )
    from repro.runtime.compile import _clone_checksums

    skewed = _clone_checksums(checksums)
    skewed.sums[0]["def"] ^= 1
    with pytest.raises(VectorVerificationError, match="checksum sums"):
        _check_vector_identity(
            "jacobi1d", memory, checksums, scalar, memory, skewed, good
        )


@pytest.mark.parametrize("fault_model", ["random_cell", "stuck_bit"])
@pytest.mark.parametrize("extra", [{}, {"batch": 4}, {"recover": True}])
def test_campaign_records_identical_vector_on_off(
    monkeypatch, fault_model, extra
):
    """Campaign records are canonical-identical with vectorized golden
    and recovery legs on vs. off."""
    from repro.campaign import ProgramCampaignSpec
    from repro.campaign.engine import run_campaign
    from repro.campaign.golden import clear_cache

    def canon(records):
        return [
            (r.index, r.seed, r.verdict, r.injection, r.extra)
            for r in records
        ]

    def run_once():
        clear_cache()
        clear_kernel_cache()
        vec.clear_profit_memo()
        vec.clear_dispatch_caches()
        spec = ProgramCampaignSpec(
            trials=8,
            seed=5,
            benchmark="jacobi1d",
            scale="small",
            fault_model=fault_model,
            **extra,
        )
        return canon(run_campaign(spec).records)

    monkeypatch.setenv("REPRO_VECTOR", "0")
    off = run_once()
    monkeypatch.setenv("REPRO_VECTOR", "1")
    on = run_once()
    assert on == off


def test_replay_trial_matches_campaign_record():
    """Per-index replay (with and without a shared prepared context)
    reproduces the campaign's record exactly."""
    from repro.campaign import ProgramCampaignSpec
    from repro.campaign.engine import replay_trial, run_campaign

    spec = ProgramCampaignSpec(
        trials=6, seed=9, benchmark="jacobi1d", scale="small"
    )
    result = run_campaign(spec)
    prepared = spec.prepare()
    for record in result.records:
        for replay in (
            replay_trial(spec, record.index),
            replay_trial(spec, record.index, prepared=prepared),
        ):
            assert replay.index == record.index
            assert replay.seed == record.seed
            assert replay.verdict == record.verdict
            assert replay.injection == record.injection


# ----------------------------------------------------------------------
# Property: per-statement fallback composes with full-vector programs
# ----------------------------------------------------------------------

_MIXED_TEMPLATE = """
program mixed(n) {{
  array A[n];
  array B[n];
  scalar s;
  for i = 0 .. n - 1 {{
    S1: A[i] = i * 3 + 1;
  }}
  while (s < {k}) {{
    W1: s = s + 1;
  }}
  for i = 0 .. n - 1 {{
    S2: B[i] = A[i] * 2 + s;
  }}
}}
"""


@settings(max_examples=10, deadline=None)
@given(
    n=st.integers(min_value=2, max_value=12),
    k=st.integers(min_value=0, max_value=9),
)
def test_mixed_spine_composes(n, k):
    """A program mixing vector nests with sequential-spine statements
    (a while loop the planner can never vectorize) stays bit-identical:
    the spine runs scalar-style inside the vector run, the nests run
    whole-array, and the composition commits the same state."""
    program, _ = instrument_program(
        parse_program(_MIXED_TEMPLATE.format(k=k)), OPTIMIZED
    )
    params = {"n": n}
    scalar = run_program(program, params, channels=2)
    plan = plan_program(program)
    assert plan is not None
    memory = build_memory_for_program(program, params)
    checksums = ChecksumState(channels=2)
    kernel = _kernel_with_plan(program)
    out = vrunner.execute_vector(
        kernel, params, memory, checksums, 50_000_000, False
    )
    assert out is not None
    _assert_contract_equal(scalar, memory, checksums, out)


@settings(max_examples=8, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=24),
    n=st.integers(min_value=MIN_PARAM, max_value=MIN_PARAM + 2),
)
def test_random_affine_programs_compose(seed, n):
    """Random affine programs: whatever mix of vector nests, chains and
    per-statement fallback the planner produces, a committed vector run
    matches the interpreter on every contract field — and a planner or
    runtime fallback leaves the scalar path authoritative."""
    program, _ = instrument_program(random_affine_program(seed), OPTIMIZED)
    params = {"n": n}
    scalar = run_program(program, params, channels=2)
    plan = plan_program(program)
    if plan is None:
        return  # whole-program fallback: nothing to compare
    memory = build_memory_for_program(program, params)
    checksums = ChecksumState(channels=2)
    kernel = _kernel_with_plan(program)
    out = vrunner.execute_vector(
        kernel, params, memory, checksums, 50_000_000, False
    )
    if out is None:
        # runtime fallback must leave the state untouched
        assert memory.load_count == 0 and memory.store_count == 0
        return
    _assert_contract_equal(scalar, memory, checksums, out)
