"""Fault injector tests."""

import random

import pytest

from repro.runtime.faults import (
    MultiInjector,
    NoFaults,
    RandomCellFlipper,
    ScheduledBitFlip,
    flip_random_bits_in_words,
)
from repro.runtime.memory import Memory


def make_memory() -> Memory:
    mem = Memory()
    mem.declare("A", (4,))
    for i in range(4):
        mem.store("A", (i,), float(i + 1))
    mem.load_count = 0
    mem.store_count = 0
    return mem


class TestScheduledBitFlip:
    def test_fires_at_load(self):
        mem = make_memory()
        mem.injector = ScheduledBitFlip("A", (2,), [5], at_load=2)
        before = mem.peek_bits("A", (2,))
        mem.load("A", (0,))  # load 1: no trigger (count < 2)
        assert mem.peek_bits("A", (2,)) == before
        mem.load("A", (1,))  # load 2: trigger
        assert mem.peek_bits("A", (2,)) == before ^ (1 << 5)

    def test_triggering_load_sees_corruption(self):
        mem = make_memory()
        mem.injector = ScheduledBitFlip("A", (0,), [52], at_load=1)
        value = mem.load("A", (0,))
        assert value != 1.0

    def test_fires_once(self):
        mem = make_memory()
        inj = ScheduledBitFlip("A", (2,), [5], at_load=1)
        mem.injector = inj
        mem.load("A", (0,))
        corrupted = mem.peek_bits("A", (2,))
        mem.load("A", (0,))
        assert mem.peek_bits("A", (2,)) == corrupted
        assert inj.fired

    def test_corruption_is_persistent(self):
        mem = make_memory()
        mem.injector = ScheduledBitFlip("A", (1,), [3], at_load=1)
        mem.load("A", (0,))
        mem.injector = NoFaults()
        assert mem.load("A", (1,)) != 2.0


class TestRandomCellFlipper:
    def test_injects_exactly_once(self):
        mem = make_memory()
        inj = RandomCellFlipper(
            num_bits=2, expected_loads=10, rng=random.Random(7)
        )
        mem.injector = inj
        for _ in range(20):
            for i in range(4):
                mem.load("A", (i,))
        assert inj.record is not None
        assert len(inj.record.bits) == 2

    def test_respects_target_arrays(self):
        mem = make_memory()
        mem.declare("B", (4,))
        inj = RandomCellFlipper(
            num_bits=1,
            expected_loads=1,
            rng=random.Random(3),
            target_arrays=["B"],
        )
        mem.injector = inj
        mem.load("A", (0,))
        assert inj.record.array == "B"

    def test_validates_expected_loads(self):
        with pytest.raises(ValueError):
            RandomCellFlipper(1, 0, random.Random(0))

    def test_deterministic_with_seed(self):
        records = []
        for _ in range(2):
            mem = make_memory()
            inj = RandomCellFlipper(2, 4, random.Random(99))
            mem.injector = inj
            for i in range(4):
                mem.load("A", (i,))
            records.append((inj.record.array, inj.record.indices, inj.record.bits))
        assert records[0] == records[1]


class TestMultiInjector:
    def test_composes(self):
        mem = make_memory()
        mem.injector = MultiInjector(
            [
                ScheduledBitFlip("A", (0,), [0], at_load=1),
                ScheduledBitFlip("A", (1,), [1], at_load=2),
            ]
        )
        mem.load("A", (3,))
        mem.load("A", (3,))
        assert mem.peek_bits("A", (0,)) & 1
        assert mem.peek_bits("A", (1,)) & 2


class TestWordFlips:
    def test_flip_count(self):
        rng = random.Random(1)
        words = [0] * 16
        flipped = flip_random_bits_in_words(words, 5, rng)
        assert len(flipped) == 5
        assert sum(bin(w).count("1") for w in words) == 5

    def test_positions_distinct(self):
        rng = random.Random(2)
        words = [0] * 4
        flipped = flip_random_bits_in_words(words, 6, rng)
        assert len(set(flipped)) == 6
