"""Fault injector tests."""

import pickle
import random

import pytest

from repro.runtime.faults import (
    InjectorSpec,
    MultiInjector,
    NoFaults,
    RandomCellFlipper,
    ScheduledBitFlip,
    flip_random_bits_in_words,
    make_injector,
)
from repro.runtime.memory import Memory


def make_memory() -> Memory:
    mem = Memory()
    mem.declare("A", (4,))
    for i in range(4):
        mem.store("A", (i,), float(i + 1))
    mem.load_count = 0
    mem.store_count = 0
    return mem


class TestScheduledBitFlip:
    def test_fires_at_load(self):
        mem = make_memory()
        mem.injector = ScheduledBitFlip("A", (2,), [5], at_load=2)
        before = mem.peek_bits("A", (2,))
        mem.load("A", (0,))  # load 1: no trigger (count < 2)
        assert mem.peek_bits("A", (2,)) == before
        mem.load("A", (1,))  # load 2: trigger
        assert mem.peek_bits("A", (2,)) == before ^ (1 << 5)

    def test_triggering_load_sees_corruption(self):
        mem = make_memory()
        mem.injector = ScheduledBitFlip("A", (0,), [52], at_load=1)
        value = mem.load("A", (0,))
        assert value != 1.0

    def test_fires_once(self):
        mem = make_memory()
        inj = ScheduledBitFlip("A", (2,), [5], at_load=1)
        mem.injector = inj
        mem.load("A", (0,))
        corrupted = mem.peek_bits("A", (2,))
        mem.load("A", (0,))
        assert mem.peek_bits("A", (2,)) == corrupted
        assert inj.fired

    def test_corruption_is_persistent(self):
        mem = make_memory()
        mem.injector = ScheduledBitFlip("A", (1,), [3], at_load=1)
        mem.load("A", (0,))
        mem.injector = NoFaults()
        assert mem.load("A", (1,)) != 2.0


class TestRandomCellFlipper:
    def test_injects_exactly_once(self):
        mem = make_memory()
        inj = RandomCellFlipper(
            num_bits=2, expected_loads=10, rng=random.Random(7)
        )
        mem.injector = inj
        for _ in range(20):
            for i in range(4):
                mem.load("A", (i,))
        assert inj.record is not None
        assert len(inj.record.bits) == 2

    def test_respects_target_arrays(self):
        mem = make_memory()
        mem.declare("B", (4,))
        inj = RandomCellFlipper(
            num_bits=1,
            expected_loads=1,
            rng=random.Random(3),
            target_arrays=["B"],
        )
        mem.injector = inj
        mem.load("A", (0,))
        assert inj.record.array == "B"

    def test_validates_expected_loads(self):
        with pytest.raises(ValueError):
            RandomCellFlipper(1, 0, random.Random(0))

    def test_deterministic_with_seed(self):
        records = []
        for _ in range(2):
            mem = make_memory()
            inj = RandomCellFlipper(2, 4, random.Random(99))
            mem.injector = inj
            for i in range(4):
                mem.load("A", (i,))
            records.append((inj.record.array, inj.record.indices, inj.record.bits))
        assert records[0] == records[1]

    def test_no_loads_means_no_injection(self):
        """A program that never loads gives the trigger nothing to fire
        on: the trial injected nothing and must be reported as such."""
        mem = make_memory()
        inj = RandomCellFlipper(2, 10, random.Random(1))
        mem.injector = inj
        assert inj.record is None
        assert not inj.injected

    def test_empty_extent_targets_report_no_injection(self):
        """Targets whose arrays have zero cells cannot host a fault;
        the injector must flag no_targets instead of crashing or
        silently counting the trial as undetected."""
        mem = make_memory()
        mem.declare("E", (0,))
        inj = RandomCellFlipper(
            num_bits=1,
            expected_loads=1,
            rng=random.Random(5),
            target_arrays=["E"],
        )
        mem.injector = inj
        for i in range(4):
            mem.load("A", (i,))
        assert inj.record is None
        assert inj.no_targets
        assert not inj.injected

    def test_empty_extent_arrays_filtered_from_pool(self):
        """Zero-cell regions are skipped, not drawn (which would raise
        in randrange(0))."""
        mem = make_memory()
        mem.declare("E", (0,))
        inj = RandomCellFlipper(
            num_bits=1,
            expected_loads=1,
            rng=random.Random(5),
            target_arrays=["E", "A"],
        )
        mem.injector = inj
        mem.load("A", (0,))
        assert inj.record is not None
        assert inj.record.array == "A"
        assert inj.injected

    def test_no_targets_stops_retrying(self):
        mem = make_memory()
        inj = RandomCellFlipper(
            num_bits=1,
            expected_loads=1,
            rng=random.Random(5),
            target_arrays=["E"],
        )
        mem.declare("E", (0,))
        mem.injector = inj
        for i in range(4):
            mem.load("A", (i,))
        # Memory contents untouched.
        assert [mem.load("A", (i,)) for i in range(4)] == [1.0, 2.0, 3.0, 4.0]


class TestZeroProbabilitySpecs:
    """Un-injectable specs (zero bits, empty target tuple) must yield a
    deterministic ``no_injection`` without consuming RNG state, so a
    spec edit that disables the fault cannot perturb the seed stream of
    anything drawn after injector construction."""

    @staticmethod
    def _fresh_rngs(seed=42):
        return random.Random(seed), random.Random(seed)

    def test_zero_bits_is_no_injection_and_rng_untouched(self):
        rng, pristine = self._fresh_rngs()
        inj = RandomCellFlipper(num_bits=0, expected_loads=10, rng=rng)
        assert inj.no_targets
        assert inj.trigger == 0
        assert rng.getstate() == pristine.getstate()
        mem = make_memory()
        mem.injector = inj
        for _ in range(3):
            for i in range(4):
                mem.load("A", (i,))
        assert inj.record is None
        assert not inj.injected
        assert rng.getstate() == pristine.getstate()
        assert [mem.load("A", (i,)) for i in range(4)] == [1.0, 2.0, 3.0, 4.0]

    def test_empty_target_tuple_is_no_injection_and_rng_untouched(self):
        rng, pristine = self._fresh_rngs(7)
        inj = RandomCellFlipper(
            num_bits=2, expected_loads=10, rng=rng, target_arrays=()
        )
        assert inj.no_targets
        mem = make_memory()
        mem.injector = inj
        for i in range(4):
            mem.load("A", (i,))
        assert inj.record is None
        assert rng.getstate() == pristine.getstate()

    def test_empty_target_tuple_distinct_from_none(self):
        """An explicit empty tuple means 'no targets'; None means 'all
        non-shadow arrays'. The constructor must not conflate them."""
        rng = random.Random(3)
        all_arrays = RandomCellFlipper(1, 1, rng)
        assert all_arrays.target_arrays is None
        assert not all_arrays.no_targets
        none_at_all = RandomCellFlipper(1, 1, random.Random(3), ())
        assert none_at_all.target_arrays == ()
        assert none_at_all.no_targets

    def test_zero_prob_campaign_trials_classify_no_injection(self):
        """End to end: a campaign whose spec can never inject reports
        every trial as no_injection."""
        from repro.campaign import ProgramCampaignSpec, run_campaign

        spec = ProgramCampaignSpec(
            trials=3,
            seed=11,
            benchmark="trisolv",
            scale="small",
            bits=0,
        )
        result = run_campaign(spec, workers=1)
        assert [r.verdict for r in result.records] == ["no_injection"] * 3

    def test_zero_prob_spec_via_factory(self):
        spec = InjectorSpec(
            kind="random_cell", num_bits=0, expected_loads=5, seed=1
        )
        inj = make_injector(spec)
        assert inj.no_targets
        assert inj.trigger == 0


class TestInjectorSpec:
    def test_random_cell_factory_is_deterministic(self):
        spec = InjectorSpec(
            kind="random_cell", num_bits=2, expected_loads=4, seed=99
        )
        records = []
        for _ in range(2):
            mem = make_memory()
            mem.injector = make_injector(spec)
            for i in range(4):
                mem.load("A", (i,))
            rec = mem.injector.record
            records.append((rec.array, rec.indices, rec.bits, rec.at_load))
        assert records[0] == records[1]

    def test_matches_hand_built_injector(self):
        spec = InjectorSpec(
            kind="random_cell", num_bits=2, expected_loads=4, seed=7
        )
        by_factory = make_injector(spec)
        by_hand = RandomCellFlipper(2, 4, random.Random(7))
        assert by_factory.trigger == by_hand.trigger

    def test_scheduled_kind(self):
        spec = InjectorSpec(
            kind="scheduled",
            array="A",
            indices=(2,),
            bit_positions=(5,),
            at_load=1,
        )
        mem = make_memory()
        before = mem.peek_bits("A", (2,))
        mem.injector = make_injector(spec)
        mem.load("A", (0,))
        assert mem.peek_bits("A", (2,)) == before ^ (1 << 5)

    def test_none_kind(self):
        assert isinstance(make_injector(InjectorSpec(kind="none")), NoFaults)

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            make_injector(InjectorSpec(kind="cosmic_ray"))

    def test_scheduled_requires_array(self):
        with pytest.raises(ValueError):
            make_injector(InjectorSpec(kind="scheduled"))

    def test_spec_round_trips(self):
        spec = InjectorSpec(
            kind="random_cell",
            num_bits=3,
            expected_loads=12,
            seed=4,
            target_arrays=("A", "B"),
        )
        assert InjectorSpec.from_dict(spec.to_dict()) == spec
        assert pickle.loads(pickle.dumps(spec)) == spec


class TestMultiInjector:
    def test_composes(self):
        mem = make_memory()
        mem.injector = MultiInjector(
            [
                ScheduledBitFlip("A", (0,), [0], at_load=1),
                ScheduledBitFlip("A", (1,), [1], at_load=2),
            ]
        )
        mem.load("A", (3,))
        mem.load("A", (3,))
        assert mem.peek_bits("A", (0,)) & 1
        assert mem.peek_bits("A", (1,)) & 2


class TestWordFlips:
    def test_flip_count(self):
        rng = random.Random(1)
        words = [0] * 16
        flipped = flip_random_bits_in_words(words, 5, rng)
        assert len(flipped) == 5
        assert sum(bin(w).count("1") for w in words) == 5

    def test_positions_distinct(self):
        rng = random.Random(2)
        words = [0] * 4
        flipped = flip_random_bits_in_words(words, 6, rng)
        assert len(set(flipped)) == 6
