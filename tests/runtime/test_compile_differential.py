"""Differential suite: compiled kernels are bit-identical to the
interpreter on every bundled benchmark.

The compiled backend's whole value rests on one claim — swapping it in
never changes a single observable: checksum sums, contribution counts,
operation counts, memory words, access counters, step counts, detection
verdicts, and the injector's record of where the fault landed.  These
tests compare full :class:`ExecutionResult`s field by field, fault-free
and under seeded injectors, with ``fallback=False`` so a silent
interpreter fallback cannot mask a codegen gap.
"""

from __future__ import annotations

import random

import pytest

from repro.instrument.pipeline import (
    InstrumentationOptions,
    instrument_program,
)
from repro.ir.parser import parse_program
from repro.programs import ALL_BENCHMARKS
from repro.runtime.compile import (
    CompileError,
    clear_kernel_cache,
    compile_program,
    ir_digest,
    kernel_cache_stats,
    run_compiled,
)
from repro.runtime.faults import RandomCellFlipper
from repro.runtime.interpreter import run_program

OPTIMIZED = InstrumentationOptions(
    index_set_splitting=True, hoist_inspectors=True
)


def _build(name: str, instrumented: bool):
    module = ALL_BENCHMARKS[name]
    program = module.program()
    params = dict(module.SMALL_PARAMS)
    values = module.initial_values(params, seed=7)
    if instrumented:
        program, _ = instrument_program(program, OPTIMIZED)
    return program, params, values


def _copy(values):
    return {
        k: (v.copy() if hasattr(v, "copy") else v) for k, v in values.items()
    }


def assert_identical(interp, compiled, injectors=None):
    """Field-by-field equality of two ExecutionResults."""
    assert interp.checksums.sums == compiled.checksums.sums
    assert (
        interp.checksums.contribution_count
        == compiled.checksums.contribution_count
    )
    assert [str(m) for m in interp.mismatches] == [
        str(m) for m in compiled.mismatches
    ]
    assert interp.counts == compiled.counts
    assert interp.statements_executed == compiled.statements_executed
    assert interp.first_detection_step == compiled.first_detection_step
    assert interp.error_detected == compiled.error_detected
    assert interp.memory.snapshot() == compiled.memory.snapshot()
    assert interp.memory.load_count == compiled.memory.load_count
    assert interp.memory.store_count == compiled.memory.store_count
    assert interp.memory.wild_accesses == compiled.memory.wild_accesses
    if injectors is not None:
        assert repr(injectors[0].record) == repr(injectors[1].record)


@pytest.mark.parametrize("name", sorted(ALL_BENCHMARKS))
@pytest.mark.parametrize("instrumented", [False, True])
def test_fault_free_identical(name, instrumented):
    program, params, values = _build(name, instrumented)
    for channels in (1, 2):
        interp = run_program(
            program, params, initial_values=_copy(values), channels=channels
        )
        compiled = run_compiled(
            program,
            params,
            initial_values=_copy(values),
            channels=channels,
            fallback=False,
        )
        assert_identical(interp, compiled)
        if instrumented:
            assert not interp.mismatches


@pytest.mark.parametrize("name", sorted(ALL_BENCHMARKS))
def test_injected_identical(name):
    """Same injector seed, same verdict — bit for bit."""
    program, params, values = _build(name, instrumented=True)
    baseline = run_program(program, params, initial_values=_copy(values))
    window = max(1, baseline.memory.load_count)
    for seed in (11, 23, 47):
        inj_interp = RandomCellFlipper(2, window, random.Random(seed))
        inj_compiled = RandomCellFlipper(2, window, random.Random(seed))
        interp = run_program(
            program,
            params,
            initial_values=_copy(values),
            injector=inj_interp,
            channels=2,
            wild_reads=True,
            halt_on_mismatch=True,
        )
        compiled = run_compiled(
            program,
            params,
            initial_values=_copy(values),
            injector=inj_compiled,
            channels=2,
            wild_reads=True,
            halt_on_mismatch=True,
            fallback=False,
        )
        assert_identical(interp, compiled, (inj_interp, inj_compiled))


class TestKernelCache:
    def test_digest_stable_and_distinct(self):
        p1 = ALL_BENCHMARKS["trisolv"].program()
        p2 = ALL_BENCHMARKS["trisolv"].program()
        assert ir_digest(p1) == ir_digest(p2)
        assert ir_digest(p1) != ir_digest(ALL_BENCHMARKS["lu"].program())

    def test_compile_once_then_hit(self):
        clear_kernel_cache()
        program = ALL_BENCHMARKS["jacobi1d"].program()
        first = compile_program(program)
        second = compile_program(program)
        assert first is second
        stats = kernel_cache_stats()
        assert stats["misses"] == 1
        assert stats["hits"] == 1

    def test_register_budget_falls_back(self):
        program, params, values = _build("jacobi1d", instrumented=True)
        interp = run_program(
            program,
            params,
            initial_values=_copy(values),
            register_budget=2,
        )
        via_backend = run_compiled(
            program,
            params,
            initial_values=_copy(values),
            register_budget=2,
        )
        assert interp.spills == via_backend.spills
        assert interp.checksums.sums == via_backend.checksums.sums
        with pytest.raises(CompileError):
            run_compiled(
                program,
                params,
                initial_values=_copy(values),
                register_budget=2,
                fallback=False,
            )

    def test_unsupported_construct_raises_without_fallback(self):
        program = parse_program(
            """
            program tiny(n) {
              array A[n];
              for i = 0 .. n - 1 {
                S1: A[i] = i;
              }
            }
            """
        )
        # Sabotage: reference an undeclared region so lowering fails.
        from dataclasses import replace

        from repro.ir.nodes import Assign, VarRef

        bad_stmt = Assign(lhs=VarRef("ghost"), rhs=VarRef("i"), label="S9")
        loop = program.body[0]
        bad_loop = replace(loop, body=loop.body + (bad_stmt,))
        bad = replace(program, body=(bad_loop,))
        with pytest.raises(CompileError):
            run_compiled(bad, {"n": 4}, fallback=False)
        # With fallback the interpreter's own error surfaces instead
        # (it reaches memory with the undeclared name).
        from repro.runtime.memory import MemoryError64

        with pytest.raises(MemoryError64):
            run_compiled(bad, {"n": 4})
