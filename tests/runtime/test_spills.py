"""Register-spill modeling tests (Section 5's spill requirement)."""

import numpy as np
import pytest

from repro.instrument.pipeline import (
    InstrumentationOptions,
    instrument_program,
)
from repro.ir.parser import parse_program
from repro.programs import ALL_BENCHMARKS
from repro.runtime.faults import ScheduledBitFlip
from repro.runtime.interpreter import run_program

from tests.conftest import copy_values

WIDE_BUNDLE = """
program wide(n) {
  array A[n];
  array B[n];
  for i = 0 .. n - 5 {
    S1: B[i] = A[i] * 0.25 + A[i + 1] * 0.25 + A[i + 2] * 0.25
             + A[i + 3] * 0.125 + A[i + 4] * 0.125;
  }
}
"""


class TestSpillMechanics:
    def test_spills_happen_under_tight_budget(self):
        p = parse_program(WIDE_BUNDLE)
        values = {"A": np.arange(12.0), "B": np.zeros(12)}
        roomy = run_program(
            p, {"n": 12}, initial_values=copy_values(values), register_budget=8
        )
        tight = run_program(
            p, {"n": 12}, initial_values=copy_values(values), register_budget=2
        )
        assert roomy.spills == 0
        assert tight.spills > 0
        assert tight.counts.stores > roomy.counts.stores

    def test_results_unchanged_by_spilling(self):
        p = parse_program(WIDE_BUNDLE)
        values = {"A": np.arange(12.0), "B": np.zeros(12)}
        without = run_program(
            p, {"n": 12}, initial_values=copy_values(values)
        )
        spilled = run_program(
            p, {"n": 12}, initial_values=copy_values(values), register_budget=2
        )
        np.testing.assert_allclose(
            spilled.memory.to_array("B"), without.memory.to_array("B")
        )

    @pytest.mark.parametrize("budget", [2, 3, 4])
    def test_instrumented_balance_under_spills(self, budget):
        """The spill contributions keep the checksums balanced on clean
        runs — Section 5's requirement."""
        p = parse_program(WIDE_BUNDLE)
        instrumented, _ = instrument_program(
            p, InstrumentationOptions(index_set_splitting=True)
        )
        values = {"A": np.arange(12.0), "B": np.zeros(12)}
        result = run_program(
            instrumented,
            {"n": 12},
            initial_values=copy_values(values),
            register_budget=budget,
        )
        assert result.spills > 0
        assert not result.mismatches

    @pytest.mark.parametrize("name", ["cholesky", "trisolv", "cg"])
    def test_benchmarks_balance_under_spills(self, name):
        module = ALL_BENCHMARKS[name]
        params = module.SMALL_PARAMS
        values = module.initial_values(params)
        instrumented, _ = instrument_program(module.program())
        result = run_program(
            instrumented,
            params,
            initial_values=copy_values(values),
            register_budget=2,
        )
        assert not result.mismatches, name


class TestSpillDetection:
    def test_corrupted_spill_slot_detected(self):
        """A fault striking a value while spilled (between its spill
        store and its reload) must be flagged."""
        p = parse_program(WIDE_BUNDLE)
        instrumented, _ = instrument_program(
            p, InstrumentationOptions(index_set_splitting=True)
        )
        values = {"A": np.arange(1.0, 13.0), "B": np.zeros(12)}
        clean = run_program(
            instrumented,
            {"n": 12},
            initial_values=copy_values(values),
            register_budget=2,
        )
        assert clean.spills > 0 and not clean.mismatches
        detected = 0
        fired = 0
        for at_load in range(1, clean.memory.load_count + 1, 2):
            injector = ScheduledBitFlip("A", (4,), [13, 44], at_load=at_load)
            result = run_program(
                instrumented,
                {"n": 12},
                initial_values=copy_values(values),
                injector=injector,
                register_budget=2,
            )
            fired += injector.fired
            detected += result.error_detected
        assert fired > 0
        assert detected > 0
