"""Property tests: InjectorSpec round-trips and rejects bad input.

An :class:`InjectorSpec` is the wire format campaigns ship across
process boundaries and embed in JSONL log headers, so its
``to_dict``/``from_dict`` pair must be lossless for *every* fault-model
variant — and a malformed dict must fail loudly at construction, not
deep inside ``make_injector`` at trial time.
"""

from __future__ import annotations

import json
import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime.faults import (
    FAULT_MODELS,
    INJECTOR_KINDS,
    InjectorSpec,
    injector_spec_for_model,
    make_injector,
)

names = st.text(
    alphabet=st.characters(min_codepoint=65, max_codepoint=122),
    min_size=1,
    max_size=8,
)
target_arrays = st.one_of(
    st.none(), st.tuples(), st.lists(names, max_size=3).map(tuple)
)
index_tuples = st.lists(
    st.integers(min_value=0, max_value=100), max_size=3
).map(tuple)


@st.composite
def injector_specs(draw) -> InjectorSpec:
    """Any valid spec of any kind (field values across the full
    validated ranges, including those the kind ignores)."""
    kind = draw(st.sampled_from(INJECTOR_KINDS))
    return InjectorSpec(
        kind=kind,
        num_bits=draw(st.integers(min_value=0, max_value=64)),
        expected_loads=draw(st.integers(min_value=1, max_value=10**6)),
        seed=draw(st.integers(min_value=0, max_value=2**62)),
        target_arrays=draw(target_arrays),
        array=draw(st.one_of(st.none(), names)),
        indices=draw(index_tuples),
        bit_positions=draw(
            st.lists(
                st.integers(min_value=0, max_value=63), max_size=4
            ).map(tuple)
        ),
        at_load=draw(st.integers(min_value=1, max_value=10**6)),
        expected_stores=draw(st.integers(min_value=1, max_value=10**6)),
        addr_mode=draw(st.sampled_from(("load", "store"))),
        window=draw(st.integers(min_value=1, max_value=10**6)),
        stuck_to=draw(st.sampled_from((None, 0, 1))),
        burst_cells=draw(st.integers(min_value=0, max_value=64)),
    )


@given(spec=injector_specs())
@settings(max_examples=200, deadline=None)
def test_round_trips_through_dict(spec):
    assert InjectorSpec.from_dict(spec.to_dict()) == spec


@given(spec=injector_specs())
@settings(max_examples=100, deadline=None)
def test_round_trips_through_json_and_pickle(spec):
    """The dict form must survive an actual JSON encode/decode (what
    campaign log headers do), and the spec itself must pickle (what
    the multiprocessing engine does)."""
    assert InjectorSpec.from_dict(json.loads(json.dumps(spec.to_dict()))) == (
        spec
    )
    assert pickle.loads(pickle.dumps(spec)) == spec


@given(spec=injector_specs())
@settings(max_examples=50, deadline=None)
def test_every_valid_spec_is_instantiable(spec):
    """make_injector accepts every validated spec — except the one
    documented hole (scheduled without an array)."""
    if spec.kind == "scheduled" and spec.array is None:
        with pytest.raises(ValueError, match="needs an array"):
            make_injector(spec)
    else:
        make_injector(spec)


@given(
    model=st.sampled_from(FAULT_MODELS),
    seed=st.integers(min_value=0, max_value=2**62),
    loads=st.integers(min_value=1, max_value=10**6),
    stores=st.integers(min_value=1, max_value=10**6),
    bits=st.integers(min_value=0, max_value=64),
    window=st.integers(min_value=0, max_value=10**4),
)
@settings(max_examples=100, deadline=None)
def test_model_specs_round_trip(model, seed, loads, stores, bits, window):
    """The campaign-facing model mapping produces specs that survive
    the full serialize/deserialize/instantiate path."""
    spec = injector_spec_for_model(
        model,
        seed=seed,
        expected_loads=loads,
        expected_stores=stores,
        num_bits=bits,
        window=window,
    )
    assert InjectorSpec.from_dict(json.loads(json.dumps(spec.to_dict()))) == (
        spec
    )
    make_injector(spec)


@given(
    kind=st.text(min_size=1, max_size=20).filter(
        lambda s: s not in INJECTOR_KINDS
    )
)
@settings(max_examples=50, deadline=None)
def test_unknown_kind_rejected_at_construction(kind):
    with pytest.raises(ValueError, match="unknown injector kind"):
        InjectorSpec(kind=kind)
    with pytest.raises(ValueError, match="unknown injector kind"):
        InjectorSpec.from_dict({"kind": kind})


def test_unknown_model_rejected_with_known_names():
    with pytest.raises(ValueError) as excinfo:
        injector_spec_for_model("row_hammer", seed=0, expected_loads=1)
    message = str(excinfo.value)
    assert "row_hammer" in message
    for model in FAULT_MODELS:
        assert model in message


@pytest.mark.parametrize(
    "field, value",
    [
        ("expected_loads", 0),
        ("expected_loads", -3),
        ("expected_stores", 0),
        ("at_load", 0),
        ("window", 0),
        ("num_bits", -1),
        ("num_bits", 65),
        ("burst_cells", -2),
        ("addr_mode", "branch"),
        ("stuck_to", 2),
        ("expected_loads", 1.5),
        ("window", True),
    ],
)
def test_malformed_fields_rejected(field, value):
    with pytest.raises(ValueError):
        InjectorSpec(**{field: value})


def test_non_mapping_input_rejected():
    with pytest.raises(ValueError, match="must be a mapping"):
        InjectorSpec.from_dict(["random_cell"])
