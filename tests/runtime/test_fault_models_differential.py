"""Cross-backend differential suite over the full fault-model taxonomy.

The fault-model subsystem's whole contract is that a model implemented
once against the :class:`Memory` choke point behaves bit-identically
under the interpreter and the compiled backend — injection records,
verdicts, recovery outcomes, everything.  These tests pin that contract
for **every (fault model × benchmark × backend) cell**: the same
campaign spec is run once per backend and the canonical trial records
(timing dropped) must be equal element-wise.

The compiled side additionally asserts that a kernel really was
compiled (``prepare().kernel is not None``), so a silent interpreter
fallback can never turn these into interp-vs-interp tautologies.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.campaign import ProgramCampaignSpec, run_campaign
from repro.programs import ALL_BENCHMARKS
from repro.runtime.faults import FAULT_MODELS

BENCHMARKS = sorted(ALL_BENCHMARKS)

# One spec seed per model keeps trial streams distinct across cells.
SEEDS = {model: 1000 + i for i, model in enumerate(FAULT_MODELS)}


def _spec(model: str, benchmark: str, backend: str, **overrides):
    fields = dict(
        trials=3,
        seed=SEEDS[model],
        benchmark=benchmark,
        scale="small",
        fault_model=model,
        backend=backend,
    )
    fields.update(overrides)
    return ProgramCampaignSpec(**fields)


def _canonical_records(spec: ProgramCampaignSpec):
    result = run_campaign(spec, workers=1)
    assert result.records is not None
    return [record.canonical() for record in result.records]


@pytest.mark.parametrize("name", BENCHMARKS)
@pytest.mark.parametrize("model", FAULT_MODELS)
def test_backends_bit_identical(model, name):
    interp = _spec(model, name, "interp")
    compiled = _spec(model, name, "compiled")
    assert compiled.prepare().kernel is not None, (
        f"{name}: compiled campaign silently fell back to the "
        f"interpreter — the cell would not exercise codegen"
    )
    assert _canonical_records(interp) == _canonical_records(compiled)


@pytest.mark.parametrize("name", BENCHMARKS)
@pytest.mark.parametrize("model", FAULT_MODELS)
def test_backends_identical_recovery_outcomes(model, name):
    """Recovery campaigns too: same rollbacks, same final verdicts."""
    interp = _spec(
        model, name, "interp", trials=2, recover=True
    )
    compiled = _spec(
        model, name, "compiled", trials=2, recover=True
    )
    records_interp = _canonical_records(interp)
    records_compiled = _canonical_records(compiled)
    assert records_interp == records_compiled
    # The recovery extras (replays, restores, epochs) are part of the
    # canonical form; spot-check they are present so a schema change
    # cannot quietly drop them from the comparison.
    for record in records_interp:
        assert "replays" in record["extra"]
        assert record["extra"]["fault_model"] == model


@pytest.mark.parametrize("model", FAULT_MODELS)
def test_trial_records_replayable(model):
    """Any single trial replays to the same canonical record, alone."""
    from repro.campaign.engine import replay_trial

    spec = _spec(model, "trisolv", "compiled", trials=4)
    result = run_campaign(spec, workers=1)
    for record in result.records:
        assert replay_trial(spec, record.index).canonical() == (
            record.canonical()
        )


def test_worker_count_invariant_for_new_models():
    """Fan-out must not change verdicts for any new model."""
    for model in ("addrgen_store", "stuck_bit", "burst"):
        spec = _spec(model, "jacobi1d", "compiled", trials=6)
        serial = _canonical_records(spec)
        parallel = [
            r.canonical()
            for r in run_campaign(spec, workers=2).records
        ]
        assert serial == parallel


def test_backend_field_does_not_change_trial_seeds():
    """The backend is execution detail, not identity: the two specs of
    a differential cell must derive identical per-trial seeds."""
    interp = _spec("addrgen_load", "lu", "interp")
    compiled = replace(interp, backend="compiled")
    assert interp.seed == compiled.seed
    assert interp.digest() != compiled.digest()
    assert interp.golden_digest() != compiled.golden_digest()
