"""Benchmark-definition tests (Table 2 inventory)."""

import numpy as np
import pytest

from repro.ir.analysis import validate_program
from repro.programs import (
    AFFINE_BENCHMARKS,
    ALL_BENCHMARKS,
    IRREGULAR_BENCHMARKS,
)


class TestInventory:
    def test_ten_benchmarks(self):
        """Table 2 lists exactly ten programs."""
        assert len(ALL_BENCHMARKS) == 10
        assert set(AFFINE_BENCHMARKS) | set(IRREGULAR_BENCHMARKS) == set(
            ALL_BENCHMARKS
        )
        assert len(IRREGULAR_BENCHMARKS) == 2

    @pytest.mark.parametrize("name", sorted(ALL_BENCHMARKS))
    def test_metadata_complete(self, name):
        module = ALL_BENCHMARKS[name]
        assert module.NAME == name
        assert module.DESCRIPTION
        assert module.PAPER_PROBLEM_SIZE
        assert module.DEFAULT_PARAMS and module.SMALL_PARAMS

    @pytest.mark.parametrize("name", sorted(ALL_BENCHMARKS))
    def test_programs_validate(self, name):
        validate_program(ALL_BENCHMARKS[name].program())

    @pytest.mark.parametrize("name", sorted(ALL_BENCHMARKS))
    def test_initial_values_cover_arrays(self, name):
        module = ALL_BENCHMARKS[name]
        values = module.initial_values(module.SMALL_PARAMS)
        program = module.program()
        from repro.ir.analysis import to_affine

        for decl in program.arrays:
            assert decl.name in values, decl.name
            shape = tuple(
                int(
                    to_affine(d, set(program.params)).evaluate(
                        module.SMALL_PARAMS
                    )
                )
                for d in decl.dims
            )
            assert np.asarray(values[decl.name]).shape == shape

    @pytest.mark.parametrize("name", sorted(ALL_BENCHMARKS))
    def test_initial_values_deterministic(self, name):
        module = ALL_BENCHMARKS[name]
        a = module.initial_values(module.SMALL_PARAMS, seed=3)
        b = module.initial_values(module.SMALL_PARAMS, seed=3)
        for key in a:
            np.testing.assert_array_equal(
                np.asarray(a[key]), np.asarray(b[key])
            )


class TestNumericalSafety:
    def test_cholesky_input_is_spd(self):
        module = ALL_BENCHMARKS["cholesky"]
        values = module.initial_values({"n": 16})
        eigenvalues = np.linalg.eigvalsh(values["A"])
        assert eigenvalues.min() > 0

    def test_lu_input_diagonally_dominant(self):
        module = ALL_BENCHMARKS["lu"]
        m = module.initial_values({"n": 12})["A"]
        for i in range(12):
            assert abs(m[i, i]) > np.abs(m[i]).sum() - abs(m[i, i])

    def test_triangular_diagonals_nonzero(self):
        for name in ("trisolv", "strsm"):
            module = ALL_BENCHMARKS[name]
            values = module.initial_values(module.SMALL_PARAMS)
            diag = np.diag(values["L"])
            assert np.all(np.abs(diag) >= 0.5)

    def test_cg_col_indices_in_range(self):
        module = ALL_BENCHMARKS["cg"]
        params = module.SMALL_PARAMS
        colidx = module.initial_values(params)["colidx"]
        assert colidx.min() >= 0 and colidx.max() < params["n"]

    def test_strmm_variant_matches_blas(self):
        """The text's reading of the strsm/strmm discrepancy."""
        from repro.instrument.pipeline import instrument_program
        from repro.programs import strmm
        from repro.runtime.interpreter import run_program

        params = strmm.SMALL_PARAMS
        values = strmm.initial_values(params)
        result = run_program(
            strmm.program(),
            params,
            initial_values={k: v.copy() for k, v in values.items()},
        )
        np.testing.assert_allclose(
            result.memory.to_array("B"),
            strmm.reference(params, values)["B"],
            rtol=1e-10,
        )
        instrumented, _ = instrument_program(strmm.program())
        protected = run_program(
            instrumented,
            params,
            initial_values={k: v.copy() for k, v in values.items()},
        )
        assert not protected.mismatches

    def test_adi_denominators_stay_safe(self):
        """B must stay bounded away from zero through all sweeps."""
        from repro.runtime.interpreter import run_program

        module = ALL_BENCHMARKS["adi"]
        params = module.DEFAULT_PARAMS
        result = run_program(
            module.program(), params, initial_values=module.initial_values(params)
        )
        assert np.abs(result.memory.to_array("B")).min() > 0.1
