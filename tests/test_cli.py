"""CLI tests (python -m repro)."""

import numpy as np
import pytest

from repro.cli import main

DEMO = """
program demo(n) {
  array A[n][n];
  for j = 0 .. n - 1 {
    S1: A[j][j] = sqrt(A[j][j]);
    for i = j + 1 .. n - 1 {
      S2: A[i][j] = A[i][j] / A[j][j];
    }
  }
}
"""


@pytest.fixture
def demo_file(tmp_path):
    path = tmp_path / "demo.mini"
    path.write_text(DEMO)
    return str(path)


class TestInstrument:
    def test_writes_parseable_output(self, demo_file, tmp_path, capsys):
        out = str(tmp_path / "resilient.mini")
        assert main(["instrument", demo_file, "--split", "-o", out]) == 0
        from repro.ir.parser import parse_program

        program = parse_program(open(out).read())
        assert program.name.endswith("__resilient")
        err = capsys.readouterr().err
        assert "protection plans" in err

    def test_stdout_mode(self, demo_file, capsys):
        assert main(["instrument", demo_file]) == 0
        out = capsys.readouterr().out
        assert "add_to_chksm(use_cs" in out


class TestRun:
    def test_balanced_run(self, demo_file, tmp_path, capsys):
        out = str(tmp_path / "resilient.mini")
        main(["instrument", demo_file, "-o", out])
        code = main(
            ["run", out, "--param", "n=6", "--init", "A=randspd"]
        )
        assert code == 0
        assert "balanced" in capsys.readouterr().out

    def test_reparsed_macros_balance(self, demo_file, tmp_path):
        """Printed macros re-parse to free-standing statements that
        still balance on clean runs."""
        out = str(tmp_path / "resilient.mini")
        main(["instrument", demo_file, "--split", "-o", out])
        from repro.ir.parser import parse_program
        from repro.runtime.interpreter import run_program

        program = parse_program(open(out).read())
        rng = np.random.default_rng(0)
        m = rng.standard_normal((7, 7))
        result = run_program(
            program, {"n": 7}, initial_values={"A": m @ m.T + 7 * np.eye(7)}
        )
        assert not result.mismatches

    def test_missing_param_value(self, demo_file):
        with pytest.raises(SystemExit):
            main(["run", demo_file, "--param", "n"])

    def test_bad_initializer(self, demo_file):
        with pytest.raises(SystemExit):
            main(["run", demo_file, "--param", "n=4", "--init", "A=frobnicate"])


class TestAnalyze:
    def test_analyze_output(self, demo_file, capsys):
        assert main(["analyze", demo_file]) == 0
        out = capsys.readouterr().out
        assert "S1 -> S2" in out
        assert "use counts" in out

    def test_analyze_coverage_benchmark(self, tmp_path, capsys):
        artifact = str(tmp_path / "ANALYSIS_coverage.json")
        code = main(
            ["analyze", "--benchmark", "jacobi1d", "--json", artifact]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "random_cell" in out
        assert "timeline" in out
        import json

        data = json.load(open(artifact))
        entry = data["benchmarks"]["jacobi1d"]
        assert entry["basis"] == "timeline"
        assert set(entry["models"]) == {
            "random_cell", "addrgen_load", "addrgen_store",
            "stuck_bit", "burst",
        }

    def test_analyze_requires_target(self):
        with pytest.raises(SystemExit):
            main(["analyze", "--coverage"])


class TestLint:
    def test_lint_benchmark_clean(self, capsys):
        assert main(["lint", "--benchmark", "jacobi1d"]) == 0
        assert "finding" in capsys.readouterr().out

    def test_lint_file_mode(self, demo_file, tmp_path, capsys):
        out = str(tmp_path / "resilient.mini")
        main(["instrument", demo_file, "-o", out])
        assert main(["lint", out, "--param", "n=6"]) == 0

    def test_lint_requires_target(self):
        with pytest.raises(SystemExit):
            main(["lint"])

    def test_instrument_lint_flag(self, demo_file, tmp_path, capsys):
        out = str(tmp_path / "resilient.mini")
        code = main(["instrument", demo_file, "--lint", "-o", out])
        assert code == 0


class TestCampaign:
    def test_small_campaign(self, demo_file, capsys):
        code = main(
            [
                "campaign",
                "run",
                demo_file,
                "--param",
                "n=6",
                "--init",
                "A=randspd",
                "--trials",
                "6",
            ]
        )
        assert code == 0
        assert "faults detected" in capsys.readouterr().out

    def test_benchmark_campaign_with_log_and_report(self, tmp_path, capsys):
        log = str(tmp_path / "trials.jsonl")
        code = main(
            [
                "campaign",
                "run",
                "--benchmark",
                "cholesky",
                "--scale",
                "small",
                "--trials",
                "4",
                "--log",
                log,
            ]
        )
        assert code == 0
        run_out = capsys.readouterr().out
        assert "trials" in run_out

        assert main(["campaign", "report", log]) == 0
        report_out = capsys.readouterr().out
        assert "4/4 trials" in report_out

    def test_prune_static(self, capsys):
        code = main(
            [
                "campaign",
                "run",
                "--benchmark",
                "jacobi1d",
                "--scale",
                "small",
                "--trials",
                "12",
                "--prune",
                "static",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "statically predicted" in out

    def test_resume_completes_truncated_log(self, demo_file, tmp_path, capsys):
        log = str(tmp_path / "trials.jsonl")
        args = [
            "campaign",
            "run",
            demo_file,
            "--param",
            "n=6",
            "--init",
            "A=randspd",
            "--trials",
            "5",
            "--log",
            log,
        ]
        assert main(args) == 0
        capsys.readouterr()
        # Simulate a kill: drop the last record and tear the one before.
        lines = open(log).readlines()
        with open(log, "w") as handle:
            handle.write("".join(lines[:-2]) + lines[-2][:10])
        assert main(["campaign", "resume", log]) == 0
        out = capsys.readouterr().out
        assert "recovered from log" in out
        assert main(["campaign", "report", log]) == 0
        assert "5/5 trials" in capsys.readouterr().out

    def test_run_requires_program_or_benchmark(self):
        with pytest.raises(SystemExit):
            main(["campaign", "run", "--trials", "2"])


class TestMacroParsing:
    def test_macro_statements_round_trip(self):
        from repro.ir.parser import parse_program
        from repro.ir.printer import program_to_text

        source = """
        program p(n) {
          array A[n];
          array __uc_A[n] : i64;
          scalar t;
          add_to_chksm(def_cs, A[0], 2);
          add_to_chksm(e_def_cs, t, 1);
          inc_use_count(__uc_A[1], 3);
          for i = 0 .. n - 1 {
            add_to_chksm(use_cs, A[i], 1);
          }
          assert(def_cs == use_cs, e_def_cs == e_use_cs);
        }
        """
        program = parse_program(source)
        again = parse_program(program_to_text(program))
        # Free-standing checksum statements round-trip exactly (modulo
        # the one-argument inc_use_count printing with amount).
        from repro.ir.nodes import ChecksumAdd, ChecksumAssert

        kinds = [type(s).__name__ for s in program.body]
        assert "ChecksumAdd" in kinds and "ChecksumAssert" in kinds

    def test_bad_checksum_name(self):
        from repro.ir.parser import ParseError, parse_program

        with pytest.raises(ParseError):
            parse_program(
                "program p() { scalar a; add_to_chksm(nonsense, a, 1); }"
            )
