"""Public-API surface tests: the documented entry points exist and the
README quickstart works verbatim."""

import numpy as np


def test_top_level_exports():
    import repro

    for name in (
        "instrument_program",
        "InstrumentationOptions",
        "parse_program",
        "program_to_text",
        "run_program",
        "__version__",
    ):
        assert hasattr(repro, name), name


def test_subpackage_exports():
    from repro.instrument import (
        duplicate_program,
        instrument_with_epochs,
        localize_checksums,
        operator_by_name,
    )
    from repro.isl import BasicMap, BasicSet, Map, Set, count_points
    from repro.ir import ChecksumReset, ProgramBuilder
    from repro.runtime import (
        ChecksumState,
        Memory,
        RandomCellFlipper,
        ScheduledBitFlip,
    )

    assert operator_by_name("modadd").commutative


def test_readme_quickstart():
    from repro import instrument_program, parse_program, run_program
    from repro.runtime.faults import ScheduledBitFlip

    program = parse_program(
        """
        program cholesky_column(n) {
          array A[n][n];
          for j = 0 .. n - 1 {
            S1: A[j][j] = sqrt(A[j][j]);
            for i = j + 1 .. n - 1 {
              S2: A[i][j] = A[i][j] / A[j][j];
            }
          }
        }
        """
    )
    resilient, report = instrument_program(program)
    assert "S1" in report.static_counts

    m = np.random.default_rng(0).standard_normal((8, 8))
    values = {"A": m @ m.T + 8 * np.eye(8)}

    clean = run_program(
        resilient, {"n": 8}, initial_values={"A": values["A"].copy()}
    )
    assert not clean.mismatches

    faulty = run_program(
        resilient,
        {"n": 8},
        initial_values={"A": values["A"].copy()},
        injector=ScheduledBitFlip("A", (0, 0), [17, 44], at_load=2),
    )
    assert faulty.error_detected


def test_version():
    import repro

    major, *_ = repro.__version__.split(".")
    assert int(major) >= 1
