"""Figure 10/11 harness tests: overhead shape matches the paper."""

import pytest

from repro.experiments.figure10 import (
    build_benchmark,
    format_table2,
    measure_counts,
    overhead_row,
)
from repro.experiments.figure11 import hardware_row
from repro.experiments.reporting import OverheadRow, format_overheads, geomean
from repro.runtime.costmodel import CostModel


@pytest.fixture(scope="module")
def rows():
    """Small-scale Figure 10+11 rows for a representative subset."""
    names = ["cholesky", "jacobi1d", "cg", "moldyn", "trisolv"]
    return {name: hardware_row(name, scale="small") for name in names}


class TestShape:
    def test_resilient_slower_than_original(self, rows):
        for name, row in rows.items():
            assert row.resilient > 1.0, name

    def test_optimization_never_hurts(self, rows):
        for name, row in rows.items():
            assert row.resilient_optimized <= row.resilient + 1e-9, name

    def test_hardware_cheaper_than_software(self, rows):
        """Figure 11: the checksum functional unit reduces overheads."""
        for name, row in rows.items():
            assert row.hardware < row.resilient_optimized, name

    def test_cg_gains_from_hoisting(self):
        """Paper: all of CG's benefit comes from inspector hoisting."""
        row = overhead_row("cg", scale="small")
        assert row.resilient_optimized < row.resilient

    def test_moldyn_not_helped_by_optimizations(self, rows):
        """Paper: moldyn's inspector cannot be hoisted — the optimized
        build is no better."""
        row = rows["moldyn"]
        assert row.resilient_optimized == pytest.approx(
            row.resilient, rel=0.05
        )

    def test_moldyn_among_worst(self, rows):
        """Paper: moldyn has the highest overhead."""
        moldyn = rows["moldyn"].resilient_optimized
        others = [
            row.resilient_optimized
            for name, row in rows.items()
            if name not in ("moldyn", "cg")
        ]
        assert moldyn > min(others)


class TestMechanics:
    def test_counts_fault_free(self):
        builds = build_benchmark("cholesky", scale="small")
        counts = measure_counts(builds)
        assert counts["original"].checksum_ops == 0
        assert counts["resilient"].checksum_ops > 0

    def test_cost_model_hardware_discount(self):
        builds = build_benchmark("cholesky", scale="small")
        counts = measure_counts(builds)
        cm = CostModel()
        software = cm.estimate(counts["optimized"], hardware_checksums=False)
        hardware = cm.estimate(counts["optimized"], hardware_checksums=True)
        assert hardware < software

    def test_geomean(self):
        assert geomean([2.0, 8.0]) == pytest.approx(4.0)
        assert geomean([]) != geomean([])  # nan

    def test_format_overheads(self, rows):
        text = format_overheads(
            list(rows.values()), "test title", paper_geomeans={"resilient": 1.788}
        )
        assert "geomean" in text and "test title" in text

    def test_table2_lists_all_benchmarks(self):
        text = format_table2()
        from repro.programs import ALL_BENCHMARKS

        for name in ALL_BENCHMARKS:
            assert name in text
        assert "strsm" in text


class TestWallClock:
    def test_wall_measure_runs(self):
        from repro.experiments.figure10 import measure_wall

        builds = build_benchmark("trisolv", scale="small")
        times = measure_wall(builds, repeats=1)
        assert set(times) == {"original", "resilient", "optimized"}
        assert all(t > 0 for t in times.values())
