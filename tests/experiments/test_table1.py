"""Table 1 harness tests: rates land in the paper's bands."""

import random

import pytest

from repro.experiments.table1 import (
    Table1Config,
    format_table,
    run_cell,
    run_table1,
)


class TestRunCell:
    def test_two_bit_random_rate_near_paper(self):
        """Paper: ~0.76-0.79% undetected for 2-bit flips in random data.
        Analytically 1/64 * 1/2 = 0.78%."""
        rng = random.Random(42)
        one, _ = run_cell(100, 2, "random", trials=60_000, rng=rng)
        assert 0.55 <= one <= 1.05

    def test_two_bit_all_zero_rate_near_paper(self):
        """Paper: ~0.014-0.025%; analytically (1/64)^2 = 0.024% (both
        flips at the sign bit of different words)."""
        rng = random.Random(43)
        one, _ = run_cell(100, 2, "all0", trials=120_000, rng=rng)
        assert one <= 0.12

    def test_all1_equals_all0_statistically(self):
        rng = random.Random(44)
        one0, _ = run_cell(64, 2, "all0", trials=40_000, rng=rng)
        one1, _ = run_cell(64, 2, "all1", trials=40_000, rng=rng)
        assert abs(one0 - one1) < 0.1

    def test_two_checksums_strictly_better(self):
        rng = random.Random(45)
        one, two = run_cell(100, 2, "random", trials=60_000, rng=rng)
        assert two <= one
        # Paper: ~0.02% for two checksums; allow statistical headroom.
        assert two <= 0.15

    def test_higher_bit_counts_rarely_missed(self):
        """Paper: 4..6-bit random errors essentially always caught."""
        rng = random.Random(46)
        for bits in (4, 5, 6):
            one, two = run_cell(100, bits, "random", trials=20_000, rng=rng)
            assert one <= 0.1, bits
            assert two == 0.0, bits

    def test_deterministic_given_seed(self):
        a = run_cell(100, 2, "random", 5_000, random.Random(1))
        b = run_cell(100, 2, "random", 5_000, random.Random(1))
        assert a == b


class TestHarness:
    def test_run_table1_shape(self):
        config = Table1Config(
            sizes=(100,), bit_counts=(2, 3), patterns=("all0", "random"),
            trials=500,
        )
        rows = run_table1(config)
        assert len(rows) == 4
        keys = {(r.bits, r.size, r.pattern) for r in rows}
        assert (2, 100, "all0") in keys and (3, 100, "random") in keys

    def test_format_table(self):
        config = Table1Config(sizes=(100,), bit_counts=(2,), trials=200)
        rows = run_table1(config)
        text = format_table(rows)
        assert "Table 1" in text
        assert "paper" in text

    def test_incremental_matches_full_recompute(self):
        """The incremental checksum delta equals full recomputation."""
        from repro.instrument.operators import ModularAddChecksum
        from repro.runtime.faults import flip_random_bits_in_words

        rng = random.Random(7)
        op = ModularAddChecksum()
        for _ in range(50):
            words = [rng.getrandbits(64) for _ in range(32)]
            original = list(words)
            flip_random_bits_in_words(words, rng.randint(2, 6), rng)
            full_detect = op.compute(words) != op.compute(original)
            delta = 0
            for a, b in zip(original, words):
                delta = (delta + b - a) & ((1 << 64) - 1)
            assert (delta != 0) == full_detect
