"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ir.parser import parse_program

CHOLESKY_SNIPPET = """
program paper_example(n) {
  array A[n][n];
  for j = 0 .. n - 1 {
    S1: A[j][j] = sqrt(A[j][j]);
    for i = j + 1 .. n - 1 {
      S2: A[i][j] = A[i][j] / A[j][j];
    }
  }
}
"""


@pytest.fixture
def paper_example():
    """The paper's Figure 2 running example."""
    return parse_program(CHOLESKY_SNIPPET)


def spd_matrix(n: int, seed: int = 0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    m = rng.standard_normal((n, n))
    return m @ m.T + n * np.eye(n)


def copy_values(values: dict) -> dict:
    return {k: (v.copy() if hasattr(v, "copy") else v) for k, v in values.items()}
