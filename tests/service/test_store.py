"""Unit tests for the unified content-addressed artifact store."""

import os
import pickle

import pytest

from repro.service import store as store_mod
from repro.service.store import (
    ENV_STORE_DIR,
    Namespace,
    counters_add,
    counters_delta,
    namespace,
    namespace_hit_rate,
    set_store_dir,
    store_dir,
)


@pytest.fixture(autouse=True)
def clean_store(monkeypatch):
    monkeypatch.delenv(ENV_STORE_DIR, raising=False)
    set_store_dir(None)
    # Tests register throwaway namespaces; drop them afterwards so the
    # process-wide registry does not accumulate across the suite.
    before = set(store_mod._NAMESPACES)
    yield
    set_store_dir(None)
    for name in list(store_mod._NAMESPACES):
        if name not in before:
            del store_mod._NAMESPACES[name]


class TestMemoryLayer:
    def test_get_or_compute_computes_once(self):
        ns = Namespace("t-basic")
        calls = []
        value = ns.get_or_compute("k", lambda: calls.append(1) or 42)
        again = ns.get_or_compute("k", lambda: calls.append(1) or 43)
        assert value == again == 42
        assert len(calls) == 1
        stats = ns.stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 1

    def test_lookup_counts_and_preserves_false(self):
        ns = Namespace("t-false")
        assert ns.lookup("k") is None
        ns.store("k", False)
        # False is a legitimate cached value (the ISL emptiness memo
        # stores False verdicts) and must come back as a hit.
        assert ns.lookup("k") is False
        stats = ns.stats()
        assert stats["misses"] == 1
        assert stats["hits"] == 1

    def test_lru_eviction_order(self):
        ns = Namespace("t-lru", limit=2)
        ns.store("a", 1)
        ns.store("b", 2)
        assert ns.lookup("a") == 1  # refresh a; b is now oldest
        ns.store("c", 3)
        assert ns.keys() == ["a", "c"]
        assert ns.stats()["evictions"] == 1

    def test_set_limit_shrinks(self):
        ns = Namespace("t-shrink", limit=8)
        for i in range(6):
            ns.store(i, i)
        ns.set_limit(2)
        assert len(ns.keys()) == 2
        with pytest.raises(ValueError):
            ns.set_limit(0)

    def test_clear_resets_counters(self):
        ns = Namespace("t-clear")
        ns.get_or_compute("k", lambda: 1)
        ns.clear()
        assert ns.stats() == {
            "hits": 0,
            "misses": 0,
            "evictions": 0,
            "disk_hits": 0,
            "size": 0,
            "limit": 128,
        }

    def test_registry_returns_same_instance(self):
        first = namespace("t-registry", limit=4)
        second = namespace("t-registry", limit=999)
        assert first is second
        assert second.limit == 4


class TestDiskLayer:
    def test_roundtrip_across_clear(self, tmp_path):
        set_store_dir(tmp_path)
        ns = Namespace("t-disk", disk=True)
        ns.get_or_compute(("k", 1), lambda: {"x": 2})
        ns.clear()
        value = ns.get_or_compute(("k", 1), lambda: pytest.fail("recompute"))
        assert value == {"x": 2}
        stats = ns.stats()
        assert stats["disk_hits"] == 1
        assert stats["misses"] == 0

    def test_string_keys_keep_their_name(self, tmp_path):
        # The instrumentation cache's SHA-256 hex keys must map to
        # ``<key>.pkl`` so existing disk caches stay addressable.
        set_store_dir(tmp_path)
        ns = Namespace("t-names", disk=True)
        ns.get_or_compute("abc123", lambda: 7)
        assert (tmp_path / "t-names" / "abc123.pkl").exists()

    def test_tuple_keys_digest_deterministically(self, tmp_path):
        set_store_dir(tmp_path)
        ns = Namespace("t-digest", disk=True)
        key = ("digest", 2, (3, 4))
        ns.get_or_compute(key, lambda: 1)
        fresh = Namespace("t-digest2")
        assert ns.digest(key) == fresh.digest(key)
        assert (tmp_path / "t-digest" / f"{ns.digest(key)}.pkl").exists()

    def test_corrupted_entry_recomputes(self, tmp_path):
        set_store_dir(tmp_path)
        ns = Namespace("t-corrupt", disk=True)
        ns.get_or_compute("k", lambda: 5)
        path = tmp_path / "t-corrupt" / "k.pkl"
        path.write_bytes(b"not a pickle")
        ns.clear()
        assert ns.get_or_compute("k", lambda: 6) == 6
        assert ns.stats()["misses"] == 1

    def test_decode_veto_is_a_miss(self, tmp_path):
        set_store_dir(tmp_path)
        ns = Namespace("t-veto", disk=True, decode=lambda payload: None)
        ns.get_or_compute("k", lambda: 1)
        ns.clear()
        assert ns.get_or_compute("k", lambda: 2) == 2

    def test_encode_none_keeps_entry_memory_only(self, tmp_path):
        set_store_dir(tmp_path)
        ns = Namespace("t-memonly", disk=True, encode=lambda value: None)
        ns.get_or_compute("k", lambda: 1)
        assert not (tmp_path / "t-memonly").exists() or not list(
            (tmp_path / "t-memonly").glob("*.pkl")
        )

    def test_encode_decode_hooks_roundtrip(self, tmp_path):
        set_store_dir(tmp_path)
        ns = Namespace(
            "t-codec",
            disk=True,
            encode=lambda value: {"wrapped": value},
            decode=lambda payload: payload["wrapped"],
        )
        ns.get_or_compute("k", lambda: [1, 2])
        raw = pickle.loads(
            (tmp_path / "t-codec" / "k.pkl").read_bytes()
        )
        assert raw == {"wrapped": [1, 2]}
        ns.clear()
        assert ns.get_or_compute("k", lambda: None) == [1, 2]

    def test_unpicklable_value_degrades_silently(self, tmp_path):
        set_store_dir(tmp_path)
        ns = Namespace("t-unpick", disk=True)
        value = ns.get_or_compute("k", lambda: lambda: 1)  # a closure
        assert callable(value)
        assert ns.lookup("k") is value

    def test_env_var_enables_disk(self, tmp_path, monkeypatch):
        monkeypatch.setenv(ENV_STORE_DIR, str(tmp_path))
        assert store_dir() == tmp_path
        ns = Namespace("t-env", disk=True)
        ns.get_or_compute("k", lambda: 3)
        assert list((tmp_path / "t-env").glob("*.pkl"))

    def test_explicit_dir_beats_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv(ENV_STORE_DIR, str(tmp_path / "env"))
        set_store_dir(tmp_path / "explicit")
        assert store_dir() == tmp_path / "explicit"

    def test_dir_resolver_wins(self, tmp_path):
        set_store_dir(tmp_path / "store")
        private = tmp_path / "private"
        ns = Namespace("t-resolver", disk=True, dir_resolver=lambda: private)
        ns.get_or_compute("k", lambda: 1)
        assert (private / "k.pkl").exists()

    def test_unwritable_dir_degrades(self, tmp_path):
        target = tmp_path / "ro"
        target.mkdir()
        os.chmod(target, 0o500)
        try:
            ns = Namespace(
                "t-ro", disk=True, dir_resolver=lambda: target / "sub"
            )
            assert ns.get_or_compute("k", lambda: 9) == 9
        finally:
            os.chmod(target, 0o700)


class TestCounterAggregation:
    def test_delta_and_add_roundtrip(self):
        base = {
            "store": {"golden": {"hits": 1, "misses": 2}},
            "vector": {"probes": 3},
        }
        now = {
            "store": {
                "golden": {"hits": 4, "misses": 2},
                "kernel": {"hits": 1, "misses": 1},
            },
            "vector": {"probes": 5, "runs": 2},
        }
        delta = counters_delta(now, base)
        assert delta["store"]["golden"] == {"hits": 3, "misses": 0}
        assert delta["store"]["kernel"] == {"hits": 1, "misses": 1}
        assert delta["vector"] == {"probes": 2, "runs": 2}
        total = {}
        counters_add(total, delta)
        counters_add(total, delta)
        assert total["store"]["golden"]["hits"] == 6
        assert total["vector"]["probes"] == 4

    def test_delta_clamps_at_zero(self):
        # A replaced worker restarts its counters; a shrinking counter
        # must not poison the aggregate with negative numbers.
        delta = counters_delta(
            {"store": {"g": {"hits": 1}}, "vector": {}},
            {"store": {"g": {"hits": 5}}, "vector": {}},
        )
        assert delta["store"]["g"]["hits"] == 0

    def test_hit_rate(self):
        stats = {
            "golden": {"hits": 8, "disk_hits": 1, "misses": 1},
            "kernel": {"hits": 0, "disk_hits": 0, "misses": 10},
        }
        assert namespace_hit_rate(stats, ("golden",)) == 0.9
        assert namespace_hit_rate(stats) == 0.45
        assert namespace_hit_rate({}) == 0.0
