"""Detect–localize–recover subsystem tests."""
