"""Recovery campaigns: verdict taxonomy, determinism, serialization."""

import pytest

from repro.campaign.engine import run_campaign
from repro.campaign.records import (
    RECOVERED,
    RECOVERY_FAILED,
    RECOVERY_VERDICTS,
    SDC_AFTER_RECOVERY,
    VERDICTS,
)
from repro.campaign.spec import ProgramCampaignSpec, spec_from_dict
from repro.campaign.stats import summarize


class TestSpec:
    def test_recover_requires_instrumentation(self):
        with pytest.raises(ValueError):
            ProgramCampaignSpec(
                trials=1,
                seed=0,
                benchmark="jacobi1d",
                instrument=False,
                recover=True,
            )

    def test_round_trips_through_dict(self):
        spec = ProgramCampaignSpec(
            trials=5,
            seed=3,
            benchmark="jacobi1d",
            recover=True,
            recover_retries=5,
        )
        clone = spec_from_dict(spec.to_dict())
        assert clone == spec
        assert clone.recover and clone.recover_retries == 5

    def test_recovery_verdicts_are_registered(self):
        for verdict in RECOVERY_VERDICTS:
            assert verdict in VERDICTS


class TestCampaign:
    @pytest.mark.parametrize("bench_name", ["jacobi1d", "cg"])
    def test_detected_trials_recover(self, bench_name):
        spec = ProgramCampaignSpec(
            trials=25,
            seed=20140609,
            benchmark=bench_name,
            scale="small",
            recover=True,
        )
        result = run_campaign(spec)
        counts = result.counts
        assert counts.get(RECOVERY_FAILED, 0) == 0
        assert counts.get(SDC_AFTER_RECOVERY, 0) == 0
        assert counts.get(RECOVERED, 0) > 0
        summary = result.summary()
        assert summary.recovery_outcomes == summary.recovered
        assert summary.recovery_rate == 1.0
        # Every recovery record carries the controller observables.
        for record in result.records:
            if record.verdict in RECOVERY_VERDICTS:
                assert record.extra["mode"] in ("epochs", "single")
                assert record.extra["replays"] >= 1

    def test_parallel_matches_serial(self):
        spec = ProgramCampaignSpec(
            trials=20,
            seed=11,
            benchmark="cholesky",
            scale="small",
            recover=True,
        )
        serial = run_campaign(spec, workers=1)
        parallel = run_campaign(spec, workers=2)
        assert [r.canonical() for r in serial.records] == [
            r.canonical() for r in parallel.records
        ]

    def test_backends_produce_identical_verdicts(self):
        records = {}
        for backend in ("interp", "compiled"):
            spec = ProgramCampaignSpec(
                trials=15,
                seed=7,
                benchmark="jacobi1d",
                scale="small",
                recover=True,
                backend=backend,
            )
            result = run_campaign(spec)
            records[backend] = [
                {**r.canonical(), "backend": None} for r in result.records
            ]
        assert records["interp"] == records["compiled"]

    def test_summary_format_mentions_recovery(self):
        spec = ProgramCampaignSpec(
            trials=15,
            seed=20140609,
            benchmark="jacobi1d",
            scale="small",
            recover=True,
        )
        summary = summarize(run_campaign(spec).records)
        text = summary.format()
        assert "recovery:" in text
        assert "detected faults survived" in text
