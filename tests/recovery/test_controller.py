"""Recovery controller: detect → localize → restore → replay.

The determinism/bit-identity suite for the subsystem: fault-free runs
match the uninstrumented golden output on both backends, seeded faults
are survived with golden-matching finals, the two backends agree on
every observable of every trial, and the retry budget turns
unrecoverable situations into an explicit failure rather than a loop.
"""

import random

import numpy as np
import pytest

from repro.instrument.pipeline import InstrumentationOptions
from repro.programs import ALL_BENCHMARKS
from repro.recovery import (
    RecoveryPlanError,
    RecoveryPolicy,
    build_recovery_plan,
    run_plan,
    run_with_recovery,
)
from repro.runtime.compile import execute_program
from repro.runtime.faults import RandomCellFlipper

from tests.conftest import copy_values

OPT = InstrumentationOptions(index_set_splitting=True, hoist_inspectors=True)

EPOCH_BENCH = ["jacobi1d", "cholesky", "seidel"]
SINGLE_BENCH = ["cg"]


def _setup(name):
    module = ALL_BENCHMARKS[name]
    program = module.program()
    params = dict(module.SMALL_PARAMS)
    values = module.initial_values(params, seed=7)
    golden = execute_program(
        program, params, initial_values=copy_values(values)
    )
    plan = build_recovery_plan(program, options=OPT)
    return program, params, values, golden, plan


def _matches_golden(program, golden, result) -> bool:
    return all(
        np.array_equal(
            golden.memory.to_array(d.name), result.memory.to_array(d.name)
        )
        for d in program.arrays
    )


class TestPlan:
    @pytest.mark.parametrize("name", EPOCH_BENCH)
    def test_epoch_mode_for_time_loop_shapes(self, name):
        plan = build_recovery_plan(ALL_BENCHMARKS[name].program(), options=OPT)
        assert plan.mode == "epochs"
        assert plan.outer_var is not None
        assert plan.rest_program is not None

    @pytest.mark.parametrize("name", SINGLE_BENCH + ["moldyn"])
    def test_single_mode_for_irregular_shapes(self, name):
        plan = build_recovery_plan(ALL_BENCHMARKS[name].program(), options=OPT)
        assert plan.mode == "single"
        assert plan.rest_program is None

    def test_localize_option_rejected(self):
        with pytest.raises(RecoveryPlanError):
            build_recovery_plan(
                ALL_BENCHMARKS["jacobi1d"].program(),
                options=InstrumentationOptions(localize=True),
            )

    def test_plans_are_memoized(self):
        program = ALL_BENCHMARKS["jacobi1d"].program()
        assert build_recovery_plan(program, options=OPT) is build_recovery_plan(
            program, options=OPT
        )


class TestFaultFree:
    @pytest.mark.parametrize("name", EPOCH_BENCH + SINGLE_BENCH)
    @pytest.mark.parametrize("backend", ["interp", "compiled"])
    def test_matches_uninstrumented_golden(self, name, backend):
        program, params, values, golden, plan = _setup(name)
        result = run_plan(
            plan, params, initial_values=copy_values(values), backend=backend
        )
        assert not result.detected
        assert result.completed
        assert _matches_golden(program, golden, result)
        assert result.checkpoint_stats["checkpoints"] >= 1


class TestRecovery:
    @pytest.mark.parametrize("name", EPOCH_BENCH + SINGLE_BENCH)
    def test_seeded_faults_survived_and_backends_agree(self, name):
        program, params, values, golden, plan = _setup(name)
        clean = run_plan(plan, params, initial_values=copy_values(values))
        total_loads = max(1, clean.memory.load_count)
        targets = [d.name for d in program.arrays]
        detected = 0
        for seed in range(20):
            observables = []
            for backend in ("interp", "compiled"):
                injector = RandomCellFlipper(
                    2, total_loads, random.Random(seed), target_arrays=targets
                )
                result = run_plan(
                    plan,
                    params,
                    initial_values=copy_values(values),
                    injector=injector,
                    wild_reads=True,
                    backend=backend,
                )
                observables.append(
                    (
                        result.detected,
                        result.failed,
                        result.epochs,
                        result.replays,
                        result.targeted_restores,
                        result.full_restores,
                        result.implicated,
                        _matches_golden(program, golden, result),
                    )
                )
            assert observables[0] == observables[1], (name, seed)
            was_detected, failed, *_, match = observables[0]
            if was_detected:
                detected += 1
                assert not failed, (name, seed)
                assert match, (name, seed)
        assert detected > 0, f"{name}: no seed produced a detection"

    def test_exhausted_budget_is_explicit_failure(self):
        # A sticky injector (re-corrupts on every load of the cell)
        # violates the transient-fault model, so every replay re-detects
        # and the budget must end the run rather than loop forever.
        class StickyCorruptor:
            def before_load(self, memory, name, indices, bits):
                if name == "A" and indices == (3,):
                    return bits ^ (1 << 17)
                return None

            def after_store(self, memory, name, indices, bits):
                return None

        program, params, values, _, plan = _setup("jacobi1d")
        result = run_plan(
            plan,
            params,
            initial_values=copy_values(values),
            injector=StickyCorruptor(),
            policy=RecoveryPolicy(max_retries=2),
        )
        assert result.detected
        assert result.failed
        assert not result.completed
        assert result.replays <= 2

    def test_single_epoch_batching_still_recovers(self):
        program, params, values, golden, plan = _setup("jacobi1d")
        clean = run_plan(plan, params, initial_values=copy_values(values))
        total_loads = max(1, clean.memory.load_count)
        targets = [d.name for d in program.arrays]
        recovered = 0
        for seed in range(20):
            injector = RandomCellFlipper(
                2, total_loads, random.Random(seed), target_arrays=targets
            )
            result = run_plan(
                plan,
                params,
                initial_values=copy_values(values),
                injector=injector,
                wild_reads=True,
                policy=RecoveryPolicy(segment_epochs=1),
            )
            if result.detected:
                assert not result.failed, seed
                assert _matches_golden(program, golden, result), seed
                recovered += 1
        assert recovered > 0

    def test_run_with_recovery_convenience(self):
        module = ALL_BENCHMARKS["jacobi1d"]
        params = dict(module.SMALL_PARAMS)
        values = module.initial_values(params, seed=7)
        result = run_with_recovery(
            module.program(),
            params,
            initial_values=copy_values(values),
            options=OPT,
        )
        assert result.completed and not result.detected
