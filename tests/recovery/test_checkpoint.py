"""Checkpoint store: copy-on-write, the ring bound, targeted restore —
plus the substrate contracts they depend on (region version counters,
checksum-state snapshot/restore)."""

import numpy as np
import pytest

from repro.programs import ALL_BENCHMARKS
from repro.recovery.checkpoint import CheckpointStore
from repro.runtime.memory import Memory, build_memory_for_program
from repro.runtime.state import ChecksumState


def _memory():
    module = ALL_BENCHMARKS["jacobi1d"]
    params = dict(module.SMALL_PARAMS)
    program = module.program()
    memory = build_memory_for_program(program, params)
    for name, values in module.initial_values(params).items():
        memory.initialize(name, values)
    return memory


class TestRegionVersions:
    def test_store_bumps_version(self):
        memory = _memory()
        before = memory.region_version("A")
        memory.store_bits("A", (1,), memory.peek_bits("A", (1,)) ^ 1)
        assert memory.region_version("A") == before + 1

    def test_initialize_bumps_version(self):
        memory = _memory()
        before = memory.region_version("A")
        memory.initialize("A", np.zeros(16))
        assert memory.region_version("A") > before

    def test_corruption_does_not_bump_version(self):
        # flip_bits models a transient fault striking the cell at rest;
        # the version counter tracks *program* writes only, which is
        # what makes copy-on-write sharing safe under the
        # single-transient-fault model.
        memory = _memory()
        before = memory.region_version("A")
        memory.flip_bits("A", (2,), [3])
        assert memory.region_version("A") == before

    def test_restore_region_words_roundtrip(self):
        memory = _memory()
        saved = memory.copy_region_words("A")
        memory.flip_bits("A", (2,), [3, 17])
        assert memory.copy_region_words("A") != saved
        memory.restore_region_words("A", saved)
        assert memory.copy_region_words("A") == saved

    def test_restore_rejects_wrong_length(self):
        memory = _memory()
        with pytest.raises(Exception):
            memory.restore_region_words("A", (0, 1, 2))


class TestChecksumSnapshot:
    def test_roundtrip(self):
        state = ChecksumState(channels=2)
        state.add("def", 0, 123)
        state.add("use", 1, 456)
        saved = state.snapshot()
        state.add("def", 0, 999)
        state.restore(saved)
        fresh = ChecksumState(channels=2)
        fresh.add("def", 0, 123)
        fresh.add("use", 1, 456)
        assert state.sums == fresh.sums

    def test_channel_mismatch_rejected(self):
        saved = ChecksumState(channels=1).snapshot()
        with pytest.raises(Exception):
            ChecksumState(channels=2).restore(saved)


class TestStore:
    def test_cow_shares_untouched_regions(self):
        memory = _memory()
        checksums = ChecksumState(channels=1)
        store = CheckpointStore(memory, ring=2)
        first = store.take(0, checksums)
        memory.store_bits("A", (0,), memory.peek_bits("A", (0,)) ^ 1)
        second = store.take(1, checksums)
        assert second.words["A"] is not first.words["A"]
        untouched = [n for n in first.words if n != "A"]
        assert untouched, "benchmark should have more than one region"
        for name in untouched:
            assert second.words[name] is first.words[name]
        assert store.stats["regions_shared"] > 0

    def test_ring_is_bounded(self):
        memory = _memory()
        checksums = ChecksumState(channels=1)
        store = CheckpointStore(memory, ring=2)
        for epoch in range(5):
            store.take(epoch, checksums)
        retained = store.retained()
        assert len(retained) == 2
        assert [cp.epoch for cp in retained] == [3, 4]

    def test_dirty_since_tracks_program_writes_only(self):
        memory = _memory()
        checksums = ChecksumState(channels=1)
        store = CheckpointStore(memory, ring=2)
        checkpoint = store.take(0, checksums)
        assert store.dirty_since(checkpoint) == set()
        memory.store_bits("A", (3,), memory.peek_bits("A", (3,)) ^ 1)
        memory.flip_bits("B", (1,), [5])  # corruption: not "dirty"
        assert store.dirty_since(checkpoint) == {"A"}

    def test_targeted_restore_restores_only_named_regions(self):
        memory = _memory()
        checksums = ChecksumState(channels=1)
        store = CheckpointStore(memory, ring=2)
        checkpoint = store.take(0, checksums)
        a_saved = memory.copy_region_words("A")
        for name in ("A", "B"):
            memory.store_bits(name, (0,), memory.peek_bits(name, (0,)) ^ 1)
        b_dirty = memory.copy_region_words("B")
        restored = store.restore(checkpoint, checksums, only={"A"})
        assert list(restored) == ["A"]
        assert memory.copy_region_words("A") == a_saved
        assert memory.copy_region_words("B") == b_dirty
        assert store.stats["restores_targeted"] == 1

    def test_full_restore_restores_everything(self):
        memory = _memory()
        checksums = ChecksumState(channels=1)
        checksums.add("def", 0, 7)
        store = CheckpointStore(memory, ring=2)
        checkpoint = store.take(0, checksums)
        snapshot = {n: memory.copy_region_words(n) for n in checkpoint.words}
        for name in ("A", "B"):
            memory.store_bits(name, (0,), memory.peek_bits(name, (0,)) ^ 1)
        checksums.add("def", 0, 1000)
        store.restore(checkpoint, checksums)
        for name, words in snapshot.items():
            assert memory.copy_region_words(name) == words
        fresh = ChecksumState(channels=1)
        fresh.add("def", 0, 7)
        assert checksums.sums == fresh.sums
