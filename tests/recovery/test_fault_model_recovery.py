"""Recovery-ladder honesty regressions, one per fault model.

The controller's escalation ladder (targeted restore → full restore →
epoch rewind) either genuinely recovers or must say so: a trial whose
verdict is ``recovered`` has to end **golden-identical everywhere**,
struck cells included, and anything less must surface as
``recovery_failed`` or ``sdc_after_recovery`` — never a silent
wrong-output ``recovered``.

The verdict logic in ``ProgramCampaignSpec._run_recovery_trial``
already claims this; these tests *independently re-execute* each
recovered trial through :func:`repro.recovery.run_plan` and diff the
final memory against an independently computed golden run, so a future
bug in the verdict plumbing (e.g. ``replay_detected`` computed from
the wrong memory) cannot certify itself.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.campaign import ProgramCampaignSpec, run_campaign, trial_seed
from repro.campaign.records import (
    BENIGN,
    NO_INJECTION,
    RECOVERED,
    RECOVERY_FAILED,
    SDC,
    SDC_AFTER_RECOVERY,
)
from repro.runtime.faults import FAULT_MODELS

RECOVERY_OUTCOMES = {
    RECOVERED,
    RECOVERY_FAILED,
    SDC_AFTER_RECOVERY,
    SDC,
    BENIGN,
    NO_INJECTION,
}

TRIALS = 6


def _campaign(model: str, benchmark: str = "trisolv"):
    spec = ProgramCampaignSpec(
        trials=TRIALS,
        seed=500 + list(FAULT_MODELS).index(model),
        benchmark=benchmark,
        scale="small",
        fault_model=model,
        recover=True,
        backend="compiled",
    )
    return spec, run_campaign(spec, workers=1)


def _reexecute(spec: ProgramCampaignSpec, index: int):
    """Re-run one trial outside the campaign engine and return its
    final memory plus the prepared golden finals."""
    from repro.campaign.spec import _copy_values
    from repro.recovery import RecoveryPolicy, run_plan

    prepared = spec.prepare()
    injector = spec._make_trial_injector(
        trial_seed(spec.seed, index), prepared
    )
    outcome = run_plan(
        prepared.plan,
        prepared.params,
        initial_values=_copy_values(prepared.values),
        injector=injector,
        channels=spec.channels,
        wild_reads=True,
        backend=spec.backend,
        policy=RecoveryPolicy(max_retries=spec.recover_retries),
    )
    return outcome, prepared.golden_finals


@pytest.mark.parametrize("model", FAULT_MODELS)
def test_verdicts_stay_inside_recovery_vocabulary(model):
    _, result = _campaign(model)
    for record in result.records:
        assert record.verdict in RECOVERY_OUTCOMES, (
            f"{model} trial {record.index}: {record.verdict}"
        )


@pytest.mark.parametrize("model", FAULT_MODELS)
def test_recovered_means_golden_identical(model):
    """The headline honesty property, verified by independent
    re-execution rather than by trusting the recorded extras."""
    spec, result = _campaign(model)
    recovered = [r for r in result.records if r.verdict == RECOVERED]
    for record in recovered:
        outcome, golden = _reexecute(spec, record.index)
        assert outcome.detected and not outcome.failed
        for name, gold in golden.items():
            np.testing.assert_array_equal(
                outcome.memory.to_array(name),
                gold,
                err_msg=(
                    f"{model} trial {record.index} verdict=recovered but "
                    f"array {name} diverges from golden"
                ),
            )


@pytest.mark.parametrize("model", FAULT_MODELS)
def test_failure_verdicts_are_honest(model):
    """recovery_failed ⇔ the controller exhausted its ladder;
    sdc_after_recovery ⇔ it claimed success over divergent finals."""
    spec, result = _campaign(model)
    for record in result.records:
        if record.verdict == RECOVERY_FAILED:
            outcome, _ = _reexecute(spec, record.index)
            assert outcome.failed
        elif record.verdict == SDC_AFTER_RECOVERY:
            outcome, golden = _reexecute(spec, record.index)
            assert outcome.detected and not outcome.failed
            assert any(
                not np.array_equal(outcome.memory.to_array(name), gold)
                for name, gold in golden.items()
            )


def test_stuck_bit_long_window_cannot_yield_silent_recovered():
    """A defect that stays active across the whole run keeps
    re-corrupting after every rollback — recovery may fail or leave
    SDC, but any trial labelled ``recovered`` must still be golden.

    A huge window plus stuck_to=1 maximises re-corruption pressure, so
    this is the targeted regression for the silent-wrong-output
    failure mode the honest-verdict split exists to prevent."""
    spec = ProgramCampaignSpec(
        trials=8,
        seed=77,
        benchmark="jacobi1d",
        scale="small",
        fault_model="stuck_bit",
        stuck_window=10**9,
        recover=True,
        backend="compiled",
    )
    result = run_campaign(spec, workers=1)
    assert any(r.verdict != NO_INJECTION for r in result.records)
    for record in result.records:
        if record.verdict != RECOVERED:
            continue
        outcome, golden = _reexecute(spec, record.index)
        for name, gold in golden.items():
            np.testing.assert_array_equal(
                outcome.memory.to_array(name), gold
            )


@pytest.mark.parametrize("model", ("addrgen_store", "burst"))
def test_ladder_is_exercised_not_bypassed(model):
    """At least one detected trial per model actually walks the ladder
    (replays/restores > 0) — guards against a regression where the
    controller stops invoking recovery for redirecting injectors."""
    _, result = _campaign(model, benchmark="jacobi1d")
    walked = [
        r
        for r in result.records
        if r.verdict in (RECOVERED, RECOVERY_FAILED, SDC_AFTER_RECOVERY)
    ]
    assert walked, f"{model}: no trial ever triggered recovery"
    assert any(
        r.extra["replays"]
        or r.extra["targeted_restores"]
        or r.extra["full_restores"]
        for r in walked
    )
