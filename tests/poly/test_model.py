"""Polyhedral model extraction tests."""

from repro.ir.parser import parse_program
from repro.isl.enumerate_points import enumerate_points
from repro.poly.model import extract_model


class TestDomains:
    def test_paper_example_domains(self, paper_example):
        model = extract_model(paper_example)
        s1 = model.by_label("S1")
        s2 = model.by_label("S2")
        assert enumerate_points(s1.domain, {"n": 3}) == [(0,), (1,), (2,)]
        assert enumerate_points(s2.domain, {"n": 3}) == [
            (0, 1),
            (0, 2),
            (1, 2),
        ]

    def test_affine_guard_becomes_domain_constraint(self):
        p = parse_program(
            """
            program p(n) {
              array A[n];
              for i = 0 .. n - 1 {
                if (i >= 2) { S1: A[i] = 0; }
              }
            }
            """
        )
        model = extract_model(p)
        s1 = model.by_label("S1")
        assert enumerate_points(s1.domain, {"n": 5}) == [(2,), (3,), (4,)]

    def test_negated_guard(self):
        p = parse_program(
            """
            program p(n) {
              array A[n];
              for i = 0 .. n - 1 {
                if (i >= 2) { S1: A[i] = 0; } else { S2: A[i] = 1; }
              }
            }
            """
        )
        model = extract_model(p)
        s2 = model.by_label("S2")
        assert enumerate_points(s2.domain, {"n": 5}) == [(0,), (1,)]

    def test_conjunctive_guard(self):
        p = parse_program(
            """
            program p(n) {
              array A[n];
              for i = 0 .. n - 1 {
                if (i >= 1 && i <= n - 2) { S1: A[i] = 0; }
              }
            }
            """
        )
        model = extract_model(p)
        assert enumerate_points(model.by_label("S1").domain, {"n": 4}) == [
            (1,),
            (2,),
        ]


class TestUnanalyzable:
    def test_data_dependent_guard(self):
        p = parse_program(
            """
            program p(n) {
              array A[n];
              array x[n];
              for i = 0 .. n - 1 {
                if (x[i] > 0) { S1: A[i] = 0; }
              }
            }
            """
        )
        model = extract_model(p)
        assert not model.statements
        assert len(model.unanalyzable) == 1

    def test_non_affine_bounds(self):
        p = parse_program(
            """
            program p(n) {
              array A[n];
              array ptr[n] : i64;
              scalar a;
              for i = 0 .. n - 2 {
                for k = ptr[i] .. ptr[i + 1] - 1 {
                  S1: a = a + A[k];
                }
              }
            }
            """
        )
        model = extract_model(p)
        assert len(model.unanalyzable) == 1

    def test_while_statement_marked(self):
        p = parse_program(
            """
            program p(n) {
              array A[n];
              scalar t : i64;
              while (t < n) {
                for i = 0 .. n - 1 { S1: A[i] = 0; }
                S2: t = t + 1;
              }
            }
            """
        )
        model = extract_model(p)
        assert model.by_label("S1").in_while
        assert model.by_label("S2").in_while


class TestBenchmarks:
    def test_affine_benchmarks_fully_modeled(self):
        from repro.programs import AFFINE_BENCHMARKS, ALL_BENCHMARKS

        for name in AFFINE_BENCHMARKS:
            model = extract_model(ALL_BENCHMARKS[name].program())
            assert not model.unanalyzable, name
            assert not any(s.in_while for s in model.statements), name

    def test_irregular_benchmarks_have_while_statements(self):
        from repro.programs import ALL_BENCHMARKS

        for name in ("cg", "moldyn"):
            model = extract_model(ALL_BENCHMARKS[name].program())
            assert any(s.in_while for s in model.statements), name
