"""Algorithm 1 use counts and live-in counts vs. the oracle."""

import itertools

import pytest

from repro.poly.dependences import compute_flow_dependences
from repro.poly.model import extract_model
from repro.poly.usecount import (
    compute_live_in_counts,
    compute_use_counts,
)
from repro.programs import ALL_BENCHMARKS

from tests.poly.oracle import trace_program

AFFINE_CASES = [
    ("cholesky", {"n": 6}),
    ("lu", {"n": 5}),
    ("trisolv", {"n": 6}),
    ("dsyrk", {"n": 4}),
    ("strsm", {"n": 4, "m": 3}),
    ("jacobi1d", {"n": 8, "tsteps": 3}),
    ("seidel", {"n": 6, "tsteps": 2}),
    ("adi", {"n": 4, "tsteps": 2}),
]


@pytest.mark.parametrize("name,params", AFFINE_CASES)
def test_use_counts_match_oracle(name, params):
    program = ALL_BENCHMARKS[name].program()
    model = extract_model(program)
    dependences = compute_flow_dependences(model)
    table = compute_use_counts(model, dependences)
    oracle = trace_program(program, params)
    by_label = {}
    for info in model.statements:
        by_label[info.label] = table.get(info)
    for (label, iters), expected in oracle.use_counts.items():
        entry = by_label[label]
        assert entry is not None and entry.exact, f"{name}:{label}"
        env = dict(params)
        env.update(zip(entry.statement.iterators, iters))
        assert entry.count.evaluate(env) == expected, (
            f"{name}:{label}{iters}: symbolic "
            f"{entry.count.evaluate(env)} != oracle {expected}"
        )


@pytest.mark.parametrize("name,params", AFFINE_CASES)
def test_live_in_counts_match_oracle(name, params):
    program = ALL_BENCHMARKS[name].program()
    model = extract_model(program)
    dependences = compute_flow_dependences(model)
    live = compute_live_in_counts(model, dependences)
    oracle = trace_program(program, params)
    # Every array cell with live-in reads must be matched exactly; cells
    # not in the oracle must count 0.
    arrays = {d.name: d for d in program.arrays}
    from repro.ir.analysis import to_affine

    for array, decl in arrays.items():
        shape = []
        for dim in decl.dims:
            affine = to_affine(dim, set(program.params))
            shape.append(int(affine.evaluate(params)))
        for cell in itertools.product(*(range(s) for s in shape)):
            expected = oracle.live_in_counts.get((array, cell), 0)
            if array not in live:
                assert expected == 0, (array, cell)
                continue
            env = dict(params)
            env.update({f"__c{k}": v for k, v in enumerate(cell)})
            assert live[array].evaluate(env) == expected, (
                f"{name}:{array}{cell}"
            )
    # Scalar live-ins.
    for decl in program.scalars:
        expected = oracle.live_in_counts.get((decl.name, ()), 0)
        if decl.name in live:
            assert live[decl.name].evaluate(dict(params)) == expected
        else:
            assert expected == 0


def test_paper_example_counts(paper_example):
    """S1's count is n-1-j (j <= n-2) and 0 at j = n-1; S2's is 0."""
    model = extract_model(paper_example)
    dependences = compute_flow_dependences(model)
    table = compute_use_counts(model, dependences)
    s1 = table.by_label("S1")
    for n in range(1, 7):
        for j in range(n):
            expected = max(0, n - 1 - j)
            assert s1.count.evaluate({"n": n, "j": j}) == expected
    s2 = table.by_label("S2")
    assert s2.count.is_zero()


def test_scalar_use_counts():
    from repro.ir.parser import parse_program

    p = parse_program(
        """
        program p(n) {
          scalar temp;
          scalar sum1;
          scalar sum2;
          S0: temp = 10 + 20;
          S1: sum1 = temp + 30;
          S2: sum2 = temp + 40;
        }
        """
    )
    model = extract_model(p)
    table = compute_use_counts(model, compute_flow_dependences(model))
    # Figure 4: temp's definition has exactly two uses.
    assert table.by_label("S0").count.evaluate({"n": 1}) == 2
    assert table.by_label("S1").count.is_zero()
    assert table.by_label("S2").count.is_zero()
