"""Schedule-precedence tests against a brute-force order oracle."""

import itertools

from repro.ir.schedule import ScheduleTable, StatementSchedule
from repro.poly.precedence import precedence_branches


def brute_force_precedes(source_comps, target_comps, s_env, t_env) -> bool:
    """Compare resolved schedule vectors lexicographically."""
    width = max(len(source_comps), len(target_comps))

    def resolve(comps, env):
        values = []
        for c in comps:
            values.append(c if isinstance(c, int) else env[c])
        return values + [0] * (width - len(comps))

    return resolve(source_comps, s_env) < resolve(target_comps, t_env)


def branches_hold(branches, env) -> bool:
    return any(all(c.satisfied_by(env) for c in branch) for branch in branches)


class TestPaperExample:
    S1 = StatementSchedule("S1", (0, "j", 0, 0, 0), ("j",))
    S2 = StatementSchedule("S2", (0, "j", 1, "i", 0), ("j", "i"))

    def test_s1_before_s2(self):
        branches = precedence_branches(
            self.S1, self.S2, {"j": "js"}, {"j": "jt", "i": "it"}
        )
        # S1[js] precedes S2[jt, it] iff js <= jt.
        for js, jt, it in itertools.product(range(4), range(4), range(4)):
            env = {"js": js, "jt": jt, "it": it}
            assert branches_hold(branches, env) == (js <= jt)

    def test_s2_before_s1(self):
        branches = precedence_branches(
            self.S2, self.S1, {"j": "js", "i": "is"}, {"j": "jt"}
        )
        for js, is_, jt in itertools.product(range(4), range(4), range(4)):
            env = {"js": js, "is": is_, "jt": jt}
            assert branches_hold(branches, env) == (js < jt)

    def test_self_precedence_is_strict(self):
        branches = precedence_branches(
            self.S2, self.S2, {"j": "js", "i": "is"}, {"j": "jt", "i": "it"}
        )
        for js, is_, jt, it in itertools.product(range(3), repeat=4):
            env = {"js": js, "is": is_, "jt": jt, "it": it}
            expected = (js, is_) < (jt, it)
            assert branches_hold(branches, env) == expected

    def test_branches_disjoint(self):
        branches = precedence_branches(
            self.S1, self.S2, {"j": "js"}, {"j": "jt", "i": "it"}
        )
        for js, jt, it in itertools.product(range(3), range(3), range(3)):
            env = {"js": js, "jt": jt, "it": it}
            holding = [
                b for b in branches if all(c.satisfied_by(env) for c in b)
            ]
            assert len(holding) <= 1


class TestStaticResolution:
    def test_constant_order_decides(self):
        a = StatementSchedule("A", (0,), ())
        b = StatementSchedule("B", (1,), ())
        assert len(precedence_branches(a, b, {}, {})) == 1
        assert precedence_branches(a, b, {}, {}) == [[]]
        assert precedence_branches(b, a, {}, {}) == []

    def test_three_level(self):
        # A in loop at child 0; B scalar statement at child 1.
        a = StatementSchedule("A", (0, "i", 0), ("i",))
        b = StatementSchedule("B", (1, 0, 0), ())
        branches = precedence_branches(a, b, {"i": "is"}, {})
        # every A instance precedes B
        assert branches == [[]]


class TestAgainstBenchmarks:
    def test_all_pairs_match_brute_force(self):
        """Every statement pair of LU at n=4 matches the order oracle."""
        from repro.programs import lu

        program = lu.program()
        table = ScheduleTable.from_program(program)
        s1, s2 = table["S1"], table["S2"]
        cases = [
            (s1, s2, ("k", "j"), ("k", "i", "j2")),
            (s2, s1, ("k", "i", "j2"), ("k", "j")),
            (s1, s1, ("k", "j"), ("k", "j")),
            (s2, s2, ("k", "i", "j2"), ("k", "i", "j2")),
        ]
        n = 3
        for source, target, s_iters, t_iters in cases:
            s_rename = {it: it + "__s" for it in s_iters}
            t_rename = {it: it + "__t" for it in t_iters}
            branches = precedence_branches(source, target, s_rename, t_rename)
            for s_vals in itertools.product(range(n), repeat=len(s_iters)):
                for t_vals in itertools.product(range(n), repeat=len(t_iters)):
                    env = {}
                    env.update(
                        {s_rename[i]: v for i, v in zip(s_iters, s_vals)}
                    )
                    env.update(
                        {t_rename[i]: v for i, v in zip(t_iters, t_vals)}
                    )
                    expected = brute_force_precedes(
                        source.components,
                        target.components,
                        dict(zip(s_iters, s_vals)),
                        dict(zip(t_iters, t_vals)),
                    )
                    assert branches_hold(branches, env) == expected
