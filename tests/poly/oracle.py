"""Brute-force last-writer oracle.

Executes a mini-language program *symbolically at the access level*
(the interpreter without values): records every write with its
statement instance, every read resolves to the last writer of its
cell, and per-definition use counts accumulate.  This is the ground
truth against which the polyhedral dependence analysis and Algorithm 1
are validated.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ir.nodes import (
    ArrayRef,
    Assign,
    BinOp,
    Call,
    Const,
    Expr,
    If,
    Loop,
    Program,
    Select,
    Stmt,
    UnOp,
    VarRef,
    WhileLoop,
    walk_expressions,
)


@dataclass
class AccessTrace:
    """Ground-truth def/use structure of one execution."""

    use_counts: dict[tuple[str, tuple[int, ...]], int] = field(default_factory=dict)
    """(statement label, iteration vector) -> number of uses of the
    value defined there."""
    dependences: set[tuple] = field(default_factory=set)
    """(source label, source iters, target label, target iters, read position)."""
    live_in_counts: dict[tuple[str, tuple[int, ...]], int] = field(default_factory=dict)
    """(array, cell) -> reads of the initial value."""


def trace_program(program: Program, params: dict[str, int]) -> AccessTrace:
    """Run the access-level simulation (affine programs only).

    Loop bounds and subscripts are evaluated with the iterator
    environment; data values are not tracked, so data-dependent control
    flow is not supported here (the irregular oracle lives in the
    interpreter-based tests).
    """
    trace = AccessTrace()
    last_writer: dict[tuple[str, tuple[int, ...]], tuple[str, tuple[int, ...]]] = {}
    env: dict[str, int] = dict(params)
    data_names = {d.name for d in program.arrays} | {
        d.name for d in program.scalars
    }

    def eval_expr(expr: Expr) -> int:
        if isinstance(expr, Const):
            return expr.value  # type: ignore[return-value]
        if isinstance(expr, VarRef):
            return env[expr.name]
        if isinstance(expr, BinOp):
            left, right = eval_expr(expr.left), eval_expr(expr.right)
            return {
                "+": lambda: left + right,
                "-": lambda: left - right,
                "*": lambda: left * right,
                "/": lambda: left // right,
                "%": lambda: left % right,
            }[expr.op]()
        if isinstance(expr, UnOp) and expr.op == "-":
            return -eval_expr(expr.operand)
        raise NotImplementedError(f"oracle cannot evaluate {expr!r}")

    def cell_of(ref: ArrayRef | VarRef) -> tuple[str, tuple[int, ...]]:
        if isinstance(ref, VarRef):
            return (ref.name, ())
        return (ref.array, tuple(eval_expr(i) for i in ref.indices))

    def reads_of(assign: Assign) -> list[ArrayRef | VarRef]:
        refs: list[ArrayRef | VarRef] = []
        for node in walk_expressions(assign.rhs):
            if isinstance(node, ArrayRef):
                refs.append(node)
            elif isinstance(node, VarRef) and node.name in data_names:
                refs.append(node)
        if isinstance(assign.lhs, ArrayRef):
            for index in assign.lhs.indices:
                for node in walk_expressions(index):
                    if isinstance(node, (ArrayRef,)):
                        refs.append(node)
                    elif isinstance(node, VarRef) and node.name in data_names:
                        refs.append(node)
        return refs

    iteration_stack: list[tuple[str, int]] = []

    def run_body(body: tuple[Stmt, ...]) -> None:
        for stmt in body:
            if isinstance(stmt, Assign):
                iters = tuple(value for _, value in iteration_stack)
                label = stmt.label or "?"
                for position, ref in enumerate(reads_of(stmt)):
                    cell = cell_of(ref)
                    writer = last_writer.get(cell)
                    if writer is not None:
                        trace.use_counts[writer] += 1
                        trace.dependences.add(
                            (writer[0], writer[1], label, iters, position)
                        )
                    else:
                        key = cell
                        trace.live_in_counts[key] = (
                            trace.live_in_counts.get(key, 0) + 1
                        )
                cell = cell_of(stmt.lhs)
                last_writer[cell] = (label, iters)
                trace.use_counts[(label, iters)] = trace.use_counts.get(
                    (label, iters), 0
                )
            elif isinstance(stmt, Loop):
                lower = eval_expr(stmt.lower)
                upper = eval_expr(stmt.upper)
                for value in range(lower, upper + 1):
                    env[stmt.var] = value
                    iteration_stack.append((stmt.var, value))
                    run_body(stmt.body)
                    iteration_stack.pop()
                env.pop(stmt.var, None)
            elif isinstance(stmt, If):
                raise NotImplementedError("oracle supports affine loop nests only")
            elif isinstance(stmt, WhileLoop):
                raise NotImplementedError("oracle supports affine loop nests only")
    run_body(program.body)
    return trace
