"""Exact flow dependences vs. the brute-force last-writer oracle."""

import pytest

from repro.isl.enumerate_points import enumerate_points
from repro.poly.dependences import compute_flow_dependences
from repro.poly.model import extract_model
from repro.programs import ALL_BENCHMARKS

from tests.poly.oracle import trace_program

AFFINE_CASES = [
    ("cholesky", {"n": 6}),
    ("lu", {"n": 5}),
    ("trisolv", {"n": 6}),
    ("dsyrk", {"n": 4}),
    ("strsm", {"n": 4, "m": 3}),
    ("jacobi1d", {"n": 8, "tsteps": 3}),
    ("seidel", {"n": 6, "tsteps": 2}),
    ("adi", {"n": 4, "tsteps": 2}),
]


def symbolic_dependence_pairs(program, params):
    """All (src label, src iters, tgt label, tgt iters, read position)."""
    model = extract_model(program)
    dependences = compute_flow_dependences(model)
    pairs = set()
    for dep in dependences:
        in_arity = len(dep.source.iterators)
        for point in enumerate_points(dep.relation, params):
            pairs.add(
                (
                    dep.source.label,
                    point[:in_arity],
                    dep.target.label,
                    point[in_arity:],
                    dep.read_position,
                )
            )
    return pairs


@pytest.mark.parametrize("name,params", AFFINE_CASES)
def test_dependences_match_oracle(name, params):
    program = ALL_BENCHMARKS[name].program()
    expected = trace_program(program, params).dependences
    actual = symbolic_dependence_pairs(program, params)
    missing = expected - actual
    spurious = actual - expected
    assert not missing, f"{name}: missing {sorted(missing)[:5]}"
    assert not spurious, f"{name}: spurious {sorted(spurious)[:5]}"


def test_paper_example_dependence(paper_example):
    """The running example's single dependence (Section 3.1)."""
    model = extract_model(paper_example)
    deps = compute_flow_dependences(model)
    assert len(deps) == 1
    (dep,) = deps
    assert dep.source.label == "S1" and dep.target.label == "S2"
    # D_flow = { S1[j] -> S2[j, i] : 0<=j<=n-1, j+1<=i<=n-1 }
    points = enumerate_points(dep.relation, {"n": 4})
    expected = {
        (j, j, i) for j in range(4) for i in range(j + 1, 4)
    }
    assert set(points) == expected


def test_exactness_excludes_transitive(paper_example):
    """The value read by S2[j, i] comes from S1[j], never an older S1."""
    model = extract_model(paper_example)
    deps = compute_flow_dependences(model)
    (dep,) = deps
    for point in enumerate_points(dep.relation, {"n": 5}):
        j_src, j_tgt, _ = point
        assert j_src == j_tgt


def test_self_dependence_in_accumulation():
    from repro.ir.parser import parse_program

    p = parse_program(
        """
        program p(n) {
          array C[n];
          array A[n][n];
          for i = 0 .. n - 1 {
            for k = 0 .. n - 1 {
              S1: C[i] = C[i] + A[i][k];
            }
          }
        }
        """
    )
    model = extract_model(p)
    deps = compute_flow_dependences(model)
    self_deps = [
        d for d in deps if d.source.label == "S1" and d.target.label == "S1"
    ]
    assert self_deps
    # C[i] written at (i, k) is read at (i, k+1) — consecutive k only.
    for dep in self_deps:
        for (i_s, k_s, i_t, k_t) in enumerate_points(dep.relation, {"n": 4}):
            assert i_s == i_t and k_t == k_s + 1


def test_kill_blocks_distant_pairs():
    from repro.ir.parser import parse_program

    p = parse_program(
        """
        program p(n) {
          array A[n];
          scalar acc;
          for t = 0 .. n - 1 {
            S1: A[0] = t;
            S2: acc = acc + A[0];
          }
        }
        """
    )
    model = extract_model(p)
    deps = compute_flow_dependences(model)
    s1_to_s2 = [d for d in deps if d.source.label == "S1" and d.target.label == "S2"]
    # The read at iteration t sees exactly the write at iteration t.
    points = set()
    for dep in s1_to_s2:
        points |= set(enumerate_points(dep.relation, {"n": 4}))
    assert points == {(t, t) for t in range(4)}
