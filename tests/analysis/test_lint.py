"""Lint checks: clean on real builds, loud on tampered ones."""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.analysis.lint import has_errors, lint_program
from repro.campaign import ProgramCampaignSpec
from repro.instrument.pipeline import (
    InstrumentationOptions,
    instrument_program,
)
from repro.ir.nodes import ChecksumAssert
from repro.ir.parser import parse_program
from repro.programs import ALL_BENCHMARKS

SNIPPET = """
program lint_target(n) {
  array A[n];
  array B[n];
  for i = 0 .. n - 1 {
    S1: A[i] = A[i] + 1.0;
  }
  for i = 0 .. n - 1 {
    S2: B[i] = A[i] * 2.0;
  }
}
"""


@pytest.fixture(scope="module")
def instrumented():
    program = parse_program(SNIPPET)
    return instrument_program(
        program,
        InstrumentationOptions(
            index_set_splitting=True, hoist_inspectors=True
        ),
    )[0]


@pytest.mark.parametrize("name", sorted(ALL_BENCHMARKS))
def test_benchmarks_error_free(name):
    """Every shipped instrumented build must lint clean, including the
    dynamic channel-balance check on the static timeline."""
    spec = ProgramCampaignSpec(
        trials=1, seed=0, benchmark=name, scale="small"
    )
    prepared = spec.prepare()
    issues = lint_program(prepared.program, prepared.params)
    errors = [i for i in issues if i.severity == "error"]
    assert not errors, [str(i) for i in errors]


def test_clean_program_has_no_errors(instrumented):
    issues = lint_program(instrumented, {"n": 6})
    assert not has_errors(issues)


def test_dropped_assert_reported(instrumented):
    stripped = replace(
        instrumented,
        body=tuple(
            s
            for s in instrumented.body
            if not isinstance(s, ChecksumAssert)
        ),
    )
    issues = lint_program(stripped)
    codes = {i.code for i in issues if i.severity == "error"}
    assert "no-final-assert" in codes
    assert "uncovered-channel" in codes


def test_non_shadow_counter_reported():
    # cg's build carries inspector/use counters in shadow regions;
    # flipping every shadow flag off makes the counters target "data"
    # regions, which the linter must refuse.
    prepared = ProgramCampaignSpec(
        trials=1, seed=0, benchmark="cg", scale="small"
    ).prepare()
    program = prepared.program
    assert any(
        d.is_shadow for d in (*program.arrays, *program.scalars)
    )
    tampered = replace(
        program,
        arrays=tuple(
            replace(decl, is_shadow=False) for decl in program.arrays
        ),
        scalars=tuple(
            replace(decl, is_shadow=False) for decl in program.scalars
        ),
    )
    issues = lint_program(tampered)
    assert any(i.code == "counter-not-shadow" for i in issues)
    assert has_errors(issues)


def test_unreachable_guard_reported():
    program = parse_program(
        """
program dead_guard(n) {
  array A[n];
  for i = 0 .. n - 1 {
    if (i < 0) {
      S1: A[i] = 1.0;
    }
  }
}
"""
    )
    issues = lint_program(program)
    assert any(i.code == "unreachable-guard" for i in issues)
    # A warning, not an error: dead code erodes coverage but cannot
    # corrupt anything.
    assert not has_errors(issues)


def test_issue_str_format():
    issues = lint_program(parse_program(SNIPPET))
    assert issues == []  # uninstrumented programs have nothing to lint
