"""Soundness of the static classifier against brute-force injection.

The contract ``--prune static`` rests on: whenever the classifier
calls a (site × strike-time × bit-set) ``detected``, a real injection
there must raise a checksum mismatch; whenever it says ``masked``,
the run must end clean with corruption confined to the struck cell.
The property suite enumerates injections with
:class:`~repro.runtime.faults.ScheduledBitFlip` — the deterministic
analogue of the random_cell injector — on generated programs and on a
real benchmark, and the cross-validation half replays whole campaign
trials through the :class:`~repro.analysis.oracle.StaticOracle` for
every fault model.
"""

from __future__ import annotations

from functools import lru_cache

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.classify import DETECTED, MASKED, ProgramClassifier
from repro.analysis.oracle import StaticOracle
from repro.analysis.timeline import TimelineUnsupported, build_timeline
from repro.campaign import ProgramCampaignSpec
from repro.instrument.pipeline import (
    InstrumentationOptions,
    instrument_program,
)
from repro.ir.generate import MIN_PARAM, random_affine_program
from repro.runtime.faults import ScheduledBitFlip
from repro.runtime.faults.base import linear_offset
from repro.runtime.faults.spec import FAULT_MODELS
from repro.runtime.interpreter import run_program

OPTIMIZED = InstrumentationOptions(
    index_set_splitting=True, hoist_inspectors=True
)
BIT_SETS = ((0,), (63,), (0, 1))


@lru_cache(maxsize=None)
def _instrumented_for(seed: int):
    return instrument_program(random_affine_program(seed), OPTIMIZED)[0]


def _diff_cells(clean: dict, faulted: dict):
    """(region, linear offset) pairs whose raw words differ.

    ``Memory.snapshot()`` is a flat raw-word list per region, indexed
    by linear offset.
    """
    diffs = set()
    for name, words in clean.items():
        for offset, (before, after) in enumerate(zip(words, faulted[name])):
            if before != after:
                diffs.add((name, offset))
    return diffs


def _check_sites(program, params):
    """Exhaustively inject at segment-representative strike times and
    assert the static verdicts against the measured runs."""
    try:
        timeline = build_timeline(program, params)
    except TimelineUnsupported:
        pytest.skip("generated program has no static timeline")
    classifier = ProgramClassifier(timeline)
    clean = run_program(program, params)
    assert not clean.mismatches
    clean_snapshot = clean.memory.snapshot()
    checked = detected_cases = 0
    for (array, cell) in list(timeline.cells)[:10]:
        if array in timeline.shadow:
            continue
        floors, _ = classifier.segments(array, cell)
        times = sorted(set(list(floors[:4]) + [timeline.total_loads]))
        for t in times:
            if t < 1:
                continue
            for bits in BIT_SETS:
                outcome = classifier.classify(array, cell, t, bits)
                if outcome not in (DETECTED, MASKED):
                    continue
                result = run_program(
                    program,
                    params,
                    injector=ScheduledBitFlip(
                        array, cell, list(bits), at_load=t
                    ),
                )
                checked += 1
                if outcome == DETECTED:
                    detected_cases += 1
                    assert result.mismatches, (
                        f"statically detected but measured clean: "
                        f"{array}{cell} t={t} bits={bits}"
                    )
                else:
                    assert not result.mismatches, (
                        f"statically masked but verifier fired: "
                        f"{array}{cell} t={t} bits={bits}"
                    )
                    diffs = _diff_cells(
                        clean_snapshot, result.memory.snapshot()
                    )
                    struck = (
                        array,
                        linear_offset(cell, timeline.shapes[array]),
                    )
                    assert diffs <= {struck}, (
                        f"statically masked but corruption propagated "
                        f"to {diffs - {struck}}: "
                        f"{array}{cell} t={t} bits={bits}"
                    )
    return checked, detected_cases


@settings(max_examples=5, deadline=None)
@given(seed=st.integers(min_value=0, max_value=24))
def test_generated_programs_sound(seed):
    program = _instrumented_for(seed)
    checked, _ = _check_sites(program, {"n": MIN_PARAM})
    assert checked > 0


def test_benchmark_sound_and_exercises_detection():
    """On a real benchmark the sweep must hit actual DETECTED proofs
    (a vacuously-masked-only sweep would prove nothing)."""
    spec = ProgramCampaignSpec(
        trials=1, seed=0, benchmark="jacobi1d", scale="small"
    )
    prepared = spec.prepare()
    checked, detected_cases = _check_sites(prepared.program, prepared.params)
    assert checked > 0
    assert detected_cases > 0


@pytest.mark.parametrize("model", FAULT_MODELS)
@pytest.mark.parametrize("name", ["jacobi1d", "trisolv"])
def test_oracle_matches_measured_trials(name, model):
    """Every oracle prediction must equal the measured trial —
    verdict and the injection record, bit for bit."""
    spec = ProgramCampaignSpec(
        trials=25,
        seed=7,
        benchmark=name,
        scale="small",
        fault_model=model,
    )
    prepared = spec.prepare()
    oracle = StaticOracle(spec, prepared)
    assert oracle.enabled, oracle.reason
    predictions = 0
    for index in range(spec.trials):
        predicted = oracle.predict(index)
        if predicted is None:
            continue
        predictions += 1
        measured = spec.run_trial(index, prepared)
        assert predicted.verdict == measured.verdict, (
            f"{name}/{model} trial {index}: predicted "
            f"{predicted.verdict}, measured {measured.verdict}"
        )
        assert predicted.injection == measured.injection
        assert predicted.extra["predicted"] is True
        assert measured.verdict != "sdc"
    if model in ("random_cell", "stuck_bit", "burst"):
        # Value-fault models always have provable masked windows.  The
        # addrgen models may predict nothing: loads are structurally
        # checksum-blind and store proofs need a dying store.
        assert predictions > 0


def test_oracle_disabled_on_irregular_benchmark():
    spec = ProgramCampaignSpec(
        trials=5, seed=0, benchmark="cg", scale="small"
    )
    oracle = StaticOracle(spec, spec.prepare())
    assert not oracle.enabled
    assert "timeline unavailable" in oracle.reason
    assert oracle.predict(0) is None
