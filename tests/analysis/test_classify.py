"""Unit tests for the static outcome classifier.

The classifier's contracts: class fractions form a distribution, the
detection probability follows the v2 counting argument, windows past
the last event are masked, and the per-benchmark classification is
internally consistent with the timeline it was built from.
"""

from __future__ import annotations

from fractions import Fraction
from math import comb

import pytest

from repro.analysis.classify import (
    CLASSES,
    DETECTED,
    MASKED,
    ProgramClassifier,
    detect_probability,
    v2,
)
from repro.analysis.timeline import build_timeline
from repro.campaign import ProgramCampaignSpec


@pytest.fixture(scope="module")
def jacobi():
    spec = ProgramCampaignSpec(
        trials=1, seed=0, benchmark="jacobi1d", scale="small"
    )
    prepared = spec.prepare()
    timeline = build_timeline(prepared.program, prepared.params)
    return ProgramClassifier(timeline)


def test_v2():
    assert v2(1) == 0
    assert v2(2) == 1
    assert v2(12) == 2
    assert v2(1 << 63) == 63


@pytest.mark.parametrize("k", [1, 2, 3])
def test_detect_probability_counting(k):
    """P[detect] = 1 − C(v,k)/C(64,k): the flip set must avoid the v
    low positions that cancel out of the mod-2^64 delta."""
    for valuation in (0, 1, 5, 62, 63):
        expected = 1 - Fraction(comb(valuation, k), comb(64, k))
        assert detect_probability(valuation, k) == pytest.approx(
            float(expected)
        )
    assert detect_probability(0, k) == 1.0


def test_detect_probability_monotone():
    probs = [detect_probability(v, 2) for v in range(64)]
    assert all(a >= b for a, b in zip(probs, probs[1:]))


def test_window_past_end_is_masked(jacobi):
    timeline = jacobi.timeline
    (array, cell), _ = next(iter(timeline.cells.items()))
    window = jacobi.window_at(array, cell, timeline.total_loads + 1)
    assert window.masked
    assert jacobi.classify(array, cell, timeline.total_loads + 1, (0,)) == (
        MASKED
    )


def test_untouched_cell_is_masked(jacobi):
    timeline = jacobi.timeline
    for name, shape in timeline.shapes.items():
        if name in timeline.shadow or not shape:
            continue
        for idx in range(shape[0]):
            cell = (idx,) + (0,) * (len(shape) - 1)
            if (name, cell) not in timeline.cells:
                assert jacobi.window_at(name, cell, 1).masked
                return
    pytest.skip("every cell of every array is touched")


def test_fractions_form_distribution(jacobi):
    timeline = jacobi.timeline
    for (array, cell) in list(timeline.cells)[:8]:
        for t in (1, max(1, timeline.total_loads // 2)):
            window = jacobi.window_at(array, cell, t)
            fractions = jacobi.window_fractions(window, 2)
            assert set(fractions) <= set(CLASSES)
            assert sum(fractions.values()) == pytest.approx(1.0)
            assert all(0.0 <= f <= 1.0 for f in fractions.values())


def test_classify_agrees_with_fractions(jacobi):
    """A hard DETECTED/MASKED classification implies the matching
    fraction is certain."""
    timeline = jacobi.timeline
    for (array, cell) in list(timeline.cells)[:8]:
        window = jacobi.window_at(array, cell, 1)
        outcome = jacobi.classify(array, cell, 1, (0,))
        if outcome == MASKED:
            assert jacobi.window_fractions(window, 1)[MASKED] == 1.0
        if outcome == DETECTED:
            # bit 0 detects whenever min_v2 + 0 < 64 — certain for k=1
            # only when every single-bit flip detects (min_v2 == 0).
            assert jacobi.window_detects(window, (0,))


def test_detection_allowed_on_balanced_benchmark(jacobi):
    assert jacobi.final_pairs
    assert set(jacobi.valid_pairs) == set(jacobi.final_pairs)
    assert jacobi.detection_allowed
