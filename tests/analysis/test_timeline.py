"""Static timeline construction: the event stream must be exact.

Everything in ``repro.analysis`` rests on the timeline replaying the
instrumented program's load/store stream event-for-event.  These
tests pin the totals against the measured golden run on real
benchmarks and check the cell-level query helpers.
"""

from __future__ import annotations

import pytest

from repro.analysis.timeline import (
    TimelineUnsupported,
    build_timeline,
    clear_timeline_memo,
)
from repro.campaign import ProgramCampaignSpec

AFFINE = ["jacobi1d", "trisolv", "dsyrk", "seidel"]
IRREGULAR = ["cg", "moldyn"]


def _prepared(benchmark):
    spec = ProgramCampaignSpec(
        trials=1, seed=0, benchmark=benchmark, scale="small"
    )
    return spec.prepare()


@pytest.mark.parametrize("name", AFFINE)
def test_totals_match_golden_run(name):
    prepared = _prepared(name)
    timeline = build_timeline(prepared.program, prepared.params)
    assert timeline.total_loads == prepared.total_loads
    assert timeline.total_stores == prepared.total_stores
    assert timeline.total_loads > 0


@pytest.mark.parametrize("name", IRREGULAR)
def test_irregular_benchmarks_refused(name):
    """Data-dependent control has no static event stream — the
    timeline must refuse rather than guess."""
    prepared = _prepared(name)
    with pytest.raises(TimelineUnsupported):
        build_timeline(prepared.program, prepared.params)


def test_cell_queries_consistent():
    prepared = _prepared("jacobi1d")
    timeline = build_timeline(prepared.program, prepared.params)
    for (array, cell), events in timeline.cells.items():
        loads = [e.ordinal for e in events if e.is_load]
        last = timeline.last_load_ordinal(array, cell)
        if loads:
            assert last == max(loads)
        else:
            assert last == 0
    # Per-array load ordinal lists partition the global load stream.
    total = sum(len(v) for v in timeline.loads_by_array.values())
    assert total == timeline.total_loads


def _event_key(event):
    # Stores happen between loads: a store with loads_before=S precedes
    # every load with ordinal > S (same ordering store_kills uses).
    if event.is_load:
        return (event.ordinal, 0, 0)
    return (event.loads_before, 1, event.ordinal)


def test_store_kills():
    """A store kills a cell iff no later load reads it before the
    cell's next store."""
    prepared = _prepared("jacobi1d")
    timeline = build_timeline(prepared.program, prepared.params)
    checked = 0
    for (array, cell), events in timeline.cells.items():
        ordered = sorted(events, key=_event_key)
        for position, event in enumerate(ordered):
            if event.is_load:
                continue
            # The first later event decides: a load reads the stored
            # value (not killed); a store overwrites it clean (killed);
            # no later event = never read again (killed).
            following = ordered[position + 1:]
            expected = not (following and following[0].is_load)
            assert timeline.store_kills(array, cell, event) == expected
            checked += 1
    assert checked > 0


def test_memoized():
    clear_timeline_memo()
    prepared = _prepared("trisolv")
    first = build_timeline(prepared.program, prepared.params)
    second = build_timeline(prepared.program, prepared.params)
    assert first is second
