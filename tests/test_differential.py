"""Differential testing over randomly generated affine programs.

For a fleet of generated loop nests, the whole pipeline must agree with
itself and with brute force:

* **balance** — instrumented runs end with matching checksums;
* **transparency** — instrumentation and splitting never change the
  computed values;
* **codegen** — the generated Python computes what the interpreter
  computes;
* **Algorithm 1** — symbolic use counts equal the access-trace oracle.
"""

import numpy as np
import pytest

from repro.codegen.python_gen import compile_to_python
from repro.instrument.pipeline import (
    InstrumentationOptions,
    instrument_program,
)
from repro.ir.analysis import validate_program
from repro.ir.generate import MIN_PARAM, random_affine_program
from repro.ir.parser import parse_program
from repro.ir.printer import program_to_text
from repro.runtime.interpreter import run_program

from tests.poly.oracle import trace_program

SEEDS = list(range(12))
PARAMS = {"n": MIN_PARAM + 3}

from functools import lru_cache


@lru_cache(maxsize=None)
def program_for(seed: int):
    return random_affine_program(seed)


@lru_cache(maxsize=None)
def instrumented_for(seed: int, split: bool):
    return instrument_program(
        program_for(seed),
        InstrumentationOptions(index_set_splitting=split),
    )[0]


def initial_values(program, seed: int):
    rng = np.random.default_rng(seed + 1000)
    values = {}
    for decl in program.arrays:
        shape = tuple(PARAMS["n"] for _ in decl.dims)
        values[decl.name] = rng.uniform(-1.0, 1.0, size=shape)
    return values


@pytest.mark.parametrize("seed", SEEDS)
def test_generated_programs_are_valid(seed):
    program = program_for(seed)
    validate_program(program)
    # And they round-trip through the text syntax.
    assert parse_program(program_to_text(program)) == program


@pytest.mark.parametrize("seed", SEEDS)
def test_instrumentation_balance_and_transparency(seed):
    program = program_for(seed)
    values = initial_values(program, seed)
    plain = run_program(
        program, PARAMS, initial_values={k: v.copy() for k, v in values.items()}
    )
    for split in (False, True):
        instrumented = instrumented_for(seed, split)
        result = run_program(
            instrumented,
            PARAMS,
            initial_values={k: v.copy() for k, v in values.items()},
        )
        assert not result.mismatches, f"seed {seed}: false positive"
        for decl in program.arrays:
            np.testing.assert_allclose(
                result.memory.to_array(decl.name),
                plain.memory.to_array(decl.name),
                rtol=1e-12,
                err_msg=f"seed {seed}: {decl.name}",
            )


@pytest.mark.parametrize("seed", SEEDS)
def test_codegen_matches_interpreter(seed):
    program = program_for(seed)
    values = initial_values(program, seed)
    interpreted = run_program(
        program, PARAMS, initial_values={k: v.copy() for k, v in values.items()}
    )
    compiled = compile_to_python(program)
    arrays = {k: v.copy() for k, v in values.items()}
    compiled(PARAMS, arrays)
    for decl in program.arrays:
        np.testing.assert_allclose(
            arrays[decl.name],
            interpreted.memory.to_array(decl.name),
            rtol=1e-12,
            err_msg=f"seed {seed}: {decl.name}",
        )


@pytest.mark.parametrize("seed", SEEDS)
def test_use_counts_match_oracle(seed):
    from repro.poly.dependences import compute_flow_dependences
    from repro.poly.model import extract_model
    from repro.poly.usecount import compute_use_counts

    program = program_for(seed)
    model = extract_model(program)
    assert not model.unanalyzable, f"seed {seed}: generator emitted non-affine"
    dependences = compute_flow_dependences(model)
    table = compute_use_counts(model, dependences)
    oracle = trace_program(program, PARAMS)
    by_label = {info.label: table.get(info) for info in model.statements}
    for (label, iters), expected in oracle.use_counts.items():
        entry = by_label[label]
        assert entry is not None and entry.exact, f"seed {seed}: {label}"
        env = dict(PARAMS)
        env.update(zip(entry.statement.iterators, iters))
        actual = entry.count.evaluate(env)
        assert actual == expected, (
            f"seed {seed}: {label}{iters}: symbolic {actual} != {expected}"
        )
