"""Printer tests: round-trips and paper-style instrumentation output."""

from repro.ir.nodes import (
    Assign,
    ChecksumAdd,
    Const,
    DefContribution,
    Instrumentation,
    UseContribution,
    VarRef,
)
from repro.ir.parser import parse_expression, parse_program
from repro.ir.printer import expr_to_text, program_to_text
from repro.programs import ALL_BENCHMARKS


class TestRoundTrip:
    def test_paper_example(self, paper_example):
        text = program_to_text(paper_example)
        assert parse_program(text) == paper_example

    def test_all_benchmarks_round_trip(self):
        for name, module in ALL_BENCHMARKS.items():
            program = module.program()
            assert parse_program(program_to_text(program)) == program, name

    def test_expression_round_trips(self):
        cases = [
            "a + b * c",
            "(a + b) * c",
            "a - (b - c)",
            "a - b - c",
            "a / b / c",
            "a / (b / c)",
            "A[i][j + 1] + p[cols[j]]",
            "sqrt(x) + min(a, b)",
            "a > 0 ? 1 : 2",
            "a < b && c >= d",
            "i % n",
        ]
        for text in cases:
            e = parse_expression(text)
            assert parse_expression(expr_to_text(e)) == e, text


class TestInstrumentationRendering:
    def test_use_and_def_macros(self):
        stmt = Assign(
            lhs=VarRef("a"),
            rhs=Const(1),
            label="S1",
            instrumentation=Instrumentation(
                uses=(UseContribution(ref=VarRef("b")),),
                definition=DefContribution(count=Const(2)),
            ),
        )
        from repro.ir.printer import _statement_lines

        lines = _statement_lines(stmt, 0)
        assert any("add_to_chksm(use_cs, b, 1);" in l for l in lines)
        assert any("add_to_chksm(def_cs, a, 2);" in l for l in lines)

    def test_checksum_add_statement(self):
        from repro.ir.printer import _statement_lines

        lines = _statement_lines(
            ChecksumAdd(checksum="e_def", value=VarRef("v"), count=Const(1)), 0
        )
        assert lines == ["add_to_chksm(e_def_cs, v, 1);"]

    def test_instrumented_program_shows_assert(self, paper_example):
        from repro.instrument.pipeline import instrument_program

        instrumented, _ = instrument_program(paper_example)
        text = program_to_text(instrumented)
        assert "assert(def_cs == use_cs" in text

    def test_paper_figure5_shape(self, paper_example):
        """Instrumented example shows the Figure 5 macro structure."""
        from repro.instrument.pipeline import instrument_program

        instrumented, _ = instrument_program(paper_example)
        text = program_to_text(instrumented)
        assert "add_to_chksm(use_cs, A[j][j], 1);" in text
        assert "add_to_chksm(use_cs, A[i][j], 1);" in text
        # S1's def count is n-1-j on the non-peeled domain.
        assert "add_to_chksm(def_cs, A[j][j]" in text
