"""Builder tests: programmatic construction equals parsed text."""

import pytest

from repro.ir.builder import EB, ProgramBuilder
from repro.ir.nodes import BinOp, Select, VarRef
from repro.ir.parser import parse_program


class TestExpressionBuilder:
    def test_arithmetic(self):
        n = EB(VarRef("n"))
        e = (n - 1) * 2 + 5
        assert isinstance(e.node, BinOp)

    def test_reflected(self):
        n = EB(VarRef("n"))
        assert (1 - n).node.op == "-"
        assert (1 - n).node.left.value == 1

    def test_comparisons(self):
        n = EB(VarRef("n"))
        assert n.lt(5).node.op == "<"
        assert n.ge(0).node.op == ">="
        assert n.eq(1).node.op == "=="

    def test_select(self):
        n = EB(VarRef("n"))
        s = n.gt(0).select(1, 0)
        assert isinstance(s.node, Select)

    def test_sqrt(self):
        n = EB(VarRef("n"))
        assert n.sqrt().node.func == "sqrt"


class TestProgramBuilder:
    def build_cholesky(self):
        b = ProgramBuilder("paper_example", params=("n",))
        A = b.array("A", ("n", "n"))
        (n,) = b.params_and_vars("n")
        j, i = b.var("j"), b.var("i")
        with b.loop("j", 0, n - 1):
            b.assign(A[j, j], A[j, j].sqrt(), label="S1")
            with b.loop("i", j + 1, n - 1):
                b.assign(A[i, j], A[i, j] / A[j, j], label="S2")
        return b.build()

    def test_matches_parsed_text(self, paper_example):
        assert self.build_cholesky() == paper_example

    def test_while_and_if(self):
        b = ProgramBuilder("p", params=("n",))
        t = b.scalar("t", "i64")
        (n,) = b.params_and_vars("n")
        with b.while_loop(t.lt(n)):
            with b.if_then(t.gt(2)):
                b.assign(t, t + 2)
            b.assign(t, t + 1)
        program = b.build()
        text_version = parse_program(
            """
            program p(n) {
              scalar t : i64;
              while (t < n) {
                if (t > 2) { t = t + 2; }
                t = t + 1;
              }
            }
            """
        )
        assert program == text_version

    def test_if_else(self):
        b = ProgramBuilder("p")
        a = b.scalar("a")
        from repro.ir.nodes import Assign, Const, VarRef

        with b.if_else(a.gt(0)) as (then_body, else_body):
            then_body.append(Assign(lhs=VarRef("a"), rhs=Const(1)))
            else_body.append(Assign(lhs=VarRef("a"), rhs=Const(2)))
        program = b.build()
        (stmt,) = program.body
        assert stmt.then_body and stmt.else_body

    def test_unclosed_context_rejected(self):
        b = ProgramBuilder("p")
        b._stack.append([])  # simulate an unclosed loop
        with pytest.raises(RuntimeError):
            b.build()

    def test_assign_requires_reference(self):
        b = ProgramBuilder("p")
        with pytest.raises(TypeError):
            b.assign(EB(BinOp("+", VarRef("a"), VarRef("b"))), 1)
