"""Access extraction and affine/irregular classification tests."""

from repro.ir.accesses import (
    all_statement_accesses,
    data_reads_of,
    program_data_names,
    statement_accesses,
)
from repro.ir.analysis import statement_contexts
from repro.ir.parser import parse_program


class TestPaperExample:
    def test_reads_and_writes(self, paper_example):
        bundles = all_statement_accesses(paper_example)
        s1, s2 = bundles
        assert str(s1.write.ref) == "A[j][j]"
        assert [str(r.ref) for r in s1.reads] == ["A[j][j]"]
        assert str(s2.write.ref) == "A[i][j]"
        assert [str(r.ref) for r in s2.reads] == ["A[i][j]", "A[j][j]"]

    def test_all_affine(self, paper_example):
        for bundle in all_statement_accesses(paper_example):
            assert bundle.write.is_affine
            assert all(r.is_affine for r in bundle.reads)

    def test_index_affine_forms(self, paper_example):
        bundles = all_statement_accesses(paper_example)
        s2 = bundles[1]
        write_indices = s2.write.index_affine
        assert str(write_indices[0]) == "i"
        assert str(write_indices[1]) == "j"


class TestIrregular:
    def setup_method(self):
        self.program = parse_program(
            """
            program p(n) {
              array p_new[n];
              array cols[n] : i64;
              scalar s;
              for j = 0 .. n - 1 {
                S1: s = s + p_new[cols[j]];
              }
            }
            """
        )

    def test_indirect_read_is_irregular(self):
        (bundle,) = all_statement_accesses(self.program)
        refs = {str(r.ref): r for r in bundle.reads}
        assert not refs["p_new[cols[j]]"].is_affine
        assert refs["p_new[cols[j]]"].index_affine is None

    def test_indexing_read_is_affine_and_counted(self):
        (bundle,) = all_statement_accesses(self.program)
        refs = {str(r.ref): r for r in bundle.reads}
        assert refs["cols[j]"].is_affine

    def test_scalar_read_is_affine(self):
        (bundle,) = all_statement_accesses(self.program)
        refs = {str(r.ref): r for r in bundle.reads}
        assert refs["s"].is_affine
        assert refs["s"].index_affine == ()

    def test_partition_methods(self):
        (bundle,) = all_statement_accesses(self.program)
        assert len(bundle.irregular_reads()) == 1
        assert len(bundle.affine_reads()) == 2


class TestReadCollection:
    def test_duplicate_reads_kept(self):
        p = parse_program(
            """
            program p(n) {
              array A[n];
              scalar a;
              S1: a = A[0] * A[0];
            }
            """
        )
        (ctx,) = statement_contexts(p)
        reads = data_reads_of(ctx.assign, program_data_names(p))
        assert len([r for r in reads if str(r) == "A[0]"]) == 2

    def test_lhs_subscript_reads_collected(self):
        p = parse_program(
            """
            program p(n) {
              array A[n];
              array idx[n] : i64;
              for i = 0 .. n - 1 { S1: A[idx[i]] = 0; }
            }
            """
        )
        ctx = statement_contexts(p)[0]
        reads = data_reads_of(ctx.assign, program_data_names(p))
        assert [str(r) for r in reads] == ["idx[i]"]

    def test_iterators_not_data_reads(self, paper_example):
        ctx = statement_contexts(paper_example)[1]
        reads = data_reads_of(ctx.assign, program_data_names(paper_example))
        assert all(str(r).startswith("A[") for r in reads)

    def test_write_classification_irregular_store(self):
        p = parse_program(
            """
            program p(n) {
              array A[n];
              array idx[n] : i64;
              for i = 0 .. n - 1 { S1: A[idx[i]] = 1; }
            }
            """
        )
        (bundle,) = all_statement_accesses(p)
        assert not bundle.write.is_affine
