"""Tests for affine classification, contexts and validation."""

import pytest

from repro.ir.analysis import (
    StatementContext,
    ValidationError,
    arrays_read_in,
    arrays_written_in,
    is_affine_condition,
    statement_contexts,
    to_affine,
    validate_program,
)
from repro.ir.parser import parse_expression, parse_program


class TestToAffine:
    def test_affine_forms(self):
        names = {"i", "j", "n"}
        cases = {
            "i + j": {"i": 1, "j": 1},
            "2*i - 3": {"i": 2},
            "n - 1 - j": {"n": 1, "j": -1},
            "-(i - j)": {"i": -1, "j": 1},
            "3 * (i + 1)": {"i": 3},
        }
        for text, coeffs in cases.items():
            affine = to_affine(parse_expression(text), names)
            assert affine is not None, text
            for name, value in coeffs.items():
                assert affine.coeff(name) == value, text

    def test_non_affine_forms(self):
        names = {"i", "j", "n"}
        for text in ["i * j", "A[i]", "sqrt(i)", "i / 2", "1.5 * i", "i % 2"]:
            assert to_affine(parse_expression(text), names) is None, text

    def test_unknown_name(self):
        assert to_affine(parse_expression("q + 1"), {"i"}) is None


class TestAffineConditions:
    def test_comparisons(self):
        names = {"i", "n"}
        assert is_affine_condition(parse_expression("i <= n - 1"), names)
        assert is_affine_condition(
            parse_expression("0 <= i && i <= n"), names
        )

    def test_data_dependent(self):
        names = {"i", "n"}
        assert not is_affine_condition(parse_expression("x[10] > 0"), names)
        assert not is_affine_condition(parse_expression("i"), names)


class TestContexts:
    def test_loop_nesting(self, paper_example):
        contexts = statement_contexts(paper_example)
        assert [c.assign.label for c in contexts] == ["S1", "S2"]
        s1, s2 = contexts
        assert s1.iterators == ("j",)
        assert s2.iterators == ("j", "i")
        assert s1.path == (0, 0)
        assert s2.path == (0, 1, 0)

    def test_while_and_guard_context(self):
        p = parse_program(
            """
            program p(n) {
              array x[n];
              scalar t;
              while (t < n) {
                if (x[0] > 0) {
                  S1: t = t + 1;
                }
              }
            }
            """
        )
        (ctx,) = statement_contexts(p)
        assert ctx.while_loops
        assert len(ctx.guards) == 1
        assert ctx.in_irregular_context({"n"})

    def test_else_branch_guard_negated(self):
        p = parse_program(
            """
            program p(n) {
              scalar a;
              if (n > 0) { S1: a = 1; } else { S2: a = 2; }
            }
            """
        )
        s1, s2 = statement_contexts(p)
        from repro.ir.nodes import UnOp

        assert not isinstance(s1.guards[0], UnOp)
        assert isinstance(s2.guards[0], UnOp)


class TestReadWriteSets:
    def test_written(self, paper_example):
        assert arrays_written_in(paper_example.body) == {"A"}

    def test_read_includes_indices(self):
        p = parse_program(
            """
            program p(n) {
              array p_new[n];
              array cols[n] : i64;
              scalar s;
              for j = 0 .. n - 1 { S1: s = s + p_new[cols[j]]; }
            }
            """
        )
        reads = arrays_read_in(p.body)
        assert "cols" in reads and "p_new" in reads


class TestValidation:
    def test_benchmarks_validate(self):
        from repro.programs import ALL_BENCHMARKS

        for module in ALL_BENCHMARKS.values():
            validate_program(module.program())

    def test_unknown_name(self):
        p = parse_program("program p() { scalar a; a = q; }")
        with pytest.raises(ValidationError, match="unknown name"):
            validate_program(p)

    def test_unknown_array(self):
        p = parse_program("program p() { scalar a; a = B[0]; }")
        with pytest.raises(ValidationError, match="unknown array"):
            validate_program(p)

    def test_rank_mismatch(self):
        p = parse_program(
            "program p(n) { array A[n][n]; scalar a; a = A[0]; }"
        )
        with pytest.raises(ValidationError, match="dims"):
            validate_program(p)

    def test_duplicate_label(self):
        p = parse_program(
            "program p() { scalar a; S1: a = 1; S1: a = 2; }"
        )
        with pytest.raises(ValidationError, match="duplicate label"):
            validate_program(p)

    def test_iterator_shadowing(self):
        p = parse_program(
            """
            program p(n) {
              array A[n];
              for i = 0 .. n - 1 {
                for i = 0 .. n - 1 { A[i] = 0; }
              }
            }
            """
        )
        with pytest.raises(ValidationError, match="shadows"):
            validate_program(p)

    def test_assignment_to_undeclared_scalar(self):
        p = parse_program("program p() { b = 1; }")
        with pytest.raises(ValidationError):
            validate_program(p)

    def test_array_used_without_subscript(self):
        p = parse_program("program p(n) { array A[n]; scalar a; a = A; }")
        with pytest.raises(ValidationError):
            validate_program(p)
