"""Parser tests: grammar coverage and error reporting."""

import pytest

from repro.ir.nodes import (
    ArrayRef,
    Assign,
    BinOp,
    Call,
    Const,
    If,
    Loop,
    Select,
    UnOp,
    VarRef,
    WhileLoop,
)
from repro.ir.parser import ParseError, parse_expression, parse_program


class TestPrograms:
    def test_minimal(self):
        p = parse_program("program p() { }")
        assert p.name == "p"
        assert p.body == ()

    def test_params(self):
        p = parse_program("program p(n, m) { }")
        assert p.params == ("n", "m")

    def test_declarations(self):
        p = parse_program(
            """
            program p(n) {
              array A[n][n];
              array cols[n] : i64;
              scalar t : i64;
              scalar s;
            }
            """
        )
        assert p.array("A").dims and p.array("A").elem_type == "f64"
        assert p.array("cols").elem_type == "i64"
        assert p.scalar("t").elem_type == "i64"
        assert p.scalar("s").elem_type == "f64"

    def test_paper_example(self, paper_example):
        assert paper_example.params == ("n",)
        (loop,) = paper_example.body
        assert isinstance(loop, Loop)
        assert loop.var == "j"
        s1, inner = loop.body
        assert isinstance(s1, Assign) and s1.label == "S1"
        assert isinstance(inner, Loop) and inner.var == "i"

    def test_while(self):
        p = parse_program(
            """
            program p(n) {
              scalar t : i64;
              while (t < n) {
                S1: t = t + 1;
              }
            }
            """
        )
        (s0,) = p.body
        assert isinstance(s0, WhileLoop)

    def test_if_else(self):
        p = parse_program(
            """
            program p(n) {
              scalar a;
              if (n > 0) { S1: a = 1; } else { S2: a = 2; }
            }
            """
        )
        (cond,) = p.body
        assert isinstance(cond, If)
        assert len(cond.then_body) == 1 and len(cond.else_body) == 1

    def test_else_if_chain(self):
        p = parse_program(
            """
            program p(n) {
              scalar a;
              if (n > 0) { a = 1; } else if (n < 0) { a = 2; } else { a = 3; }
            }
            """
        )
        (outer,) = p.body
        (inner,) = outer.else_body
        assert isinstance(inner, If)

    def test_compound_assignment(self):
        p = parse_program(
            """
            program p(n) {
              array A[n];
              for i = 0 .. n - 1 { S1: A[i] += 2; }
            }
            """
        )
        stmt = p.body[0].body[0]
        assert isinstance(stmt.rhs, BinOp) and stmt.rhs.op == "+"
        assert stmt.rhs.left == stmt.lhs

    def test_labels_optional(self):
        p = parse_program(
            """
            program p(n) {
              scalar a;
              a = 1;
              S9: a = 2;
            }
            """
        )
        assert p.body[0].label is None
        assert p.body[1].label == "S9"


class TestExpressions:
    def test_precedence(self):
        e = parse_expression("a + b * c")
        assert isinstance(e, BinOp) and e.op == "+"
        assert isinstance(e.right, BinOp) and e.right.op == "*"

    def test_parentheses(self):
        e = parse_expression("(a + b) * c")
        assert e.op == "*"

    def test_unary_minus(self):
        e = parse_expression("-a + b")
        assert e.op == "+"
        assert isinstance(e.left, UnOp)

    def test_comparison_and_logic(self):
        e = parse_expression("a < b && c >= d || !e")
        assert e.op == "||"

    def test_ternary(self):
        e = parse_expression("a > 0 ? 1 : 2")
        assert isinstance(e, Select)

    def test_nested_ternary(self):
        e = parse_expression("a > 0 ? 1 : b > 0 ? 2 : 3")
        assert isinstance(e.if_false, Select)

    def test_indexing(self):
        e = parse_expression("A[i][j + 1]")
        assert isinstance(e, ArrayRef)
        assert e.indices[1] == BinOp("+", VarRef("j"), Const(1))

    def test_indirect_indexing(self):
        e = parse_expression("p[cols[j]]")
        assert isinstance(e.indices[0], ArrayRef)

    def test_intrinsics(self):
        e = parse_expression("sqrt(abs(x))")
        assert isinstance(e, Call) and e.func == "sqrt"
        assert isinstance(e.args[0], Call)

    def test_floats(self):
        assert parse_expression("1.5").value == 1.5
        assert parse_expression("1e3").value == 1000.0

    def test_modulo(self):
        e = parse_expression("i % n")
        assert e.op == "%"


class TestErrors:
    def test_unknown_function(self):
        with pytest.raises(ParseError, match="unknown function"):
            parse_expression("frobnicate(x)")

    def test_missing_semicolon(self):
        with pytest.raises(ParseError):
            parse_program("program p() { scalar a; a = 1 }")

    def test_trailing_garbage(self):
        with pytest.raises(ParseError, match="trailing"):
            parse_program("program p() { } extra")

    def test_bad_character(self):
        with pytest.raises(ParseError):
            parse_program("program p() { $ }")

    def test_expression_trailing(self):
        with pytest.raises(ParseError):
            parse_expression("a + b c")

    def test_array_needs_dims(self):
        with pytest.raises(ParseError):
            parse_program("program p() { array A; }")
