"""2d+1 schedule tests (paper Section 3.1, Figure 3)."""

from repro.ir.parser import parse_program
from repro.ir.schedule import ScheduleTable


class TestPaperExample:
    def test_figure3_schedules(self, paper_example):
        """S1[j] -> [0, j, 0, 0, 0];  S2[j, i] -> [0, j, 1, i, 0]."""
        table = ScheduleTable.from_program(paper_example)
        assert table["S1"].components == (0, "j", 0, 0, 0)
        assert table["S2"].components == (0, "j", 1, "i", 0)

    def test_depths(self, paper_example):
        table = ScheduleTable.from_program(paper_example)
        assert table["S1"].depth == 1
        assert table["S2"].depth == 2


class TestShapes:
    def test_sequential_statements(self):
        p = parse_program(
            """
            program p() {
              scalar a;
              S1: a = 1;
              S2: a = 2;
              S3: a = 3;
            }
            """
        )
        table = ScheduleTable.from_program(p)
        assert table["S1"].components == (0,)
        assert table["S2"].components == (1,)
        assert table["S3"].components == (2,)
        assert table.textual_order() == ["S1", "S2", "S3"]

    def test_sibling_loops(self):
        p = parse_program(
            """
            program p(n) {
              array A[n];
              for i = 0 .. n - 1 { S1: A[i] = 0; }
              for j = 0 .. n - 1 { S2: A[j] = 1; }
            }
            """
        )
        table = ScheduleTable.from_program(p)
        assert table["S1"].components == (0, "i", 0)
        assert table["S2"].components == (1, "j", 0)

    def test_if_does_not_add_dimension(self):
        p = parse_program(
            """
            program p(n) {
              array A[n];
              for i = 0 .. n - 1 {
                if (i > 0) { S1: A[i] = 0; }
                S2: A[i] = 1;
              }
            }
            """
        )
        table = ScheduleTable.from_program(p)
        assert table["S1"].iterators == ("i",)
        # S1 is inside the if at child 0; S2 at child 1.
        assert table["S1"].components[2] == 0
        assert table["S2"].components[2] == 1

    def test_while_contributes_counter_level(self):
        p = parse_program(
            """
            program p(n) {
              array A[n];
              scalar t : i64;
              while (t < n) {
                for i = 0 .. n - 1 { S1: A[i] = 0; }
                S2: t = t + 1;
              }
            }
            """
        )
        table = ScheduleTable.from_program(p)
        assert table["S1"].depth == 2  # while counter + i
        assert table["S2"].depth == 1

    def test_missing_statement_raises(self, paper_example):
        table = ScheduleTable.from_program(paper_example)
        assert "S1" in table
        assert "missing" not in table

    def test_empty_program(self):
        table = ScheduleTable.from_program(parse_program("program p() { }"))
        assert table.labels() == []


class TestBenchmarkSchedules:
    def test_all_labelled_statements_scheduled(self):
        from repro.programs import ALL_BENCHMARKS
        from repro.ir.nodes import statement_labels

        for name, module in ALL_BENCHMARKS.items():
            program = module.program()
            table = ScheduleTable.from_program(program)
            for label in statement_labels(program.body):
                assert label in table, f"{name}:{label}"

    def test_widths_uniform(self):
        from repro.programs import ALL_BENCHMARKS

        for module in ALL_BENCHMARKS.values():
            table = ScheduleTable.from_program(module.program())
            widths = {len(table[l].components) for l in table.labels()}
            assert len(widths) == 1
            (width,) = widths
            assert width % 2 == 1  # 2d+1
