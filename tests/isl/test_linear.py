"""Unit and property tests for affine expressions."""

from fractions import Fraction

import pytest
from hypothesis import given, strategies as st

from repro.isl.linear import LinExpr, sum_exprs

NAMES = st.sampled_from(["i", "j", "k", "n", "m"])
COEFFS = st.integers(min_value=-6, max_value=6)


@st.composite
def lin_exprs(draw):
    terms = draw(
        st.dictionaries(NAMES, COEFFS, max_size=4)
    )
    const = draw(COEFFS)
    return LinExpr(terms, const)


ASSIGNMENTS = st.fixed_dictionaries(
    {name: st.integers(min_value=-10, max_value=10) for name in ["i", "j", "k", "n", "m"]}
)


class TestConstruction:
    def test_zero_coefficients_dropped(self):
        e = LinExpr({"i": 0, "j": 2}, 1)
        assert e.variables() == frozenset({"j"})

    def test_constant(self):
        assert LinExpr.constant(5).constant_value() == 5

    def test_var(self):
        assert LinExpr.var("x", 3).coeff("x") == 3

    def test_constant_value_raises_on_variables(self):
        with pytest.raises(ValueError):
            LinExpr.var("x").constant_value()

    def test_rejects_bad_coefficient_type(self):
        with pytest.raises(TypeError):
            LinExpr({"x": 1.5})  # type: ignore[dict-item]


class TestArithmetic:
    def test_add(self):
        e = LinExpr.var("i") + LinExpr.var("i") + 3
        assert e.coeff("i") == 2
        assert e.const == 3

    def test_sub_cancels(self):
        e = LinExpr.var("i") - LinExpr.var("i")
        assert e.is_zero()

    def test_scalar_multiply(self):
        e = (LinExpr.var("i") + 1) * 3
        assert e.coeff("i") == 3 and e.const == 3

    def test_divide(self):
        e = (LinExpr.var("i") * 4) / 2
        assert e.coeff("i") == 2

    def test_divide_by_zero(self):
        with pytest.raises(ZeroDivisionError):
            LinExpr.var("i") / 0

    def test_rsub(self):
        e = 5 - LinExpr.var("i")
        assert e.const == 5 and e.coeff("i") == -1

    @given(lin_exprs(), lin_exprs(), ASSIGNMENTS)
    def test_add_matches_evaluation(self, a, b, env):
        assert (a + b).evaluate(env) == a.evaluate(env) + b.evaluate(env)

    @given(lin_exprs(), COEFFS, ASSIGNMENTS)
    def test_scale_matches_evaluation(self, a, c, env):
        assert (a * c).evaluate(env) == a.evaluate(env) * c

    @given(lin_exprs(), ASSIGNMENTS)
    def test_negation(self, a, env):
        assert (-a).evaluate(env) == -a.evaluate(env)


class TestSubstitution:
    def test_simple(self):
        e = LinExpr.var("i") + LinExpr.var("j")
        result = e.substitute({"i": LinExpr.var("k") + 1})
        assert result.coeff("k") == 1
        assert result.coeff("j") == 1
        assert result.const == 1

    def test_simultaneous(self):
        e = LinExpr.var("i") - LinExpr.var("j")
        result = e.substitute(
            {"i": LinExpr.var("j"), "j": LinExpr.var("i")}
        )
        assert result == LinExpr.var("j") - LinExpr.var("i")

    @given(lin_exprs(), lin_exprs(), ASSIGNMENTS)
    def test_substitution_composes_with_evaluation(self, e, repl, env):
        substituted = e.substitute({"i": repl})
        env2 = dict(env)
        env2["i"] = int(repl.evaluate(env)) if repl.evaluate(env).denominator == 1 else repl.evaluate(env)
        assert substituted.evaluate(env) == e.evaluate(
            {**env, "i": repl.evaluate(env)}
        )

    def test_rename_merges(self):
        e = LinExpr({"a": 1, "b": 2})
        assert e.rename({"a": "b"}).coeff("b") == 3


class TestScaling:
    def test_scaled_to_integral(self):
        e = LinExpr({"i": Fraction(1, 2)}, Fraction(1, 3))
        scaled, multiplier = e.scaled_to_integral()
        assert multiplier == 6
        assert scaled.coeff("i") == 3
        assert scaled.const == 2

    @given(lin_exprs())
    def test_integral_stays_fixed(self, e):
        scaled, multiplier = e.scaled_to_integral()
        assert multiplier == 1
        assert scaled == e


class TestDisplay:
    def test_str_simple(self):
        assert str(LinExpr.var("n") - LinExpr.var("j") - 1) == "-j + n - 1"

    def test_str_zero(self):
        assert str(LinExpr.zero()) == "0"

    @given(lin_exprs())
    def test_repr_is_stable(self, e):
        assert repr(e) == repr(LinExpr(e.coefficients(), e.const))


class TestHelpers:
    def test_sum_exprs(self):
        total = sum_exprs([LinExpr.var("i"), LinExpr.var("i"), LinExpr.constant(1)])
        assert total.coeff("i") == 2 and total.const == 1

    def test_sum_empty(self):
        assert sum_exprs([]).is_zero()

    def test_content(self):
        assert LinExpr({"i": 4, "j": 6}).content() == 2

    def test_evaluate_missing_raises(self):
        with pytest.raises(KeyError):
            LinExpr.var("q").evaluate({})
