"""Tests for maps: apply, compose, reverse, parameterized application."""

import pytest

from repro.isl.basic_set import BasicSet
from repro.isl.relation import BasicMap, Map
from repro.isl.set_ops import Set
from repro.isl.space import Space

# The paper's running-example flow dependence:
# { S1[j] -> S2[jq, iq] : jq = j, 0 <= j <= n-1, j+1 <= iq <= n-1 }
DEP_SPACE = Space.map_space(
    ("j",), ("jq", "iq"), params=("n",), in_name="S1", out_name="S2"
)


def paper_dependence() -> BasicMap:
    return BasicMap.from_strings(
        DEP_SPACE,
        ["jq == j", "0 <= j <= n - 1", "j + 1 <= iq <= n - 1"],
    )


class TestApply:
    def test_apply_matches_paper_example(self):
        """d_flow({S1[10]}) = {S2[10, i] : 11 <= i <= n-1} (Section 3.1)."""
        src_space = Space.set_space(("j",), params=("n",), name="S1")
        src = Set.from_constraint_strings(src_space, ["j == 10"])
        targets = paper_dependence().apply(src)
        points = targets.points({"n": 14})
        assert points == [(10, 11), (10, 12), (10, 13)]

    def test_apply_empty_source(self):
        src_space = Space.set_space(("j",), params=("n",), name="S1")
        src = Set.from_constraint_strings(src_space, ["j == n"])  # outside domain? n is fine
        targets = paper_dependence().apply(src)
        assert targets.count({"n": 5}) == 0  # j=5 not in [0, 4]

    def test_apply_whole_domain(self):
        src_space = Space.set_space(("j",), params=("n",), name="S1")
        src = Set.universe(src_space)
        # total = sum_{j=0}^{n-2} (n-1-j) = (n-1)n/2
        assert paper_dependence().apply(src).count({"n": 5}) == 10


class TestParameterized:
    def test_apply_parameterized_cardinality(self):
        """Algorithm 1: |targets| of S1[jp] is n-1-jp."""
        from repro.isl.counting import count_points

        _, targets = paper_dependence().apply_parameterized()
        count = count_points(targets)
        assert count.evaluate({"n": 6, "jp": 2}) == 3
        assert count.evaluate({"n": 6, "jp": 5}) == 0


class TestStructure:
    def test_domain(self):
        dom = paper_dependence().domain()
        from repro.isl.enumerate_points import enumerate_points

        # S1[j] has targets only for j <= n-2
        assert enumerate_points(dom, {"n": 4}) == [(0,), (1,), (2,)]

    def test_range(self):
        rng = paper_dependence().range()
        from repro.isl.enumerate_points import enumerate_points

        points = enumerate_points(rng, {"n": 4})
        assert (0, 1) in points and (2, 3) in points

    def test_reverse_swaps(self):
        rev = paper_dependence().reverse()
        assert rev.space.in_dims == ("jq", "iq")
        assert rev.space.out_dims == ("j",)

    def test_wrapped_roundtrip(self):
        bm = paper_dependence()
        assert bm.wrapped().space.all_dims() == ("j", "jq", "iq")


class TestCompose:
    def test_compose_simple_shift(self):
        space = Space.map_space(("x",), ("y",))
        shift1 = BasicMap.from_strings(space, ["y == x + 1"])
        shift2 = BasicMap.from_strings(space, ["y == x + 2"])
        composed = shift1.compose(shift2)
        src = Set.from_constraint_strings(Space.set_space(("x",)), ["x == 0"])
        assert composed.apply(src).points({}) == [(3,)]

    def test_compose_name_collision_is_resolved(self):
        space = Space.map_space(("x",), ("x2",))
        back = Space.map_space(("x2",), ("x",))
        forward = BasicMap.from_strings(space, ["x2 == x + 5"])
        backward = BasicMap.from_strings(back, ["x == x2 - 5"])
        composed = forward.compose(backward)
        src = Set.from_constraint_strings(Space.set_space(("x",)), ["x == 7"])
        assert composed.apply(src).points({})[0] == (7,)

    def test_compose_arity_mismatch(self):
        one = BasicMap.universe(Space.map_space(("a",), ("b",)))
        two = BasicMap.universe(Space.map_space(("c", "d"), ("e",)))
        with pytest.raises(ValueError):
            one.compose(two)


class TestUnionMaps:
    def test_map_union_apply(self):
        space = Space.map_space(("x",), ("y",))
        up = BasicMap.from_strings(space, ["y == x + 1", "0 <= x <= 9"])
        down = BasicMap.from_strings(space, ["y == x - 1", "0 <= x <= 9"])
        both = Map.from_basic(up).union(Map.from_basic(down))
        src = Set.from_constraint_strings(Space.set_space(("x",)), ["x == 4"])
        assert both.apply(src).points({}) == [(3,), (5,)]

    def test_map_subtract(self):
        space = Space.map_space(("x",), ("y",))
        all_pairs = BasicMap.from_strings(
            space, ["0 <= x <= 3", "0 <= y <= 3"]
        )
        identity = BasicMap.from_strings(space, ["x == y", "0 <= x <= 3"])
        off_diag = Map.from_basic(all_pairs).subtract(Map.from_basic(identity))
        points = off_diag.points({})
        assert (1, 1) not in points
        assert (1, 2) in points
        assert len(points) == 12

    def test_intersect_domain(self):
        space = Space.map_space(("x",), ("y",))
        m = Map.from_basic(
            BasicMap.from_strings(space, ["y == x", "0 <= x <= 9"])
        )
        dom = BasicSet.from_strings(Space.set_space(("x",)), ["2 <= x <= 3"])
        restricted = m.intersect_domain(dom)
        assert restricted.points({}) == [(2, 2), (3, 3)]

    def test_empty_map(self):
        assert Map.empty(DEP_SPACE).is_empty()
