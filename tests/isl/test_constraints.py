"""Tests for constraint normalization and integer semantics."""

import pytest
from hypothesis import given, strategies as st

from repro.isl.constraints import Constraint
from repro.isl.linear import LinExpr

NAMES = ["i", "j", "n"]
ASSIGNMENTS = st.fixed_dictionaries(
    {name: st.integers(min_value=-8, max_value=8) for name in NAMES}
)


@st.composite
def small_exprs(draw):
    coeffs = draw(
        st.dictionaries(
            st.sampled_from(NAMES), st.integers(min_value=-4, max_value=4), max_size=3
        )
    )
    const = draw(st.integers(min_value=-6, max_value=6))
    return LinExpr(coeffs, const)


class TestNormalization:
    def test_gcd_reduction_inequality_tightens(self):
        # 2i - 1 >= 0 over the integers means i >= 1.
        c = Constraint.ineq(LinExpr.var("i", 2) - 1)
        assert c.expr == LinExpr.var("i") - 1

    def test_gcd_reduction_exact(self):
        c = Constraint.ineq(LinExpr.var("i", 2) - 4)
        assert c.expr == LinExpr.var("i") - 2

    def test_equality_canonical_sign(self):
        c1 = Constraint.eq(LinExpr.var("i") - LinExpr.var("j"))
        c2 = Constraint.eq(LinExpr.var("j") - LinExpr.var("i"))
        assert c1 == c2

    def test_fractional_input_scaled(self):
        from fractions import Fraction

        c = Constraint.ineq(LinExpr({"i": Fraction(1, 2)}, 0))
        assert c.expr == LinExpr.var("i")

    @given(small_exprs(), ASSIGNMENTS)
    def test_normalization_preserves_integer_satisfaction(self, e, env):
        c = Constraint.ineq(e)
        assert c.satisfied_by(env) == (e.evaluate(env) >= 0)

    @given(small_exprs(), ASSIGNMENTS)
    def test_equality_normalization_preserves_satisfaction(self, e, env):
        c = Constraint.eq(e)
        assert c.satisfied_by(env) == (e.evaluate(env) == 0)


class TestComparisonConstructors:
    def test_lt_is_integer_strict(self):
        c = Constraint.lt(LinExpr.var("i"), LinExpr.var("j"))
        assert c.satisfied_by({"i": 2, "j": 3})
        assert not c.satisfied_by({"i": 3, "j": 3})

    def test_le_ge_gt(self):
        i, j = LinExpr.var("i"), LinExpr.var("j")
        assert Constraint.le(i, j).satisfied_by({"i": 3, "j": 3})
        assert Constraint.ge(i, j).satisfied_by({"i": 3, "j": 3})
        assert not Constraint.gt(i, j).satisfied_by({"i": 3, "j": 3})


class TestLogic:
    def test_tautology(self):
        assert Constraint.ineq(LinExpr.constant(0)).is_tautology()
        assert Constraint.eq(LinExpr.constant(0)).is_tautology()

    def test_contradiction(self):
        assert Constraint.ineq(LinExpr.constant(-1)).is_contradiction()
        assert Constraint.eq(LinExpr.constant(2)).is_contradiction()

    @given(small_exprs(), ASSIGNMENTS)
    def test_negation_is_exact_complement_for_inequalities(self, e, env):
        c = Constraint.ineq(e)
        negations = c.negated()
        assert any(n.satisfied_by(env) for n in negations) != c.satisfied_by(env)

    @given(small_exprs(), ASSIGNMENTS)
    def test_negation_is_exact_complement_for_equalities(self, e, env):
        c = Constraint.eq(e)
        negations = c.negated()
        assert any(n.satisfied_by(env) for n in negations) != c.satisfied_by(env)

    def test_negated_equality_disjuncts_are_disjoint(self):
        c = Constraint.eq(LinExpr.var("i"))
        low, high = c.negated()
        # i >= 1 and i <= -1 can't hold together
        for i in range(-5, 6):
            assert not (low.satisfied_by({"i": i}) and high.satisfied_by({"i": i}))


class TestTransforms:
    def test_substitute(self):
        c = Constraint.ineq(LinExpr.var("i") - 1)
        assert c.substitute({"i": LinExpr.constant(5)}).is_tautology()

    def test_rename(self):
        c = Constraint.ineq(LinExpr.var("i"))
        assert c.rename({"i": "z"}).involves("z")

    def test_bad_kind(self):
        with pytest.raises(ValueError):
            Constraint(LinExpr.var("i"), "<=")
