"""Tests for BasicSet: construction, queries, projection, emptiness."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.isl.basic_set import BasicSet, parse_constraint, parse_constraints
from repro.isl.constraints import Constraint
from repro.isl.enumerate_points import enumerate_points
from repro.isl.linear import LinExpr
from repro.isl.space import Space


def triangle(n_param: bool = True) -> BasicSet:
    space = Space.set_space(("i", "j"), params=("n",) if n_param else ())
    return BasicSet.from_strings(
        space, ["0 <= i", "i <= n - 1", "0 <= j", "j <= i"]
    )


class TestParsing:
    def test_parse_affine_constraint(self):
        c = parse_constraint("n - 1 - j >= 0")
        assert c.satisfied_by({"n": 5, "j": 4})
        assert not c.satisfied_by({"n": 5, "j": 5})

    def test_parse_comparison(self):
        c = parse_constraint("i < j")
        assert c.satisfied_by({"i": 1, "j": 2})
        assert not c.satisfied_by({"i": 2, "j": 2})

    def test_parse_coefficients(self):
        c = parse_constraint("2*i + 3j - 5 == 0")
        assert c.satisfied_by({"i": 1, "j": 1})

    def test_parse_chain(self):
        constraints = parse_constraints("0 <= j <= n - 1")
        assert len(constraints) == 2

    def test_unknown_name_rejected_by_space(self):
        space = Space.set_space(("i",))
        with pytest.raises(ValueError):
            BasicSet.from_strings(space, ["q >= 0"])

    def test_garbage_rejected(self):
        with pytest.raises(ValueError):
            parse_constraint("i #$ 0")

    def test_no_comparison_rejected(self):
        with pytest.raises(ValueError):
            parse_constraint("i + j")


class TestQueries:
    def test_membership(self):
        t = triangle()
        assert t.satisfied_by({"n": 4, "i": 2, "j": 1})
        assert not t.satisfied_by({"n": 4, "i": 1, "j": 2})

    def test_emptiness_concrete(self):
        t = triangle()
        assert t.is_empty(params={"n": 0})
        assert not t.is_empty(params={"n": 1})

    def test_emptiness_parametric_contradiction(self):
        space = Space.set_space(("i",), params=("n",))
        bs = BasicSet.from_strings(space, ["i >= 1", "i <= 0"])
        assert bs.is_empty()

    def test_emptiness_gcd(self):
        space = Space.set_space(("i",))
        bs = BasicSet.from_strings(space, ["2*i - 1 == 0"])
        assert bs.is_empty()

    def test_universe_not_empty(self):
        assert not BasicSet.universe(Space.set_space(("i",))).is_empty(params={})

    def test_explicit_empty(self):
        assert BasicSet.empty(Space.set_space(("i",))).is_empty()

    def test_sample(self):
        point = triangle().sample({"n": 3})
        assert point is not None
        assert 0 <= point["j"] <= point["i"] <= 2


class TestEnumeration:
    def test_triangle_count(self):
        points = enumerate_points(triangle(), {"n": 4})
        assert len(points) == 10  # 4+3+2+1

    def test_points_in_order(self):
        points = enumerate_points(triangle(), {"n": 3})
        assert points == sorted(points)

    def test_unbounded_raises(self):
        space = Space.set_space(("i",))
        bs = BasicSet.from_strings(space, ["i >= 0"])
        with pytest.raises(ValueError):
            enumerate_points(bs, {})

    def test_missing_params_raise(self):
        with pytest.raises(ValueError):
            enumerate_points(triangle(), {})

    def test_zero_dim_nonempty(self):
        space = Space.set_space((), params=("n",))
        bs = BasicSet.from_strings(space, ["n >= 1"])
        assert enumerate_points(bs, {"n": 2}) == [()]
        assert enumerate_points(bs, {"n": 0}) == []


class TestOperations:
    def test_intersect(self):
        t = triangle()
        diag = BasicSet.from_strings(t.space, ["i == j"])
        points = enumerate_points(t.intersect(diag), {"n": 4})
        assert points == [(0, 0), (1, 1), (2, 2), (3, 3)]

    def test_intersect_space_mismatch(self):
        other = BasicSet.universe(Space.set_space(("x",)))
        with pytest.raises(ValueError):
            triangle().intersect(other)

    def test_fix(self):
        fixed = triangle().fix("i", 2)
        points = enumerate_points(fixed, {"n": 4})
        assert points == [(2, 0), (2, 1), (2, 2)]

    def test_project_out(self):
        projected, exact = triangle().project_out(["j"])
        assert exact
        assert enumerate_points(projected, {"n": 3}) == [(0,), (1,), (2,)]

    def test_parameterize(self):
        p = triangle().parameterize(["i"])
        assert "i" in p.space.params
        assert p.space.set_dims == ("j",)

    def test_rename(self):
        renamed = triangle().rename({"i": "a"})
        assert "a" in renamed.space.set_dims

    def test_subset(self):
        t = triangle()
        smaller = t.add_constraints([parse_constraint("j >= 1")])
        assert smaller.is_subset_of(t)
        assert not t.is_subset_of(smaller)

    def test_simplify_drops_redundant(self):
        space = Space.set_space(("i",), params=("n",))
        bs = BasicSet.from_strings(space, ["i >= 0", "i >= -5", "i <= n"])
        simplified = bs.simplify()
        assert len(simplified.constraints) == 2


@settings(max_examples=40, deadline=None)
@given(
    bounds=st.lists(
        st.tuples(
            st.sampled_from(["i", "j"]),
            st.integers(min_value=-3, max_value=3),
            st.integers(min_value=-3, max_value=6),
        ),
        min_size=2,
        max_size=4,
    )
)
def test_projection_overapproximates_then_enumeration_agrees(bounds):
    """Projection of a random 2-D box-ish set matches point projection."""
    space = Space.set_space(("i", "j"))
    # Base box keeps everything bounded regardless of the drawn bounds.
    constraints = parse_constraints("-4 <= i <= 7") + parse_constraints(
        "-4 <= j <= 7"
    )
    for var, lo, hi in bounds:
        constraints.append(parse_constraint(f"{var} >= {lo}"))
        constraints.append(parse_constraint(f"{var} <= {hi}"))
    # Couple the dims so projection is non-trivial.
    constraints.append(parse_constraint("i + j <= 6"))
    bs = BasicSet(space, constraints)
    projected, exact = bs.project_out(["j"])
    full = enumerate_points(bs, {})
    expected = sorted({(i,) for (i, _) in full})
    if exact:
        assert enumerate_points(projected, {}) == expected
    else:
        assert set(enumerate_points(projected, {})) >= set(expected)
