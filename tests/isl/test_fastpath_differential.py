"""Randomized differential suite for the ISL fast path.

Three-way agreement on randomly generated bounded systems:

* the **fast path** (gist pruning, emptiness/FM memoization, subset
  short-circuit — :mod:`repro.isl.fastpath`),
* the **slow path** (all toggles off: the textbook code path), and
* a **brute-force oracle** that scans the integer bounding box and
  checks each point against the raw constraints (no subtraction,
  projection or memo machinery involved).

The fast path's contract is stronger than point-set equality: gist
pruning only skips building disjuncts that are provably empty, so
``subtract`` must return *structurally identical* pieces on both
paths.  These tests pin that down alongside the semantic properties
(disjoint pieces, exact difference, subset/emptiness verdicts).
"""

from hypothesis import given, settings, strategies as st

from repro.isl import fastpath
from repro.isl.basic_set import BasicSet
from repro.isl.constraints import Constraint
from repro.isl.linear import LinExpr
from repro.isl.set_ops import Set
from repro.isl.space import Space

SPACE = Space.set_space(("i", "j"))
LO, HI = 0, 4
BOX_POINTS = [
    {"i": i, "j": j}
    for i in range(LO, HI + 1)
    for j in range(LO, HI + 1)
]


def box_constraints() -> list[Constraint]:
    out = []
    for name in ("i", "j"):
        out.append(Constraint.ineq(LinExpr.var(name) - LO))
        out.append(Constraint.ineq(LinExpr.constant(HI) - LinExpr.var(name)))
    return out


def oracle_points(s) -> set[tuple[int, int]]:
    """Brute-force: every box point the set's constraints accept."""
    return {
        (p["i"], p["j"]) for p in BOX_POINTS if s.satisfied_by(p)
    }


@st.composite
def random_constraint(draw) -> Constraint:
    a = draw(st.integers(-2, 2))
    b = draw(st.integers(-2, 2))
    c = draw(st.integers(-6, 6))
    expr = LinExpr({"i": a, "j": b}, c)
    if draw(st.booleans()):
        return Constraint.eq(expr)
    return Constraint.ineq(expr)


@st.composite
def random_basic_set(draw) -> BasicSet:
    extra = draw(st.lists(random_constraint(), max_size=3))
    return BasicSet(SPACE, box_constraints() + extra)


@st.composite
def random_set(draw) -> Set:
    pieces = draw(st.lists(random_basic_set(), min_size=1, max_size=3))
    return Set(SPACE, pieces)


@settings(max_examples=120, deadline=None)
@given(a=random_set(), b=random_set())
def test_subtract_matches_oracle_and_slow_path(a: Set, b: Set):
    fastpath.clear_memo()
    fast = a.subtract(b)
    with fastpath.slow_path():
        slow = a.subtract(b)

    expected = oracle_points(a) - oracle_points(b)
    assert oracle_points(fast) == expected
    # Gist pruning must not change the emitted decomposition, only
    # skip the provably-empty disjuncts.
    assert fast.basic_sets == slow.basic_sets
    # The negation-chain decomposition of a single conjunctive minuend
    # is disjoint: every point lies in exactly one piece.  (Distinct
    # pieces of a union minuend may legitimately overlap.)
    if len(a.basic_sets) == 1:
        for point in expected:
            assignment = {"i": point[0], "j": point[1]}
            owners = sum(
                1
                for piece in fast.basic_sets
                if piece.satisfied_by(assignment)
            )
            assert owners == 1


@settings(max_examples=150, deadline=None)
@given(bset=random_basic_set())
def test_is_empty_fast_slow_and_oracle_agree(bset: BasicSet):
    truly_empty = not oracle_points(Set.from_basic(bset))
    fastpath.clear_memo()
    # Fresh structurally-equal copies so the per-instance verdict cache
    # cannot mask a memo bug.
    fresh = BasicSet(SPACE, list(bset.constraints))
    verdict = fresh.is_empty()
    # ``is_empty`` is documented sound-but-conservative: an "empty"
    # verdict must be true, a "non-empty" verdict may be a rational
    # artifact (elimination went inexact).
    if verdict:
        assert truly_empty
    if not truly_empty:
        assert not verdict
    warm = BasicSet(SPACE, list(bset.constraints))
    assert warm.is_empty() == verdict  # memo-warm answer
    with fastpath.slow_path():
        slow = BasicSet(SPACE, list(bset.constraints))
        assert slow.is_empty() == verdict


def test_is_empty_combined_equality_gcd():
    """``j == 0`` with ``2i - j - 1 == 0`` forces ``2i == 1``: integer
    empty though rationally feasible.  Found by hypothesis; decided
    exactly by the equality-substitution pass."""
    constraints = box_constraints() + [
        Constraint.eq(LinExpr.var("j")),
        Constraint.eq(
            LinExpr({"i": 2, "j": -1}, -1)
        ),
    ]
    fastpath.clear_memo()
    assert BasicSet(SPACE, constraints).is_empty()
    with fastpath.slow_path():
        assert BasicSet(SPACE, list(constraints)).is_empty()


@settings(max_examples=120, deadline=None)
@given(a=random_set(), b=random_set())
def test_is_subset_of_matches_oracle_and_slow_path(a: Set, b: Set):
    fastpath.clear_memo()
    expected = oracle_points(a) <= oracle_points(b)
    verdict = a.is_subset_of(b)
    # Subset verdicts inherit ``is_empty``'s conservatism: "subset"
    # must be true, "not subset" may stem from a rationally-nonempty
    # (integer-empty) remainder.
    if verdict:
        assert expected
    if not expected:
        assert not verdict
    with fastpath.slow_path():
        assert a.is_subset_of(b) == verdict


@settings(max_examples=120, deadline=None)
@given(s=random_set())
def test_coalesce_preserves_points(s: Set):
    fastpath.clear_memo()
    coalesced = s.coalesce()
    assert oracle_points(coalesced) == oracle_points(s)
    assert len(coalesced.basic_sets) <= len(s.basic_sets)
    with fastpath.slow_path():
        slow = s.coalesce()
    assert coalesced.basic_sets == slow.basic_sets


def test_duplicate_pieces_coalesced():
    piece = BasicSet(SPACE, box_constraints())
    s = Set(SPACE, [piece, BasicSet(SPACE, box_constraints())])
    assert len(s.coalesce().basic_sets) == 1


def test_slow_path_restores_fast_path():
    assert fastpath.fast_path_enabled()
    with fastpath.slow_path():
        assert not fastpath.fast_path_enabled()
    assert fastpath.fast_path_enabled()


def test_memo_stats_count_hits():
    fastpath.clear_memo()
    constraints = box_constraints()
    BasicSet(SPACE, list(constraints)).is_empty()
    before = fastpath.memo_stats()["hits"]
    BasicSet(SPACE, list(constraints)).is_empty()
    assert fastpath.memo_stats()["hits"] == before + 1
