"""Tests for Bernoulli numbers and symbolic power sums."""

from fractions import Fraction

import pytest
from hypothesis import given, strategies as st

from repro.isl.faulhaber import (
    bernoulli,
    power_sum_polynomial,
    sum_polynomial_over_range,
    sum_power_over_range,
)
from repro.isl.polynomial import Polynomial


class TestBernoulli:
    def test_known_values(self):
        assert bernoulli(0) == 1
        assert bernoulli(1) == Fraction(1, 2)  # B1+ convention
        assert bernoulli(2) == Fraction(1, 6)
        assert bernoulli(3) == 0
        assert bernoulli(4) == Fraction(-1, 30)
        assert bernoulli(6) == Fraction(1, 42)
        assert bernoulli(8) == Fraction(-1, 30)

    def test_odd_are_zero(self):
        for n in (3, 5, 7, 9):
            assert bernoulli(n) == 0

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            bernoulli(-1)


class TestPowerSums:
    @given(st.integers(0, 5), st.integers(0, 20))
    def test_power_sum_matches_brute_force(self, k, upper):
        poly = power_sum_polynomial(k)
        expected = sum(v**k for v in range(upper + 1))
        assert poly.evaluate({"U": upper}) == expected

    @given(st.integers(0, 4), st.integers(-5, 10), st.integers(-5, 10))
    def test_range_sum_matches_brute_force(self, k, a, b):
        lower, upper = min(a, b), max(a, b)
        result = sum_power_over_range(
            k, Polynomial.constant(lower), Polynomial.constant(upper)
        )
        expected = sum(v**k for v in range(lower, upper + 1))
        assert result.evaluate({}) == expected

    def test_negative_k_raises(self):
        with pytest.raises(ValueError):
            power_sum_polynomial(-2)


class TestPolynomialRangeSums:
    def test_count_form(self):
        """sum_{i=j+1}^{n-1} 1 = n-1-j — the paper's S1 use count."""
        result = sum_polynomial_over_range(
            Polynomial.one(),
            "i",
            Polynomial.var("j") + 1,
            Polynomial.var("n") - 1,
        )
        assert result == Polynomial.var("n") - Polynomial.var("j") - 1

    @given(
        st.integers(-4, 4),
        st.integers(-4, 8),
        st.integers(-3, 3),
        st.integers(-3, 3),
    )
    def test_linear_summand(self, lo, hi, a, b):
        if lo > hi:
            lo, hi = hi, lo
        # sum_{v=lo}^{hi} (a*v + b*w)
        poly = a * Polynomial.var("v") + b * Polynomial.var("w")
        result = sum_polynomial_over_range(
            poly, "v", Polynomial.constant(lo), Polynomial.constant(hi)
        )
        for w in (-2, 0, 3):
            expected = sum(a * v + b * w for v in range(lo, hi + 1))
            assert result.evaluate({"w": w}) == expected

    def test_symbolic_bounds_with_outer_vars(self):
        # sum_{v=p}^{q} v = (q(q+1) - (p-1)p)/2
        result = sum_polynomial_over_range(
            Polynomial.var("v"), "v", Polynomial.var("p"), Polynomial.var("q")
        )
        for p, q in [(0, 5), (2, 7), (-3, 3)]:
            expected = sum(range(p, q + 1))
            assert result.evaluate({"p": p, "q": q}) == expected

    def test_bound_involving_var_rejected(self):
        with pytest.raises(ValueError):
            sum_polynomial_over_range(
                Polynomial.one(), "v", Polynomial.var("v"), Polynomial.var("n")
            )

    def test_quadratic_summand(self):
        result = sum_polynomial_over_range(
            Polynomial.var("v") ** 2,
            "v",
            Polynomial.constant(1),
            Polynomial.var("n"),
        )
        # 1^2 + ... + n^2 = n(n+1)(2n+1)/6
        for n in range(0, 8):
            assert result.evaluate({"n": n}) == n * (n + 1) * (2 * n + 1) // 6
