"""Space bookkeeping tests."""

import pytest

from repro.isl.space import Space


class TestConstruction:
    def test_set_space(self):
        s = Space.set_space(("i", "j"), params=("n",), name="S1")
        assert s.is_set_space() and not s.is_map_space()
        assert s.set_dims == ("i", "j")
        assert s.all_names() == ("n", "i", "j")

    def test_map_space(self):
        m = Space.map_space(("i",), ("j",), in_name="A", out_name="B")
        assert m.is_map_space()
        assert m.all_dims() == ("i", "j")

    def test_zero_arity_named_map(self):
        """Scalar statements produce zero-dim tuples; a named output
        still marks a map space."""
        m = Space.map_space((), (), in_name="S0", out_name="S1")
        assert m.is_map_space()

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            Space(params=("n",), in_dims=("n",))
        with pytest.raises(ValueError):
            Space(in_dims=("i",), out_dims=("i",))


class TestTransforms:
    def test_with_params_dedups(self):
        s = Space.set_space(("i",), params=("n",))
        extended = s.with_params(["n", "m"])
        assert extended.params == ("n", "m")

    def test_drop_dims(self):
        s = Space.set_space(("i", "j"))
        assert s.drop_dims(["j"]).set_dims == ("i",)

    def test_dims_to_params(self):
        s = Space.set_space(("i", "j"), params=("n",))
        moved = s.dims_to_params(["i"])
        assert moved.params == ("n", "i")
        assert moved.set_dims == ("j",)

    def test_wrapped(self):
        m = Space.map_space(("i",), ("j",), in_name="A", out_name="B")
        w = m.wrapped()
        assert w.is_set_space()
        assert w.set_dims == ("i", "j")

    def test_reversed(self):
        m = Space.map_space(("i",), ("j", "k"))
        r = m.reversed()
        assert r.in_dims == ("j", "k") and r.out_dims == ("i",)

    def test_reversed_requires_map(self):
        with pytest.raises(ValueError):
            Space.set_space(("i",)).reversed()

    def test_domain_range_spaces(self):
        m = Space.map_space(("i",), ("j",), params=("n",), in_name="A", out_name="B")
        assert m.domain_space().set_dims == ("i",)
        assert m.range_space().set_dims == ("j",)
        assert m.range_space().set_name == "B"

    def test_rename_dims(self):
        s = Space.set_space(("i",), params=("n",))
        renamed = s.rename_dims({"i": "x", "n": "m"})
        assert renamed.set_dims == ("x",)
        assert renamed.params == ("m",)


class TestComparison:
    def test_compatible_ignores_names(self):
        a = Space.set_space(("i",), name="A")
        b = Space.set_space(("i",), name="B")
        assert a.compatible_with(b)
        assert a != b

    def test_equality_and_hash(self):
        a = Space.set_space(("i",), params=("n",), name="A")
        b = Space.set_space(("i",), params=("n",), name="A")
        assert a == b and hash(a) == hash(b)

    def test_set_dims_on_map_raises(self):
        m = Space.map_space(("i",), ("j",))
        with pytest.raises(ValueError):
            _ = m.set_dims
