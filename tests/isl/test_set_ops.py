"""Tests for unions of basic sets, especially exact subtraction."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.isl.basic_set import BasicSet, parse_constraints
from repro.isl.set_ops import Set
from repro.isl.space import Space

SPACE = Space.set_space(("i",), params=("n",))
SPACE2 = Space.set_space(("i", "j"))


def interval(lo: str, hi: str, space=SPACE) -> Set:
    return Set.from_constraint_strings(space, [f"{lo} <= i <= {hi}"])


class TestBasics:
    def test_empty(self):
        assert Set.empty(SPACE).is_empty()

    def test_universe_nonempty(self):
        assert not Set.universe(SPACE).is_empty()

    def test_empty_pieces_dropped(self):
        bad = BasicSet.from_strings(SPACE, ["i >= 1", "i <= 0"])
        s = Set(SPACE, [bad])
        assert s.is_empty()
        assert len(s.basic_sets) == 0

    def test_space_mismatch(self):
        with pytest.raises(ValueError):
            interval("0", "5").union(Set.universe(SPACE2))


class TestAlgebra:
    def test_union_counts(self):
        s = interval("0", "2").union(interval("5", "6"))
        assert s.count({"n": 10}) == 5

    def test_intersect(self):
        s = interval("0", "5").intersect(interval("3", "8"))
        assert s.points({"n": 10}) == [(3,), (4,), (5,)]

    def test_subtract_interval(self):
        s = interval("0", "9").subtract(interval("3", "5"))
        assert s.count({"n": 10}) == 7
        assert (4,) not in s.points({"n": 10})

    def test_subtract_all(self):
        s = interval("0", "5").subtract(interval("0", "9"))
        assert s.is_empty({"n": 10})

    def test_subtract_equality_piece(self):
        whole = Set.from_constraint_strings(SPACE, ["0 <= i <= n - 1"])
        last = Set.from_constraint_strings(SPACE, ["i == n - 1"])
        body = whole.subtract(last)
        assert body.count({"n": 5}) == 4
        assert body.points({"n": 5}) == [(0,), (1,), (2,), (3,)]

    def test_subtract_union(self):
        s = interval("0", "9").subtract(interval("0", "2").union(interval("7", "9")))
        assert s.points({"n": 10}) == [(3,), (4,), (5,), (6,)]

    def test_subtraction_pieces_disjoint(self):
        s = interval("0", "9").subtract(interval("4", "4"))
        seen: set = set()
        for piece in s.basic_sets:
            from repro.isl.enumerate_points import enumerate_points

            pts = set(enumerate_points(piece, {"n": 10}))
            assert not (seen & pts)
            seen |= pts

    def test_equals(self):
        a = interval("0", "4").union(interval("5", "9"))
        b = interval("0", "9")
        assert a.equals(b)

    def test_subset(self):
        assert interval("2", "3").is_subset_of(interval("0", "9"))
        assert not interval("0", "9").is_subset_of(interval("2", "3"))


class TestTransforms:
    def test_project_out(self):
        s = Set.from_constraint_strings(
            SPACE2, ["0 <= i <= 3", "0 <= j <= i"]
        )
        projected, exact = s.project_out(["j"])
        assert exact
        assert projected.count({}) == 4

    def test_parameterize(self):
        s = interval("0", "5")
        p = s.parameterize(["i"])
        assert "i" in p.space.params

    def test_rename(self):
        s = interval("0", "5").rename({"i": "z"})
        assert s.space.set_dims == ("z",)


@settings(max_examples=50, deadline=None)
@given(
    intervals_a=st.lists(
        st.tuples(st.integers(0, 12), st.integers(0, 12)), min_size=1, max_size=3
    ),
    intervals_b=st.lists(
        st.tuples(st.integers(0, 12), st.integers(0, 12)), min_size=1, max_size=3
    ),
)
def test_subtraction_matches_python_sets(intervals_a, intervals_b):
    """A - B over random 1-D interval unions equals Python set difference."""

    def build(intervals):
        pieces = [
            BasicSet(SPACE, parse_constraints(f"{min(a, b)} <= i <= {max(a, b)}"))
            for a, b in intervals
        ]
        return Set(SPACE, pieces)

    def concrete(intervals):
        points = set()
        for a, b in intervals:
            points |= set(range(min(a, b), max(a, b) + 1))
        return points

    result = build(intervals_a).subtract(build(intervals_b))
    expected = concrete(intervals_a) - concrete(intervals_b)
    assert {p[0] for p in result.points({"n": 0})} == expected
