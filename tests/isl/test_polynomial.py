"""Tests for multivariate polynomials."""

from fractions import Fraction

import pytest
from hypothesis import given, strategies as st

from repro.isl.linear import LinExpr
from repro.isl.polynomial import Polynomial

NAMES = ["x", "y", "z"]
ENV = st.fixed_dictionaries(
    {n: st.integers(min_value=-5, max_value=5) for n in NAMES}
)


@st.composite
def polynomials(draw):
    terms = {}
    for _ in range(draw(st.integers(0, 4))):
        monomial = tuple(
            sorted(
                draw(
                    st.dictionaries(
                        st.sampled_from(NAMES),
                        st.integers(min_value=1, max_value=3),
                        max_size=2,
                    )
                ).items()
            )
        )
        terms[monomial] = draw(st.integers(min_value=-5, max_value=5))
    return Polynomial(terms)


class TestBasics:
    def test_zero(self):
        assert Polynomial.zero().is_zero()
        assert Polynomial({(): 0}).is_zero()

    def test_constant(self):
        p = Polynomial.constant(Fraction(3, 2))
        assert p.is_constant()
        assert p.constant_value() == Fraction(3, 2)

    def test_var(self):
        assert Polynomial.var("x").evaluate({"x": 7}) == 7

    def test_from_linexpr(self):
        p = Polynomial.from_linexpr(LinExpr.var("n") - LinExpr.var("j") - 1)
        assert p.evaluate({"n": 10, "j": 3}) == 6

    def test_degree(self):
        p = Polynomial.var("x") * Polynomial.var("x") * Polynomial.var("y")
        assert p.degree() == 3
        assert p.degree("x") == 2
        assert p.degree("y") == 1
        assert p.degree("z") == 0

    def test_constant_value_raises(self):
        with pytest.raises(ValueError):
            Polynomial.var("x").constant_value()


class TestArithmetic:
    @given(polynomials(), polynomials(), ENV)
    def test_add(self, a, b, env):
        assert (a + b).evaluate(env) == a.evaluate(env) + b.evaluate(env)

    @given(polynomials(), polynomials(), ENV)
    def test_mul(self, a, b, env):
        assert (a * b).evaluate(env) == a.evaluate(env) * b.evaluate(env)

    @given(polynomials(), ENV)
    def test_neg_sub(self, a, env):
        assert (a - a).is_zero()
        assert (-a).evaluate(env) == -a.evaluate(env)

    @given(polynomials(), st.integers(0, 3), ENV)
    def test_pow(self, a, k, env):
        assert (a**k).evaluate(env) == a.evaluate(env) ** k

    def test_pow_negative_raises(self):
        with pytest.raises(ValueError):
            Polynomial.var("x") ** -1


class TestSubstitution:
    @given(polynomials(), polynomials(), ENV)
    def test_substitute_matches_evaluation(self, p, repl, env):
        substituted = p.substitute({"x": repl})
        inner = dict(env)
        inner["x"] = repl.evaluate(env)
        assert substituted.evaluate(env) == p.evaluate(inner)

    def test_rename(self):
        p = Polynomial.var("x") * Polynomial.var("x")
        assert p.rename({"x": "y"}).degree("y") == 2


class TestStructure:
    def test_coefficients_in(self):
        # p = 2*x^2*y + 3*x + 5
        x, y = Polynomial.var("x"), Polynomial.var("y")
        p = 2 * (x**2) * y + 3 * x + 5
        buckets = p.coefficients_in("x")
        assert buckets[2] == 2 * y
        assert buckets[1] == Polynomial.constant(3)
        assert buckets[0] == Polynomial.constant(5)

    @given(polynomials(), ENV)
    def test_coefficients_in_reassemble(self, p, env):
        x_val = env["x"]
        total = Fraction(0)
        for exponent, coeff in p.coefficients_in("x").items():
            total += coeff.evaluate(env) * x_val**exponent
        assert total == p.evaluate(env)

    def test_str(self):
        p = Polynomial.var("n") - Polynomial.var("k")
        assert str(p) in ("n - k", "-k + n")

    def test_eq_with_int(self):
        assert Polynomial.constant(3) == 3
        assert Polynomial.zero() == 0
