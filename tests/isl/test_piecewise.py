"""Tests for piecewise polynomials: arithmetic, normalize, merge."""

from fractions import Fraction

import pytest

from repro.isl.basic_set import BasicSet, parse_constraints
from repro.isl.piecewise import PiecewisePolynomial
from repro.isl.polynomial import Polynomial
from repro.isl.space import Space

SPACE = Space.set_space((), params=("n", "j"))


def piece(constraint_text: str, poly: Polynomial):
    return (BasicSet(SPACE, parse_constraints(constraint_text)), poly)


def pw(*pieces) -> PiecewisePolynomial:
    return PiecewisePolynomial(SPACE, list(pieces))


N = Polynomial.var("n")
J = Polynomial.var("j")
ONE = Polynomial.one()


class TestBasics:
    def test_zero_default(self):
        p = pw(piece("0 <= j <= n - 2", N - J - 1))
        assert p.evaluate({"n": 5, "j": 6}) == 0

    def test_single_piece_value(self):
        p = pw(piece("0 <= j <= n - 2", N - J - 1))
        assert p.evaluate({"n": 5, "j": 1}) == 3

    def test_zero_polys_dropped(self):
        p = pw(piece("j >= 0", Polynomial.zero()))
        assert p.is_zero()

    def test_empty_domains_dropped(self):
        p = pw(piece("j >= 1 and j <= 0", ONE))
        assert p.is_zero()

    def test_constant_constructor(self):
        p = PiecewisePolynomial.constant(SPACE, 7)
        assert p.evaluate({"n": 0, "j": 0}) == 7

    def test_overlap_disagreement_raises(self):
        p = pw(piece("j >= 0", ONE), piece("j >= 0", N))
        with pytest.raises(ValueError):
            p.evaluate({"n": 5, "j": 1})


class TestAdd:
    def test_disjoint_add(self):
        p = pw(piece("j <= 2", ONE)).add(pw(piece("j >= 3", N)))
        assert p.evaluate({"n": 9, "j": 1}) == 1
        assert p.evaluate({"n": 9, "j": 4}) == 9

    def test_overlapping_add_sums(self):
        p = pw(piece("0 <= j <= 5", ONE)).add(pw(piece("3 <= j <= 8", N)))
        assert p.evaluate({"n": 9, "j": 1}) == 1
        assert p.evaluate({"n": 9, "j": 4}) == 10
        assert p.evaluate({"n": 9, "j": 7}) == 9

    def test_add_zero(self):
        p = pw(piece("j >= 0", ONE))
        assert p.add(PiecewisePolynomial.zero(SPACE)).evaluate({"n": 1, "j": 2}) == 1

    def test_add_keeps_pieces_disjoint(self):
        p = pw(piece("0 <= j <= 5", ONE)).add(pw(piece("3 <= j <= 8", ONE)))
        for j in range(0, 10):
            expected = (0 <= j <= 5) + (3 <= j <= 8)
            assert p.evaluate({"n": 0, "j": j}) == expected


class TestScaleRestrict:
    def test_scale(self):
        p = pw(piece("j >= 0", N)).scale(Fraction(1, 2))
        assert p.evaluate({"n": 6, "j": 0}) == 3

    def test_restrict(self):
        p = pw(piece("j >= 0", ONE)).restrict(
            BasicSet(SPACE, parse_constraints("j <= 3"))
        )
        assert p.evaluate({"n": 0, "j": 2}) == 1
        assert p.evaluate({"n": 0, "j": 5}) == 0


class TestNormalize:
    def test_pinned_variable_substituted(self):
        # On j == 1 (expressed via opposing inequalities), 3*j is 3.
        p = pw(piece("j >= 1 and j <= 1", 3 * J))
        normalized = p.normalized()
        ((_, poly),) = normalized.pieces
        assert poly == Polynomial.constant(3)

    def test_chained_equalities(self):
        # n == j and j == 2  =>  n*j becomes 4.
        space = Space.set_space((), params=("n", "j"))
        dom = BasicSet(
            space, parse_constraints("n == j and j >= 2 and j <= 2")
        )
        p = PiecewisePolynomial(space, [(dom, N * J)])
        ((_, poly),) = p.normalized().pieces
        assert poly == Polynomial.constant(4)

    def test_value_preserved_on_domain(self):
        p = pw(piece("j >= 2 and j <= 2", N * J))
        normalized = p.normalized()
        assert normalized.evaluate({"n": 5, "j": 2}) == p.evaluate(
            {"n": 5, "j": 2}
        )


class TestMerge:
    def test_same_poly_complementary_pieces(self):
        p = pw(
            piece("0 <= j and j <= 4", ONE),
            piece("5 <= j and j <= 9 and 0 <= j", ONE),
        )
        merged = p.merged()
        for j in range(-2, 12):
            assert merged.evaluate({"n": 0, "j": j}) == p.evaluate({"n": 0, "j": j})

    def test_cross_poly_merge(self):
        # `n` on j == 0 and `n - j` on j >= 1 merge to `n - j` on j >= 0.
        p = pw(
            piece("j >= 0 and 0 - j >= 0 and j <= 8", N),
            piece("j >= 1 and j <= 8", N - J),
        )
        merged = p.merged()
        assert len(merged.pieces) == 1
        for j in range(0, 9):
            assert merged.evaluate({"n": 10, "j": j}) == 10 - j

    def test_merge_never_changes_values(self):
        pieces = [
            piece("0 <= j and j <= 2 and n >= 0", ONE),
            piece("3 <= j and j <= 5 and n >= 0", ONE),
            piece("6 <= j and j <= 6 and n >= 0", J - Polynomial.constant(5)),
        ]
        p = pw(*pieces)
        merged = p.merged()
        for j in range(-1, 9):
            for n in range(0, 3):
                assert merged.evaluate({"n": n, "j": j}) == p.evaluate(
                    {"n": n, "j": j}
                )

    def test_non_adjacent_not_merged_incorrectly(self):
        p = pw(piece("0 <= j and j <= 2", ONE), piece("5 <= j and j <= 7", ONE))
        merged = p.merged()
        assert merged.evaluate({"n": 0, "j": 3}) == 0
        assert merged.evaluate({"n": 0, "j": 6}) == 1


class TestRename:
    def test_rename(self):
        p = pw(piece("j >= 0", J)).rename({"j": "q"})
        assert p.evaluate({"n": 0, "q": 4}) == 4
