"""Enumeration-oracle tests."""

import pytest

from repro.isl.basic_set import BasicSet
from repro.isl.enumerate_points import (
    count_points_concrete,
    enumerate_points,
    iterate_points,
)
from repro.isl.relation import BasicMap
from repro.isl.set_ops import Set
from repro.isl.space import Space


class TestIteratePoints:
    def test_yields_dicts(self):
        space = Space.set_space(("i",), params=("n",))
        bs = BasicSet.from_strings(space, ["0 <= i <= n - 1"])
        points = list(iterate_points(bs, {"n": 3}))
        assert points == [{"i": 0}, {"i": 1}, {"i": 2}]

    def test_dependent_bounds(self):
        space = Space.set_space(("i", "j"))
        bs = BasicSet.from_strings(space, ["0 <= i <= 2", "i <= j <= i + 1"])
        points = enumerate_points(bs, {})
        assert points == [(0, 0), (0, 1), (1, 1), (1, 2), (2, 2), (2, 3)]

    def test_infeasible_multi_var(self):
        """Emptiness via conflicting multi-variable constraints, where a
        contradiction swallows the bounds during elimination."""
        space = Space.set_space(("i", "j"))
        bs = BasicSet.from_strings(
            space,
            ["0 <= i <= 3", "0 <= j <= 3", "i + j >= 9"],
        )
        assert enumerate_points(bs, {}) == []

    def test_equality_driven(self):
        space = Space.set_space(("i", "j"), params=("n",))
        bs = BasicSet.from_strings(space, ["0 <= i <= n - 1", "j == 2*i"])
        points = enumerate_points(bs, {"n": 3})
        assert points == [(0, 0), (1, 2), (2, 4)]

    def test_count_concrete(self):
        space = Space.set_space(("i", "j"), params=("n",))
        bs = BasicSet.from_strings(
            space, ["0 <= i <= n - 1", "0 <= j <= i"]
        )
        assert count_points_concrete(bs, {"n": 5}) == 15


class TestEnumerateDispatch:
    def test_set_union_dedup(self):
        space = Space.set_space(("i",))
        s = Set.from_constraint_strings(space, ["0 <= i <= 3"]).union(
            Set.from_constraint_strings(space, ["2 <= i <= 5"])
        )
        assert enumerate_points(s, {}) == [(i,) for i in range(6)]

    def test_map_enumeration(self):
        space = Space.map_space(("i",), ("j",))
        bm = BasicMap.from_strings(space, ["j == i + 1", "0 <= i <= 2"])
        assert enumerate_points(bm, {}) == [(0, 1), (1, 2), (2, 3)]

    def test_type_error(self):
        with pytest.raises(TypeError):
            enumerate_points("not-a-set", {})
