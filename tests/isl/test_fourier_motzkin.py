"""Fourier–Motzkin elimination tests: exactness and bounds."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.isl.basic_set import parse_constraint, parse_constraints
from repro.isl.fourier_motzkin import (
    bounds_on,
    eliminate_variable,
    eliminate_variables,
    integer_interval,
)


class TestEliminate:
    def test_by_equality(self):
        constraints = parse_constraints("j == i + 1 and 0 <= j and j <= 5")
        result = eliminate_variable(constraints, "j")
        assert result.exact
        env_ok = {"i": 2}
        env_bad = {"i": 7}
        assert all(c.satisfied_by(env_ok) for c in result.constraints)
        assert not all(c.satisfied_by(env_bad) for c in result.constraints)

    def test_by_pairing(self):
        constraints = parse_constraints("i <= j and j <= n - 1")
        result = eliminate_variable(constraints, "j")
        assert result.exact
        # Exists j with i <= j <= n-1  iff  i <= n-1.
        assert any(
            c.satisfied_by({"i": 3, "n": 4}) for c in result.constraints
        )
        assert not all(
            c.satisfied_by({"i": 4, "n": 4}) for c in result.constraints
        )

    def test_contradiction_detected(self):
        constraints = parse_constraints("j >= 5 and j <= 2")
        result = eliminate_variable(constraints, "j")
        assert any(c.is_contradiction() for c in result.constraints)

    def test_inexactness_flagged(self):
        # 2j >= i and 3j <= n: neither coefficient is 1.
        constraints = [
            parse_constraint("2*j - i >= 0"),
            parse_constraint("n - 3*j >= 0"),
        ]
        result = eliminate_variable(constraints, "j")
        assert not result.exact

    def test_unit_coefficient_on_one_side_is_exact(self):
        constraints = [
            parse_constraint("j - i >= 0"),      # coeff 1
            parse_constraint("n - 3*j >= 0"),    # coeff 3
        ]
        result = eliminate_variable(constraints, "j")
        assert result.exact

    def test_multiple_variables(self):
        constraints = parse_constraints(
            "0 <= i and i <= j and j <= k and k <= n - 1"
        )
        result = eliminate_variables(constraints, ["k", "j"])
        assert result.exact
        assert all(c.satisfied_by({"i": 0, "n": 1}) for c in result.constraints)
        assert not all(
            c.satisfied_by({"i": 1, "n": 1}) for c in result.constraints
        )


class TestBounds:
    def test_bounds_on(self):
        constraints = parse_constraints("2 <= j and j <= n - 1 and j == i")
        lowers, uppers = bounds_on(constraints, "j")
        # equality contributes to both sides
        assert len(lowers) == 2 and len(uppers) == 2

    def test_integer_interval(self):
        constraints = parse_constraints("1 <= j and 2*j <= n")
        lowers, uppers = bounds_on(constraints, "j")
        lo, hi = integer_interval(lowers, uppers, {"n": 7})
        assert (lo, hi) == (1, 3)  # floor(7/2)

    def test_interval_skips_unevaluable(self):
        constraints = parse_constraints("i <= j and 0 <= j and j <= 9")
        lowers, uppers = bounds_on(constraints, "j")
        lo, hi = integer_interval(lowers, uppers, {})  # i unknown
        assert (lo, hi) == (0, 9)


@settings(max_examples=60, deadline=None)
@given(
    a=st.integers(-4, 4),
    b=st.integers(-4, 4),
    c=st.integers(-6, 6),
    k=st.integers(-6, 6),
)
def test_pairing_preserves_rational_projection(a, b, c, k):
    """For unit-coefficient systems, FM projection of {j : a<=j<=b,
    i+c<=j, j<=i+k} onto i matches brute force."""
    def offset(value: int) -> str:
        return f"i + {value}" if value >= 0 else f"i - {-value}"

    constraints = parse_constraints(f"{a} <= j and j <= {b}")
    constraints += parse_constraints(
        f"{offset(c)} <= j and j <= {offset(k)}"
    )
    result = eliminate_variable(constraints, "j")
    assert result.exact
    for i in range(-10, 11):
        brute = any(
            all(con.satisfied_by({"i": i, "j": j}) for con in constraints)
            for j in range(-12, 13)
        )
        projected = all(
            con.satisfied_by({"i": i}) for con in result.constraints
        )
        assert brute == projected, i
