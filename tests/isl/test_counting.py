"""Symbolic cardinality vs. brute-force enumeration."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.isl.basic_set import BasicSet, parse_constraints
from repro.isl.counting import CountingError, count_points, make_disjoint
from repro.isl.enumerate_points import enumerate_points
from repro.isl.set_ops import Set
from repro.isl.space import Space


class TestKnownCounts:
    def test_interval(self):
        space = Space.set_space(("i",), params=("n",))
        bs = BasicSet.from_strings(space, ["0 <= i <= n - 1"])
        pw = count_points(bs)
        for n in range(0, 8):
            assert pw.evaluate({"n": n}) == n

    def test_triangle(self):
        space = Space.set_space(("i", "j"), params=("n",))
        bs = BasicSet.from_strings(space, ["0 <= i <= n - 1", "0 <= j <= i"])
        pw = count_points(bs)
        for n in range(0, 8):
            assert pw.evaluate({"n": n}) == n * (n + 1) // 2

    def test_paper_use_count(self):
        """|{S2[jp, i] : jp+1 <= i <= n-1}| = n-1-jp for jp <= n-2."""
        space = Space.set_space(("i",), params=("n", "jp"))
        bs = BasicSet.from_strings(
            space, ["jp + 1 <= i <= n - 1", "0 <= jp <= n - 1"]
        )
        pw = count_points(bs)
        for n in range(1, 7):
            for jp in range(0, n):
                expected = max(0, n - 1 - jp)
                assert pw.evaluate({"n": n, "jp": jp}) == expected

    def test_equality_pins_dim(self):
        space = Space.set_space(("i", "j"), params=("n",))
        bs = BasicSet.from_strings(
            space, ["0 <= i <= n - 1", "j == i"]
        )
        pw = count_points(bs)
        assert pw.evaluate({"n": 5}) == 5

    def test_partial_dims(self):
        space = Space.set_space(("i", "j"), params=("n",))
        bs = BasicSet.from_strings(space, ["0 <= i <= n - 1", "0 <= j <= i"])
        pw = count_points(bs, dims=["j"])
        # counting only j leaves a value in i: i+1
        assert pw.evaluate({"n": 10, "i": 3}) == 4

    def test_cube(self):
        space = Space.set_space(("i", "j", "k"), params=("n",))
        bs = BasicSet.from_strings(
            space, ["0 <= i <= n - 1", "0 <= j <= n - 1", "0 <= k <= n - 1"]
        )
        pw = count_points(bs)
        assert pw.evaluate({"n": 4}) == 64

    def test_empty_region_counts_zero(self):
        space = Space.set_space(("i",), params=("n",))
        bs = BasicSet.from_strings(space, ["n <= i <= n - 1"])
        pw = count_points(bs)
        assert pw.evaluate({"n": 3}) == 0


class TestErrors:
    def test_unbounded_raises(self):
        space = Space.set_space(("i",), params=("n",))
        bs = BasicSet.from_strings(space, ["i >= 0"])
        with pytest.raises(CountingError):
            count_points(bs)

    def test_non_unit_coefficient_raises(self):
        space = Space.set_space(("i",), params=("n",))
        bs = BasicSet.from_strings(space, ["0 <= 2*i + 1 <= n"])
        with pytest.raises(CountingError):
            count_points(bs)


class TestUnions:
    def test_disjoint_union_counts(self):
        space = Space.set_space(("i",), params=("n",))
        s = Set.from_constraint_strings(space, ["0 <= i <= 2"]).union(
            Set.from_constraint_strings(space, ["5 <= i <= 6"])
        )
        pw = count_points(s)
        assert pw.evaluate({"n": 0}) == 5

    def test_overlapping_union_not_double_counted(self):
        space = Space.set_space(("i",), params=("n",))
        s = Set.from_constraint_strings(space, ["0 <= i <= 5"]).union(
            Set.from_constraint_strings(space, ["3 <= i <= 8"])
        )
        pw = count_points(s)
        assert pw.evaluate({"n": 0}) == 9

    def test_make_disjoint(self):
        space = Space.set_space(("i",), params=())
        s = Set.from_constraint_strings(space, ["0 <= i <= 5"]).union(
            Set.from_constraint_strings(space, ["3 <= i <= 8"])
        )
        disjoint = make_disjoint(s)
        total = 0
        seen = set()
        for piece in disjoint.basic_sets:
            pts = set(enumerate_points(piece, {}))
            assert not (seen & pts)
            seen |= pts
        assert len(seen) == 9


@settings(max_examples=60, deadline=None)
@given(
    a1=st.integers(-3, 3),
    b1=st.integers(-3, 6),
    couple=st.integers(0, 8),
    n=st.integers(0, 7),
)
def test_random_2d_regions_match_enumeration(a1, b1, couple, n):
    """Symbolic count == enumerated count on a family of 2-D regions."""
    space = Space.set_space(("i", "j"), params=("n",))
    constraints = parse_constraints(f"{min(a1, b1)} <= i <= {max(a1, b1)}")
    constraints += parse_constraints(f"0 <= j <= n - 1")
    constraints += parse_constraints(f"i + j <= {couple}")
    constraints += parse_constraints("j <= i + 4")
    bs = BasicSet(space, constraints)
    pw = count_points(bs)
    assert pw.evaluate({"n": n}) == len(enumerate_points(bs, {"n": n}))


@settings(max_examples=40, deadline=None)
@given(
    lo=st.integers(-2, 2),
    mid=st.integers(0, 5),
    n=st.integers(0, 6),
    m=st.integers(0, 6),
)
def test_random_3d_regions_match_enumeration(lo, mid, n, m):
    space = Space.set_space(("i", "j", "k"), params=("n", "m"))
    constraints = parse_constraints(f"{lo} <= i <= n - 1")
    constraints += parse_constraints("0 <= j <= m - 1")
    constraints += parse_constraints(f"i <= k <= i + {mid}")
    constraints += parse_constraints("k <= n + m")
    bs = BasicSet(space, constraints)
    pw = count_points(bs)
    assert pw.evaluate({"n": n, "m": m}) == len(
        enumerate_points(bs, {"n": n, "m": m})
    )
