"""Algebraic property tests for relations (hypothesis)."""

from hypothesis import given, settings, strategies as st

from repro.isl.basic_set import BasicSet
from repro.isl.enumerate_points import enumerate_points
from repro.isl.relation import BasicMap, Map
from repro.isl.set_ops import Set
from repro.isl.space import Space

MAP_SPACE = Space.map_space(("x",), ("y",))
SET_SPACE = Space.set_space(("x",))


@st.composite
def interval_maps(draw):
    """Shifted-interval relations: {x -> y : y = x + d, a <= x <= b}."""
    d = draw(st.integers(-3, 3))
    a = draw(st.integers(-4, 4))
    b = draw(st.integers(-4, 8))
    constraint = f"y == x + {d}" if d >= 0 else f"y == x - {-d}"
    return BasicMap.from_strings(
        MAP_SPACE, [constraint, f"{a} <= x <= {b}"]
    )


@st.composite
def interval_sets(draw):
    a = draw(st.integers(-4, 4))
    b = draw(st.integers(-4, 8))
    return Set.from_constraint_strings(SET_SPACE, [f"{a} <= x <= {b}"])


def as_pairs(bm) -> set:
    return set(enumerate_points(bm, {}))


@settings(max_examples=50, deadline=None)
@given(interval_maps())
def test_reverse_is_involution(bm):
    assert as_pairs(bm.reverse().reverse()) == as_pairs(bm)


@settings(max_examples=50, deadline=None)
@given(interval_maps())
def test_reverse_swaps_pairs(bm):
    forward = as_pairs(bm)
    backward = as_pairs(bm.reverse())
    assert backward == {(y, x) for (x, y) in forward}


@settings(max_examples=40, deadline=None)
@given(interval_maps(), interval_maps(), interval_sets())
def test_compose_agrees_with_sequential_apply(f, g, s):
    """(g . f)(s) == g(f(s))."""
    composed = f.compose(g)
    via_compose = set(composed.apply(s).points({}))
    mid = f.apply(s)
    # Rename mid's dims positionally onto g's input dims.
    mapping = dict(zip(mid.space.all_dims(), g.space.in_dims))
    renamed = mid.rename(mapping) if mapping else mid
    sequential = set(g.apply(renamed).points({}))
    assert via_compose == sequential


@settings(max_examples=40, deadline=None)
@given(interval_maps(), interval_maps(), interval_maps())
def test_compose_associative(f, g, h):
    left = f.compose(g).compose(h)
    right = f.compose(g.compose(h))
    assert as_pairs(left) == as_pairs(right)


@settings(max_examples=40, deadline=None)
@given(interval_maps(), interval_maps())
def test_domain_of_union(f, g):
    union = Map.from_basic(f).union(Map.from_basic(g))
    dom = set(union.domain_set().points({}))
    expected = {(x,) for (x, _) in as_pairs(f)} | {
        (x,) for (x, _) in as_pairs(g)
    }
    assert dom == expected


@settings(max_examples=40, deadline=None)
@given(interval_maps(), interval_maps())
def test_map_subtract_matches_pairs(f, g):
    diff = Map.from_basic(f).subtract(Map.from_basic(g))
    assert set(diff.points({})) == as_pairs(f) - as_pairs(g)


@settings(max_examples=40, deadline=None)
@given(interval_maps(), interval_sets())
def test_apply_matches_pairwise_image(f, s):
    image = set(f.apply(s).points({}))
    source = set(s.points({}))
    expected = {
        (y,) for (x, y) in as_pairs(f) if (x,) in source
    }
    assert image == expected
