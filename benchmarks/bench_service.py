"""Serviced-campaign throughput: shard dispatcher vs ``--workers N``.

Runs the same fault-injection campaign three ways — the classic
process-pool engine (``run_campaign(workers=N)``), a cold serviced run
against a fresh shared disk store, and a warm serviced run over the
same store — checks all three are canonical-identical, and reports
trials/sec plus the warm-run artifact-store hit rate.  Writes
``BENCH_service.json`` (CI uploads it as an artifact).

Usage::

    PYTHONPATH=src python benchmarks/bench_service.py
    PYTHONPATH=src python benchmarks/bench_service.py --quick \
        --fail-below 0.3
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.campaign import ProgramCampaignSpec, run_campaign  # noqa: E402
from repro.campaign.golden import clear_cache as clear_golden  # noqa: E402
from repro.instrument.cache import clear_cache as clear_instrument  # noqa: E402
from repro.runtime.compile import clear_kernel_cache  # noqa: E402
from repro.service import run_service_campaign, set_store_dir  # noqa: E402
from repro.service.store import namespace_hit_rate  # noqa: E402


def _canonical(result) -> list[dict]:
    return [record.canonical() for record in result.records]


def _drop_local_caches() -> None:
    """Forget every in-process artifact so the next run starts cold
    (forked workers inherit the driver's memory caches otherwise)."""
    clear_golden()
    clear_kernel_cache()
    clear_instrument()


def bench_spec(spec: ProgramCampaignSpec, workers: int, store: Path) -> dict:
    # Baseline: the in-process pool engine, steady-state (one warmup
    # campaign so compilation is not on the clock).
    set_store_dir(None)
    run_campaign(spec, workers=workers)
    start = time.perf_counter()
    baseline = run_campaign(spec, workers=workers)
    baseline_s = time.perf_counter() - start

    # Cold service: fresh disk store, no in-process artifacts.
    set_store_dir(store)
    _drop_local_caches()
    start = time.perf_counter()
    cold = run_service_campaign(spec, workers=workers)
    cold_s = time.perf_counter() - start

    # Warm service: same store, local caches dropped again so every
    # hit is a disk hit against the shared store.
    _drop_local_caches()
    start = time.perf_counter()
    warm = run_service_campaign(spec, workers=workers)
    warm_s = time.perf_counter() - start
    set_store_dir(None)

    expected = _canonical(baseline)
    assert expected == _canonical(cold), f"{spec.benchmark}: cold diverges"
    assert expected == _canonical(warm), f"{spec.benchmark}: warm diverges"
    hit_rate = namespace_hit_rate(
        warm.store or {}, ("golden", "kernel", "instrument")
    )
    return {
        "benchmark": spec.benchmark,
        "trials": spec.trials,
        "workers": workers,
        "baseline_s": baseline_s,
        "cold_s": cold_s,
        "warm_s": warm_s,
        "baseline_trials_per_s": spec.trials / baseline_s,
        "cold_trials_per_s": spec.trials / cold_s,
        "warm_trials_per_s": spec.trials / warm_s,
        "service_vs_baseline": baseline_s / warm_s,
        "warm_vs_cold": cold_s / warm_s,
        "warm_store_hit_rate": hit_rate,
        "shards": (warm.service or {}).get("shards"),
        "verdicts": warm.counts,
    }


def geomean(values: list[float]) -> float:
    product = 1.0
    for value in values:
        product *= value
    return product ** (1.0 / len(values)) if values else float("nan")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--benchmarks", nargs="+", default=["cholesky", "jacobi1d"]
    )
    parser.add_argument(
        "--scale", choices=("small", "default"), default="small"
    )
    parser.add_argument("--trials", type=int, default=64)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="one benchmark, fewer trials (CI smoke sizing)",
    )
    parser.add_argument("--out", default="BENCH_service.json")
    parser.add_argument(
        "--fail-below",
        type=float,
        default=None,
        metavar="X",
        help="exit 1 when geomean warm-service/baseline throughput < X",
    )
    args = parser.parse_args(argv)

    benchmarks = args.benchmarks
    trials = args.trials
    if args.quick:
        benchmarks = benchmarks[:1]
        trials = min(trials, 24)

    rows = []
    with tempfile.TemporaryDirectory(prefix="bench-service-") as tmp:
        for name in benchmarks:
            spec = ProgramCampaignSpec(
                benchmark=name, scale=args.scale, trials=trials, seed=11
            )
            row = bench_spec(spec, args.workers, Path(tmp) / name)
            rows.append(row)
            print(
                f"{row['benchmark']:<10} baseline="
                f"{row['baseline_trials_per_s']:8.1f} trials/s  cold="
                f"{row['cold_trials_per_s']:8.1f}  warm="
                f"{row['warm_trials_per_s']:8.1f}  "
                f"svc/base={row['service_vs_baseline']:5.2f}x  "
                f"warm/cold={row['warm_vs_cold']:5.2f}x  "
                f"hit_rate={row['warm_store_hit_rate']:.2f}  identical"
            )

    summary = {
        "workers": args.workers,
        "trials": trials,
        "geomean_service_vs_baseline": geomean(
            [row["service_vs_baseline"] for row in rows]
        ),
        "geomean_warm_vs_cold": geomean(
            [row["warm_vs_cold"] for row in rows]
        ),
        "min_warm_hit_rate": min(
            (row["warm_store_hit_rate"] for row in rows), default=0.0
        ),
    }
    print(
        f"{'geomean':<10} svc/base="
        f"{summary['geomean_service_vs_baseline']:.2f}x  warm/cold="
        f"{summary['geomean_warm_vs_cold']:.2f}x"
    )

    payload = {"benchmarks": rows, "summary": summary}
    with open(args.out, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(f"wrote {args.out}")

    if (
        args.fail_below is not None
        and summary["geomean_service_vs_baseline"] < args.fail_below
    ):
        print(
            f"FAIL: geomean service/baseline throughput "
            f"{summary['geomean_service_vs_baseline']:.2f}x "
            f"< required {args.fail_below:.2f}x",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
