"""Compile-path benchmark: instrumentation time per Table 2 kernel.

Times ``instrument_program`` on the Resilient-Optimized configuration
(index-set splitting + inspector hoisting — the most analysis-heavy
build) three ways per benchmark and writes ``BENCH_instrument.json``:

* **slow_s** — the ISL slow path (:func:`repro.isl.fastpath.slow_path`:
  gist pruning, emptiness/FM memoization and the subset short-circuit
  disabled).  This is the same-machine comparison the ``--fail-below``
  gate uses (CI runs ``--quick --fail-below 1.0``: the fast path must
  never lose).
* **fast_s** — the fast path, memo cleared before every repeat, so each
  measurement is a *cold* compile.
* **cached_s** — a content-addressed instrumentation-cache hit
  (:mod:`repro.instrument.cache`), the steady-state cost for campaign
  sweeps and repeated harness runs.

``PRE_PR_BASELINE_S`` records the wall-clock of the same protocol at
the commit preceding the fast-compile work (measured via a git
worktree on the reference machine); ``speedup_vs_pre_pr`` includes the
untoggleable optimizations (integer coefficient representation,
constraint-row interning) that benefit both paths.  On other machines
those numbers are indicative only — the slow/fast ratio is the
portable metric.  See docs/COMPILE_PERF.md.

Usage::

    PYTHONPATH=src python benchmarks/bench_instrument.py
    PYTHONPATH=src python benchmarks/bench_instrument.py --quick \
        --fail-below 1.0 --out BENCH_instrument.json
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.instrument.cache import (  # noqa: E402
    clear_cache,
    instrument_cached,
)
from repro.instrument.pipeline import (  # noqa: E402
    InstrumentationOptions,
    instrument_program,
)
from repro.ir.printer import program_to_text  # noqa: E402
from repro.isl import fastpath  # noqa: E402
from repro.programs import ALL_BENCHMARKS  # noqa: E402

OPTIMIZED = InstrumentationOptions(
    index_set_splitting=True, hoist_inspectors=True
)

# Wall-clock of this protocol (min of 3 cold repeats) at commit
# 7658625 — the tree before the fast compile path — on the reference
# machine that produced the checked-in BENCH_instrument.json.
PRE_PR_BASELINE_S = {
    "adi": 5.091803,
    "cg": 0.008039,
    "cholesky": 0.491583,
    "dsyrk": 0.039835,
    "jacobi1d": 0.162645,
    "lu": 0.426046,
    "moldyn": 0.003691,
    "seidel": 1.301549,
    "strsm": 0.147281,
    "trisolv": 0.102526,
}


def bench_one(name: str, repeats: int) -> dict:
    program = ALL_BENCHMARKS[name].program()
    instrument_program(program, OPTIMIZED)  # warm code paths / imports

    slow_s = float("inf")
    slow_text = None
    with fastpath.slow_path():
        for _ in range(repeats):
            start = time.perf_counter()
            slow_program, _ = instrument_program(program, OPTIMIZED)
            slow_s = min(slow_s, time.perf_counter() - start)
        slow_text = program_to_text(slow_program)

    fast_s = float("inf")
    for _ in range(repeats):
        fastpath.clear_memo()
        start = time.perf_counter()
        fast_program, _ = instrument_program(program, OPTIMIZED)
        fast_s = min(fast_s, time.perf_counter() - start)
    # The timing loop doubles as a sanity check: both paths must build
    # the same program (the differential suite in tests/isl is the
    # authoritative test).
    assert program_to_text(fast_program) == slow_text, (
        f"{name}: fast and slow ISL paths disagree"
    )

    clear_cache()
    instrument_cached(program, OPTIMIZED)  # populate
    cached_s = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        instrument_cached(program, OPTIMIZED)
        cached_s = min(cached_s, time.perf_counter() - start)

    baseline_s = PRE_PR_BASELINE_S.get(name)
    return {
        "benchmark": name,
        "slow_s": slow_s,
        "fast_s": fast_s,
        "cached_s": cached_s,
        "speedup": slow_s / fast_s,
        "pre_pr_baseline_s": baseline_s,
        "speedup_vs_pre_pr": (
            baseline_s / fast_s if baseline_s is not None else None
        ),
    }


def geomean(values: list[float]) -> float:
    product = 1.0
    for value in values:
        product *= value
    return product ** (1.0 / len(values)) if values else float("nan")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--benchmarks",
        nargs="+",
        default=None,
        choices=sorted(ALL_BENCHMARKS),
        help="subset to time (default: all 10)",
    )
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="1 repeat, 3 benchmarks — the CI smoke set",
    )
    parser.add_argument("--out", default="BENCH_instrument.json")
    parser.add_argument(
        "--fail-below",
        type=float,
        default=None,
        metavar="X",
        help="exit 1 when the geomean slow/fast speedup is below X",
    )
    args = parser.parse_args(argv)

    names = args.benchmarks or list(sorted(ALL_BENCHMARKS))
    repeats = args.repeats
    if args.quick:
        names = args.benchmarks or ["jacobi1d", "trisolv", "cholesky"]
        repeats = 1

    rows = []
    for name in names:
        row = bench_one(name, repeats)
        rows.append(row)
        vs_pre = (
            f" vs-pre-PR={row['speedup_vs_pre_pr']:6.2f}x"
            if row["speedup_vs_pre_pr"] is not None
            else ""
        )
        print(
            f"{row['benchmark']:<10} slow={row['slow_s'] * 1000:9.1f}ms "
            f"fast={row['fast_s'] * 1000:9.1f}ms "
            f"cached={row['cached_s'] * 1000:7.2f}ms "
            f"speedup={row['speedup']:6.2f}x{vs_pre}"
        )

    summary = {
        "repeats": repeats,
        "options": "index_set_splitting=True, hoist_inspectors=True",
        "geomean_speedup": geomean([row["speedup"] for row in rows]),
        "total_slow_s": sum(row["slow_s"] for row in rows),
        "total_fast_s": sum(row["fast_s"] for row in rows),
    }
    summary["total_speedup"] = (
        summary["total_slow_s"] / summary["total_fast_s"]
    )
    vs_pre_pr = [
        row["speedup_vs_pre_pr"]
        for row in rows
        if row["speedup_vs_pre_pr"] is not None
    ]
    if vs_pre_pr:
        summary["geomean_speedup_vs_pre_pr"] = geomean(vs_pre_pr)
    line = (
        f"{'geomean':<10} slow/fast={summary['geomean_speedup']:.2f}x  "
        f"total={summary['total_speedup']:.2f}x"
    )
    if vs_pre_pr:
        line += f"  vs-pre-PR={summary['geomean_speedup_vs_pre_pr']:.2f}x"
    print(line)

    payload = {"benchmarks": rows, "summary": summary}
    with open(args.out, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(f"wrote {args.out}")

    if (
        args.fail_below is not None
        and summary["geomean_speedup"] < args.fail_below
    ):
        print(
            f"FAIL: geomean speedup {summary['geomean_speedup']:.2f}x "
            f"< required {args.fail_below:.2f}x",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
