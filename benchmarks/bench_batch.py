"""Batched-campaign throughput: trials/sec serial vs ``--batch T``.

Runs the same fault-injection campaign twice — once with the classic
per-trial loop and once through :mod:`repro.campaign.batch` — checks
the records are canonical-identical, and reports trials/sec for both.
Writes ``BENCH_batch.json`` (CI uploads it as an artifact).

Usage::

    PYTHONPATH=src python benchmarks/bench_batch.py
    PYTHONPATH=src python benchmarks/bench_batch.py --benchmark cholesky \
        --trials 64 --batch 16 --fail-below 1.0
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from dataclasses import replace
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.campaign import ProgramCampaignSpec, run_campaign  # noqa: E402
from repro.runtime.faults import FAULT_MODELS  # noqa: E402


def _canonical(result) -> list[dict]:
    return [record.canonical() for record in result.records]


def bench_model(
    benchmark: str, scale: str, trials: int, batch: int, fault_model: str
) -> dict:
    serial_spec = ProgramCampaignSpec(
        benchmark=benchmark,
        scale=scale,
        trials=trials,
        fault_model=fault_model,
        seed=11,
    )
    batch_spec = replace(serial_spec, batch=batch)

    # Warm the golden/kernel caches so both runs time steady-state
    # trial throughput, not one-off compilation.
    run_campaign(replace(serial_spec, trials=1))

    start = time.perf_counter()
    serial = run_campaign(serial_spec)
    serial_s = time.perf_counter() - start
    start = time.perf_counter()
    batched = run_campaign(batch_spec)
    batch_s = time.perf_counter() - start

    assert _canonical(serial) == _canonical(
        batched
    ), f"{fault_model}: batched records diverge from serial"
    return {
        "fault_model": fault_model,
        "trials": trials,
        "batch": batch,
        "serial_s": serial_s,
        "batch_s": batch_s,
        "serial_trials_per_s": trials / serial_s,
        "batch_trials_per_s": trials / batch_s,
        "speedup": serial_s / batch_s,
        "verdicts": batched.counts,
    }


def geomean(values: list[float]) -> float:
    product = 1.0
    for value in values:
        product *= value
    return product ** (1.0 / len(values)) if values else float("nan")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--benchmark", default="cholesky")
    parser.add_argument(
        "--scale", choices=("small", "default"), default="small"
    )
    parser.add_argument("--trials", type=int, default=48)
    parser.add_argument("--batch", type=int, default=16)
    parser.add_argument(
        "--fault-models",
        nargs="+",
        default=["random_cell", "stuck_bit", "burst"],
        choices=FAULT_MODELS,
    )
    parser.add_argument("--out", default="BENCH_batch.json")
    parser.add_argument(
        "--fail-below",
        type=float,
        default=None,
        metavar="X",
        help="exit 1 when the geomean batch-vs-serial speedup is below X",
    )
    args = parser.parse_args(argv)

    rows = []
    for model in args.fault_models:
        row = bench_model(
            args.benchmark, args.scale, args.trials, args.batch, model
        )
        rows.append(row)
        print(
            f"{row['fault_model']:<14} serial="
            f"{row['serial_trials_per_s']:8.1f} trials/s  batch="
            f"{row['batch_trials_per_s']:8.1f} trials/s  "
            f"speedup={row['speedup']:5.2f}x  records identical"
        )

    summary = {
        "benchmark": args.benchmark,
        "scale": args.scale,
        "trials": args.trials,
        "batch": args.batch,
        "geomean_speedup": geomean([row["speedup"] for row in rows]),
    }
    print(f"{'geomean':<14} speedup={summary['geomean_speedup']:.2f}x")

    payload = {"fault_models": rows, "summary": summary}
    with open(args.out, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(f"wrote {args.out}")

    if (
        args.fail_below is not None
        and summary["geomean_speedup"] < args.fail_below
    ):
        print(
            f"FAIL: geomean batch speedup "
            f"{summary['geomean_speedup']:.2f}x "
            f"< required {args.fail_below:.2f}x",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
