"""Recovery subsystem cost: checkpoint overhead and recovery latency.

Times, for every Table 2 benchmark, four compiled-backend runs:

* **original** — the uninstrumented program;
* **detect** — the detection-only build recovery semantically
  replaces: ``instrument_with_epochs`` (per-epoch boundary handoff)
  where the shape allows, the plain instrumented program otherwise;
* **recovery (fault-free)** — the same program under the epoch
  checkpoint + re-execution controller (:mod:`repro.recovery`) with no
  fault injected: instrumentation + per-segment copy-on-write
  checkpoints, zero replays.  ``overhead = recovery_s / original_s``
  is the full price of being *able* to recover;
  ``checkpoint_overhead = recovery_s / detect_s`` isolates what
  checkpointing adds on top of detection — the gated number.  It is
  often *below* 1.0: the controller batches √epochs iterations per
  boundary handoff, which the detection build pays every epoch;
* **recovery (faulty)** — a seeded single-transient-fault trial that
  the verifiers detect, so the controller actually restores and
  replays.  ``latency_s = faulty_s - recovery_s`` approximates the
  added cost of one detect–localize–restore–replay episode.

Writes ``BENCH_recovery.json``.  Usage::

    PYTHONPATH=src python benchmarks/bench_recovery.py
    PYTHONPATH=src python benchmarks/bench_recovery.py --quick \
        --fail-above 2.0 --out BENCH_recovery.json

``--fail-above X`` exits non-zero when the geometric-mean checkpoint
overhead (vs the detection build) exceeds ``X`` (the acceptance bar is
2.0 at default scale).  See docs/RECOVERY.md for how to read the
output.
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.instrument.cache import instrument_cached  # noqa: E402
from repro.instrument.epochs import (  # noqa: E402
    EpochError,
    instrument_with_epochs,
)
from repro.instrument.pipeline import InstrumentationOptions  # noqa: E402
from repro.programs import ALL_BENCHMARKS  # noqa: E402
from repro.recovery import build_recovery_plan, run_plan  # noqa: E402
from repro.runtime.compile import compile_program  # noqa: E402
from repro.runtime.faults import RandomCellFlipper  # noqa: E402

OPTIMIZED = InstrumentationOptions(
    index_set_splitting=True, hoist_inspectors=True
)


def _copy_values(values: dict) -> dict:
    return {
        k: (v.copy() if hasattr(v, "copy") else v) for k, v in values.items()
    }


def _detecting_seed(
    plan, params, values, total_loads: int, targets: list[str], base_seed: int
) -> tuple[int, object] | tuple[None, None]:
    """First seed (of a bounded scan) whose injected fault is detected."""
    for offset in range(64):
        seed = base_seed + offset
        injector = RandomCellFlipper(
            2, total_loads, random.Random(seed), target_arrays=targets
        )
        outcome = run_plan(
            plan,
            params,
            initial_values=_copy_values(values),
            injector=injector,
            wild_reads=True,
            backend="compiled",
        )
        if outcome.detected and outcome.completed:
            return seed, outcome
    return None, None


def bench_one(name: str, scale: str, repeats: int) -> dict:
    module = ALL_BENCHMARKS[name]
    program = module.program()
    params = dict(
        module.SMALL_PARAMS if scale == "small" else module.DEFAULT_PARAMS
    )
    values = module.initial_values(params, seed=7)
    targets = [decl.name for decl in program.arrays]
    plan = build_recovery_plan(program, options=OPTIMIZED)
    try:
        detect_build, _ = instrument_with_epochs(program, OPTIMIZED)
    except EpochError:
        detect_build, _ = instrument_cached(program, OPTIMIZED)
    kernel = compile_program(program)
    detect_kernel = compile_program(detect_build)

    original_s = float("inf")
    detect_s = float("inf")
    recovery_s = float("inf")
    clean = None
    for _ in range(repeats):
        start = time.perf_counter()
        kernel.execute(params, initial_values=_copy_values(values))
        original_s = min(original_s, time.perf_counter() - start)
        start = time.perf_counter()
        detect_kernel.execute(params, initial_values=_copy_values(values))
        detect_s = min(detect_s, time.perf_counter() - start)
        start = time.perf_counter()
        clean = run_plan(
            plan,
            params,
            initial_values=_copy_values(values),
            backend="compiled",
        )
        recovery_s = min(recovery_s, time.perf_counter() - start)
    assert clean is not None and not clean.detected, (
        f"{name}: fault-free recovery run flagged an error"
    )

    total_loads = max(1, clean.memory.load_count)
    seed, faulty = _detecting_seed(
        plan, params, values, total_loads, targets, base_seed=20140609
    )
    faulty_s = float("inf")
    if seed is not None:
        for _ in range(repeats):
            injector = RandomCellFlipper(
                2, total_loads, random.Random(seed), target_arrays=targets
            )
            start = time.perf_counter()
            faulty = run_plan(
                plan,
                params,
                initial_values=_copy_values(values),
                injector=injector,
                wild_reads=True,
                backend="compiled",
            )
            faulty_s = min(faulty_s, time.perf_counter() - start)

    row = {
        "benchmark": name,
        "scale": scale,
        "params": params,
        "mode": plan.mode,
        "epochs": clean.epochs,
        "original_s": original_s,
        "detect_s": detect_s,
        "recovery_s": recovery_s,
        "overhead": recovery_s / original_s,
        "checkpoint_overhead": recovery_s / detect_s,
        "checkpoint_stats": dict(clean.checkpoint_stats),
    }
    if seed is not None:
        row.update(
            faulty_seed=seed,
            faulty_s=faulty_s,
            latency_s=max(0.0, faulty_s - recovery_s),
            replays=faulty.replays,
            targeted_restores=faulty.targeted_restores,
            full_restores=faulty.full_restores,
        )
    return row


def geomean(values: list[float]) -> float:
    product = 1.0
    for value in values:
        product *= value
    return product ** (1.0 / len(values)) if values else float("nan")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--benchmarks",
        nargs="+",
        default=None,
        choices=sorted(ALL_BENCHMARKS),
        help="subset to time (default: all 10)",
    )
    parser.add_argument(
        "--scale", choices=("small", "default"), default="default"
    )
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small scale, 1 repeat, 3 benchmarks — the CI smoke set",
    )
    parser.add_argument("--out", default="BENCH_recovery.json")
    parser.add_argument(
        "--fail-above",
        type=float,
        default=None,
        metavar="X",
        help="exit 1 when the geomean fault-free overhead exceeds X",
    )
    args = parser.parse_args(argv)

    names = args.benchmarks or list(ALL_BENCHMARKS)
    scale = args.scale
    repeats = args.repeats
    if args.quick:
        names = args.benchmarks or ["jacobi1d", "trisolv", "cholesky"]
        scale = "small"
        repeats = 1

    rows = []
    for name in names:
        row = bench_one(name, scale, repeats)
        rows.append(row)
        latency = (
            f" latency={row['latency_s']:7.3f}s replays={row['replays']}"
            if "latency_s" in row
            else " (no detecting seed found)"
        )
        print(
            f"{row['benchmark']:<10} {row['mode']:<6} "
            f"orig={row['original_s']:8.3f}s "
            f"detect={row['detect_s']:8.3f}s "
            f"recover={row['recovery_s']:8.3f}s "
            f"ckpt={row['checkpoint_overhead']:5.2f}x{latency}"
        )

    latencies = [row["latency_s"] for row in rows if "latency_s" in row]
    summary = {
        "scale": scale,
        "repeats": repeats,
        "geomean_overhead": geomean([row["overhead"] for row in rows]),
        "geomean_checkpoint_overhead": geomean(
            [row["checkpoint_overhead"] for row in rows]
        ),
        "total_original_s": sum(row["original_s"] for row in rows),
        "total_detect_s": sum(row["detect_s"] for row in rows),
        "total_recovery_s": sum(row["recovery_s"] for row in rows),
        "mean_latency_s": (
            sum(latencies) / len(latencies) if latencies else None
        ),
    }
    print(
        f"{'geomean':<10} overhead={summary['geomean_overhead']:.2f}x "
        f"(vs original)  "
        f"checkpoint={summary['geomean_checkpoint_overhead']:.2f}x "
        f"(vs detect)  mean latency="
        + (
            f"{summary['mean_latency_s']:.3f}s"
            if summary["mean_latency_s"] is not None
            else "n/a"
        )
    )

    payload = {"benchmarks": rows, "summary": summary}
    with open(args.out, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(f"wrote {args.out}")

    if (
        args.fail_above is not None
        and summary["geomean_checkpoint_overhead"] > args.fail_above
    ):
        print(
            f"FAIL: geomean checkpoint overhead "
            f"{summary['geomean_checkpoint_overhead']:.2f}x "
            f"> allowed {args.fail_above:.2f}x",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
