"""Ablations for the design choices DESIGN.md calls out.

* index-set splitting alone vs. inspector hoisting alone (the paper:
  LU's gains come from splitting, CG's entirely from hoisting);
* one vs. two checksum channels (software cost of Section 6.1's
  hardening);
* checksum operator comparison (modadd vs. xor vs. the Maxino set) on
  identical fault campaigns.
"""

import random

import pytest

from repro.experiments.figure10 import build_benchmark
from repro.instrument.operators import operator_by_name
from repro.instrument.pipeline import (
    InstrumentationOptions,
    instrument_program,
)
from repro.programs import ALL_BENCHMARKS
from repro.runtime.costmodel import CostModel
from repro.runtime.faults import flip_random_bits_in_words
from repro.runtime.interpreter import run_program


def _copy(values):
    return {k: (v.copy() if hasattr(v, "copy") else v) for k, v in values.items()}


def _overhead(name, options):
    module = ALL_BENCHMARKS[name]
    params = module.SMALL_PARAMS
    values = module.initial_values(params)
    baseline = run_program(
        module.program(), params, initial_values=_copy(values)
    )
    instrumented, _ = instrument_program(module.program(), options)
    resilient = run_program(
        instrumented, params, initial_values=_copy(values)
    )
    assert not resilient.mismatches
    return CostModel().overhead(baseline.counts, resilient.counts)


def test_ablation_splitting_vs_hoisting_cg(benchmark):
    """Paper Section 6.2.1: all of CG's benefit accrues from inspector
    hoisting; index-set splitting does not affect it."""

    def measure():
        return {
            "none": _overhead(
                "cg",
                InstrumentationOptions(
                    index_set_splitting=False, hoist_inspectors=False
                ),
            ),
            "split_only": _overhead(
                "cg",
                InstrumentationOptions(
                    index_set_splitting=True, hoist_inspectors=False
                ),
            ),
            "hoist_only": _overhead(
                "cg",
                InstrumentationOptions(
                    index_set_splitting=False, hoist_inspectors=True
                ),
            ),
        }

    result = benchmark.pedantic(measure, rounds=1, iterations=1)
    hoist_gain = result["none"] - result["hoist_only"]
    split_gain = result["none"] - result["split_only"]
    assert hoist_gain > 0, "hoisting must help CG"
    assert hoist_gain > 4 * max(split_gain, 0.001), (
        f"CG's gains should come from hoisting: {result}"
    )


def test_ablation_splitting_helps_affine(benchmark):
    """Splitting alone recovers overhead on the affine stencils."""

    def measure():
        results = {}
        for name in ("seidel", "jacobi1d"):
            unsplit = _overhead(
                name, InstrumentationOptions(index_set_splitting=False)
            )
            split = _overhead(
                name, InstrumentationOptions(index_set_splitting=True)
            )
            results[name] = (unsplit, split)
        return results

    result = benchmark.pedantic(measure, rounds=1, iterations=1)
    for name, (unsplit, split) in result.items():
        assert split < unsplit, f"{name}: splitting must help ({result})"


def test_ablation_two_checksums_software_cost(benchmark):
    """Tracking the second (rotated) checksum in software roughly
    doubles the checksum arithmetic — the paper's motivation for
    hardware support of multiple checksums (Section 6.2.2)."""
    module = ALL_BENCHMARKS["cholesky"]
    params = module.SMALL_PARAMS
    values = module.initial_values(params)
    instrumented, _ = instrument_program(
        module.program(), InstrumentationOptions(index_set_splitting=True)
    )

    def measure():
        one = run_program(
            instrumented, params, initial_values=_copy(values), channels=1
        )
        two = run_program(
            instrumented, params, initial_values=_copy(values), channels=2
        )
        assert not one.mismatches and not two.mismatches
        return one.counts.checksum_ops, two.counts.checksum_ops

    ops1, ops2 = benchmark.pedantic(measure, rounds=1, iterations=1)
    assert ops2 == 2 * ops1


@pytest.mark.parametrize(
    "operator", ["modadd", "xor", "ones_complement", "fletcher", "adler", "modadd+rotadd"]
)
def test_ablation_operator_coverage(benchmark, operator):
    """Maxino-style comparison: % of 2-bit errors missed per operator
    on identical campaigns.  Integer addition beats XOR (the paper's
    stated reason for choosing it)."""
    op = operator_by_name(operator)
    benchmark.group = "operator-coverage"

    def campaign():
        rng = random.Random(2024)
        trials = 6_000
        missed = 0
        for _ in range(trials):
            words = [rng.getrandbits(64) for _ in range(64)]
            corrupted = list(words)
            flip_random_bits_in_words(corrupted, 2, rng)
            if not op.detects(words, corrupted, base_address=0x1000):
                missed += 1
        return 100.0 * missed / trials

    missed_pct = benchmark.pedantic(campaign, rounds=1, iterations=1)
    if operator == "xor":
        # XOR misses every aligned double flip: ~ 1/64 = 1.56%.
        assert missed_pct > 0.8
    elif operator == "modadd":
        assert missed_pct < 1.2  # ~0.78%
    elif operator == "modadd+rotadd":
        assert missed_pct < 0.15
    else:
        assert missed_pct < 1.2
