"""Backend shoot-out: interpreter vs compile-once kernel.

Times both execution backends on the instrumented (split + hoisted)
builds of the 10 paper benchmarks — the exact programs a Figure 10
campaign runs thousands of times — and writes ``BENCH_backends.json``.
Compile time is reported separately from run time because campaigns
pay it once per worker and amortize it over every trial.

Usage::

    PYTHONPATH=src python benchmarks/bench_backends.py
    PYTHONPATH=src python benchmarks/bench_backends.py --quick \
        --fail-below 1.0 --out BENCH_backends.json

``--fail-below X`` exits non-zero when the geometric-mean speedup
falls below ``X`` (CI uses 1.0: compiled must never be slower).
See docs/BACKENDS.md for how to read the output.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.instrument.pipeline import (  # noqa: E402
    InstrumentationOptions,
    instrument_program,
)
from repro.programs import ALL_BENCHMARKS  # noqa: E402
from repro.runtime.compile import (  # noqa: E402
    clear_kernel_cache,
    compile_program,
)
from repro.runtime.interpreter import run_program  # noqa: E402

OPTIMIZED = InstrumentationOptions(
    index_set_splitting=True, hoist_inspectors=True
)


def _copy_values(values: dict) -> dict:
    return {
        k: (v.copy() if hasattr(v, "copy") else v) for k, v in values.items()
    }


def bench_one(name: str, scale: str, repeats: int) -> dict:
    module = ALL_BENCHMARKS[name]
    program = module.program()
    params = dict(
        module.SMALL_PARAMS if scale == "small" else module.DEFAULT_PARAMS
    )
    values = module.initial_values(params, seed=7)
    program, _ = instrument_program(program, OPTIMIZED)

    clear_kernel_cache()
    start = time.perf_counter()
    kernel = compile_program(program)
    compile_s = time.perf_counter() - start

    interp_s = float("inf")
    compiled_s = float("inf")
    reference = None
    for _ in range(repeats):
        start = time.perf_counter()
        ri = run_program(program, params, initial_values=_copy_values(values))
        interp_s = min(interp_s, time.perf_counter() - start)
        start = time.perf_counter()
        rc = kernel.execute(params, initial_values=_copy_values(values))
        compiled_s = min(compiled_s, time.perf_counter() - start)
        if reference is None:
            reference = ri
        # The timing loop doubles as a sanity check on the bit-identity
        # contract (the differential suite is the authoritative test).
        assert ri.counts == rc.counts, f"{name}: op counts diverge"
        assert (
            ri.checksums.sums == rc.checksums.sums
        ), f"{name}: checksums diverge"
    return {
        "benchmark": name,
        "scale": scale,
        "params": params,
        "interp_s": interp_s,
        "compiled_s": compiled_s,
        "compile_s": compile_s,
        "speedup": interp_s / compiled_s,
        "statements": reference.statements_executed,
    }


def geomean(values: list[float]) -> float:
    product = 1.0
    for value in values:
        product *= value
    return product ** (1.0 / len(values)) if values else float("nan")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--benchmarks",
        nargs="+",
        default=None,
        choices=sorted(ALL_BENCHMARKS),
        help="subset to time (default: all 10)",
    )
    parser.add_argument(
        "--scale", choices=("small", "default"), default="default"
    )
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small scale, 1 repeat, 3 benchmarks — the CI smoke set",
    )
    parser.add_argument("--out", default="BENCH_backends.json")
    parser.add_argument(
        "--fail-below",
        type=float,
        default=None,
        metavar="X",
        help="exit 1 when the geomean speedup is below X",
    )
    args = parser.parse_args(argv)

    names = args.benchmarks or list(ALL_BENCHMARKS)
    scale = args.scale
    repeats = args.repeats
    if args.quick:
        names = args.benchmarks or ["jacobi1d", "trisolv", "cholesky"]
        scale = "small"
        repeats = 1

    rows = []
    for name in names:
        row = bench_one(name, scale, repeats)
        rows.append(row)
        print(
            f"{row['benchmark']:<10} interp={row['interp_s']:8.3f}s "
            f"compiled={row['compiled_s']:8.3f}s "
            f"(+{row['compile_s']:.3f}s compile) "
            f"speedup={row['speedup']:6.2f}x"
        )

    summary = {
        "scale": scale,
        "repeats": repeats,
        "geomean_speedup": geomean([row["speedup"] for row in rows]),
        "total_interp_s": sum(row["interp_s"] for row in rows),
        "total_compiled_s": sum(row["compiled_s"] for row in rows),
    }
    summary["total_speedup"] = (
        summary["total_interp_s"] / summary["total_compiled_s"]
    )
    print(
        f"{'geomean':<10} speedup={summary['geomean_speedup']:6.2f}x  "
        f"total={summary['total_speedup']:.2f}x"
    )

    payload = {"benchmarks": rows, "summary": summary}
    with open(args.out, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(f"wrote {args.out}")

    if (
        args.fail_below is not None
        and summary["geomean_speedup"] < args.fail_below
    ):
        print(
            f"FAIL: geomean speedup {summary['geomean_speedup']:.2f}x "
            f"< required {args.fail_below:.2f}x",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
