"""Backend shoot-out: interpreter vs compiled kernel vs vector backend.

Times the execution backends on the instrumented (split + hoisted)
builds of the 10 paper benchmarks — the exact programs a Figure 10
campaign runs thousands of times — and writes ``BENCH_backends.json``.
The compiled backend is timed at every requested ``--opt-levels``
entry (default: 0, 1, 2), so the report shows both the
interpreter-vs-compiled gap and what each optimizer level buys over
the level-0 straight translation.  Compile time is reported
separately from run time because campaigns pay it once per worker and
amortize it over every trial.

The vector column times the same kernel dispatched with
``vectorize=True`` — the whole-array NumPy path injector-free runs
(golden, replay baseline, recovery re-execution) take.  Each kernel is
warmed up first so the probe-based profitability memo is already
decided when the timed runs start; ``vector_used`` records whether the
probe committed the vector path (un-engaged benchmarks fall back to
scalar, so their vector time ≈ compiled time by construction).  The
vector contract excludes the OpCounts breakdown, so the timing loop
checks checksums and statement totals only.

Usage::

    PYTHONPATH=src python benchmarks/bench_backends.py
    PYTHONPATH=src python benchmarks/bench_backends.py --quick \
        --fail-below 1.0 --fail-below-opt 1.2 --out BENCH_backends.json

``--fail-below X`` exits non-zero when the geometric-mean
interpreter-vs-best-level speedup falls below ``X`` (CI uses 1.0:
compiled must never be slower).  ``--fail-below-opt Y`` additionally
gates the highest-level-vs-level-0 geomean (the optimizer win).
``--fail-below-vector Z`` gates the vector-vs-compiled geomean over
the *engaged* benchmarks (the ones whose probe committed the vector
path — fallback benchmarks run scalar either way, so including them
would let scalar noise mask a vector regression).
See docs/BACKENDS.md for how to read the output.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.instrument.pipeline import (  # noqa: E402
    InstrumentationOptions,
    instrument_program,
)
from repro.programs import ALL_BENCHMARKS  # noqa: E402
from repro.runtime.compile import (  # noqa: E402
    clear_kernel_cache,
    compile_program,
)
from repro.runtime import vector  # noqa: E402
from repro.runtime.interpreter import run_program  # noqa: E402

OPTIMIZED = InstrumentationOptions(
    index_set_splitting=True, hoist_inspectors=True
)


def _copy_values(values: dict) -> dict:
    return {
        k: (v.copy() if hasattr(v, "copy") else v) for k, v in values.items()
    }


def bench_one(
    name: str, scale: str, repeats: int, opt_levels: list[int]
) -> dict:
    module = ALL_BENCHMARKS[name]
    program = module.program()
    params = dict(
        module.SMALL_PARAMS if scale == "small" else module.DEFAULT_PARAMS
    )
    values = module.initial_values(params, seed=7)
    program, _ = instrument_program(program, OPTIMIZED)

    clear_kernel_cache()
    kernels = {}
    compile_s = {}
    for level in opt_levels:
        start = time.perf_counter()
        kernels[level] = compile_program(program, opt_level=level)
        compile_s[level] = time.perf_counter() - start

    interp_s = float("inf")
    level_s = {level: float("inf") for level in opt_levels}
    reference = None
    for _ in range(repeats):
        start = time.perf_counter()
        ri = run_program(program, params, initial_values=_copy_values(values))
        interp_s = min(interp_s, time.perf_counter() - start)
        if reference is None:
            reference = ri
        for level in opt_levels:
            start = time.perf_counter()
            rc = kernels[level].execute(
                params, initial_values=_copy_values(values)
            )
            level_s[level] = min(level_s[level], time.perf_counter() - start)
            # The timing loop doubles as a sanity check on the
            # bit-identity contract (the differential suite is the
            # authoritative test).
            assert (
                ri.counts == rc.counts
            ), f"{name} L{level}: op counts diverge"
            assert (
                ri.checksums.sums == rc.checksums.sums
            ), f"{name} L{level}: checksums diverge"
    best = max(opt_levels)
    base = min(opt_levels)

    # Vector column: same kernel, vectorize=True.  Two warm-up runs
    # settle the profitability memo (the first probes vector *and*
    # scalar; the second takes whichever path won) so the timed loop
    # below measures the steady-state dispatch a campaign sees.
    kernel = kernels[best]
    for _ in range(2):
        kernel.execute(
            params, initial_values=_copy_values(values), vectorize=True
        )
    vector.reset_stats()
    vector_s = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        rv = kernel.execute(
            params, initial_values=_copy_values(values), vectorize=True
        )
        vector_s = min(vector_s, time.perf_counter() - start)
        # OpCounts are outside the vector contract; checksums and the
        # statement total are in it.
        assert (
            reference.checksums.sums == rv.checksums.sums
        ), f"{name} vector: checksums diverge"
        assert (
            reference.statements_executed == rv.statements_executed
        ), f"{name} vector: statement totals diverge"
    vector_used = vector.vector_stats()["runs"] > 0

    return {
        "benchmark": name,
        "scale": scale,
        "params": params,
        "interp_s": interp_s,
        "compiled_s": level_s[best],
        "compile_s": compile_s[best],
        "speedup": interp_s / level_s[best],
        "levels": {
            str(level): {
                "run_s": level_s[level],
                "compile_s": compile_s[level],
                "speedup_vs_interp": interp_s / level_s[level],
                "speedup_vs_l0": level_s[base] / level_s[level],
            }
            for level in opt_levels
        },
        "opt_speedup": level_s[base] / level_s[best],
        "vector_s": vector_s,
        "vector_used": vector_used,
        "vector_speedup": level_s[best] / vector_s,
        "vector_speedup_vs_interp": interp_s / vector_s,
        "statements": reference.statements_executed,
    }


def geomean(values: list[float]) -> float:
    product = 1.0
    for value in values:
        product *= value
    return product ** (1.0 / len(values)) if values else float("nan")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--benchmarks",
        nargs="+",
        default=None,
        choices=sorted(ALL_BENCHMARKS),
        help="subset to time (default: all 10)",
    )
    parser.add_argument(
        "--scale", choices=("small", "default"), default="default"
    )
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small scale, 1 repeat, 3 benchmarks — the CI smoke set",
    )
    parser.add_argument("--out", default="BENCH_backends.json")
    parser.add_argument(
        "--opt-levels",
        nargs="+",
        type=int,
        default=[0, 1, 2],
        choices=(0, 1, 2),
        help="optimizer levels to time (default: all three)",
    )
    parser.add_argument(
        "--fail-below",
        type=float,
        default=None,
        metavar="X",
        help="exit 1 when the interp-vs-compiled geomean speedup "
        "(at the highest level timed) is below X",
    )
    parser.add_argument(
        "--fail-below-opt",
        type=float,
        default=None,
        metavar="Y",
        help="exit 1 when the highest-vs-lowest opt level geomean "
        "speedup is below Y",
    )
    parser.add_argument(
        "--fail-below-vector",
        type=float,
        default=None,
        metavar="Z",
        help="exit 1 when the vector-vs-compiled geomean speedup over "
        "the probe-engaged benchmarks is below Z",
    )
    args = parser.parse_args(argv)

    names = args.benchmarks or list(ALL_BENCHMARKS)
    scale = args.scale
    repeats = args.repeats
    if args.quick:
        names = args.benchmarks or ["jacobi1d", "trisolv", "cholesky"]
        scale = "small"
        repeats = 1

    opt_levels = sorted(set(args.opt_levels))
    rows = []
    for name in names:
        row = bench_one(name, scale, repeats, opt_levels)
        rows.append(row)
        per_level = " ".join(
            f"L{level}={row['levels'][str(level)]['run_s']:.3f}s"
            for level in opt_levels
        )
        vec_tag = "vec" if row["vector_used"] else "(scalar)"
        print(
            f"{row['benchmark']:<10} interp={row['interp_s']:8.3f}s "
            f"{per_level} "
            f"speedup={row['speedup']:6.2f}x "
            f"opt={row['opt_speedup']:5.2f}x "
            f"vector={row['vector_s']:.3f}s "
            f"{row['vector_speedup']:5.2f}x {vec_tag}"
        )

    summary = {
        "scale": scale,
        "repeats": repeats,
        "opt_levels": opt_levels,
        "geomean_speedup": geomean([row["speedup"] for row in rows]),
        "geomean_opt_speedup": geomean(
            [row["opt_speedup"] for row in rows]
        ),
        "geomean_by_level": {
            str(level): geomean(
                [
                    row["levels"][str(level)]["speedup_vs_l0"]
                    for row in rows
                ]
            )
            for level in opt_levels
        },
        "total_interp_s": sum(row["interp_s"] for row in rows),
        "total_compiled_s": sum(row["compiled_s"] for row in rows),
    }
    summary["total_speedup"] = (
        summary["total_interp_s"] / summary["total_compiled_s"]
    )
    # The headline vector number averages only the benchmarks whose
    # probe committed the vector path; fallback benchmarks run the
    # scalar kernel either way (speedup ≈ 1 by construction), so the
    # all-benchmarks geomean is reported separately as the fleet-wide
    # expectation rather than the backend's quality bar.
    engaged = [row for row in rows if row["vector_used"]]
    summary["vector_engaged"] = [row["benchmark"] for row in engaged]
    summary["geomean_vector_speedup"] = geomean(
        [row["vector_speedup"] for row in engaged]
    )
    summary["geomean_vector_speedup_all"] = geomean(
        [row["vector_speedup"] for row in rows]
    )
    print(
        f"{'geomean':<10} speedup={summary['geomean_speedup']:6.2f}x  "
        f"total={summary['total_speedup']:.2f}x  "
        f"opt={summary['geomean_opt_speedup']:.2f}x  "
        f"vector={summary['geomean_vector_speedup']:.2f}x "
        f"({len(engaged)}/{len(rows)} engaged, "
        f"all={summary['geomean_vector_speedup_all']:.2f}x)"
    )

    payload = {"benchmarks": rows, "summary": summary}
    with open(args.out, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(f"wrote {args.out}")

    failed = False
    if (
        args.fail_below is not None
        and summary["geomean_speedup"] < args.fail_below
    ):
        print(
            f"FAIL: geomean speedup {summary['geomean_speedup']:.2f}x "
            f"< required {args.fail_below:.2f}x",
            file=sys.stderr,
        )
        failed = True
    if (
        args.fail_below_opt is not None
        and summary["geomean_opt_speedup"] < args.fail_below_opt
    ):
        print(
            f"FAIL: geomean opt speedup "
            f"{summary['geomean_opt_speedup']:.2f}x "
            f"< required {args.fail_below_opt:.2f}x",
            file=sys.stderr,
        )
        failed = True
    if args.fail_below_vector is not None:
        got = summary["geomean_vector_speedup"]
        if not engaged or not got >= args.fail_below_vector:
            print(
                f"FAIL: engaged vector geomean speedup {got:.2f}x "
                f"< required {args.fail_below_vector:.2f}x "
                f"(engaged: {summary['vector_engaged'] or 'none'})",
                file=sys.stderr,
            )
            failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
