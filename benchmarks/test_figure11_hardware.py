"""Figure 11 — estimated overheads with a checksum functional unit.

Replays the paper's Section 6.2.2 estimation on the cost model: the
optimized builds' dynamic operation counts are priced twice, once with
software checksum ops and once with each checksum op at nop cost (the
bookkeeping — counters, inspectors, prologue/epilogue — keeps its full
software price).  Asserts the figure's content: hardware assistance
collapses most of the remaining overhead.
"""

import pytest

from repro.experiments.figure10 import build_benchmark, measure_counts
from repro.experiments.reporting import geomean
from repro.programs import ALL_BENCHMARKS
from repro.runtime.costmodel import CostModel

_COUNTS: dict = {}


def _counts(name):
    if name not in _COUNTS:
        builds = build_benchmark(name, scale="small")
        _COUNTS[name] = measure_counts(builds)
    return _COUNTS[name]


@pytest.mark.parametrize("name", sorted(ALL_BENCHMARKS))
def test_figure11_hardware_estimate(benchmark, name):
    benchmark.group = "figure11"

    def estimate():
        counts = _counts(name)
        cm = CostModel()
        return {
            "software": cm.overhead(counts["original"], counts["optimized"]),
            "hardware": cm.overhead(
                counts["original"], counts["optimized"], hardware_checksums=True
            ),
        }

    result = benchmark.pedantic(estimate, rounds=1, iterations=1)
    assert result["hardware"] < result["software"], name
    assert result["hardware"] >= 1.0 or name == "strsm", name


def test_figure11_geomean_band(benchmark):
    """Hardware support removes the bulk of the checksum cost: the
    overhead *reduction* from software-optimized to hardware is large
    (the paper reaches ~3% residual on a 2.53 GHz Xeon; the simulator
    keeps bookkeeping loads visible, so the residual is higher but the
    drop must be substantial)."""

    def all_rows():
        cm = CostModel()
        rows = []
        for name in ALL_BENCHMARKS:
            counts = _counts(name)
            software = cm.overhead(counts["original"], counts["optimized"])
            hardware = cm.overhead(
                counts["original"], counts["optimized"], hardware_checksums=True
            )
            rows.append((name, software, hardware))
        return rows

    rows = benchmark.pedantic(all_rows, rounds=1, iterations=1)
    gm_soft = geomean([r[1] for r in rows])
    gm_hard = geomean([r[2] for r in rows])
    soft_overhead = gm_soft - 1.0
    hard_overhead = gm_hard - 1.0
    assert hard_overhead < soft_overhead
    # At least a third of the software overhead must vanish.
    assert hard_overhead <= 0.7 * soft_overhead, (gm_soft, gm_hard)
