"""Shared helpers for the benchmark harnesses.

Each file regenerates one of the paper's evaluation artifacts:

* ``test_table1_coverage.py``  — Table 1 (fault coverage);
* ``test_figure10_software.py`` — Figure 10 (software-only overheads);
* ``test_figure11_hardware.py`` — Figure 11 (hardware-assist estimate);
* ``test_ablations.py``         — per-optimization and per-operator
  ablations discussed in Sections 3.3/4.2/6.1.

Run with ``pytest benchmarks/ --benchmark-only``.  The benchmarked
callables are the *generated-Python* builds (wall clock) and the
experiment kernels; printed summaries land in the pytest report.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.codegen.python_gen import compile_to_python
from repro.instrument.pipeline import (
    InstrumentationOptions,
    instrument_program,
)
from repro.ir.analysis import to_affine
from repro.programs import ALL_BENCHMARKS

RESILIENT = InstrumentationOptions(
    index_set_splitting=False, hoist_inspectors=False
)
OPTIMIZED = InstrumentationOptions(
    index_set_splitting=True, hoist_inspectors=True
)


def compiled_builds(name: str, scale: str = "small"):
    """(params, values, {config: CompiledProgram}) for one benchmark."""
    module = ALL_BENCHMARKS[name]
    program = module.program()
    params = dict(
        module.SMALL_PARAMS if scale == "small" else module.DEFAULT_PARAMS
    )
    values = module.initial_values(params)
    resilient, _ = instrument_program(program, RESILIENT)
    optimized, _ = instrument_program(program, OPTIMIZED)
    builds = {
        "original": compile_to_python(program),
        "resilient": compile_to_python(resilient),
        "optimized": compile_to_python(optimized),
    }
    return params, values, builds


def arrays_for(compiled, params, values):
    """Fresh numpy arrays (originals copied, shadows zeroed)."""
    arrays = {}
    for decl in compiled.program.arrays:
        dtype = np.float64 if decl.elem_type == "f64" else np.int64
        if decl.name in values:
            arrays[decl.name] = np.array(values[decl.name], dtype=dtype)
        else:
            shape = tuple(
                int(to_affine(d, set(params)).evaluate(params))
                for d in decl.dims
            )
            arrays[decl.name] = np.zeros(shape, dtype=dtype)
    for decl in compiled.program.scalars:
        if decl.name in values:
            arrays[decl.name] = values[decl.name]
    return arrays
