"""Baseline comparisons the paper argues from.

* **Duplication** (Section 1): redundant memory operations detect the
  same faults but "significantly increase memory space and bandwidth
  requirements" — measured here against the def/use checksum scheme.
* **Periodic scrubbing** (Section 7, Shirvani et al.): lower fault
  coverage than checking every read — measured as the fraction of
  consumed-corruption campaigns each scheme catches.
"""

import random

import pytest

from repro.instrument.duplication import duplicate_program
from repro.instrument.pipeline import (
    InstrumentationOptions,
    instrument_program,
)
from repro.programs import ALL_BENCHMARKS
from repro.runtime.costmodel import CostModel
from repro.runtime.faults import RandomCellFlipper
from repro.runtime.interpreter import run_program
from repro.runtime.scrubbing import run_with_scrubbing


def _copy(values):
    return {k: (v.copy() if hasattr(v, "copy") else v) for k, v in values.items()}


@pytest.mark.parametrize("name", ["cholesky", "trisolv", "jacobi1d"])
def test_duplication_costs_more_memory_traffic(benchmark, name):
    """Figure-10-style comparison with the duplication baseline."""
    module = ALL_BENCHMARKS[name]
    params = module.SMALL_PARAMS
    values = module.initial_values(params)
    benchmark.group = "baseline-duplication"

    def measure():
        plain = run_program(
            module.program(), params, initial_values=_copy(values)
        )
        checksummed, _ = instrument_program(
            module.program(), InstrumentationOptions(index_set_splitting=True)
        )
        duplicated = duplicate_program(module.program())
        r_cs = run_program(checksummed, params, initial_values=_copy(values))
        r_dup = run_program(duplicated, params, initial_values=_copy(values))
        assert not r_cs.mismatches and not r_dup.mismatches
        return {
            "plain": plain.counts,
            "checksum": r_cs.counts,
            "duplication": r_dup.counts,
        }

    counts = benchmark.pedantic(measure, rounds=1, iterations=1)
    # The paper's complaint about duplication, quantified:
    assert counts["duplication"].stores >= 2 * counts["plain"].stores
    assert counts["duplication"].loads >= 2 * counts["plain"].loads
    # The checksum scheme stores no copies of the data.
    assert counts["checksum"].stores < counts["duplication"].stores
    cm = CostModel()
    dup_over = cm.overhead(counts["plain"], counts["duplication"])
    cs_over = cm.overhead(counts["plain"], counts["checksum"])
    # Both cost something; duplication pays double bandwidth forever.
    assert dup_over > 1.5


def test_scrubbing_coverage_gap(benchmark):
    """Campaign comparison: faults injected right before a consuming
    read, after which the cell is rewritten.  The def/use scheme checks
    the read; a slow scrubber never sees the corruption at rest."""
    from repro.ir.parser import parse_program

    import numpy as np

    source = """
    program stream(n) {
      array A[n];
      scalar acc;
      for rep = 0 .. 7 {
        for i = 0 .. n - 1 {
          S1: acc = acc + A[i];
        }
        for i2 = 0 .. n - 1 {
          S2: A[i2] = A[i2] + 1.0;
        }
      }
    }
    """
    program = parse_program(source)
    n = 8
    values = {"A": np.arange(1.0, n + 1.0)}
    instrumented, _ = instrument_program(
        program, InstrumentationOptions(index_set_splitting=True)
    )

    def campaign():
        from repro.runtime.faults import ScheduledBitFlip

        trials = checksum_hits = scrubber_hits = 0
        for at_load in range(12, 100, 3):
            for cell in range(n):
                trials += 1
                f1 = ScheduledBitFlip("A", (cell,), [9, 37], at_load=at_load)
                r = run_program(
                    instrumented,
                    {"n": n},
                    initial_values=_copy(values),
                    injector=f1,
                )
                checksum_hits += r.error_detected
                f2 = ScheduledBitFlip("A", (cell,), [9, 37], at_load=at_load)
                _, report = run_with_scrubbing(
                    program,
                    {"n": n},
                    initial_values=_copy(values),
                    fault_source=f2,
                    interval=5_000,  # slow sweep: termination-only
                )
                scrubber_hits += report.detected
        return trials, checksum_hits, scrubber_hits

    trials, checksum_hits, scrubber_hits = benchmark.pedantic(
        campaign, rounds=1, iterations=1
    )
    # Every cell is rewritten every rep, so a termination-only scrubber
    # misses essentially everything; the read-checking scheme catches
    # the majority (in-window injections).
    assert checksum_hits > 2 * scrubber_hits, (
        trials,
        checksum_hits,
        scrubber_hits,
    )
    assert checksum_hits >= trials // 2
