"""Table 1 — fault coverage of the modulo-addition checksums.

Benchmarks the campaign kernel and regenerates the table's rows at a
reduced trial count (the full 100 000-trial protocol is
``python -m repro.experiments.table1 --trials 100000``).  Assertions
pin the paper-reproducing rates: 2-bit random-data misses near 0.78%,
all-0/all-1 misses near 0.024%, two-checksum misses an order of
magnitude rarer, and ≥3-bit errors essentially always caught.
"""

import random

import pytest

from repro.experiments.table1 import Table1Config, run_cell, run_table1

TRIALS = 8_000


@pytest.mark.parametrize("pattern", ["all0", "all1", "random"])
@pytest.mark.parametrize("size", [100, 10_000])
def test_two_bit_coverage(benchmark, pattern, size):
    rng = random.Random(1234)

    def campaign():
        return run_cell(size, 2, pattern, TRIALS, rng)

    one, two = benchmark.pedantic(campaign, rounds=1, iterations=1)
    if pattern == "random":
        assert 0.4 <= one <= 1.2, f"paper: ~0.76-0.79%, got {one}%"
    else:
        assert one <= 0.15, f"paper: ~0.014-0.025%, got {one}%"
    assert two <= one


@pytest.mark.parametrize("bits", [3, 4, 5, 6])
def test_multi_bit_coverage(benchmark, bits):
    rng = random.Random(99)

    def campaign():
        return run_cell(100, bits, "random", TRIALS, rng)

    one, two = benchmark.pedantic(campaign, rounds=1, iterations=1)
    assert one <= 0.25, f"{bits}-bit misses should be rare, got {one}%"
    assert two == 0.0, f"paper: two checksums catch all {bits}-bit errors"


def test_full_table_rows(benchmark):
    """All 30 cells of the (reduced-trials) table in one sweep."""
    config = Table1Config(
        sizes=(100, 10_000),
        bit_counts=(2, 3, 4),
        trials=2_000,
    )
    rows = benchmark.pedantic(run_table1, args=(config,), rounds=1, iterations=1)
    assert len(rows) == 2 * 3 * 3
    worst = max(r.undetected_one for r in rows)
    assert worst <= 1.5  # >99% detection in every cell (paper Section 6.1)
