"""Table 1 — fault coverage of the modulo-addition checksums.

Benchmarks the campaign kernel and regenerates the table's rows at a
reduced trial count (the full 100 000-trial protocol is
``python -m repro.experiments.table1 --trials 100000``).  Assertions
pin the paper-reproducing rates: 2-bit random-data misses near 0.78%,
all-0/all-1 misses near 0.024%, two-checksum misses an order of
magnitude rarer, and ≥3-bit errors essentially always caught.

The campaign-engine path (``repro.campaign``) is benchmarked alongside
the legacy serial kernel, including the parallel-speedup contract: on a
machine with ≥4 cores, a ≥500-trial cell campaign on 4 workers must
beat serial by ≥2.5× while producing bit-identical counts.
"""

import os
import random
import time

import pytest

from repro.campaign import ChecksumCampaignSpec, run_campaign
from repro.experiments.table1 import (
    Table1Config,
    run_cell,
    run_cell_campaign,
    run_table1,
)

TRIALS = 8_000


@pytest.mark.parametrize("pattern", ["all0", "all1", "random"])
@pytest.mark.parametrize("size", [100, 10_000])
def test_two_bit_coverage(benchmark, pattern, size):
    rng = random.Random(1234)

    def campaign():
        return run_cell(size, 2, pattern, TRIALS, rng)

    one, two = benchmark.pedantic(campaign, rounds=1, iterations=1)
    if pattern == "random":
        assert 0.4 <= one <= 1.2, f"paper: ~0.76-0.79%, got {one}%"
    else:
        assert one <= 0.15, f"paper: ~0.014-0.025%, got {one}%"
    assert two <= one


@pytest.mark.parametrize("bits", [3, 4, 5, 6])
def test_multi_bit_coverage(benchmark, bits):
    rng = random.Random(99)

    def campaign():
        return run_cell(100, bits, "random", TRIALS, rng)

    one, two = benchmark.pedantic(campaign, rounds=1, iterations=1)
    assert one <= 0.25, f"{bits}-bit misses should be rare, got {one}%"
    assert two == 0.0, f"paper: two checksums catch all {bits}-bit errors"


def test_full_table_rows(benchmark):
    """All 30 cells of the (reduced-trials) table in one sweep."""
    config = Table1Config(
        sizes=(100, 10_000),
        bit_counts=(2, 3, 4),
        trials=2_000,
    )
    rows = benchmark.pedantic(run_table1, args=(config,), rounds=1, iterations=1)
    assert len(rows) == 2 * 3 * 3
    worst = max(r.undetected_one for r in rows)
    assert worst <= 1.5  # >99% detection in every cell (paper Section 6.1)


@pytest.mark.parametrize("pattern", ["all0", "random"])
def test_engine_cell_campaign(benchmark, pattern):
    """The campaign-engine path of one table cell (serial)."""
    config = Table1Config(trials=TRIALS, seed=77)

    def campaign():
        return run_cell_campaign(config, 2, 100, pattern)

    row = benchmark.pedantic(campaign, rounds=1, iterations=1)
    if pattern == "random":
        assert 0.4 <= row.undetected_one <= 1.2
    else:
        assert row.undetected_one <= 0.15
    assert row.undetected_two <= row.undetected_one


def test_engine_matches_itself_across_worker_counts(benchmark):
    """Counts are bit-identical for any worker count (cheap guard; the
    full per-record differential lives in tests/campaign/)."""
    spec = ChecksumCampaignSpec(
        size=100, bits=2, pattern="random", trials=4_000, seed=13
    )

    def both():
        serial = run_campaign(spec, workers=1, keep_records=False)
        parallel = run_campaign(spec, workers=2, keep_records=False)
        return serial, parallel

    serial, parallel = benchmark.pedantic(both, rounds=1, iterations=1)
    assert serial.counts == parallel.counts


@pytest.mark.skipif(
    (os.cpu_count() or 1) < 4,
    reason="parallel speedup needs >= 4 cores",
)
def test_four_worker_speedup():
    """ISSUE 1 acceptance: a >=500-trial Table 1 campaign on 4 workers
    runs >=2.5x faster than serial (trial count sized so pool startup
    is amortized, as in any real campaign)."""
    spec = ChecksumCampaignSpec(
        size=100, bits=2, pattern="random", trials=60_000, seed=99
    )
    start = time.perf_counter()
    serial = run_campaign(spec, workers=1, keep_records=False)
    serial_time = time.perf_counter() - start
    start = time.perf_counter()
    parallel = run_campaign(spec, workers=4, keep_records=False)
    parallel_time = time.perf_counter() - start
    assert serial.counts == parallel.counts
    speedup = serial_time / parallel_time
    assert speedup >= 2.5, (
        f"4-worker speedup {speedup:.2f}x "
        f"({serial_time:.2f}s serial vs {parallel_time:.2f}s parallel)"
    )
