"""Figure 10 — software-only overheads, wall-clock on generated Python.

For every Table 2 benchmark, times the original, resilient and
resilient-optimized builds (compiled to plain Python — the paper's
compiled-C methodology with Python as the ISA) and asserts the figure's
qualitative content: instrumentation costs time, the Section 3.3/4.2
optimizations recover a large part of it.

The cost-model variant of this figure (deterministic, architecture-
neutral) is ``python -m repro.experiments.figure10``.
"""

import pytest

from repro.programs import ALL_BENCHMARKS

from benchmarks.conftest import arrays_for, compiled_builds

_CACHE: dict = {}


def _builds(name):
    if name not in _CACHE:
        _CACHE[name] = compiled_builds(name, scale="small")
    return _CACHE[name]


@pytest.mark.parametrize("config", ["original", "resilient", "optimized"])
@pytest.mark.parametrize("name", sorted(ALL_BENCHMARKS))
def test_figure10_wall_clock(benchmark, name, config):
    params, values, builds = _builds(name)
    compiled = builds[config]
    benchmark.group = f"figure10:{name}"

    def run():
        arrays = arrays_for(compiled, params, values)
        return compiled(params, arrays)

    outcome = benchmark.pedantic(run, rounds=3, iterations=1)
    assert not outcome["mismatch"]


@pytest.mark.parametrize("name", sorted(ALL_BENCHMARKS))
def test_figure10_overhead_shape(benchmark, name):
    """Timed comparison in one test so the ratio can be asserted."""
    import time

    params, values, builds = _builds(name)

    def measure(config):
        compiled = builds[config]
        best = float("inf")
        for _ in range(3):
            arrays = arrays_for(compiled, params, values)
            start = time.perf_counter()
            compiled(params, arrays)
            best = min(best, time.perf_counter() - start)
        return best

    def all_three():
        return {c: measure(c) for c in ("original", "resilient", "optimized")}

    times = benchmark.pedantic(all_three, rounds=1, iterations=1)
    resilient = times["resilient"] / times["original"]
    optimized = times["optimized"] / times["original"]
    # The paper's qualitative claims (allowing wide timing noise bands):
    assert resilient > 1.0, f"{name}: instrumentation must cost time"
    assert optimized < resilient * 1.35, (
        f"{name}: optimization should not make things substantially worse"
        f" (resilient {resilient:.2f}x, optimized {optimized:.2f}x)"
    )
