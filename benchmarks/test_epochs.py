"""Detection latency vs. overhead — the Hari et al. trade-off.

Section 2 allows verification at any post-dominator; Section 7 cites
Hari et al.'s observation of the latency/overhead trade-off in
symptom-based detectors.  This harness measures both sides for
end-of-program vs. per-epoch verification on jacobi1d.
"""

import pytest

from repro.instrument.epochs import instrument_with_epochs
from repro.instrument.pipeline import (
    InstrumentationOptions,
    instrument_program,
)
from repro.programs import ALL_BENCHMARKS
from repro.runtime.costmodel import CostModel
from repro.runtime.faults import ScheduledBitFlip
from repro.runtime.interpreter import run_program


def _copy(values):
    return {k: v.copy() for k, v in values.items()}


def test_latency_overhead_tradeoff(benchmark):
    module = ALL_BENCHMARKS["jacobi1d"]
    params = {"n": 24, "tsteps": 10}
    values = module.initial_values(params)
    options = InstrumentationOptions(index_set_splitting=True)
    end_only, _ = instrument_program(module.program(), options)
    epochs, _ = instrument_with_epochs(module.program(), options)
    plain = run_program(
        module.program(), params, initial_values=_copy(values)
    )
    cost = CostModel()

    def measure():
        r_end = run_program(end_only, params, initial_values=_copy(values))
        r_epoch = run_program(epochs, params, initial_values=_copy(values))
        assert not r_end.mismatches and not r_epoch.mismatches
        latencies = {"end": [], "epoch": []}
        for at_load in range(80, 200, 24):
            for key, build in (("end", end_only), ("epoch", epochs)):
                injector = ScheduledBitFlip(
                    "A", (9,), [13, 41], at_load=at_load
                )
                outcome = run_program(
                    build,
                    params,
                    initial_values=_copy(values),
                    injector=injector,
                    halt_on_mismatch=True,
                )
                if outcome.error_detected:
                    latencies[key].append(outcome.first_detection_step)
        return {
            "overhead_end": cost.overhead(plain.counts, r_end.counts),
            "overhead_epoch": cost.overhead(plain.counts, r_epoch.counts),
            "latency_end": latencies["end"],
            "latency_epoch": latencies["epoch"],
        }

    result = benchmark.pedantic(measure, rounds=1, iterations=1)
    # The trade-off, both directions:
    assert result["overhead_epoch"] > result["overhead_end"]
    assert result["latency_epoch"] and result["latency_end"]
    assert min(result["latency_epoch"]) < min(result["latency_end"])
    assert sum(result["latency_epoch"]) / len(result["latency_epoch"]) < sum(
        result["latency_end"]
    ) / len(result["latency_end"])
