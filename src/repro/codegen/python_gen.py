"""Compile mini-language programs to plain Python for timing.

The interpreter measures *operation counts* faithfully but its own
dispatch cost would swamp a wall-clock comparison.  For the Figure 10
measurements the IR is therefore compiled to straight-line Python: the
original and the instrumented program become two ordinary functions,
and their runtime ratio reflects the cost of the inserted operations —
the same methodology as the paper's compiled-C measurements, with
Python as the ISA.

Design choices:

* arrays are numpy arrays indexed with tuples; scalars are Python
  locals (the fault boundary is irrelevant here — no faults are
  injected into timed runs);
* checksum accumulators sum the *values* (float adds) rather than bit
  patterns — one multiply-accumulate per contribution, matching the
  per-contribution cost of the integer scheme without paying Python's
  struct-packing overhead on every access;
* the verifier compares def/use sums with a relative tolerance (float
  summation order differs between the def and use sides).

The generated source is kept on the :class:`CompiledProgram` for
inspection and debugging.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping

from repro.ir.nodes import (
    ArrayRef,
    Assign,
    BinOp,
    Call,
    ChecksumAdd,
    ChecksumAssert,
    ChecksumReset as _ChecksumResetType,
    Const,
    CounterIncrement,
    Expr,
    If,
    Loop,
    Program,
    Select,
    Stmt,
    UnOp,
    VarRef,
    WhileLoop,
)

_CHECKSUM_VARS = {
    "def": "_cs_def",
    "use": "_cs_use",
    "e_def": "_cs_e_def",
    "e_use": "_cs_e_use",
}


@dataclass
class CompiledProgram:
    """A compiled program plus its generated source."""

    program: Program
    source: str
    entry: Callable

    def __call__(
        self, params: Mapping[str, int], arrays: Mapping[str, object]
    ) -> dict:
        """Run; returns {'checksums': {...}, 'mismatch': bool}."""
        return self.entry(params, arrays)


class _Emitter:
    def __init__(self, program: Program) -> None:
        self.program = program
        self.lines: list[str] = []
        self.indent = 0
        self.scalar_names = {d.name for d in program.scalars}

    def emit(self, line: str) -> None:
        self.lines.append("    " * self.indent + line)

    # -- expressions -----------------------------------------------------
    def expr(self, e: Expr) -> str:
        if isinstance(e, Const):
            return repr(e.value)
        if isinstance(e, VarRef):
            if e.name in self.scalar_names:
                return f"_s_{e.name}"
            return e.name
        if isinstance(e, ArrayRef):
            indices = ", ".join(self.expr(i) for i in e.indices)
            return f"{e.array}[{indices}]"
        if isinstance(e, BinOp):
            op = e.op
            if op == "&&":
                return f"({self.expr(e.left)} and {self.expr(e.right)})"
            if op == "||":
                return f"({self.expr(e.left)} or {self.expr(e.right)})"
            if op == "/":
                # Match interpreter semantics: int/int floors.
                return f"_div({self.expr(e.left)}, {self.expr(e.right)})"
            return f"({self.expr(e.left)} {op} {self.expr(e.right)})"
        if isinstance(e, UnOp):
            if e.op == "!":
                return f"(not {self.expr(e.operand)})"
            return f"({e.op}{self.expr(e.operand)})"
        if isinstance(e, Call):
            args = ", ".join(self.expr(a) for a in e.args)
            return f"_{e.func}({args})"
        if isinstance(e, Select):
            return (
                f"({self.expr(e.if_true)} if {self.expr(e.cond)} "
                f"else {self.expr(e.if_false)})"
            )
        raise TypeError(f"cannot compile expression {e!r}")

    def index_tuple(self, ref: ArrayRef) -> str:
        return ", ".join(self.expr(i) for i in ref.indices)

    def lvalue(self, ref) -> str:
        if isinstance(ref, ArrayRef):
            return f"{ref.array}[{self.index_tuple(ref)}]"
        return f"_s_{ref.name}"

    # -- statements ---------------------------------------------------------
    def statement(self, stmt: Stmt) -> None:
        if isinstance(stmt, Assign):
            self._assign(stmt)
        elif isinstance(stmt, Loop):
            lower = self.expr(stmt.lower)
            upper = self.expr(stmt.upper)
            self.emit(f"for {stmt.var} in range({lower}, ({upper}) + 1):")
            self.indent += 1
            if stmt.body:
                for inner in stmt.body:
                    self.statement(inner)
            else:
                self.emit("pass")
            self.indent -= 1
        elif isinstance(stmt, WhileLoop):
            self.emit(f"while {self.expr(stmt.cond)}:")
            self.indent += 1
            if stmt.counter:
                self.emit(f"_s_{stmt.counter} += 1")
            for inner in stmt.body:
                self.statement(inner)
            if not stmt.body and not stmt.counter:
                self.emit("pass")
            self.indent -= 1
        elif isinstance(stmt, If):
            self.emit(f"if {self.expr(stmt.cond)}:")
            self.indent += 1
            if stmt.then_body:
                for inner in stmt.then_body:
                    self.statement(inner)
            else:
                self.emit("pass")
            self.indent -= 1
            if stmt.else_body:
                self.emit("else:")
                self.indent += 1
                for inner in stmt.else_body:
                    self.statement(inner)
                self.indent -= 1
        elif isinstance(stmt, ChecksumAdd):
            target = _CHECKSUM_VARS[stmt.checksum]
            value = self.expr(stmt.value)
            count = self.expr(stmt.count)
            if isinstance(stmt.count, Const) and stmt.count.value == 1:
                self.emit(f"{target} += {value}")
            else:
                self.emit(f"{target} += ({value}) * ({count})")
        elif isinstance(stmt, CounterIncrement):
            target = self.lvalue(stmt.counter)
            amount = self.expr(stmt.amount)
            if isinstance(stmt.amount, Const) and stmt.amount.value == 1:
                self.emit(f"{target} += 1")
            else:
                self.emit(f"{target} += {amount}")
        elif isinstance(stmt, ChecksumAssert):
            for left, right in stmt.pairs:
                a = _CHECKSUM_VARS[left]
                b = _CHECKSUM_VARS[right]
                self.emit(f"_mismatch |= not _close({a}, {b})")
        elif isinstance(stmt, _ChecksumResetType):
            for name in _CHECKSUM_VARS.values():
                self.emit(f"{name} = 0.0")
        else:
            raise TypeError(f"cannot compile statement {stmt!r}")

    def _assign(self, stmt: Assign) -> None:
        instr = stmt.instrumentation
        if instr:
            for use in instr.uses:
                value = self.expr(use.ref)
                count = self.expr(use.count)
                target = _CHECKSUM_VARS[use.checksum]
                if isinstance(use.count, Const) and use.count.value == 1:
                    self.emit(f"{target} += {value}")
                else:
                    self.emit(f"{target} += ({value}) * ({count})")
            for counter in instr.counter_increments:
                self.emit(f"{self.lvalue(counter)} += 1")
            if instr.pre_overwrite:
                old = self.expr(stmt.lhs)
                counter_lv = self.lvalue(instr.pre_overwrite.counter)
                self.emit(f"_old = {old}")
                self.emit(f"_cs_def += _old * ({counter_lv} - 1)")
                self.emit(f"_cs_e_use += _old")
                self.emit(f"{counter_lv} = 0")
        self.emit(f"{self.lvalue(stmt.lhs)} = {self.expr(stmt.rhs)}")
        if instr and instr.duplicate_store is not None:
            self.emit(
                f"{self.lvalue(instr.duplicate_store)} = {self.expr(stmt.lhs)}"
            )
        if instr and instr.definition:
            d = instr.definition
            new = self.expr(stmt.lhs)
            count = self.expr(d.count)
            target = _CHECKSUM_VARS[d.checksum]
            if isinstance(d.count, Const) and d.count.value == 1:
                self.emit(f"{target} += {new}")
            else:
                self.emit(f"{target} += ({new}) * ({count})")
            if d.aux:
                self.emit(f"_cs_e_def += {new}")


_PRELUDE = '''\
import math

def _div(a, b):
    if isinstance(a, int) and isinstance(b, int):
        return a // b
    return a / b

_sqrt = math.sqrt
_abs = abs
_min = min
_max = max
_exp = math.exp
_sin = math.sin
_cos = math.cos
_floor = math.floor

def _mod(a, b):
    return a % b

def _close(a, b):
    scale = max(abs(a), abs(b), 1.0)
    return abs(a - b) <= 1e-6 * scale
'''


def compile_to_python(program: Program) -> CompiledProgram:
    """Compile a program to a Python callable.

    The callable takes ``(params, arrays)`` where ``arrays`` maps array
    names to numpy arrays (mutated in place) and scalar names to float
    initial values; it returns ``{"checksums": {...}, "mismatch":
    bool, "scalars": {...}}``.
    """
    emitter = _Emitter(program)
    emitter.emit("def _kernel(_params, _arrays):")
    emitter.indent += 1
    for param in program.params:
        emitter.emit(f"{param} = _params[{param!r}]")
    for decl in program.arrays:
        emitter.emit(f"{decl.name} = _arrays[{decl.name!r}]")
    for decl in program.scalars:
        default = "0" if decl.elem_type == "i64" else "0.0"
        emitter.emit(
            f"_s_{decl.name} = _arrays.get({decl.name!r}, {default})"
        )
    for name in ("_cs_def", "_cs_use", "_cs_e_def", "_cs_e_use"):
        emitter.emit(f"{name} = 0.0")
    emitter.emit("_mismatch = False")
    for stmt in program.body:
        emitter.statement(stmt)
    scalars = ", ".join(
        f"{d.name!r}: _s_{d.name}" for d in program.scalars
    )
    emitter.emit(
        "return {'checksums': {'def': _cs_def, 'use': _cs_use, "
        "'e_def': _cs_e_def, 'e_use': _cs_e_use}, "
        "'mismatch': _mismatch, 'scalars': {" + scalars + "}}"
    )
    source = _PRELUDE + "\n" + "\n".join(emitter.lines) + "\n"
    namespace: dict = {}
    exec(compile(source, f"<codegen:{program.name}>", "exec"), namespace)
    return CompiledProgram(
        program=program, source=source, entry=namespace["_kernel"]
    )
