"""Lowering to pseudo-assembly (Section 6.2.2's estimation substrate).

The paper estimates hardware-assisted overheads by inserting a
*checksum instruction* before every floating-point (or memory)
operation of the compiled binary and pricing it as a nop.  To make
that estimation mechanistic rather than a scalar discount, this module
lowers each (possibly instrumented) assignment to a pseudo-instruction
sequence; :mod:`repro.runtime.pipeline_model` then prices the sequence
on a small port-throughput machine where checksum work either competes
for the integer ALUs (software scheme) or runs on dedicated checksum
units (the paper's hardware design: "one checksum unit could be
associated with every functional unit").

Lowering conventions (matching the interpreter's bundle semantics):

* one ``LD`` per *distinct* data cell read by the bundle (register
  reuse), one ``ST`` per store (+ one for a duplicated store);
* RHS arithmetic maps 1:1 (``FADD``/``FMUL``/``FDIV``/``FSQRT``/
  ``FMISC``/``IOP``); subscript arithmetic adds ``IOP``s;
* each checksum contribution is one ``CHK`` (a multiply-accumulate);
  evaluating a non-trivial count expression adds its ``IOP``/``BR``
  cost; an auxiliary contribution is a second ``CHK``;
* shadow-counter work (increments, pre-overwrite adjustments) is
  ordinary ``LD``/``IOP``/``ST``/``CHK`` traffic — the bookkeeping the
  paper's hardware design deliberately keeps in software.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ir.nodes import (
    ArrayRef,
    Assign,
    BinOp,
    Call,
    Const,
    Expr,
    Select,
    UnOp,
    VarRef,
)

OPS = (
    "LD",
    "ST",
    "FADD",
    "FMUL",
    "FDIV",
    "FSQRT",
    "FMISC",
    "IOP",
    "BR",
    "CHK",
)


@dataclass(frozen=True)
class Instr:
    """One pseudo-instruction."""

    op: str

    def __post_init__(self):
        if self.op not in OPS:
            raise ValueError(f"unknown pseudo-op {self.op!r}")


def _expr_ops(expr: Expr, float_context: bool, out: list[Instr]) -> None:
    """Arithmetic instructions of an expression (loads handled apart)."""
    if isinstance(expr, (Const, VarRef)):
        return
    if isinstance(expr, ArrayRef):
        for index in expr.indices:
            _expr_ops(index, False, out)
            if not isinstance(index, (Const, VarRef)):
                pass  # its ops were just appended
            out.append(Instr("IOP"))  # address arithmetic
        return
    if isinstance(expr, BinOp):
        _expr_ops(expr.left, float_context, out)
        _expr_ops(expr.right, float_context, out)
        if expr.op in ("+", "-"):
            out.append(Instr("FADD" if float_context else "IOP"))
        elif expr.op == "*":
            out.append(Instr("FMUL" if float_context else "IOP"))
        elif expr.op in ("/", "%"):
            out.append(Instr("FDIV" if float_context else "IOP"))
        elif expr.op in ("&&", "||"):
            out.append(Instr("BR"))
        else:  # comparison
            out.append(Instr("IOP"))
        return
    if isinstance(expr, UnOp):
        _expr_ops(expr.operand, float_context, out)
        out.append(Instr("IOP"))
        return
    if isinstance(expr, Call):
        for arg in expr.args:
            _expr_ops(arg, float_context, out)
        if expr.func == "sqrt":
            out.append(Instr("FSQRT"))
        elif expr.func in ("exp", "sin", "cos", "abs"):
            out.append(Instr("FMISC"))
        else:  # min/max/floor/mod
            out.append(Instr("IOP"))
        return
    if isinstance(expr, Select):
        _expr_ops(expr.cond, False, out)
        out.append(Instr("BR"))
        # Charge the heavier branch (in-order worst case).
        left: list[Instr] = []
        right: list[Instr] = []
        _expr_ops(expr.if_true, float_context, left)
        _expr_ops(expr.if_false, float_context, right)
        out.extend(left if len(left) >= len(right) else right)
        return
    raise TypeError(f"cannot lower {expr!r}")


def _distinct_loads(assign: Assign, data_names: set[str]) -> int:
    from repro.ir.accesses import data_reads_of

    seen: set[str] = set()
    for ref in data_reads_of(assign, data_names):
        seen.add(str(ref))
    return len(seen)


def _count_cost(count: Expr, out: list[Instr]) -> None:
    """Evaluating a non-trivial scale factor is integer work."""
    if isinstance(count, Const):
        return
    _expr_ops(count, False, out)


def lower_assign(
    assign: Assign,
    data_names: set[str],
    float_types: bool = True,
) -> list[Instr]:
    """The pseudo-instruction block of one (instrumented) assignment."""
    out: list[Instr] = []
    for _ in range(_distinct_loads(assign, data_names)):
        out.append(Instr("LD"))
    _expr_ops(assign.rhs, float_types, out)
    if isinstance(assign.lhs, ArrayRef):
        for index in assign.lhs.indices:
            _expr_ops(index, False, out)
            out.append(Instr("IOP"))
    instr = assign.instrumentation
    if instr:
        for use in instr.uses:
            _count_cost(use.count, out)
            out.append(Instr("CHK"))
        for _ in instr.counter_increments:
            out.extend([Instr("LD"), Instr("IOP"), Instr("ST")])
        if instr.pre_overwrite is not None:
            # Old value may already be loaded; the counter is not.
            out.extend(
                [
                    Instr("LD"),   # shadow counter
                    Instr("IOP"),  # count - 1
                    Instr("CHK"),  # def adjustment
                    Instr("CHK"),  # e_use
                    Instr("ST"),   # counter reset
                ]
            )
    out.append(Instr("ST"))
    if instr and instr.duplicate_store is not None:
        out.append(Instr("ST"))
    if instr and instr.definition is not None:
        _count_cost(instr.definition.count, out)
        out.append(Instr("CHK"))
        if instr.definition.aux:
            out.append(Instr("CHK"))
    return out


def lower_free_checksum_add(value: Expr, count: Expr, data_names: set[str]) -> list[Instr]:
    """A prologue/epilogue ``add_to_chksm``: one load + the count math
    + one checksum op."""
    out: list[Instr] = [Instr("LD")]
    if isinstance(value, ArrayRef):
        for index in value.indices:
            _expr_ops(index, False, out)
            out.append(Instr("IOP"))
    _count_cost(count, out)
    out.append(Instr("CHK"))
    return out
