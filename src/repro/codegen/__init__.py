"""IR-to-Python compilation for wall-clock benchmarking."""

from repro.codegen.python_gen import CompiledProgram, compile_to_python

__all__ = ["CompiledProgram", "compile_to_python"]
