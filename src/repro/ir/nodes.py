"""IR node definitions for the mini-language.

Programs are trees of statements (loops, while-loops, conditionals and
assignments) over expressions (constants, scalar reads, array
references, arithmetic, calls).  The checksum instrumentation the
compiler inserts is represented two ways, matching the paper's fault
model (Section 2.2):

* **Statement-attached contributions** (:class:`UseContribution`,
  :class:`DefContribution`, :class:`PreOverwriteAdjust` on
  :class:`Assign`): the checksummed value is *the very same register
  value* the statement loads or stores, so a memory error between a
  load and its checksum contribution is impossible — exactly the
  register-residency the paper requires.  The interpreter executes an
  annotated assignment as one bundle with a per-reference load cache.

* **Free-standing checksum statements** (:class:`ChecksumAdd`,
  :class:`CounterIncrement`, :class:`ChecksumAssert`): prologue,
  epilogue and inspector code, where values are freshly loaded from
  (possibly faulty) memory — also faithful to the paper, whose epilogue
  reads are ordinary loads.

All expression/statement classes are plain dataclasses; the tree is
treated as immutable by convention (the instrumenter builds new trees).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterator, Union

# ----------------------------------------------------------------------
# Expressions
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class Const:
    """An integer or floating-point literal."""

    value: Union[int, float]

    def __str__(self) -> str:
        return repr(self.value) if isinstance(self.value, float) else str(self.value)


@dataclass(frozen=True)
class VarRef:
    """A read of a scalar variable, loop iterator or parameter."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class ArrayRef:
    """An array element reference ``A[e1][e2]...``.

    Appears both as an expression (load) and as an assignment target
    (store).  Index expressions may themselves contain array references
    (indirect accesses like ``p_new[cols[j]]`` — the paper's irregular
    case).
    """

    array: str
    indices: tuple["Expr", ...]

    def __str__(self) -> str:
        return self.array + "".join(f"[{i}]" for i in self.indices)


@dataclass(frozen=True)
class BinOp:
    """A binary operation; ``op`` is one of + - * / % and comparisons."""

    op: str
    left: "Expr"
    right: "Expr"

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True)
class UnOp:
    """Unary minus or logical not."""

    op: str
    operand: "Expr"

    def __str__(self) -> str:
        return f"({self.op}{self.operand})"


@dataclass(frozen=True)
class Call:
    """An intrinsic call: sqrt, abs, min, max, exp, floor."""

    func: str
    args: tuple["Expr", ...]

    def __str__(self) -> str:
        return f"{self.func}({', '.join(str(a) for a in self.args)})"


@dataclass(frozen=True)
class Select:
    """``cond ? if_true : if_false`` — used to render piecewise counts."""

    cond: "Expr"
    if_true: "Expr"
    if_false: "Expr"

    def __str__(self) -> str:
        return f"({self.cond} ? {self.if_true} : {self.if_false})"


Expr = Union[Const, VarRef, ArrayRef, BinOp, UnOp, Call, Select]


# ----------------------------------------------------------------------
# Checksum instrumentation annotations (attached to Assign)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class UseContribution:
    """Add one loaded value of this statement to a use checksum.

    ``ref`` must be (structurally equal to) a read reference of the
    statement; the interpreter contributes the *cached* loaded value.
    ``count`` scales the contribution (usually 1).
    """

    ref: ArrayRef | VarRef
    checksum: str = "use"
    count: "Expr" = Const(1)


@dataclass(frozen=True)
class DefContribution:
    """Add the stored value, scaled by ``count``, to a def checksum.

    ``count`` is the compile-time use count (an affine/piecewise
    expression, Section 3) or ``Const(1)`` in the general scheme, where
    the epilogue adjusts the remainder.  ``aux=True`` additionally
    contributes once to the auxiliary ``e_def`` checksum (Section 4.1).
    """

    count: "Expr"
    checksum: str = "def"
    aux: bool = False
    aux_checksum: str = "e_def"
    """Which auxiliary checksum receives the once-contribution when
    ``aux`` is set (qualified by the localization extension)."""


@dataclass(frozen=True)
class PreOverwriteAdjust:
    """Adjustments for the *previous* value before a store (Algorithm 3).

    For a definition whose use count is dynamic, before the new value
    overwrites the old one the interpreter must:

    * load the old value and its shadow use counter,
    * add the old value ``use_count - 1`` times to the def checksum,
    * add the old value once to the auxiliary ``e_use`` checksum,
    * reset the shadow counter to zero.

    ``counter`` names the shadow counter location (same indices as the
    stored reference).  The checksum names are parameters so the
    per-array localization extension can qualify them (``def@A``).
    """

    counter: ArrayRef | VarRef
    def_checksum: str = "def"
    e_use_checksum: str = "e_use"
    extra: int = 1
    """Extra adjustment added to the counter; kept at 1 so the net
    contribution is ``use_count - 1 + ... `` — see interpreter."""


@dataclass(frozen=True)
class Instrumentation:
    """All checksum work bundled with one assignment."""

    uses: tuple[UseContribution, ...] = ()
    definition: DefContribution | None = None
    counter_increments: tuple[ArrayRef | VarRef, ...] = ()
    pre_overwrite: PreOverwriteAdjust | None = None
    duplicate_store: "ArrayRef | VarRef | None" = None
    """Duplication baseline: also store the written register value to
    this shadow location (a second store of the same bits)."""

    def is_empty(self) -> bool:
        return (
            not self.uses
            and self.definition is None
            and not self.counter_increments
            and self.pre_overwrite is None
            and self.duplicate_store is None
        )


# ----------------------------------------------------------------------
# Statements
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class Assign:
    """``lhs = rhs`` with optional label and checksum instrumentation."""

    lhs: ArrayRef | VarRef
    rhs: Expr
    label: str | None = None
    instrumentation: Instrumentation | None = None

    def with_instrumentation(self, instr: Instrumentation) -> "Assign":
        return replace(self, instrumentation=instr)


@dataclass(frozen=True)
class Loop:
    """``for var = lower .. upper`` (inclusive), unit stride."""

    var: str
    lower: Expr
    upper: Expr
    body: tuple["Stmt", ...]


@dataclass(frozen=True)
class WhileLoop:
    """``while cond`` — iteration count unknown at compile time."""

    cond: Expr
    body: tuple["Stmt", ...]
    counter: str | None = None
    """Optional name of the iteration counter scalar maintained by the
    instrumenter (the paper's ``iter`` variable, Figure 9)."""


@dataclass(frozen=True)
class If:
    """``if cond { then } else { orelse }``."""

    cond: Expr
    then_body: tuple["Stmt", ...]
    else_body: tuple["Stmt", ...] = ()


@dataclass(frozen=True)
class ChecksumAdd:
    """Free-standing ``add_to_chksm(which, value, count)``.

    The value expression is evaluated through memory (loads may be
    faulted) — used in prologue/epilogue/inspector code.
    """

    checksum: str
    value: Expr
    count: Expr = Const(1)


@dataclass(frozen=True)
class CounterIncrement:
    """Free-standing shadow-counter increment (inspector code)."""

    counter: ArrayRef | VarRef
    amount: Expr = Const(1)


@dataclass(frozen=True)
class ChecksumAssert:
    """Verifier: assert the named def/use checksum pairs match."""

    pairs: tuple[tuple[str, str], ...] = (("def", "use"), ("e_def", "e_use"))


@dataclass(frozen=True)
class ChecksumReset:
    """Zero checksum accumulators (epoch-verification support).

    Section 2 allows verification "at any post-dominator of all
    definitions and uses tracked"; epoch instrumentation verifies and
    resets at the end of every outer-loop iteration, trading prologue
    overhead for detection latency.  ``names=None`` resets everything;
    otherwise only the listed accumulators (the epoch-boundary handoff
    pair must survive the per-epoch reset).
    """

    names: tuple[str, ...] | None = None


Stmt = Union[
    Assign,
    Loop,
    WhileLoop,
    If,
    ChecksumAdd,
    CounterIncrement,
    ChecksumAssert,
    ChecksumReset,
]


# ----------------------------------------------------------------------
# Declarations and programs
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ArrayDecl:
    """An array with symbolic extents (affine in the parameters)."""

    name: str
    dims: tuple[Expr, ...]
    elem_type: str = "f64"  # "f64" or "i64"
    is_shadow: bool = False
    """Shadow arrays (use counters) are compiler-introduced."""


@dataclass(frozen=True)
class ScalarDecl:
    """A scalar program variable living in (faultable) memory."""

    name: str
    elem_type: str = "f64"
    is_shadow: bool = False


@dataclass(frozen=True)
class Program:
    """A complete mini-language program.

    ``params`` are symbolic problem sizes (registers, never faulted);
    ``arrays`` and ``scalars`` live in the simulated memory subsystem.
    """

    name: str
    params: tuple[str, ...]
    arrays: tuple[ArrayDecl, ...]
    scalars: tuple[ScalarDecl, ...]
    body: tuple[Stmt, ...]

    # -- symbol access ------------------------------------------------
    def array(self, name: str) -> ArrayDecl:
        for decl in self.arrays:
            if decl.name == name:
                return decl
        raise KeyError(f"no array {name!r} in program {self.name!r}")

    def scalar(self, name: str) -> ScalarDecl:
        for decl in self.scalars:
            if decl.name == name:
                return decl
        raise KeyError(f"no scalar {name!r} in program {self.name!r}")

    def has_array(self, name: str) -> bool:
        return any(d.name == name for d in self.arrays)

    def has_scalar(self, name: str) -> bool:
        return any(d.name == name for d in self.scalars)

    def with_body(self, body: tuple[Stmt, ...]) -> "Program":
        return replace(self, body=body)

    def with_declarations(
        self,
        arrays: tuple[ArrayDecl, ...] | None = None,
        scalars: tuple[ScalarDecl, ...] | None = None,
    ) -> "Program":
        return replace(
            self,
            arrays=self.arrays if arrays is None else arrays,
            scalars=self.scalars if scalars is None else scalars,
        )


# ----------------------------------------------------------------------
# Tree walking helpers
# ----------------------------------------------------------------------


def walk_statements(body: tuple[Stmt, ...] | list[Stmt]) -> Iterator[Stmt]:
    """Depth-first pre-order walk of every statement in a body."""
    for stmt in body:
        yield stmt
        if isinstance(stmt, Loop):
            yield from walk_statements(stmt.body)
        elif isinstance(stmt, WhileLoop):
            yield from walk_statements(stmt.body)
        elif isinstance(stmt, If):
            yield from walk_statements(stmt.then_body)
            yield from walk_statements(stmt.else_body)


def walk_expressions(expr: Expr) -> Iterator[Expr]:
    """Depth-first pre-order walk of an expression tree."""
    yield expr
    if isinstance(expr, BinOp):
        yield from walk_expressions(expr.left)
        yield from walk_expressions(expr.right)
    elif isinstance(expr, UnOp):
        yield from walk_expressions(expr.operand)
    elif isinstance(expr, Call):
        for arg in expr.args:
            yield from walk_expressions(arg)
    elif isinstance(expr, Select):
        yield from walk_expressions(expr.cond)
        yield from walk_expressions(expr.if_true)
        yield from walk_expressions(expr.if_false)
    elif isinstance(expr, ArrayRef):
        for index in expr.indices:
            yield from walk_expressions(index)


def expression_reads(expr: Expr) -> list[ArrayRef | VarRef]:
    """All loads (array refs and scalar reads) in an expression.

    Index expressions of array references are included *after* the
    reference itself (their loads also go through memory).
    """
    reads: list[ArrayRef | VarRef] = []
    for node in walk_expressions(expr):
        if isinstance(node, (ArrayRef, VarRef)):
            reads.append(node)
    return reads


def statement_labels(body: tuple[Stmt, ...]) -> list[str]:
    """Labels of all labelled assignments, in textual order."""
    labels: list[str] = []
    for stmt in walk_statements(body):
        if isinstance(stmt, Assign) and stmt.label:
            labels.append(stmt.label)
    return labels


def find_statement(body: tuple[Stmt, ...], label: str) -> Assign:
    for stmt in walk_statements(body):
        if isinstance(stmt, Assign) and stmt.label == label:
            return stmt
    raise KeyError(f"no statement labelled {label!r}")
