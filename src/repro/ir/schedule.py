"""2d+1 statement schedules (paper Section 3.1).

Each edge of the AST is numbered left-to-right from 0; a statement's
schedule is the alternating vector of edge numbers and surrounding-loop
iterators on the path from the root, zero-padded to length ``2d+1``
where ``d`` is the maximum loop depth of any statement.

For the paper's running example (Figure 2/3)::

    S1[j]    ->  [0, j, 0, 0, 0]
    S2[j, i] ->  [0, j, 1, i, 0]

Schedules define the global execution order; the *precedence* relation
between two statement instances (needed by dependence analysis) is
derived in :mod:`repro.poly.precedence`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from repro.ir.nodes import Assign, If, Loop, Program, Stmt, WhileLoop

SchedComponent = Union[int, str]
"""An integer AST-edge number or a loop-iterator name."""


@dataclass(frozen=True)
class StatementSchedule:
    """The 2d+1 schedule of one labelled assignment."""

    label: str
    components: tuple[SchedComponent, ...]
    iterators: tuple[str, ...]

    @property
    def depth(self) -> int:
        return len(self.iterators)


class ScheduleTable:
    """Schedules for every labelled assignment in a program.

    ``while`` loops are treated as a single schedule level whose
    iterator is the (compiler-maintained) iteration counter; this keeps
    the relative order of statements inside the while body correct for
    the affine sub-analysis the paper applies to iterative codes.

    >>> from repro.ir.parser import parse_program
    >>> p = parse_program('''
    ... program demo(n) {
    ...   array A[n][n];
    ...   for j = 0 .. n - 1 {
    ...     S1: A[j][j] = sqrt(A[j][j]);
    ...     for i = j + 1 .. n - 1 {
    ...       S2: A[i][j] = A[i][j] / A[j][j];
    ...     }
    ...   }
    ... }
    ... ''')
    >>> table = ScheduleTable.from_program(p)
    >>> table["S1"].components
    (0, 'j', 0, 0, 0)
    >>> table["S2"].components
    (0, 'j', 1, 'i', 0)
    """

    def __init__(
        self,
        schedules: dict[str, StatementSchedule],
        by_path: dict[tuple[int, ...], StatementSchedule] | None = None,
    ) -> None:
        self._schedules = schedules
        self._by_path = by_path or {}

    @staticmethod
    def from_program(program: Program) -> "ScheduleTable":
        raw: dict[
            tuple[int, ...],
            tuple[str | None, list[SchedComponent], list[str]],
        ] = {}

        def visit(
            body: tuple[Stmt, ...],
            prefix: list[SchedComponent],
            iterators: list[str],
            path: tuple[int, ...],
        ) -> None:
            for index, stmt in enumerate(body):
                here = path + (index,)
                if isinstance(stmt, Assign):
                    raw[here] = (
                        stmt.label,
                        prefix + [index],
                        list(iterators),
                    )
                elif isinstance(stmt, Loop):
                    visit(
                        stmt.body,
                        prefix + [index, stmt.var],
                        iterators + [stmt.var],
                        here,
                    )
                elif isinstance(stmt, WhileLoop):
                    counter = stmt.counter or "__while"
                    visit(
                        stmt.body,
                        prefix + [index, counter],
                        iterators + [counter],
                        here,
                    )
                elif isinstance(stmt, If):
                    # Conditionals do not add a schedule dimension: both
                    # branches share the conditional's position.
                    visit(stmt.then_body, prefix + [index], iterators, here)
                    visit(stmt.else_body, prefix + [index], iterators, here)

        visit(program.body, [], [], ())
        if not raw:
            return ScheduleTable({})
        max_depth = max(len(iters) for _, _, iters in raw.values())
        width = 2 * max_depth + 1
        schedules: dict[str, StatementSchedule] = {}
        by_path: dict[tuple[int, ...], StatementSchedule] = {}
        for path, (label, components, iterators) in raw.items():
            padded = list(components) + [0] * (width - len(components))
            schedule = StatementSchedule(
                label=label or "?",
                components=tuple(padded),
                iterators=tuple(iterators),
            )
            by_path[path] = schedule
            if label:
                schedules[label] = schedule
        return ScheduleTable(schedules, by_path)

    def __getitem__(self, label: str) -> StatementSchedule:
        return self._schedules[label]

    def __contains__(self, label: str) -> bool:
        return label in self._schedules

    def by_path(self, path: tuple[int, ...]) -> StatementSchedule:
        """Schedule of the assignment at an AST path (labels optional)."""
        return self._by_path[path]

    def has_path(self, path: tuple[int, ...]) -> bool:
        return path in self._by_path

    def labels(self) -> list[str]:
        return list(self._schedules)

    def textual_order(self) -> list[str]:
        """Labels sorted by schedule prefix (static program order)."""

        def key(label: str) -> tuple:
            comps = self._schedules[label].components
            return tuple(c if isinstance(c, int) else -1 for c in comps)

        return sorted(self._schedules, key=key)
