"""Fluent programmatic construction of mini-language programs.

The text syntax (:mod:`repro.ir.parser`) is the primary way programs
enter the system; the builder is for tools and tests that generate
programs.  Expression wrappers overload Python operators:

>>> b = ProgramBuilder("cholesky", params=("n",))
>>> A = b.array("A", ("n", "n"))
>>> n, j, i = b.params_and_vars("n", "j", "i")
>>> with b.loop("j", 0, n - 1):
...     b.assign(A[j, j], A[j, j].sqrt(), label="S1")
...     with b.loop("i", j + 1, n - 1):
...         b.assign(A[i, j], A[i, j] / A[j, j], label="S2")
>>> program = b.build()
>>> program.name
'cholesky'
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Sequence, Union

from repro.ir.nodes import (
    ArrayDecl,
    ArrayRef,
    Assign,
    BinOp,
    Call,
    Const,
    Expr,
    If,
    Loop,
    Program,
    ScalarDecl,
    Select,
    Stmt,
    UnOp,
    VarRef,
    WhileLoop,
)

Operand = Union["EB", Expr, int, float]


def _unwrap(value: Operand) -> Expr:
    if isinstance(value, EB):
        return value.node
    if isinstance(value, (int,)):
        return Const(value)
    if isinstance(value, float):
        return Const(value)
    return value


class EB:
    """Expression builder: wraps an IR expression with operators.

    >>> (EB(VarRef("n")) - 1).node
    BinOp(op='-', left=VarRef(name='n'), right=Const(value=1))
    """

    __slots__ = ("node",)

    def __init__(self, node: Expr) -> None:
        self.node = node

    def _bin(self, op: str, other: Operand, reflected: bool = False) -> "EB":
        left, right = (self.node, _unwrap(other))
        if reflected:
            left, right = right, left
        return EB(BinOp(op, left, right))

    def __add__(self, other: Operand) -> "EB":
        return self._bin("+", other)

    def __radd__(self, other: Operand) -> "EB":
        return self._bin("+", other, reflected=True)

    def __sub__(self, other: Operand) -> "EB":
        return self._bin("-", other)

    def __rsub__(self, other: Operand) -> "EB":
        return self._bin("-", other, reflected=True)

    def __mul__(self, other: Operand) -> "EB":
        return self._bin("*", other)

    def __rmul__(self, other: Operand) -> "EB":
        return self._bin("*", other, reflected=True)

    def __truediv__(self, other: Operand) -> "EB":
        return self._bin("/", other)

    def __rtruediv__(self, other: Operand) -> "EB":
        return self._bin("/", other, reflected=True)

    def __mod__(self, other: Operand) -> "EB":
        return self._bin("%", other)

    def __neg__(self) -> "EB":
        return EB(UnOp("-", self.node))

    # Comparisons build IR nodes (not Python booleans) on purpose.
    def eq(self, other: Operand) -> "EB":
        return self._bin("==", other)

    def ne(self, other: Operand) -> "EB":
        return self._bin("!=", other)

    def lt(self, other: Operand) -> "EB":
        return self._bin("<", other)

    def le(self, other: Operand) -> "EB":
        return self._bin("<=", other)

    def gt(self, other: Operand) -> "EB":
        return self._bin(">", other)

    def ge(self, other: Operand) -> "EB":
        return self._bin(">=", other)

    def and_(self, other: Operand) -> "EB":
        return self._bin("&&", other)

    def or_(self, other: Operand) -> "EB":
        return self._bin("||", other)

    def sqrt(self) -> "EB":
        return EB(Call("sqrt", (self.node,)))

    def abs(self) -> "EB":
        return EB(Call("abs", (self.node,)))

    def select(self, if_true: Operand, if_false: Operand) -> "EB":
        return EB(Select(self.node, _unwrap(if_true), _unwrap(if_false)))

    def __repr__(self) -> str:
        return f"EB({self.node!r})"


class ArrayHandle:
    """Indexable handle returned by :meth:`ProgramBuilder.array`."""

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name

    def __getitem__(self, indices: Operand | tuple[Operand, ...]) -> EB:
        if not isinstance(indices, tuple):
            indices = (indices,)
        return EB(ArrayRef(self.name, tuple(_unwrap(i) for i in indices)))


class ProgramBuilder:
    """Accumulates declarations and statements into a Program."""

    def __init__(self, name: str, params: Sequence[str] = ()) -> None:
        self._name = name
        self._params = tuple(params)
        self._arrays: list[ArrayDecl] = []
        self._scalars: list[ScalarDecl] = []
        self._stack: list[list[Stmt]] = [[]]

    # -- declarations ---------------------------------------------------
    def array(
        self,
        name: str,
        dims: Sequence[Operand],
        elem_type: str = "f64",
    ) -> ArrayHandle:
        self._arrays.append(
            ArrayDecl(
                name=name,
                dims=tuple(_unwrap(_name_to_expr(d)) for d in dims),
                elem_type=elem_type,
            )
        )
        return ArrayHandle(name)

    def scalar(self, name: str, elem_type: str = "f64") -> EB:
        self._scalars.append(ScalarDecl(name=name, elem_type=elem_type))
        return EB(VarRef(name))

    def var(self, name: str) -> EB:
        """A reference to an iterator, parameter or scalar by name."""
        return EB(VarRef(name))

    def params_and_vars(self, *names: str) -> tuple[EB, ...]:
        return tuple(EB(VarRef(n)) for n in names)

    # -- statements -----------------------------------------------------
    def assign(
        self,
        lhs: EB,
        rhs: Operand,
        label: str | None = None,
    ) -> None:
        target = lhs.node
        if not isinstance(target, (ArrayRef, VarRef)):
            raise TypeError(f"assignment target must be a reference, got {target!r}")
        self._stack[-1].append(Assign(lhs=target, rhs=_unwrap(rhs), label=label))

    @contextmanager
    def loop(self, var: str, lower: Operand, upper: Operand) -> Iterator[None]:
        self._stack.append([])
        yield
        body = self._stack.pop()
        self._stack[-1].append(
            Loop(var=var, lower=_unwrap(lower), upper=_unwrap(upper), body=tuple(body))
        )

    @contextmanager
    def while_loop(self, cond: Operand) -> Iterator[None]:
        self._stack.append([])
        yield
        body = self._stack.pop()
        self._stack[-1].append(WhileLoop(cond=_unwrap(cond), body=tuple(body)))

    @contextmanager
    def if_then(self, cond: Operand) -> Iterator[None]:
        self._stack.append([])
        yield
        body = self._stack.pop()
        self._stack[-1].append(
            If(cond=_unwrap(cond), then_body=tuple(body), else_body=())
        )

    @contextmanager
    def if_else(self, cond: Operand) -> Iterator[tuple[list[Stmt], list[Stmt]]]:
        """Two-branch conditional; fill the yielded lists directly."""
        then_body: list[Stmt] = []
        else_body: list[Stmt] = []
        yield (then_body, else_body)
        self._stack[-1].append(
            If(
                cond=_unwrap(cond),
                then_body=tuple(then_body),
                else_body=tuple(else_body),
            )
        )

    # -- finish -----------------------------------------------------------
    def build(self) -> Program:
        if len(self._stack) != 1:
            raise RuntimeError("unclosed loop/if context in builder")
        return Program(
            name=self._name,
            params=self._params,
            arrays=tuple(self._arrays),
            scalars=tuple(self._scalars),
            body=tuple(self._stack[0]),
        )


def _name_to_expr(value: Operand | str) -> Operand:
    if isinstance(value, str):
        return EB(VarRef(value))
    return value
