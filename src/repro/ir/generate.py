"""Random affine-program generation (differential-testing utility).

Generates well-formed, numerically tame affine loop-nest programs:
every array subscript is provably in bounds (loop ranges leave margin
for the subscript offsets) and right-hand sides are convex-ish
combinations (no division, no sqrt), so values stay finite over any
execution.

The test suite runs the whole pipeline over a fleet of generated
programs and checks, per program:

* instrumented runs balance and leave the computation unchanged,
* index-set splitting is semantics-preserving,
* the generated Python agrees with the interpreter,
* Algorithm 1's symbolic use counts equal the brute-force trace.

Users can employ the same generator to fuzz their own extensions.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.ir.nodes import (
    ArrayDecl,
    ArrayRef,
    Assign,
    BinOp,
    Const,
    Expr,
    Loop,
    Program,
    ScalarDecl,
    Stmt,
    VarRef,
)

MARGIN = 2
"""Loop bounds stay MARGIN inside [0, n-1]; subscript offsets stay
within ±MARGIN, so accesses are in bounds whenever n >= 2*MARGIN + 2."""

MIN_PARAM = 2 * MARGIN + 2


@dataclass
class GeneratorConfig:
    """Size knobs.

    The defaults keep whole-program dependence analysis (quadratic in
    statements, with a kill term per writer) comfortably fast; raise
    them for heavier fuzzing sessions.
    """

    max_arrays: int = 2
    max_depth: int = 2
    max_top_level_loops: int = 2
    max_statements_per_loop: int = 2
    allow_scalars: bool = True


def random_affine_program(
    seed: int, config: GeneratorConfig | None = None
) -> Program:
    """A deterministic random program for the given seed.

    >>> p = random_affine_program(0)
    >>> p.params
    ('n',)
    """
    rng = random.Random(seed)
    config = config or GeneratorConfig()
    num_arrays = rng.randint(1, config.max_arrays)
    arrays = []
    for index in range(num_arrays):
        rank = rng.choice([1, 1, 2])
        arrays.append(
            ArrayDecl(
                name=f"A{index}",
                dims=tuple(VarRef("n") for _ in range(rank)),
                elem_type="f64",
            )
        )
    scalars = []
    if config.allow_scalars and rng.random() < 0.5:
        scalars.append(ScalarDecl(name="acc", elem_type="f64"))

    label_counter = [0]

    def fresh_label() -> str:
        label_counter[0] += 1
        return f"S{label_counter[0]}"

    iterator_counter = [0]

    def fresh_iterator() -> str:
        iterator_counter[0] += 1
        return f"i{iterator_counter[0]}"

    def random_index(iterators: list[str]) -> Expr:
        """An in-bounds affine subscript over the visible iterators."""
        if not iterators or rng.random() < 0.15:
            return Const(rng.randint(0, MARGIN))
        base = rng.choice(iterators)
        offset = rng.randint(-MARGIN, MARGIN)
        if offset == 0:
            return VarRef(base)
        op = "+" if offset > 0 else "-"
        return BinOp(op, VarRef(base), Const(abs(offset)))

    def random_ref(iterators: list[str]) -> ArrayRef:
        decl = rng.choice(arrays)
        return ArrayRef(
            decl.name,
            tuple(random_index(iterators) for _ in decl.dims),
        )

    def random_rhs(iterators: list[str], lhs: ArrayRef | VarRef) -> Expr:
        """A contraction-flavored combination: |result| stays bounded."""
        terms: list[Expr] = []
        for _ in range(rng.randint(1, 3)):
            read: Expr = random_ref(iterators)
            weight = rng.choice([0.5, 0.25, -0.25, 0.125])
            terms.append(BinOp("*", Const(weight), read))
        if scalars and rng.random() < 0.3:
            terms.append(BinOp("*", Const(0.25), VarRef("acc")))
        result = terms[0]
        for term in terms[1:]:
            result = BinOp("+", result, term)
        if rng.random() < 0.5:
            result = BinOp("+", result, Const(round(rng.uniform(-1, 1), 3)))
        return result

    def random_statement(iterators: list[str]) -> Assign:
        if scalars and rng.random() < 0.25:
            lhs: ArrayRef | VarRef = VarRef("acc")
        else:
            lhs = random_ref(iterators)
        return Assign(
            lhs=lhs, rhs=random_rhs(iterators, lhs), label=fresh_label()
        )

    def random_loop(depth: int, iterators: list[str]) -> Loop:
        var = fresh_iterator()
        lower = Const(MARGIN)
        upper = BinOp("-", VarRef("n"), Const(MARGIN + 1))
        inner_iterators = iterators + [var]
        body: list[Stmt] = []
        num_statements = rng.randint(1, config.max_statements_per_loop)
        for _ in range(num_statements):
            body.append(random_statement(inner_iterators))
        if depth + 1 < config.max_depth and rng.random() < 0.5:
            body.append(random_loop(depth + 1, inner_iterators))
        return Loop(var=var, lower=lower, upper=upper, body=tuple(body))

    body: list[Stmt] = []
    for _ in range(rng.randint(1, config.max_top_level_loops)):
        body.append(random_loop(0, []))
    return Program(
        name=f"generated_{seed}",
        params=("n",),
        arrays=tuple(arrays),
        scalars=tuple(scalars),
        body=tuple(body),
    )
