"""Parser for the mini-language text syntax.

Grammar (informally)::

    program  := "program" NAME "(" params? ")" "{" decl* stmt* "}"
    decl     := "array" NAME ("[" expr "]")+ (":" type)? ";"
              | "scalar" NAME (":" type)? ";"
    stmt     := label? lvalue "=" expr ";"
              | "for" NAME "=" expr ".." expr "{" stmt* "}"
              | "while" "(" expr ")" "{" stmt* "}"
              | "if" "(" expr ")" "{" stmt* "}" ("else" "{" stmt* "}")?
    label    := NAME ":"
    lvalue   := NAME ("[" expr "]")*
    type     := "f64" | "i64"

Expressions support ``+ - * / %``, comparisons, ``&& || !``, a C-style
ternary ``cond ? a : b``, intrinsic calls (``sqrt``, ``abs``, ``min``,
``max``, ``exp``, ``floor``, ``mod``) and indexed references, with the
usual precedence.  ``for`` bounds are inclusive, matching the paper's
``for j = 0 to n-1`` style.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.ir.nodes import (
    ArrayDecl,
    ArrayRef,
    Assign,
    BinOp,
    Call,
    Const,
    Expr,
    If,
    Loop,
    Program,
    ScalarDecl,
    Select,
    Stmt,
    UnOp,
    VarRef,
    WhileLoop,
)

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+|//[^\n]*)
  | (?P<float>\d+\.\d*(?:[eE][+-]?\d+)?|\d+[eE][+-]?\d+)
  | (?P<int>\d+)
  | (?P<name>[A-Za-z_][A-Za-z_0-9]*)
  | (?P<op>\.\.|&&|\|\||==|!=|<=|>=|[-+*/%<>=(){}\[\];:,?!])
    """,
    re.VERBOSE,
)

_INTRINSICS = {"sqrt", "abs", "min", "max", "exp", "floor", "mod", "sin", "cos"}


@dataclass
class _Token:
    kind: str
    text: str
    pos: int


class ParseError(ValueError):
    """Syntax error with position information."""


def _tokenize(text: str) -> list[_Token]:
    tokens: list[_Token] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if not match or match.end() == pos:
            raise ParseError(f"unexpected character {text[pos]!r} at offset {pos}")
        kind = match.lastgroup or ""
        if kind != "ws":
            tokens.append(_Token(kind, match.group(), pos))
        pos = match.end()
    tokens.append(_Token("eof", "", pos))
    return tokens


class _Parser:
    def __init__(self, text: str) -> None:
        self._tokens = _tokenize(text)
        self._index = 0

    # -- token plumbing -------------------------------------------------
    def _peek(self, offset: int = 0) -> _Token:
        return self._tokens[min(self._index + offset, len(self._tokens) - 1)]

    def _advance(self) -> _Token:
        token = self._tokens[self._index]
        if token.kind != "eof":
            self._index += 1
        return token

    def _expect(self, text: str) -> _Token:
        token = self._peek()
        if token.text != text:
            raise ParseError(
                f"expected {text!r} but found {token.text!r} at offset {token.pos}"
            )
        return self._advance()

    def _expect_name(self) -> str:
        token = self._peek()
        if token.kind != "name":
            raise ParseError(
                f"expected a name but found {token.text!r} at offset {token.pos}"
            )
        self._advance()
        return token.text

    def _accept(self, text: str) -> bool:
        if self._peek().text == text:
            self._advance()
            return True
        return False

    # -- program --------------------------------------------------------
    def parse_program(self) -> Program:
        self._expect("program")
        name = self._expect_name()
        self._expect("(")
        params: list[str] = []
        if self._peek().text != ")":
            params.append(self._expect_name())
            while self._accept(","):
                params.append(self._expect_name())
        self._expect(")")
        self._expect("{")
        arrays: list[ArrayDecl] = []
        scalars: list[ScalarDecl] = []
        while self._peek().text in ("array", "scalar"):
            if self._accept("array"):
                arrays.append(self._parse_array_decl())
            else:
                self._advance()
                scalars.append(self._parse_scalar_decl())
        body = self._parse_block_contents()
        self._expect("}")
        if self._peek().kind != "eof":
            token = self._peek()
            raise ParseError(
                f"trailing input {token.text!r} at offset {token.pos}"
            )
        return Program(
            name=name,
            params=tuple(params),
            arrays=tuple(arrays),
            scalars=tuple(scalars),
            body=tuple(body),
        )

    def _parse_array_decl(self) -> ArrayDecl:
        name = self._expect_name()
        dims: list[Expr] = []
        while self._accept("["):
            dims.append(self._parse_expr())
            self._expect("]")
        if not dims:
            raise ParseError(f"array {name!r} needs at least one dimension")
        elem_type = "f64"
        if self._accept(":"):
            elem_type = self._expect_name()
        self._expect(";")
        return ArrayDecl(name=name, dims=tuple(dims), elem_type=elem_type)

    def _parse_scalar_decl(self) -> ScalarDecl:
        name = self._expect_name()
        elem_type = "f64"
        if self._accept(":"):
            elem_type = self._expect_name()
        self._expect(";")
        return ScalarDecl(name=name, elem_type=elem_type)

    # -- statements -----------------------------------------------------
    def _parse_block_contents(self) -> list[Stmt]:
        body: list[Stmt] = []
        while self._peek().text not in ("}",) and self._peek().kind != "eof":
            body.append(self._parse_statement())
        return body

    def _parse_block(self) -> list[Stmt]:
        self._expect("{")
        body = self._parse_block_contents()
        self._expect("}")
        return body

    def _parse_statement(self) -> Stmt:
        token = self._peek()
        if token.text == "for":
            return self._parse_for()
        if token.text == "while":
            return self._parse_while()
        if token.text == "if":
            return self._parse_if()
        if token.kind == "name" and self._peek(1).text == "(":
            if token.text in ("add_to_chksm", "inc_use_count",
                              "reset_use_count", "reset_checksums",
                              "assert"):
                return self._parse_checksum_macro()
        label: str | None = None
        if (
            token.kind == "name"
            and self._peek(1).text == ":"
            and self._peek(2).kind == "name"
        ):
            label = self._advance().text
            self._expect(":")
        return self._parse_assignment(label)

    def _parse_checksum_macro(self) -> Stmt:
        """Re-parse the printer's instrumentation macros.

        Statement-attached contributions print as separate macro lines;
        parsing them back yields *free-standing* checksum statements —
        checksum-equivalent on fault-free runs (bundled register reuse
        is an in-memory property the text form cannot carry).
        """
        from repro.ir.nodes import (
            ChecksumAdd,
            ChecksumAssert,
            ChecksumReset,
            CounterIncrement,
        )

        name = self._expect_name()
        self._expect("(")
        if name == "reset_checksums":
            self._expect(")")
            self._expect(";")
            return ChecksumReset()
        if name == "add_to_chksm":
            which_token = self._expect_name()
            if not which_token.endswith("_cs"):
                raise ParseError(
                    f"add_to_chksm expects a <name>_cs checksum, got "
                    f"{which_token!r}"
                )
            which = which_token[: -len("_cs")]
            self._expect(",")
            value = self._parse_expr()
            self._expect(",")
            count = self._parse_expr()
            self._expect(")")
            self._expect(";")
            return ChecksumAdd(checksum=which, value=value, count=count)
        if name == "inc_use_count":
            counter = self._parse_lvalue()
            amount: Expr = Const(1)
            if self._accept(","):
                amount = self._parse_expr()
            self._expect(")")
            self._expect(";")
            return CounterIncrement(counter=counter, amount=amount)
        if name == "reset_use_count":
            counter = self._parse_lvalue()
            self._expect(")")
            self._expect(";")
            return Assign(lhs=counter, rhs=Const(0))
        # assert(a_cs == b_cs, c_cs == d_cs, ...)
        pairs: list[tuple[str, str]] = []
        while True:
            left = self._expect_name()
            self._expect("==")
            right = self._expect_name()
            for side in (left, right):
                if not side.endswith("_cs"):
                    raise ParseError(
                        f"assert expects <name>_cs operands, got {side!r}"
                    )
            pairs.append((left[: -len("_cs")], right[: -len("_cs")]))
            if not self._accept(","):
                break
        self._expect(")")
        self._expect(";")
        return ChecksumAssert(pairs=tuple(pairs))

    def _parse_for(self) -> Loop:
        self._expect("for")
        var = self._expect_name()
        self._expect("=")
        lower = self._parse_expr()
        self._expect("..")
        upper = self._parse_expr()
        body = self._parse_block()
        return Loop(var=var, lower=lower, upper=upper, body=tuple(body))

    def _parse_while(self) -> WhileLoop:
        self._expect("while")
        self._expect("(")
        cond = self._parse_expr()
        self._expect(")")
        body = self._parse_block()
        return WhileLoop(cond=cond, body=tuple(body))

    def _parse_if(self) -> If:
        self._expect("if")
        self._expect("(")
        cond = self._parse_expr()
        self._expect(")")
        then_body = self._parse_block()
        else_body: list[Stmt] = []
        if self._accept("else"):
            if self._peek().text == "if":
                else_body = [self._parse_if()]
            else:
                else_body = self._parse_block()
        return If(cond=cond, then_body=tuple(then_body), else_body=tuple(else_body))

    def _parse_assignment(self, label: str | None) -> Assign:
        target = self._parse_lvalue()
        op_token = self._peek()
        if op_token.text in ("+", "-", "*", "/") and self._peek(1).text == "=":
            self._advance()
            self._expect("=")
            rhs_part = self._parse_expr()
            rhs: Expr = BinOp(op_token.text, target, rhs_part)
        else:
            self._expect("=")
            rhs = self._parse_expr()
        self._expect(";")
        return Assign(lhs=target, rhs=rhs, label=label)

    def _parse_lvalue(self) -> ArrayRef | VarRef:
        name = self._expect_name()
        if self._peek().text == "[":
            indices: list[Expr] = []
            while self._accept("["):
                indices.append(self._parse_expr())
                self._expect("]")
            return ArrayRef(array=name, indices=tuple(indices))
        return VarRef(name=name)

    # -- expressions (precedence climbing) -------------------------------
    def _parse_expr(self) -> Expr:
        return self._parse_ternary()

    def _parse_ternary(self) -> Expr:
        cond = self._parse_or()
        if self._accept("?"):
            if_true = self._parse_expr()
            self._expect(":")
            if_false = self._parse_expr()
            return Select(cond=cond, if_true=if_true, if_false=if_false)
        return cond

    def _parse_or(self) -> Expr:
        left = self._parse_and()
        while self._peek().text == "||":
            self._advance()
            left = BinOp("||", left, self._parse_and())
        return left

    def _parse_and(self) -> Expr:
        left = self._parse_comparison()
        while self._peek().text == "&&":
            self._advance()
            left = BinOp("&&", left, self._parse_comparison())
        return left

    def _parse_comparison(self) -> Expr:
        left = self._parse_additive()
        while self._peek().text in ("==", "!=", "<=", ">=", "<", ">"):
            op = self._advance().text
            left = BinOp(op, left, self._parse_additive())
        return left

    def _parse_additive(self) -> Expr:
        left = self._parse_multiplicative()
        while self._peek().text in ("+", "-"):
            op = self._advance().text
            left = BinOp(op, left, self._parse_multiplicative())
        return left

    def _parse_multiplicative(self) -> Expr:
        left = self._parse_unary()
        while self._peek().text in ("*", "/", "%"):
            op = self._advance().text
            left = BinOp(op, left, self._parse_unary())
        return left

    def _parse_unary(self) -> Expr:
        if self._accept("-"):
            operand = self._parse_unary()
            if isinstance(operand, Const):
                # Fold: `-0.25` is the literal, not UnOp over a literal,
                # so printed negative constants round-trip structurally.
                return Const(-operand.value)
            return UnOp("-", operand)
        if self._accept("!"):
            return UnOp("!", self._parse_unary())
        return self._parse_primary()

    def _parse_primary(self) -> Expr:
        token = self._peek()
        if token.kind == "int":
            self._advance()
            return Const(int(token.text))
        if token.kind == "float":
            self._advance()
            return Const(float(token.text))
        if token.text == "(":
            self._advance()
            inner = self._parse_expr()
            self._expect(")")
            return inner
        if token.kind == "name":
            name = self._advance().text
            if self._peek().text == "(":
                if name not in _INTRINSICS:
                    raise ParseError(
                        f"unknown function {name!r} at offset {token.pos}"
                    )
                self._advance()
                args: list[Expr] = []
                if self._peek().text != ")":
                    args.append(self._parse_expr())
                    while self._accept(","):
                        args.append(self._parse_expr())
                self._expect(")")
                return Call(func=name, args=tuple(args))
            if self._peek().text == "[":
                indices: list[Expr] = []
                while self._accept("["):
                    indices.append(self._parse_expr())
                    self._expect("]")
                return ArrayRef(array=name, indices=tuple(indices))
            return VarRef(name=name)
        raise ParseError(f"unexpected token {token.text!r} at offset {token.pos}")


def parse_program(text: str) -> Program:
    """Parse mini-language source text into a :class:`Program`.

    >>> p = parse_program('''
    ... program demo(n) {
    ...   array A[n][n];
    ...   for j = 0 .. n - 1 {
    ...     S1: A[j][j] = sqrt(A[j][j]);
    ...     for i = j + 1 .. n - 1 {
    ...       S2: A[i][j] = A[i][j] / A[j][j];
    ...     }
    ...   }
    ... }
    ... ''')
    >>> p.name, p.params
    ('demo', ('n',))
    """
    return _Parser(text).parse_program()


def parse_expression(text: str) -> Expr:
    """Parse a standalone expression (useful in tests and tools)."""
    parser = _Parser(text)
    expr = parser._parse_expr()
    if parser._peek().kind != "eof":
        token = parser._peek()
        raise ParseError(f"trailing input {token.text!r} at offset {token.pos}")
    return expr
