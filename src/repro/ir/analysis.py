"""Structural analysis and validation of mini-language programs.

Provides:

* :func:`to_affine` — convert an IR expression to a
  :class:`~repro.isl.linear.LinExpr` when it is affine in a given set
  of names (iterators + parameters), else ``None``.  This is the
  affine/irregular classifier underpinning Section 5's split between
  compile-time analysis and inspector-based analysis.
* :func:`validate_program` — name resolution, dimensionality checks and
  assignment-target checks; raises :class:`ValidationError` with a
  precise message.
* Context queries used by the instrumenter: surrounding loops of every
  statement, whether a statement sits under a ``while`` or
  data-dependent ``if``, and which arrays are modified in a loop body
  (for inspector hoisting legality, Section 4.2).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isl.linear import LinExpr
from repro.ir.nodes import (
    ArrayRef,
    Assign,
    BinOp,
    Const,
    Expr,
    If,
    Loop,
    Program,
    Stmt,
    UnOp,
    VarRef,
    WhileLoop,
    walk_expressions,
)


class ValidationError(ValueError):
    """A structural problem in a program."""


# ----------------------------------------------------------------------
# Affine conversion
# ----------------------------------------------------------------------


def to_affine(expr: Expr, names: frozenset[str] | set[str]) -> LinExpr | None:
    """``expr`` as a LinExpr over ``names``, or None if not affine.

    Affine means: integer constants, variables from ``names``, sums,
    differences, negation, and multiplication where at least one factor
    is constant.  Anything else — array references, division, calls,
    floats — is not affine.

    >>> str(to_affine(BinOp("-", VarRef("n"), Const(1)), {"n"}))
    'n - 1'
    >>> to_affine(ArrayRef("cols", (VarRef("j"),)), {"j"}) is None
    True
    """
    if isinstance(expr, Const):
        if isinstance(expr.value, int):
            return LinExpr.constant(expr.value)
        return None
    if isinstance(expr, VarRef):
        if expr.name in names:
            return LinExpr.var(expr.name)
        return None
    if isinstance(expr, UnOp) and expr.op == "-":
        inner = to_affine(expr.operand, names)
        return None if inner is None else -inner
    if isinstance(expr, BinOp):
        if expr.op in ("+", "-"):
            left = to_affine(expr.left, names)
            right = to_affine(expr.right, names)
            if left is None or right is None:
                return None
            return left + right if expr.op == "+" else left - right
        if expr.op == "*":
            left = to_affine(expr.left, names)
            right = to_affine(expr.right, names)
            if left is None or right is None:
                return None
            if left.is_constant():
                return right * left.constant_value()
            if right.is_constant():
                return left * right.constant_value()
            return None
    return None


def is_affine_condition(expr: Expr, names: frozenset[str] | set[str]) -> bool:
    """Whether a boolean condition is affine (comparisons of affine sides,
    combined with ``&&``)."""
    if isinstance(expr, BinOp):
        if expr.op == "&&":
            return is_affine_condition(expr.left, names) and is_affine_condition(
                expr.right, names
            )
        if expr.op in ("<", "<=", ">", ">=", "==", "!="):
            return (
                to_affine(expr.left, names) is not None
                and to_affine(expr.right, names) is not None
            )
    return False


# ----------------------------------------------------------------------
# Statement contexts
# ----------------------------------------------------------------------


@dataclass
class StatementContext:
    """Where an assignment sits in the program tree."""

    assign: Assign
    loops: tuple[Loop, ...]
    """Surrounding affine ``for`` loops, outermost first."""
    while_loops: tuple[WhileLoop, ...]
    """Surrounding while loops, outermost first (irregular context)."""
    guards: tuple[Expr, ...]
    """Conditions of surrounding ``if``s (negated conditions are
    represented with a leading ``!`` UnOp)."""
    path: tuple[int, ...]
    """Child indices from the root to this statement (AST address)."""

    @property
    def iterators(self) -> tuple[str, ...]:
        return tuple(loop.var for loop in self.loops)

    def in_irregular_context(self, affine_names: set[str]) -> bool:
        """True when under a while loop or a non-affine guard."""
        if self.while_loops:
            return True
        names = affine_names | set(self.iterators)
        return any(not is_affine_condition(g, names) for g in self.guards)


def statement_contexts(program: Program) -> list[StatementContext]:
    """Contexts for every assignment, in textual order."""
    contexts: list[StatementContext] = []

    def visit(
        body: tuple[Stmt, ...],
        loops: tuple[Loop, ...],
        whiles: tuple[WhileLoop, ...],
        guards: tuple[Expr, ...],
        path: tuple[int, ...],
    ) -> None:
        for index, stmt in enumerate(body):
            here = path + (index,)
            if isinstance(stmt, Assign):
                contexts.append(
                    StatementContext(stmt, loops, whiles, guards, here)
                )
            elif isinstance(stmt, Loop):
                visit(stmt.body, loops + (stmt,), whiles, guards, here)
            elif isinstance(stmt, WhileLoop):
                visit(stmt.body, loops, whiles + (stmt,), guards, here)
            elif isinstance(stmt, If):
                visit(stmt.then_body, loops, whiles, guards + (stmt.cond,), here)
                visit(
                    stmt.else_body,
                    loops,
                    whiles,
                    guards + (UnOp("!", stmt.cond),),
                    here,
                )

    visit(program.body, (), (), (), ())
    return contexts


def arrays_written_in(body: tuple[Stmt, ...]) -> set[str]:
    """Arrays (and scalars) stored to anywhere in a body.

    Used for the inspector-hoisting legality check: an inspector over
    indexing structure ``cols`` may be hoisted out of a loop only if
    ``cols`` is not written in that loop (Section 4.2).
    """
    from repro.ir.nodes import walk_statements

    written: set[str] = set()
    for stmt in walk_statements(body):
        if isinstance(stmt, Assign):
            if isinstance(stmt.lhs, ArrayRef):
                written.add(stmt.lhs.array)
            else:
                written.add(stmt.lhs.name)
    return written


def arrays_read_in(body: tuple[Stmt, ...]) -> set[str]:
    """Arrays and scalars loaded anywhere in a body (incl. indices)."""
    from repro.ir.nodes import walk_statements

    read: set[str] = set()
    for stmt in walk_statements(body):
        exprs: list[Expr] = []
        if isinstance(stmt, Assign):
            exprs.append(stmt.rhs)
            if isinstance(stmt.lhs, ArrayRef):
                exprs.extend(stmt.lhs.indices)
        elif isinstance(stmt, (If,)):
            exprs.append(stmt.cond)
        elif isinstance(stmt, WhileLoop):
            exprs.append(stmt.cond)
        elif isinstance(stmt, Loop):
            exprs.extend([stmt.lower, stmt.upper])
        for expr in exprs:
            for node in walk_expressions(expr):
                if isinstance(node, ArrayRef):
                    read.add(node.array)
                elif isinstance(node, VarRef):
                    read.add(node.name)
    return read


# ----------------------------------------------------------------------
# Validation
# ----------------------------------------------------------------------


def validate_program(program: Program) -> None:
    """Check names, arities and labels; raise ValidationError on problems."""
    arrays = {d.name: d for d in program.arrays}
    scalars = {d.name for d in program.scalars}
    params = set(program.params)
    labels_seen: set[str] = set()
    if arrays.keys() & scalars:
        raise ValidationError(
            f"names declared both array and scalar: {arrays.keys() & scalars}"
        )

    def check_expr(expr: Expr, iterators: set[str], where: str) -> None:
        for node in walk_expressions(expr):
            if isinstance(node, VarRef):
                name = node.name
                if name not in scalars and name not in params and name not in iterators:
                    raise ValidationError(
                        f"unknown name {name!r} in {where}"
                    )
                if name in arrays:
                    raise ValidationError(
                        f"array {name!r} used without subscripts in {where}"
                    )
            elif isinstance(node, ArrayRef):
                if node.array not in arrays:
                    raise ValidationError(
                        f"unknown array {node.array!r} in {where}"
                    )
                decl = arrays[node.array]
                if len(node.indices) != len(decl.dims):
                    raise ValidationError(
                        f"array {node.array!r} has {len(decl.dims)} dims, "
                        f"indexed with {len(node.indices)} in {where}"
                    )

    def visit(body: tuple[Stmt, ...], iterators: set[str]) -> None:
        for stmt in body:
            if isinstance(stmt, Assign):
                where = f"statement {stmt.label or str(stmt.lhs)}"
                if stmt.label:
                    if stmt.label in labels_seen:
                        raise ValidationError(f"duplicate label {stmt.label!r}")
                    labels_seen.add(stmt.label)
                if isinstance(stmt.lhs, VarRef):
                    if stmt.lhs.name not in scalars:
                        raise ValidationError(
                            f"assignment to undeclared scalar {stmt.lhs.name!r}"
                        )
                check_expr(stmt.rhs, iterators, where)
                if isinstance(stmt.lhs, ArrayRef):
                    check_expr(stmt.lhs, iterators, where)
            elif isinstance(stmt, Loop):
                if stmt.var in iterators:
                    raise ValidationError(
                        f"loop iterator {stmt.var!r} shadows an outer iterator"
                    )
                if stmt.var in scalars or stmt.var in params:
                    raise ValidationError(
                        f"loop iterator {stmt.var!r} shadows a declaration"
                    )
                check_expr(stmt.lower, iterators, f"bounds of loop {stmt.var}")
                check_expr(stmt.upper, iterators, f"bounds of loop {stmt.var}")
                visit(stmt.body, iterators | {stmt.var})
            elif isinstance(stmt, WhileLoop):
                check_expr(stmt.cond, iterators, "while condition")
                visit(stmt.body, iterators)
            elif isinstance(stmt, If):
                check_expr(stmt.cond, iterators, "if condition")
                visit(stmt.then_body, iterators)
                visit(stmt.else_body, iterators)

    visit(program.body, set())
