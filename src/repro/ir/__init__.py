"""The mini-language the compiler instruments.

The paper's algorithms operate on loop-oriented programs: affine loop
nests (Section 3), data-dependent conditionals and irregular accesses
(Section 4).  This package defines that program representation:

* :mod:`repro.ir.nodes` — expression and statement nodes, programs,
  array/scalar declarations, and the checksum-instrumentation
  annotations attached by the compiler.
* :mod:`repro.ir.parser` — a small text syntax (see docstring there).
* :mod:`repro.ir.printer` — pretty-printing back to the text syntax,
  rendering instrumentation as the paper's ``add_to_chksm`` macros.
* :mod:`repro.ir.builder` — a fluent programmatic construction API.
* :mod:`repro.ir.schedule` — the 2d+1 statement schedules of Section 3.1.
* :mod:`repro.ir.accesses` — read/write access extraction and the
  affine/irregular classification of Section 5.
* :mod:`repro.ir.analysis` — structural validation and symbol queries.
"""

from repro.ir.nodes import (
    ArrayDecl,
    ArrayRef,
    Assign,
    BinOp,
    Call,
    ChecksumAdd,
    ChecksumAssert,
    ChecksumReset,
    Const,
    CounterIncrement,
    DefContribution,
    If,
    Loop,
    PreOverwriteAdjust,
    Program,
    ScalarDecl,
    Select,
    UnOp,
    UseContribution,
    VarRef,
    WhileLoop,
)
from repro.ir.builder import ProgramBuilder
from repro.ir.parser import parse_program
from repro.ir.printer import program_to_text

__all__ = [
    "ArrayDecl",
    "ArrayRef",
    "Assign",
    "BinOp",
    "Call",
    "ChecksumAdd",
    "ChecksumAssert",
    "ChecksumReset",
    "Const",
    "CounterIncrement",
    "DefContribution",
    "If",
    "Loop",
    "PreOverwriteAdjust",
    "Program",
    "ProgramBuilder",
    "ScalarDecl",
    "Select",
    "UseContribution",
    "VarRef",
    "WhileLoop",
    "parse_program",
    "program_to_text",
]
