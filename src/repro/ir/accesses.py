"""Read/write access extraction and affine classification.

For every assignment the instrumenter needs to know, per Section 5:

* which references are *data* accesses (loads/stores of program arrays
  and scalars — as opposed to reads of iterators and parameters, which
  the fault model assumes protected),
* which of those accesses are *affine* (all subscripts affine in the
  surrounding iterators and parameters — analyzable at compile time by
  Section 3's machinery), and
* which are *irregular* (data-dependent subscripts such as
  ``p_new[cols[j1]]`` — handled by inspectors, Section 4).

A scalar access is a zero-subscript affine access.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isl.linear import LinExpr
from repro.ir.analysis import StatementContext, to_affine
from repro.ir.nodes import (
    ArrayRef,
    Assign,
    Expr,
    Program,
    VarRef,
    walk_expressions,
)


@dataclass(frozen=True)
class Access:
    """One data access of one assignment."""

    label: str | None
    ref: ArrayRef | VarRef
    is_write: bool
    is_affine: bool
    index_affine: tuple[LinExpr, ...] | None
    """Per-subscript affine forms (empty tuple for scalars) when affine."""

    @property
    def target(self) -> str:
        return self.ref.array if isinstance(self.ref, ArrayRef) else self.ref.name


def data_reads_of(
    assign: Assign, data_names: set[str]
) -> list[ArrayRef | VarRef]:
    """Loads of data (not control) in one assignment, in textual order.

    Includes loads inside subscripts (``cols[j1]`` within
    ``p_new[cols[j1]]``).  Duplicate syntactic references are kept —
    each occurrence is a separate load and a separate use (the paper's
    use counts count every read).
    """
    reads: list[ArrayRef | VarRef] = []

    def collect(expr: Expr) -> None:
        for node in walk_expressions(expr):
            if isinstance(node, ArrayRef):
                reads.append(node)
            elif isinstance(node, VarRef) and node.name in data_names:
                reads.append(node)

    collect(assign.rhs)
    # Subscripts of the *store* target are loads, too.
    if isinstance(assign.lhs, ArrayRef):
        for index in assign.lhs.indices:
            collect(index)
    return reads


def classify_access(
    ref: ArrayRef | VarRef,
    is_write: bool,
    label: str | None,
    affine_names: set[str],
) -> Access:
    """Build an :class:`Access` with the affine classification."""
    if isinstance(ref, VarRef):
        return Access(
            label=label,
            ref=ref,
            is_write=is_write,
            is_affine=True,
            index_affine=(),
        )
    affine_indices: list[LinExpr] = []
    for index in ref.indices:
        affine = to_affine(index, affine_names)
        if affine is None:
            return Access(
                label=label,
                ref=ref,
                is_write=is_write,
                is_affine=False,
                index_affine=None,
            )
        affine_indices.append(affine)
    return Access(
        label=label,
        ref=ref,
        is_write=is_write,
        is_affine=True,
        index_affine=tuple(affine_indices),
    )


@dataclass
class StatementAccesses:
    """All data accesses of one assignment."""

    context: StatementContext
    write: Access
    reads: list[Access]

    @property
    def label(self) -> str | None:
        return self.context.assign.label

    def irregular_reads(self) -> list[Access]:
        return [a for a in self.reads if not a.is_affine]

    def affine_reads(self) -> list[Access]:
        return [a for a in self.reads if a.is_affine]


def program_data_names(program: Program) -> set[str]:
    """Names whose accesses go through the (faultable) memory subsystem."""
    names = {d.name for d in program.arrays}
    names |= {d.name for d in program.scalars}
    return names


def statement_accesses(
    program: Program, context: StatementContext
) -> StatementAccesses:
    """Extract and classify the accesses of one assignment."""
    data_names = program_data_names(program)
    affine_names = set(program.params) | set(context.iterators)
    assign = context.assign
    write = classify_access(assign.lhs, True, assign.label, affine_names)
    reads = [
        classify_access(ref, False, assign.label, affine_names)
        for ref in data_reads_of(assign, data_names)
    ]
    return StatementAccesses(context=context, write=write, reads=reads)


def all_statement_accesses(program: Program) -> list[StatementAccesses]:
    """Accesses for every assignment in the program, in textual order."""
    from repro.ir.analysis import statement_contexts

    return [
        statement_accesses(program, context)
        for context in statement_contexts(program)
    ]
