"""Pretty-printer: IR back to mini-language text.

Instrumented assignments are rendered in the paper's style, with
``add_to_chksm(use_cs, v, c)`` / ``add_to_chksm(def_cs, v, c)`` macro
lines around the statement (Figures 5, 6 and 9) and the pre-overwrite
adjustments of Algorithm 3 before the store.  The printed text of an
*uninstrumented* program re-parses to an equal tree (round-trip
property, exercised by the tests).
"""

from __future__ import annotations

from repro.ir.nodes import (
    ArrayRef,
    Assign,
    BinOp,
    Call,
    ChecksumAdd,
    ChecksumAssert,
    Const,
    CounterIncrement,
    Expr,
    If,
    Loop,
    Program,
    Select,
    Stmt,
    UnOp,
    VarRef,
    WhileLoop,
)

_INDENT = "  "


def expr_to_text(expr: Expr) -> str:
    """Render an expression with minimal necessary parentheses."""
    return _expr(expr, 0)


_PRECEDENCE = {
    "||": 1,
    "&&": 2,
    "==": 3,
    "!=": 3,
    "<": 3,
    ">": 3,
    "<=": 3,
    ">=": 3,
    "+": 4,
    "-": 4,
    "*": 5,
    "/": 5,
    "%": 5,
}


def _expr(expr: Expr, parent_prec: int) -> str:
    if isinstance(expr, Const):
        if expr.value < 0:
            # Parenthesized so `a + (-0.25)` re-parses as this constant
            # (the parser folds unary minus on literals).
            return f"(-{repr(abs(expr.value))})"
        if isinstance(expr.value, float):
            return repr(expr.value)
        return str(expr.value)
    if isinstance(expr, VarRef):
        return expr.name
    if isinstance(expr, ArrayRef):
        return expr.array + "".join(f"[{_expr(i, 0)}]" for i in expr.indices)
    if isinstance(expr, BinOp):
        prec = _PRECEDENCE.get(expr.op, 0)
        left = _expr(expr.left, prec)
        # Right operand of -, / needs a tighter context to keep meaning.
        right_prec = prec + 1 if expr.op in ("-", "/", "%") else prec
        right = _expr(expr.right, right_prec)
        text = f"{left} {expr.op} {right}"
        if prec < parent_prec:
            return f"({text})"
        return text
    if isinstance(expr, UnOp):
        inner = _expr(expr.operand, 6)
        return f"{expr.op}{inner}"
    if isinstance(expr, Call):
        args = ", ".join(_expr(a, 0) for a in expr.args)
        return f"{expr.func}({args})"
    if isinstance(expr, Select):
        text = f"{_expr(expr.cond, 1)} ? {_expr(expr.if_true, 0)} : {_expr(expr.if_false, 0)}"
        if parent_prec > 0:
            return f"({text})"
        return text
    raise TypeError(f"cannot print expression {expr!r}")


def _ref_text(ref: ArrayRef | VarRef) -> str:
    return _expr(ref, 0)


def _statement_lines(stmt: Stmt, depth: int) -> list[str]:
    pad = _INDENT * depth
    if isinstance(stmt, Assign):
        lines: list[str] = []
        instr = stmt.instrumentation
        if instr:
            for use in instr.uses:
                count = expr_to_text(use.count)
                lines.append(
                    f"{pad}add_to_chksm({use.checksum}_cs, "
                    f"{_ref_text(use.ref)}, {count});"
                )
            for counter in instr.counter_increments:
                lines.append(f"{pad}inc_use_count({_ref_text(counter)});")
            if instr.pre_overwrite:
                counter = _ref_text(instr.pre_overwrite.counter)
                old = _ref_text(stmt.lhs)
                lines.append(
                    f"{pad}add_to_chksm(def_cs, {old}, {counter} - 1); "
                    f"// adjust previous value"
                )
                lines.append(f"{pad}add_to_chksm(e_use_cs, {old}, 1);")
                lines.append(f"{pad}reset_use_count({counter});")
        label = f"{stmt.label}: " if stmt.label else ""
        lines.append(f"{pad}{label}{_ref_text(stmt.lhs)} = {expr_to_text(stmt.rhs)};")
        if instr and instr.duplicate_store is not None:
            lines.append(
                f"{pad}{_ref_text(instr.duplicate_store)} = "
                f"{_ref_text(stmt.lhs)};  // duplicated store"
            )
        if instr and instr.definition:
            d = instr.definition
            target = f"{d.checksum}_cs"
            lines.append(
                f"{pad}add_to_chksm({target}, {_ref_text(stmt.lhs)}, "
                f"{expr_to_text(d.count)});"
            )
            if d.aux:
                lines.append(
                    f"{pad}add_to_chksm(e_def_cs, {_ref_text(stmt.lhs)}, 1);"
                )
        return lines
    if isinstance(stmt, Loop):
        header = (
            f"{pad}for {stmt.var} = {expr_to_text(stmt.lower)} .. "
            f"{expr_to_text(stmt.upper)} {{"
        )
        lines = [header]
        for inner in stmt.body:
            lines.extend(_statement_lines(inner, depth + 1))
        lines.append(f"{pad}}}")
        return lines
    if isinstance(stmt, WhileLoop):
        lines = [f"{pad}while ({expr_to_text(stmt.cond)}) {{"]
        if stmt.counter:
            lines.append(f"{pad}{_INDENT}// iteration counter: {stmt.counter}")
        for inner in stmt.body:
            lines.extend(_statement_lines(inner, depth + 1))
        lines.append(f"{pad}}}")
        return lines
    if isinstance(stmt, If):
        lines = [f"{pad}if ({expr_to_text(stmt.cond)}) {{"]
        for inner in stmt.then_body:
            lines.extend(_statement_lines(inner, depth + 1))
        if stmt.else_body:
            lines.append(f"{pad}}} else {{")
            for inner in stmt.else_body:
                lines.extend(_statement_lines(inner, depth + 1))
        lines.append(f"{pad}}}")
        return lines
    if isinstance(stmt, ChecksumAdd):
        return [
            f"{pad}add_to_chksm({stmt.checksum}_cs, "
            f"{expr_to_text(stmt.value)}, {expr_to_text(stmt.count)});"
        ]
    if isinstance(stmt, CounterIncrement):
        return [
            f"{pad}inc_use_count({_ref_text(stmt.counter)}, "
            f"{expr_to_text(stmt.amount)});"
        ]
    if isinstance(stmt, ChecksumAssert):
        pairs = ", ".join(f"{a}_cs == {b}_cs" for a, b in stmt.pairs)
        return [f"{pad}assert({pairs});"]
    from repro.ir.nodes import ChecksumReset

    if isinstance(stmt, ChecksumReset):
        return [f"{pad}reset_checksums();"]
    raise TypeError(f"cannot print statement {stmt!r}")


def program_to_text(program: Program) -> str:
    """Render a whole program (declarations then body)."""
    lines = [f"program {program.name}({', '.join(program.params)}) {{"]
    for decl in program.arrays:
        dims = "".join(f"[{expr_to_text(d)}]" for d in decl.dims)
        shadow = "  // shadow (use counters)" if decl.is_shadow else ""
        lines.append(f"{_INDENT}array {decl.name}{dims} : {decl.elem_type};{shadow}")
    for decl in program.scalars:
        shadow = "  // shadow" if decl.is_shadow else ""
        lines.append(f"{_INDENT}scalar {decl.name} : {decl.elem_type};{shadow}")
    for stmt in program.body:
        lines.extend(_statement_lines(stmt, 1))
    lines.append("}")
    return "\n".join(lines) + "\n"
