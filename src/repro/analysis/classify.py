"""Static fault-outcome classification over a timeline.

For a strike that flips bit set ``B`` of one cell at load-ordinal
``t``, the corrupted value is consumed by exactly the cell's loads with
ordinal ``>= t`` up to (and excluding) the cell's next store — the
*vulnerability window*.  Each window is classified:

* :data:`MASKED` — the window contains no load: the flip dies in an
  overwrite (or after the last access) without ever being read.  The
  faulty run is instruction-for-instruction identical to the golden run
  outside the struck cell, so the measured verdict is *benign*.
* :data:`DETECTED` — the flip provably unbalances a checksum pair that
  a final verifier checks.  With ``v = old bits`` and ``v' = v ^ B``,
  channel 0 of pair ``(L, R)`` differs by ``(v' - v) * net (mod 2^64)``
  where ``net`` is the signed sum of the window's contribution counts
  (``L`` positive, ``R`` negative).  ``v' - v`` has 2-adic valuation
  exactly ``min(B)``, so the product is nonzero — detection — iff
  ``v2(net mod 2^64) + min(B) < 64``.
* :data:`VULNERABLE` — the window has loads but every checked pair's
  net is provably zero: the checksums are structurally blind here (the
  redirected-store / dead-contribution class of docs/FAULT_MODELS.md);
  whether the run ends in SDC is value-dependent.
* :data:`UNKNOWN` — anything the analysis cannot bound (poisoned
  loads, unknown counts).

The delta formula above implicitly assumes every *other* cell
generation contributes a zero net to the pair (corruption that
propagates into other cells then cancels out of the pair).  That is
exactly the def/use balance the instrumentation establishes, and
:class:`ProgramClassifier` *verifies* it per generation instead of
assuming it: any pair with an unknown or nonzero per-generation net
anywhere in the program is excluded from detection reasoning.  MASKED
classifications never rely on it (nothing corrupt is ever loaded).
"""

from __future__ import annotations

from bisect import bisect_left
from math import comb

from repro.analysis.timeline import Timeline

MASK64 = (1 << 64) - 1

DETECTED = "detected"
MASKED = "masked"
VULNERABLE = "vulnerable"
UNKNOWN = "unknown"

CLASSES = (DETECTED, MASKED, VULNERABLE, UNKNOWN)


def v2(value: int) -> int:
    """2-adic valuation of a nonzero 64-bit value."""
    return (value & -value).bit_length() - 1


class Window:
    """One vulnerability-window equivalence class of strike times."""

    __slots__ = ("masked", "poisoned", "unknown", "min_v2")

    def __init__(
        self,
        masked: bool,
        poisoned: bool = False,
        unknown: bool = False,
        min_v2: int | None = None,
    ) -> None:
        self.masked = masked
        self.poisoned = poisoned
        """A load in the window steers control/addresses when corrupt."""
        self.unknown = unknown
        """Some checked pair's window net could not be computed."""
        self.min_v2 = min_v2
        """Smallest ``v2(net)`` over checked pairs with nonzero net."""


MASKED_WINDOW = Window(masked=True)


class ProgramClassifier:
    """Per-cell, per-strike-time classification for one timeline."""

    def __init__(self, timeline: Timeline) -> None:
        self.timeline = timeline
        self.final_pairs = timeline.final_assert_pairs()
        self.valid_pairs = tuple(
            pair for pair in self.final_pairs if self._pair_balanced(pair)
        )
        """Final-assert pairs whose per-generation nets are all provably
        zero — the only pairs detection predictions may rely on."""
        self.detection_allowed = (
            bool(self.valid_pairs) and not timeline.divide_hazard
        )
        self._segments: dict[tuple[str, tuple[int, ...]], tuple] = {}

    # -- generation-balance validation ----------------------------------
    def _pair_balanced(self, pair: tuple[str, str]) -> bool:
        left, right = pair
        for events in self.timeline.cells.values():
            net = 0
            for event in events:
                if not event.is_load:
                    if net != 0:
                        return False
                    net = 0
                for name, count, real in event.contribs:
                    if not real:
                        continue
                    if name == left:
                        if count is None:
                            return False
                        net += count
                    elif name == right:
                        if count is None:
                            return False
                        net -= count
            if net != 0:
                return False
        return True

    # -- per-cell vulnerability windows ---------------------------------
    def segments(self, array: str, cell: tuple[int, ...]):
        """``(floors, windows)``: strike time ``t`` falls in segment
        ``i = bisect_left(floors, t)`` (``i == len`` means past the last
        event — masked)."""
        key = (array, cell)
        cached = self._segments.get(key)
        if cached is not None:
            return cached
        events = self.timeline.cells.get(key, [])
        pairs = self.valid_pairs
        reverse_out: list[tuple[int, Window]] = []
        nets: list[int | None] = [0] * len(pairs)
        poisoned = False
        unknown = False
        for event in reversed(events):
            if not event.is_load:
                nets = [0] * len(pairs)
                poisoned = False
                unknown = False
                reverse_out.append((event.loads_before, MASKED_WINDOW))
                continue
            if event.poison_all:
                poisoned = True
            for name, count, real in event.contribs:
                if count is None:
                    unknown = True
                if not real:
                    continue
                for position, (left, right) in enumerate(pairs):
                    if name == left:
                        delta = count
                    elif name == right:
                        delta = None if count is None else -count
                    else:
                        continue
                    if delta is None or nets[position] is None:
                        nets[position] = None
                    else:
                        nets[position] += delta
            min_valuation: int | None = None
            for net in nets:
                if net is None:
                    unknown = True
                    continue
                residue = net & MASK64
                if residue:
                    valuation = v2(residue)
                    if min_valuation is None or valuation < min_valuation:
                        min_valuation = valuation
            reverse_out.append(
                (
                    event.ordinal,
                    Window(
                        masked=False,
                        poisoned=poisoned,
                        unknown=unknown,
                        min_v2=min_valuation,
                    ),
                )
            )
        reverse_out.reverse()
        floors = [floor for floor, _ in reverse_out]
        windows = [window for _, window in reverse_out]
        result = (floors, windows)
        self._segments[key] = result
        return result

    def window_at(self, array: str, cell: tuple[int, ...], t: int) -> Window:
        floors, windows = self.segments(array, cell)
        position = bisect_left(floors, t)
        if position >= len(windows):
            return MASKED_WINDOW
        return windows[position]

    # -- verdicts over windows ------------------------------------------
    def window_detects(self, window: Window, bits) -> bool:
        """Provable final-assert detection for flipped bit set ``bits``."""
        return (
            self.detection_allowed
            and not window.masked
            and not window.poisoned
            and window.min_v2 is not None
            and bool(bits)
            and window.min_v2 + min(bits) < 64
        )

    def classify(self, array: str, cell: tuple[int, ...], t: int, bits) -> str:
        window = self.window_at(array, cell, t)
        if window.masked:
            return MASKED
        if self.window_detects(window, bits):
            return DETECTED
        if window.poisoned or window.unknown:
            return UNKNOWN
        return VULNERABLE

    def window_fractions(self, window: Window, num_bits: int) -> dict[str, float]:
        """Aggregate class fractions for a uniform ``num_bits``-bit flip
        landing in this window (bit positions drawn without replacement
        from 0..63; provable detection needs ``min(B) < 64 - v2``)."""
        if window.masked:
            return {MASKED: 1.0}
        if (
            self.detection_allowed
            and not window.poisoned
            and window.min_v2 is not None
            and num_bits > 0
        ):
            probability = detect_probability(window.min_v2, num_bits)
        else:
            probability = 0.0
        rest = UNKNOWN if (window.poisoned or window.unknown) else VULNERABLE
        fractions: dict[str, float] = {}
        if probability > 0.0:
            fractions[DETECTED] = probability
        if probability < 1.0:
            fractions[rest] = 1.0 - probability
        return fractions


def detect_probability(valuation: int, num_bits: int) -> float:
    """P(min of ``num_bits`` distinct bits < 64 - valuation)."""
    if num_bits <= 0:
        return 0.0
    if valuation <= 0:
        return 1.0
    if valuation >= 64:
        return 0.0
    return 1.0 - comb(valuation, num_bits) / comb(64, num_bits)
