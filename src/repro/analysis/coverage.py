"""Predicted fault-coverage aggregates per benchmark.

Where :mod:`repro.analysis.oracle` answers "what happens to trial
*i*?", this module integrates the classifier over the *whole* injection
distribution of each fault model — every (cell × strike time) for value
flips, every (start offset × strike time) for bursts, every (arm point
× cell) for stuck bits, every trigger for address-generation faults —
and reports exact class fractions per benchmark and per array:
``detected`` / ``masked`` / ``vulnerable`` / ``unknown`` /
``no_injection``.  These are closed-form expectations of what an
infinite campaign would measure (up to the ``unknown`` mass, which a
measured campaign splits empirically), computed without running a
single trial.

The polyhedral side (``poly`` section) reports the symbolic
ingredients the same prediction rests on: per-statement instance
cardinalities counted with :func:`repro.isl.counting.count_points` and
per-array live-in read-count polynomials over cell coordinates from
:func:`repro.poly.usecount.compute_live_in_counts` — the piecewise
use-count machinery the instrumentation itself is built from.

Benchmarks whose event stream is data-dependent (``cg``, ``moldyn``)
get a ``conservative`` basis: every injected class is ``unknown``.

`analyze_all` produces the ``ANALYSIS_coverage.json`` artifact.
"""

from __future__ import annotations

from collections import defaultdict

from repro.analysis.classify import (
    DETECTED,
    MASKED,
    UNKNOWN,
    VULNERABLE,
)
from repro.analysis.oracle import CLASS_NO_INJECTION, StaticOracle
from repro.runtime.faults.base import cell_at, linear_offset
from repro.runtime.faults.spec import FAULT_MODELS

#: Burst / addrgen enumeration budget (cells x windows examined per
#: array); past it the entry degrades to all-``unknown`` with a note.
WORK_CAP = 2_000_000


def _size(shape: tuple[int, ...]) -> int:
    size = 1
    for extent in shape:
        size *= extent
    return size


def _merge(total: dict[str, float], part: dict[str, float], weight: float):
    for cls, fraction in part.items():
        total[cls] += fraction * weight


def _rounded(fractions: dict[str, float]) -> dict[str, float]:
    return {
        cls: round(fraction, 9)
        for cls, fraction in sorted(fractions.items())
        if fraction > 0
    }


class CoverageAnalyzer:
    """Exact class fractions over each model's injection distribution."""

    def __init__(self, oracle: StaticOracle, bits: int, burst_cells: int):
        self.oracle = oracle
        self.timeline = oracle.timeline
        self.classifier = oracle.classifier
        self.bits = bits
        self.burst_cells = burst_cells
        self.cells_by_array: dict[str, list[tuple[int, ...]]] = defaultdict(list)
        for name, cell in self.timeline.cells:
            self.cells_by_array[name].append(cell)

    # -- shared per-cell machinery --------------------------------------
    def _cell_fractions(self, array: str, cell) -> dict[str, float]:
        """Class fractions for a uniform strike time t in 1..total_loads
        landing on this cell."""
        total_loads = self.timeline.total_loads
        floors, windows = self.classifier.segments(array, cell)
        out: dict[str, float] = defaultdict(float)
        previous = 0
        for floor, window in zip(floors, windows):
            weight = max(0, min(floor, total_loads) - previous)
            previous = max(previous, min(floor, total_loads))
            if weight:
                _merge(
                    out,
                    self.classifier.window_fractions(window, self.bits),
                    weight / total_loads,
                )
        tail = total_loads - previous
        if tail > 0:
            out[MASKED] += tail / total_loads
        return out

    def _mean_over_injectable(self, per_array: dict[str, dict]) -> dict:
        injectable = self.oracle.injectable
        out: dict[str, float] = defaultdict(float)
        for name in injectable:
            _merge(out, per_array.get(name, {}), 1.0 / len(injectable))
        return out

    # -- models ----------------------------------------------------------
    def random_cell(self) -> tuple[dict, dict]:
        if self.bits == 0 or not self.oracle.injectable:
            return {CLASS_NO_INJECTION: 1.0}, {}
        per_array: dict[str, dict] = {}
        for name in self.oracle.injectable:
            size = _size(self.timeline.shapes[name])
            fractions: dict[str, float] = defaultdict(float)
            accessed = self.cells_by_array.get(name, [])
            for cell in accessed:
                _merge(fractions, self._cell_fractions(name, cell), 1.0 / size)
            untouched = size - len(accessed)
            if untouched:
                fractions[MASKED] += untouched / size
            per_array[name] = dict(fractions)
        return self._mean_over_injectable(per_array), per_array

    def burst(self) -> tuple[dict, dict]:
        if self.bits == 0 or self.burst_cells == 0 or not self.oracle.injectable:
            return {CLASS_NO_INJECTION: 1.0}, {}
        total_loads = self.timeline.total_loads
        per_array: dict[str, dict] = {}
        for name in self.oracle.injectable:
            shape = self.timeline.shapes[name]
            size = _size(shape)
            if size * self.burst_cells > WORK_CAP:
                per_array[name] = {UNKNOWN: 1.0, "note": "size cap"}
                continue
            mass: dict[str, float] = defaultdict(float)
            for start in range(size):
                covered = [
                    cell_at(offset, shape)
                    for offset in range(
                        start, min(start + self.burst_cells, size)
                    )
                ]
                boundaries = sorted(
                    {
                        floor
                        for cell in covered
                        for floor in self.classifier.segments(name, cell)[0]
                        if 0 < floor <= total_loads
                    }
                    | {total_loads}
                )
                previous = 0
                for boundary in boundaries:
                    weight = boundary - previous
                    previous = boundary
                    if weight <= 0:
                        continue
                    # All strike times in (previous, boundary] see the
                    # same window for every covered cell.
                    exposed = [
                        window
                        for window in (
                            self.classifier.window_at(name, cell, boundary)
                            for cell in covered
                        )
                        if not window.masked
                    ]
                    if not exposed:
                        mass[MASKED] += weight
                    elif len(exposed) == 1:
                        _merge(
                            mass,
                            self.classifier.window_fractions(
                                exposed[0], self.bits
                            ),
                            weight,
                        )
                    else:
                        mass[UNKNOWN] += weight
            per_array[name] = {
                cls: value / (size * total_loads)
                for cls, value in mass.items()
            }
        aggregate = self._mean_over_injectable(
            {
                name: {c: f for c, f in fractions.items() if c != "note"}
                for name, fractions in per_array.items()
            }
        )
        return aggregate, per_array

    def stuck_bit(self) -> tuple[dict, dict]:
        if not self.oracle.injectable:
            return {CLASS_NO_INJECTION: 1.0}, {}
        total_loads = self.timeline.total_loads
        per_array: dict[str, dict] = {}
        for name in self.oracle.injectable:
            size = _size(self.timeline.shapes[name])
            # A cell is provably benign for arm points past its last
            # load; everything else depends on the forced value.
            live = sum(
                self.timeline.last_load_ordinal(name, cell)
                for cell in self.cells_by_array.get(name, [])
            )
            masked = 1.0 - live / (size * total_loads)
            fractions = {MASKED: masked}
            if masked < 1.0:
                fractions[UNKNOWN] = 1.0 - masked
            per_array[name] = fractions
        return self._mean_over_injectable(per_array), per_array

    def addrgen_load(self) -> tuple[dict, dict]:
        total_loads = self.timeline.total_loads
        last = 0
        for name in self.oracle.targets:
            shape = self.timeline.shapes[name]
            if not shape or any(extent <= 0 for extent in shape):
                continue
            ordinals = self.timeline.loads_by_array.get(name)
            if ordinals:
                last = max(last, ordinals[-1])
        if last == 0:
            return {CLASS_NO_INJECTION: 1.0}, {}
        fractions: dict[str, float] = {}
        no_injection = (total_loads - last) / total_loads
        if no_injection > 0:
            fractions[CLASS_NO_INJECTION] = no_injection
        # A fired redirect reads a pristine word from the wrong cell —
        # structurally invisible to the def/use checksums; whether it
        # propagates to output is value-dependent.
        fractions[VULNERABLE] = 1.0 - no_injection
        return fractions, {}

    def addrgen_store(self) -> tuple[dict, dict]:
        timeline = self.timeline
        total_stores = timeline.total_stores
        qualifying = []
        for name in self.oracle.targets:
            shape = timeline.shapes[name]
            if not shape or any(extent <= 0 for extent in shape):
                continue
            for event in timeline.stores_by_array.get(name, []):
                qualifying.append((event.ordinal, name, event))
        qualifying.sort(key=lambda item: item[0])
        if not qualifying:
            return {CLASS_NO_INJECTION: 1.0}, {}
        if len(qualifying) * 20 > WORK_CAP:
            last = qualifying[-1][0]
            tail = (total_stores - last) / total_stores
            fractions = {UNKNOWN: 1.0 - tail}
            if tail > 0:
                fractions[CLASS_NO_INJECTION] = tail
            return fractions, {}
        mass: dict[str, float] = defaultdict(float)
        per_array_mass: dict[str, dict] = defaultdict(lambda: defaultdict(float))
        previous = 0
        for ordinal, name, event in qualifying:
            weight = ordinal - previous
            previous = ordinal
            if weight <= 0:
                continue
            shape = timeline.shapes[name]
            size = _size(shape)
            effectful = any(
                (not real) or count is None or count != 0
                for _, count, real in event.contribs
            )
            offset = linear_offset(event.indices, shape)
            intended_dies = timeline.store_kills(name, event.indices, event)
            bit_count = size.bit_length()
            benign_bits = 0
            if intended_dies and not effectful:
                for bit in range(bit_count):
                    actual = cell_at(offset ^ (1 << bit), shape)
                    in_bounds = actual[0] < shape[0]
                    if not in_bounds or timeline.store_kills(
                        name, actual, event
                    ):
                        benign_bits += 1
            benign = benign_bits / bit_count
            # The non-benign remainder: a no-contribution redirected
            # store is the checksum-blind class (vulnerable); a store
            # that feeds checksums may or may not unbalance them.
            rest_class = UNKNOWN if effectful else VULNERABLE
            store_fractions = {MASKED: benign, rest_class: 1.0 - benign}
            _merge(mass, store_fractions, weight)
            _merge(per_array_mass[name], store_fractions, weight)
        tail = total_stores - previous
        if tail > 0:
            mass[CLASS_NO_INJECTION] += tail
        aggregate = {
            cls: value / total_stores for cls, value in mass.items()
        }
        per_array = {
            name: {
                cls: value / total_stores for cls, value in fractions.items()
            }
            for name, fractions in per_array_mass.items()
        }
        return aggregate, per_array

    def model_fractions(self, model: str) -> tuple[dict, dict]:
        handler = {
            "random_cell": self.random_cell,
            "burst": self.burst,
            "stuck_bit": self.stuck_bit,
            "addrgen_load": self.addrgen_load,
            "addrgen_store": self.addrgen_store,
        }[model]
        aggregate, per_array = handler()
        return (
            _rounded(aggregate),
            {
                name: (
                    dict(
                        _rounded(
                            {c: f for c, f in fractions.items() if c != "note"}
                        ),
                        **(
                            {"note": fractions["note"]}
                            if "note" in fractions
                            else {}
                        ),
                    )
                )
                for name, fractions in per_array.items()
            },
        )


def _poly_section(program, params: dict[str, int]) -> dict:
    """Symbolic cardinalities: statement domains + live-in read counts."""
    from repro.isl.counting import CountingError, count_points
    from repro.poly.dependences import compute_flow_dependences
    from repro.poly.model import ModelError, extract_model
    from repro.poly.usecount import compute_live_in_counts

    try:
        model = extract_model(program)
        statements = {}
        total = 0
        for info in model.statements:
            counted = count_points(info.domain)
            instances = int(counted.evaluate(params))
            total += instances
            statements[info.label] = {
                "cardinality": str(counted),
                "instances": instances,
            }
        dependences = compute_flow_dependences(model)
        live_in = {
            name: str(poly)
            for name, poly in compute_live_in_counts(
                model, dependences
            ).items()
        }
    except (CountingError, ModelError) as exc:
        return {"available": False, "reason": str(exc)}
    return {
        "available": True,
        "statement_instances": statements,
        "total_instances": total,
        "live_in_reads": live_in,
        "flow_dependences": len(dependences),
    }


def analyze_benchmark(
    benchmark: str,
    scale: str = "small",
    bits: int = 2,
    channels: int = 1,
    burst_cells: int = 4,
    stuck_window: int = 0,
    models=FAULT_MODELS,
    seed: int = 0,
) -> dict:
    """Full static-coverage entry for one benchmark."""
    from repro.campaign.spec import ProgramCampaignSpec

    spec = ProgramCampaignSpec(
        trials=1,
        seed=seed,
        benchmark=benchmark,
        scale=scale,
        bits=bits,
        channels=channels,
        burst_cells=burst_cells,
        stuck_window=stuck_window,
    )
    prepared = spec.prepare()
    oracle = StaticOracle(spec, prepared)
    raw_program, params, _ = spec._resolve()
    entry: dict = {
        "benchmark": benchmark,
        "scale": scale,
        "params": dict(params),
        "bits": bits,
        "channels": channels,
        "poly": _poly_section(raw_program, params),
    }
    if not oracle.enabled:
        entry["basis"] = "conservative"
        entry["reason"] = oracle.reason
        entry["models"] = {
            model: {"classes": {UNKNOWN: 1.0}, "per_array": {}}
            for model in models
        }
        return entry
    analyzer = CoverageAnalyzer(oracle, bits=bits, burst_cells=burst_cells)
    entry["basis"] = "timeline"
    entry["totals"] = {
        "loads": oracle.timeline.total_loads,
        "stores": oracle.timeline.total_stores,
    }
    entry["detection"] = {
        "allowed": oracle.classifier.detection_allowed,
        "valid_pairs": [list(pair) for pair in oracle.classifier.valid_pairs],
        "divide_hazard": oracle.timeline.divide_hazard,
    }
    entry["models"] = {}
    for model in models:
        aggregate, per_array = analyzer.model_fractions(model)
        entry["models"][model] = {
            "classes": aggregate,
            "per_array": per_array,
        }
    return entry


def analyze_all(
    benchmarks=None,
    scale: str = "small",
    bits: int = 2,
    channels: int = 1,
    burst_cells: int = 4,
    models=FAULT_MODELS,
) -> dict:
    """The ``ANALYSIS_coverage.json`` artifact."""
    from repro.programs import ALL_BENCHMARKS

    names = list(benchmarks) if benchmarks else sorted(ALL_BENCHMARKS)
    return {
        "version": 1,
        "scale": scale,
        "bits": bits,
        "channels": channels,
        "models": list(models),
        "benchmarks": {
            name: analyze_benchmark(
                name,
                scale=scale,
                bits=bits,
                channels=channels,
                burst_cells=burst_cells,
                models=models,
            )
            for name in names
        },
    }
