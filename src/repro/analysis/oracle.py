"""Static per-trial oracle: predict campaign verdicts without running.

:class:`StaticOracle` replays a trial's RNG draws (the injectors
consume their :mod:`random` streams in a documented, frozen order)
against the static :class:`~repro.analysis.timeline.Timeline` to learn
*where* the fault would land, then asks the
:class:`~repro.analysis.classify.ProgramClassifier` whether that site
is provably ``DETECTED`` (a checked checksum pair must unbalance) or
``MASKED`` (the corruption dies unread — measured verdict *benign*).
Only those two proofs short-circuit a trial; anything value-dependent
returns ``None`` and the campaign engine runs the trial for real —
``--prune static`` therefore concentrates measured execution on the
``VULNERABLE``/unknown frontier.

A predicted record is schema-compatible with a measured one: same
verdict vocabulary, the *exact* injection dict the injector would have
recorded (bit-for-bit, since the RNG replication is exact), and
``extra.predicted = True`` so reports and resumes can tell them apart.

The oracle disables itself (``enabled = False`` with a ``reason``)
whenever any of its assumptions does not hold: recovery campaigns
(trials re-execute), timelines it cannot build (``while`` loops,
data-dependent control), shadow regions in the target list, or an
event-total mismatch against the prepared golden run (the safety valve
that guards the whole construction).
"""

from __future__ import annotations

import time
from bisect import bisect_left

from repro.analysis.classify import (
    DETECTED as CLASS_DETECTED,
    MASKED as CLASS_MASKED,
    ProgramClassifier,
)
from repro.analysis.timeline import (
    DEFAULT_MAX_EVENTS,
    Timeline,
    TimelineUnsupported,
    build_timeline,
)
from repro.campaign.records import BENIGN, DETECTED, NO_INJECTION, TrialRecord
from repro.runtime.faults.base import InjectionRecord, cell_at, linear_offset
from repro.runtime.faults.spec import FAULT_MODELS

CLASS_NO_INJECTION = "no_injection"


class StaticOracle:
    """Predicts provable trial outcomes for one campaign spec."""

    def __init__(self, spec, prepared=None, max_events: int = DEFAULT_MAX_EVENTS):
        self.spec = spec
        self.enabled = False
        self.reason = ""
        self.timeline: Timeline | None = None
        self.classifier: ProgramClassifier | None = None
        if getattr(spec, "kind", None) != "program":
            self.reason = "only program campaigns have a static timeline"
            return
        if spec.recover:
            self.reason = "recovery trials re-execute; not modeled"
            return
        if spec.fault_model not in FAULT_MODELS:
            self.reason = f"unknown fault model {spec.fault_model!r}"
            return
        if prepared is None:
            prepared = spec.prepare()
        if getattr(prepared, "plan", None) is not None:
            self.reason = "recovery plan attached; not modeled"
            return
        try:
            timeline = build_timeline(
                prepared.program, prepared.params, max_events=max_events
            )
        except TimelineUnsupported as exc:
            self.reason = f"timeline unavailable: {exc}"
            return
        if (
            timeline.total_loads != prepared.total_loads
            or timeline.total_stores != prepared.total_stores
        ):
            # Safety valve: if the static replay's event stream does not
            # match the measured golden run exactly, nothing downstream
            # can be trusted.
            self.reason = (
                "static event totals "
                f"({timeline.total_loads}L/{timeline.total_stores}S) "
                "disagree with the golden run "
                f"({prepared.total_loads}L/{prepared.total_stores}S)"
            )
            return
        self.targets = tuple(prepared.targets)
        for name in self.targets:
            if name not in timeline.shapes:
                self.reason = f"target {name!r} is not a declared region"
                return
            if name in timeline.shadow:
                self.reason = (
                    f"target {name!r} is a shadow region; counter "
                    "corruption invalidates the concrete replay"
                )
                return
        self.timeline = timeline
        self.classifier = ProgramClassifier(timeline)
        # Mirrors faults.base.injectable_targets for the static shapes:
        # same order, same zero-extent filter, so rng.choice draws the
        # same element the live injector would.
        self.injectable = [
            name
            for name in self.targets
            if all(extent > 0 for extent in timeline.shapes[name])
        ]
        self._store_ordinals = {
            name: [
                event.ordinal
                for event in timeline.stores_by_array.get(name, [])
            ]
            for name in self.targets
        }
        self.enabled = True

    # ------------------------------------------------------------------
    def predict(self, index: int) -> TrialRecord | None:
        """A predicted :class:`TrialRecord`, or ``None`` = run it."""
        if not self.enabled:
            return None
        from repro.campaign.spec import trial_seed

        start = time.perf_counter()
        seed = trial_seed(self.spec.seed, index)
        import random

        rng = random.Random(seed)
        model = self.spec.fault_model
        if model == "random_cell":
            outcome = self._predict_random_cell(rng)
        elif model == "burst":
            outcome = self._predict_burst(rng)
        elif model == "stuck_bit":
            outcome = self._predict_stuck_bit(rng)
        elif model in ("addrgen_load", "addrgen_store"):
            outcome = self._predict_addrgen(rng, model.removeprefix("addrgen_"))
        else:  # pragma: no cover - guarded in __init__
            return None
        if outcome is None:
            return None
        verdict, injection, predicted_class = outcome
        return TrialRecord(
            index=index,
            seed=seed,
            verdict=verdict,
            injection=injection,
            elapsed=time.perf_counter() - start,
            extra={
                "fault_model": model,
                "predicted": True,
                "predicted_class": predicted_class,
            },
        )

    # -- per-model replication ------------------------------------------
    def _no_injection(self):
        return NO_INJECTION, None, CLASS_NO_INJECTION

    def _predict_random_cell(self, rng):
        timeline = self.timeline
        if self.spec.bits == 0 or self.targets == ():
            return self._no_injection()  # injector leaves the RNG untouched
        trigger = rng.randint(1, timeline.total_loads)
        if not self.injectable:
            return self._no_injection()
        array = rng.choice(self.injectable)
        shape = timeline.shapes[array]
        cell = tuple(rng.randrange(extent) for extent in shape)
        bits = tuple(rng.sample(range(64), self.spec.bits))
        injection = InjectionRecord(
            array=array, indices=cell, bits=bits, at_load=trigger
        ).to_dict()
        window = self.classifier.window_at(array, cell, trigger)
        if window.masked:
            return BENIGN, injection, CLASS_MASKED
        if self.classifier.window_detects(window, bits):
            return DETECTED, injection, CLASS_DETECTED
        return None

    def _predict_burst(self, rng):
        timeline = self.timeline
        spec = self.spec
        if spec.bits == 0 or spec.burst_cells == 0 or self.targets == ():
            return self._no_injection()
        trigger = rng.randint(1, timeline.total_loads)
        if not self.injectable:
            return self._no_injection()
        array = rng.choice(self.injectable)
        shape = timeline.shapes[array]
        size = 1
        for extent in shape:
            size *= extent
        start = rng.randrange(size)
        struck: list[tuple[int, ...]] = []
        struck_bits: list[tuple[int, ...]] = []
        first_bits: tuple[int, ...] = ()
        for offset in range(start, min(start + spec.burst_cells, size)):
            cell = cell_at(offset, shape)
            bits = tuple(rng.sample(range(64), spec.bits))
            struck.append(cell)
            struck_bits.append(bits)
            if not first_bits:
                first_bits = bits
        injection = InjectionRecord(
            array=array,
            indices=struck[0],
            bits=first_bits,
            at_load=trigger,
            kind="burst",
            cells=tuple(struck),
        ).to_dict()
        exposed = []
        for cell, bits in zip(struck, struck_bits):
            window = self.classifier.window_at(array, cell, trigger)
            if window.masked:
                continue
            exposed.append((window, bits))
        if not exposed:
            return BENIGN, injection, CLASS_MASKED
        if len(exposed) == 1 and self.classifier.window_detects(*exposed[0]):
            # Every other struck cell is masked (zero checksum delta),
            # so the single exposed cell's provable imbalance survives
            # the sum over cells.
            return DETECTED, injection, CLASS_DETECTED
        return None

    def _predict_stuck_bit(self, rng):
        timeline = self.timeline
        spec = self.spec
        if self.targets == ():
            return self._no_injection()
        start = rng.randint(1, timeline.total_loads)
        if not self.injectable:
            return self._no_injection()
        array = rng.choice(self.injectable)
        shape = timeline.shapes[array]
        cell = tuple(rng.randrange(extent) for extent in shape)
        bit = rng.randrange(64)
        value = rng.randint(0, 1)  # campaign specs never pin stuck_to
        window = (
            spec.stuck_window
            if spec.stuck_window > 0
            else max(16, timeline.total_loads // 16)
        )
        injection = InjectionRecord(
            array=array,
            indices=cell,
            bits=(bit,),
            at_load=start,
            kind="stuck_bit",
            cells=(cell,),
            window=(start, start + window - 1),
            stuck_to=value,
        ).to_dict()
        if timeline.last_load_ordinal(array, cell) < start:
            # The forced bit is never read at or after the arm point:
            # stores during the window are re-forced at rest but those
            # words are never loaded either, so nothing propagates and
            # no contribution is corrupted.  (Never predict DETECTED
            # here — forcing can be a value-level no-op.)
            return BENIGN, injection, CLASS_MASKED
        return None

    def _predict_addrgen(self, rng, mode: str):
        timeline = self.timeline
        if self.targets == ():
            return self._no_injection()
        expected = (
            timeline.total_loads if mode == "load" else timeline.total_stores
        )
        trigger = rng.randint(1, expected)
        fired_name = None
        fired_ordinal = None
        for name in self.targets:
            shape = timeline.shapes[name]
            if not shape or any(extent <= 0 for extent in shape):
                continue  # scalars / zero-size regions never fire
            if mode == "load":
                ordinals = timeline.loads_by_array.get(name, [])
            else:
                ordinals = self._store_ordinals.get(name, [])
            position = bisect_left(ordinals, trigger)
            if position < len(ordinals):
                candidate = ordinals[position]
                if fired_ordinal is None or candidate < fired_ordinal:
                    fired_ordinal = candidate
                    fired_name = name
        if fired_ordinal is None:
            return self._no_injection()
        if mode == "load":
            # A redirected load reads a pristine word from the wrong
            # cell — the structurally checksum-blind class; whether it
            # propagates is value-dependent, so measure it.
            return None
        name = fired_name
        shape = timeline.shapes[name]
        size = 1
        for extent in shape:
            size *= extent
        events = timeline.stores_by_array[name]
        event = events[
            bisect_left(self._store_ordinals[name], fired_ordinal)
        ]
        intended = event.indices
        offset = linear_offset(intended, shape)
        bit = rng.randrange(size.bit_length())
        actual = cell_at(offset ^ (1 << bit), shape)
        in_bounds = actual[0] < shape[0]
        cells = (intended, actual) if in_bounds else (intended,)
        injection = InjectionRecord(
            array=name,
            indices=intended,
            bits=(bit,),
            at_load=fired_ordinal,
            kind="addrgen_store",
            cells=cells,
            actual=actual,
        ).to_dict()
        # BENIGN iff neither the stale intended cell nor the clobbered
        # actual cell is ever loaded before its next (clean) store, and
        # the fired store carries no effectful contribution.  (The
        # def-side contribution itself uses register bits + the
        # intended address, so it is identical in both runs; the checks
        # below are the belt to that suspender.)
        for contrib_name, count, real in event.contribs:
            if not real or count is None or count != 0:
                return None
        if not timeline.store_kills(name, intended, event):
            return None
        if in_bounds and not timeline.store_kills(name, actual, event):
            return None
        return BENIGN, injection, CLASS_MASKED
