"""Static execution timeline of an instrumented program.

The classifier (:mod:`repro.analysis.classify`) and the campaign
oracle (:mod:`repro.analysis.oracle`) need to know, for every memory
cell, *when* it is loaded and stored (in the global load/store ordinal
streams the fault injectors trigger on) and *which checksum
contributions* consume each loaded register copy.  This module replays
the program symbolically to build exactly that: control flow
(iterators, parameters, shadow counters) is evaluated concretely —
it never depends on faultable data for the affine kernels — while
data values are an opaque :data:`UNKNOWN`.

The replay mirrors :class:`repro.runtime.interpreter.Interpreter`
statement for statement, including the per-bundle load cache (a cell
loaded once per instrumented assignment yields *one* load event, and
every contribution of that bundle consumes the same register copy) and
the typed counter load/store pairs.  Anything whose event stream would
depend on data values — ``while`` loops, data-dependent subscripts or
guards, ``ChecksumReset`` — raises :class:`TimelineUnsupported`; the
callers then simply fall back to measured trials.

Soundness-relevant annotations recorded along the way:

* ``poison_all`` on a load event — its value steers control flow or
  address arithmetic, so a strike on it invalidates the whole event
  stream (never classify such a window as detected).
* poison contributions ``(name, None, real=False)`` — the load feeds a
  checksum contribution *non-linearly* (an expression-valued
  ``ChecksumAdd`` or a data-dependent count), so channel ``name``
  cannot be reasoned about for strikes covering this load.
* real contributions with ``count=None`` — the contribution multiplies
  the cell's value but by a statically unknown factor.
* ``divide_hazard`` — some division's divisor is data-dependent, so a
  corrupted value could crash the run instead of reaching a verifier
  (suppresses *detected* predictions; masked windows are unaffected
  because the faulty run never feeds corrupt data into the divisor).
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from typing import Mapping

from repro.ir.analysis import to_affine
from repro.ir.nodes import (
    ArrayRef,
    Assign,
    BinOp,
    Call,
    ChecksumAdd,
    ChecksumAssert,
    ChecksumReset,
    Const,
    CounterIncrement,
    If,
    Loop,
    Program,
    Select,
    UnOp,
    VarRef,
    WhileLoop,
)
from repro.runtime.memory import decode_value, encode_value

MASK64 = (1 << 64) - 1

DEFAULT_MAX_EVENTS = 20_000_000


class TimelineUnsupported(Exception):
    """The program's event stream cannot be derived statically."""


class _Unknown:
    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "UNKNOWN"


UNKNOWN = _Unknown()
"""Sentinel for a data value the static replay cannot know."""


class LoadEvent:
    """One load in the global ordinal stream (1-based, dense)."""

    __slots__ = ("ordinal", "contribs", "poison_all")

    def __init__(self, ordinal: int) -> None:
        self.ordinal = ordinal
        self.contribs: list[tuple[str, int | None, bool]] = []
        self.poison_all = False

    @property
    def is_load(self) -> bool:
        return True


class StoreEvent:
    """One store: ``loads_before`` positions it between load ordinals."""

    __slots__ = ("ordinal", "loads_before", "contribs", "indices")

    def __init__(
        self, ordinal: int, loads_before: int, indices: tuple[int, ...]
    ) -> None:
        self.ordinal = ordinal
        self.loads_before = loads_before
        self.contribs: list[tuple[str, int | None, bool]] = []
        self.indices = indices

    @property
    def is_load(self) -> bool:
        return False


class Timeline:
    """The complete static event stream of one (program, params) run."""

    def __init__(self, program: Program, params: dict[str, int]) -> None:
        self.program = program
        self.params = params
        self.shapes: dict[str, tuple[int, ...]] = {}
        self.elem_types: dict[str, str] = {}
        self.shadow: set[str] = set()
        self.cells: dict[tuple[str, tuple[int, ...]], list] = {}
        self.loads_by_array: dict[str, list[int]] = {}
        self.stores_by_array: dict[str, list[StoreEvent]] = {}
        self.asserts: list[tuple[int, int, tuple]] = []
        self.total_loads = 0
        self.total_stores = 0
        self.statements = 0
        self.divide_hazard = False

    # -- queries used by the classifier / oracle ------------------------
    def cell_events(self, array: str, cell: tuple[int, ...]) -> list:
        return self.cells.get((array, cell), [])

    def last_load_ordinal(self, array: str, cell: tuple[int, ...]) -> int:
        """0 when the cell is never loaded."""
        for event in reversed(self.cell_events(array, cell)):
            if event.is_load:
                return event.ordinal
        return 0

    def store_kills(
        self, array: str, cell: tuple[int, ...], store_event: StoreEvent
    ) -> bool:
        """No load of ``(array, cell)`` strictly after ``store_event``
        before the cell's next store — a value written (or clobbered)
        at that point dies unread."""
        key = (store_event.loads_before, 1, store_event.ordinal)
        for event in self.cell_events(array, cell):
            if event.is_load:
                event_key = (event.ordinal, 0, 0)
            else:
                event_key = (event.loads_before, 1, event.ordinal)
            if event_key <= key:
                continue
            return not event.is_load
        return True

    def final_assert_pairs(self) -> tuple[tuple[str, str], ...]:
        """Pairs checked after the last load *and* store (dedup'd)."""
        seen: dict[tuple[str, str], None] = {}
        for loads_before, stores_before, pairs in self.asserts:
            if (
                loads_before == self.total_loads
                and stores_before == self.total_stores
            ):
                for pair in pairs:
                    seen.setdefault(tuple(pair), None)
        return tuple(seen)


class _Builder:
    """Mirrors ``Interpreter`` exactly, recording events not values."""

    def __init__(
        self,
        program: Program,
        params: Mapping[str, int],
        max_events: int = DEFAULT_MAX_EVENTS,
    ) -> None:
        self.timeline = Timeline(program, {p: int(params[p]) for p in program.params})
        self.program = program
        self.params = self.timeline.params
        self.max_events = max_events
        self._load_count = 0
        self._store_count = 0
        self._steps = 0
        self._env: dict[str, int] = dict(self.params)
        self._scalar_types = {d.name: d.elem_type for d in program.scalars}
        self._shadow_values: dict[tuple, object] = {}
        self._collectors: list[list[LoadEvent]] = []
        self._events = 0
        self._declare_regions()
        self._stmt_dispatch = {
            Assign: self._exec_assign,
            Loop: self._exec_loop,
            If: self._exec_if,
            ChecksumAdd: self._exec_checksum_add,
            CounterIncrement: self._exec_counter_increment,
            ChecksumAssert: self._exec_assert,
        }

    # ------------------------------------------------------------------
    def build(self) -> Timeline:
        self._exec_body(self.program.body)
        t = self.timeline
        t.total_loads = self._load_count
        t.total_stores = self._store_count
        t.statements = self._steps
        return t

    def _declare_regions(self) -> None:
        t = self.timeline
        for decl in self.program.arrays:
            shape = []
            for dim in decl.dims:
                affine = to_affine(dim, set(self.program.params))
                if affine is None:
                    raise TimelineUnsupported(
                        f"array {decl.name!r} extent is not affine"
                    )
                shape.append(int(affine.evaluate(self.params)))
            if any(extent < 0 for extent in shape):
                raise TimelineUnsupported(
                    f"array {decl.name!r} has a negative extent"
                )
            t.shapes[decl.name] = tuple(shape)
            t.elem_types[decl.name] = decl.elem_type
            if decl.is_shadow:
                t.shadow.add(decl.name)
        for decl in self.program.scalars:
            t.shapes[decl.name] = ()
            t.elem_types[decl.name] = decl.elem_type
            if decl.is_shadow:
                t.shadow.add(decl.name)

    # -- event recording -------------------------------------------------
    def _bump_events(self) -> None:
        self._events += 1
        if self._events > self.max_events:
            raise TimelineUnsupported(
                f"event budget exceeded ({self.max_events})"
            )

    def _check_bounds(self, name: str, indices: tuple[int, ...]) -> None:
        shape = self.timeline.shapes.get(name)
        if shape is None:
            raise TimelineUnsupported(f"undeclared region {name!r}")
        if len(indices) != len(shape) or any(
            not 0 <= index < extent for index, extent in zip(indices, shape)
        ):
            raise TimelineUnsupported(
                f"out-of-bounds access {name}{list(indices)}"
            )

    def _record_load(self, name: str, indices: tuple[int, ...]) -> LoadEvent:
        self._check_bounds(name, indices)
        self._bump_events()
        self._load_count += 1
        event = LoadEvent(self._load_count)
        self.timeline.cells.setdefault((name, indices), []).append(event)
        self.timeline.loads_by_array.setdefault(name, []).append(
            event.ordinal
        )
        for collector in self._collectors:
            collector.append(event)
        return event

    def _record_store(self, name: str, indices: tuple[int, ...]) -> StoreEvent:
        self._check_bounds(name, indices)
        self._bump_events()
        self._store_count += 1
        event = StoreEvent(self._store_count, self._load_count, indices)
        self.timeline.cells.setdefault((name, indices), []).append(event)
        self.timeline.stores_by_array.setdefault(name, []).append(event)
        return event

    # -- statements ------------------------------------------------------
    def _exec_body(self, body) -> None:
        for stmt in body:
            self._exec_statement(stmt)

    def _exec_statement(self, stmt) -> None:
        self._steps += 1
        handler = self._stmt_dispatch.get(type(stmt))
        if handler is None:
            for node_type, candidate in self._stmt_dispatch.items():
                if isinstance(stmt, node_type):
                    handler = candidate
                    break
            else:
                if isinstance(stmt, (WhileLoop, ChecksumReset)):
                    raise TimelineUnsupported(
                        f"{type(stmt).__name__} has a data-dependent "
                        "event stream"
                    )
                raise TimelineUnsupported(f"unsupported statement {stmt!r}")
        handler(stmt)

    def _exec_loop(self, stmt: Loop) -> None:
        lower = self._eval_control(stmt.lower)
        upper = self._eval_control(stmt.upper)
        saved = self._env.get(stmt.var)
        for value in range(lower, upper + 1):
            self._env[stmt.var] = value
            self._exec_body(stmt.body)
        if saved is None:
            self._env.pop(stmt.var, None)
        else:
            self._env[stmt.var] = saved

    def _exec_if(self, stmt: If) -> None:
        if self._eval_control(stmt.cond):
            self._exec_body(stmt.then_body)
        else:
            self._exec_body(stmt.else_body)

    def _exec_assign(self, stmt: Assign) -> None:
        cache: dict[tuple, tuple[object, LoadEvent]] = {}
        instr = stmt.instrumentation
        if isinstance(stmt.lhs, ArrayRef):
            target = (stmt.lhs.array, self._eval_indices(stmt.lhs.indices, cache))
        else:
            target = (stmt.lhs.name, ())
        value = self._eval(stmt.rhs, cache)
        if instr:
            for use in instr.uses:
                _, event = self._ref_through_cache(use.ref, cache)
                count = self._eval_count(use.count, cache, use.checksum)
                event.contribs.append((use.checksum, count, True))
            for counter_ref in instr.counter_increments:
                self._bump_counter(counter_ref, cache, 1)
            if instr.pre_overwrite:
                self._pre_overwrite(stmt, instr.pre_overwrite, cache)
        store_event = self._record_store(target[0], target[1])
        if target[0] in self.timeline.shadow:
            self._track_shadow(target, value)
        cache.pop(target, None)
        if instr and instr.duplicate_store is not None:
            dup = instr.duplicate_store
            if isinstance(dup, ArrayRef):
                dup_target = (dup.array, self._eval_indices(dup.indices, cache))
            else:
                dup_target = (dup.name, ())
            self._record_store(dup_target[0], dup_target[1])
            if dup_target[0] in self.timeline.shadow:
                self._track_shadow(dup_target, value)
            cache.pop(dup_target, None)
        if instr and instr.definition:
            d = instr.definition
            count = self._eval_count(d.count, cache, d.checksum)
            store_event.contribs.append((d.checksum, count, True))
            if d.aux:
                store_event.contribs.append((d.aux_checksum, 1, True))

    def _pre_overwrite(self, stmt: Assign, adjust, cache) -> None:
        _, event = self._ref_through_cache(stmt.lhs, cache)
        counter_value = self._load_counter(adjust.counter, cache)
        if counter_value is UNKNOWN:
            def_count = None
        else:
            def_count = int(counter_value) - 1
        event.contribs.append((adjust.def_checksum, def_count, True))
        event.contribs.append((adjust.e_use_checksum, 1, True))
        self._store_counter(adjust.counter, cache, 0)

    def _exec_checksum_add(self, stmt: ChecksumAdd) -> None:
        cache: dict[tuple, tuple[object, LoadEvent]] = {}
        if isinstance(stmt.value, (ArrayRef, VarRef)) and self._is_data_ref(
            stmt.value
        ):
            _, event = self._ref_through_cache(stmt.value, cache)
            count = self._eval_count(stmt.count, cache, stmt.checksum)
            event.contribs.append((stmt.checksum, count, True))
            return
        # Expression-valued contribution: the added bits are a
        # *non-linear* function of whatever was loaded to compute it, so
        # every such load poisons channel ``stmt.checksum``.
        self._collectors.append([])
        try:
            self._eval(stmt.value, cache)
        finally:
            loaded = self._collectors.pop()
        for event in loaded:
            event.contribs.append((stmt.checksum, None, False))
        self._eval_count(stmt.count, cache, stmt.checksum)

    def _exec_counter_increment(self, stmt: CounterIncrement) -> None:
        cache: dict[tuple, tuple[object, LoadEvent]] = {}
        amount = self._eval(stmt.amount, cache)
        self._bump_counter(stmt.counter, cache, amount)

    def _exec_assert(self, stmt: ChecksumAssert) -> None:
        self.timeline.asserts.append(
            (self._load_count, self._store_count, tuple(stmt.pairs))
        )

    # -- counters (shadow state) ----------------------------------------
    def _counter_location(self, ref, cache) -> tuple[str, tuple[int, ...]]:
        if isinstance(ref, ArrayRef):
            return ref.array, self._eval_indices(ref.indices, cache)
        return ref.name, ()

    def _shadow_value(self, key: tuple) -> object:
        return self._shadow_values.get(key, 0)

    def _track_shadow(self, key: tuple, value) -> None:
        if value is UNKNOWN:
            self._shadow_values[key] = UNKNOWN
            return
        elem_type = self.timeline.elem_types.get(key[0], "i64")
        self._shadow_values[key] = decode_value(
            encode_value(value, elem_type), elem_type
        )

    def _load_counter(self, ref, cache):
        name, indices = self._counter_location(ref, cache)
        self._record_load(name, indices)
        if name not in self.timeline.shadow:
            raise TimelineUnsupported(
                f"counter {name!r} is not a shadow region"
            )
        value = self._shadow_value((name, indices))
        return value if value is UNKNOWN else int(value)

    def _store_counter(self, ref, cache, value) -> None:
        name, indices = self._counter_location(ref, cache)
        self._record_store(name, indices)
        if name in self.timeline.shadow:
            self._track_shadow((name, indices), value)

    def _bump_counter(self, ref, cache, amount) -> None:
        # Mirror Interpreter._bump_counter: one typed load + one store.
        name, indices = self._counter_location(ref, cache)
        self._record_load(name, indices)
        self._record_store(name, indices)
        if name not in self.timeline.shadow:
            raise TimelineUnsupported(
                f"counter {name!r} is not a shadow region"
            )
        old = self._shadow_value((name, indices))
        if old is UNKNOWN or amount is UNKNOWN:
            self._shadow_values[(name, indices)] = UNKNOWN
        else:
            self._track_shadow((name, indices), int(old) + int(amount))

    # -- expression evaluation ------------------------------------------
    def _is_data_ref(self, ref) -> bool:
        if isinstance(ref, ArrayRef):
            return True
        return ref.name in self._scalar_types

    def _eval_indices(self, indices, cache) -> tuple[int, ...]:
        if not indices:
            return ()
        self._collectors.append([])
        try:
            values = tuple(self._eval(index, cache) for index in indices)
        finally:
            loaded = self._collectors.pop()
        for event in loaded:
            event.poison_all = True
        if any(value is UNKNOWN for value in values):
            raise TimelineUnsupported("data-dependent subscript")
        return tuple(int(value) for value in values)

    def _eval_control(self, expr) -> int:
        """Loop bounds / guards: evaluated outside any bundle cache."""
        self._collectors.append([])
        try:
            value = self._eval(expr, None)
        finally:
            loaded = self._collectors.pop()
        for event in loaded:
            event.poison_all = True
        if value is UNKNOWN:
            raise TimelineUnsupported("data-dependent control flow")
        return int(value)

    def _eval_count(self, expr, cache, checksum: str):
        """A contribution count; data-fed counts poison ``checksum``."""
        self._collectors.append([])
        try:
            value = self._eval(expr, cache)
        finally:
            loaded = self._collectors.pop()
        if value is UNKNOWN:
            for event in loaded:
                event.contribs.append((checksum, None, False))
            return None
        return int(value)

    def _ref_through_cache(self, ref, cache):
        if isinstance(ref, ArrayRef):
            key = (ref.array, self._eval_indices(ref.indices, cache))
        else:
            key = (ref.name, ())
        if cache is not None and key in cache:
            return cache[key]
        event = self._record_load(key[0], key[1])
        if key[0] in self.timeline.shadow:
            value = self._shadow_value(key)
        else:
            value = UNKNOWN
        entry = (value, event)
        if cache is not None:
            cache[key] = entry
        return entry

    def _eval(self, expr, cache):
        if isinstance(expr, Const):
            return expr.value
        if isinstance(expr, VarRef):
            if expr.name in self._env:
                return self._env[expr.name]
            if expr.name in self._scalar_types:
                return self._ref_through_cache(expr, cache)[0]
            raise TimelineUnsupported(f"unbound name {expr.name!r}")
        if isinstance(expr, ArrayRef):
            return self._ref_through_cache(expr, cache)[0]
        if isinstance(expr, BinOp):
            return self._eval_binop(expr, cache)
        if isinstance(expr, UnOp):
            operand = self._eval(expr.operand, cache)
            if expr.op == "-":
                return UNKNOWN if operand is UNKNOWN else -operand
            if expr.op == "!":
                if operand is UNKNOWN:
                    return UNKNOWN
                return 0 if operand else 1
            raise TimelineUnsupported(f"unknown unary op {expr.op!r}")
        if isinstance(expr, Call):
            return self._eval_call(expr, cache)
        if isinstance(expr, Select):
            return self._eval_select(expr, cache)
        raise TimelineUnsupported(f"cannot evaluate {expr!r}")

    def _eval_select(self, expr: Select, cache):
        cond = self._eval(expr.cond, cache)
        if cond is UNKNOWN:
            if _has_data_reads(expr.if_true, self.timeline.shapes) or _has_data_reads(
                expr.if_false, self.timeline.shapes
            ):
                raise TimelineUnsupported(
                    "data-dependent select over data reads"
                )
            return UNKNOWN
        if cond:
            return self._eval(expr.if_true, cache)
        return self._eval(expr.if_false, cache)

    def _eval_binop(self, expr: BinOp, cache):
        op = expr.op
        if op in ("&&", "||"):
            left = self._eval(expr.left, cache)
            if left is UNKNOWN:
                if _has_data_reads(expr.right, self.timeline.shapes):
                    raise TimelineUnsupported(
                        "data-dependent short-circuit over data reads"
                    )
                return UNKNOWN
            if op == "&&":
                if not left:
                    return 0
                right = self._eval(expr.right, cache)
                if right is UNKNOWN:
                    return UNKNOWN
                return 1 if right else 0
            if left:
                return 1
            right = self._eval(expr.right, cache)
            if right is UNKNOWN:
                return UNKNOWN
            return 1 if right else 0
        left = self._eval(expr.left, cache)
        right = self._eval(expr.right, cache)
        if op in ("/", "%") and right is UNKNOWN:
            # A corrupted divisor can raise instead of reaching a
            # verifier; only *detected* predictions are affected.
            self.timeline.divide_hazard = True
        if left is UNKNOWN or right is UNKNOWN:
            return UNKNOWN
        if op in ("==", "!=", "<", "<=", ">", ">="):
            result = {
                "==": left == right,
                "!=": left != right,
                "<": left < right,
                "<=": left <= right,
                ">": left > right,
                ">=": left >= right,
            }[op]
            return 1 if result else 0
        if op == "+":
            return left + right
        if op == "-":
            return left - right
        if op == "*":
            return left * right
        if op == "/":
            if isinstance(left, int) and isinstance(right, int):
                if right == 0:
                    raise TimelineUnsupported("integer division by zero")
                return left // right
            if right == 0:
                import math

                if left == 0:
                    return float("nan")
                sign = math.copysign(1.0, float(left)) * math.copysign(
                    1.0, float(right)
                )
                return math.copysign(math.inf, sign)
            return left / right
        if op == "%":
            if right == 0:
                raise TimelineUnsupported("modulo by zero")
            return left % right
        raise TimelineUnsupported(f"unknown binary op {op!r}")

    def _eval_call(self, expr: Call, cache):
        import math

        args = [self._eval(a, cache) for a in expr.args]
        func = expr.func
        if func == "mod" and len(args) == 2 and args[1] is UNKNOWN:
            self.timeline.divide_hazard = True
        if any(a is UNKNOWN for a in args):
            return UNKNOWN
        if func == "sqrt":
            if args[0] < 0:
                return float("nan")
            return math.sqrt(args[0])
        if func == "abs":
            return abs(args[0])
        if func == "min":
            return min(args)
        if func == "max":
            return max(args)
        if func == "exp":
            try:
                return math.exp(args[0])
            except OverflowError:
                return math.inf
        if func == "sin":
            return math.sin(args[0])
        if func == "cos":
            return math.cos(args[0])
        if func == "floor":
            return math.floor(args[0])
        if func == "mod":
            return args[0] % args[1]
        raise TimelineUnsupported(f"unknown intrinsic {func!r}")


def _has_data_reads(expr, regions: dict) -> bool:
    """Whether evaluating ``expr`` could touch declared memory."""
    stack = [expr]
    while stack:
        node = stack.pop()
        if isinstance(node, ArrayRef):
            return True
        if isinstance(node, VarRef):
            if node.name in regions:
                return True
        elif isinstance(node, BinOp):
            stack.extend((node.left, node.right))
        elif isinstance(node, UnOp):
            stack.append(node.operand)
        elif isinstance(node, Call):
            stack.extend(node.args)
        elif isinstance(node, Select):
            stack.extend((node.cond, node.if_true, node.if_false))
    return False


# ----------------------------------------------------------------------
# Memoized entry point
# ----------------------------------------------------------------------
_MEMO: OrderedDict = OrderedDict()
_MEMO_CAP = 8


def _memo_key(program: Program, params: Mapping[str, int]) -> tuple:
    from repro.ir.printer import program_to_text

    digest = hashlib.sha256(program_to_text(program).encode()).hexdigest()
    return digest, tuple(sorted((k, int(v)) for k, v in params.items()))


def build_timeline(
    program: Program,
    params: Mapping[str, int],
    max_events: int = DEFAULT_MAX_EVENTS,
) -> Timeline:
    """Build (or fetch the memoized) timeline for ``(program, params)``.

    Raises :class:`TimelineUnsupported` for programs whose event stream
    is data-dependent; failures are memoized too so repeated callers
    don't replay the walk.
    """
    key = _memo_key(program, params)
    if key in _MEMO:
        _MEMO.move_to_end(key)
        cached = _MEMO[key]
        if isinstance(cached, TimelineUnsupported):
            raise cached
        return cached
    try:
        timeline = _Builder(program, params, max_events=max_events).build()
    except TimelineUnsupported as exc:
        _MEMO[key] = exc
        while len(_MEMO) > _MEMO_CAP:
            _MEMO.popitem(last=False)
        raise
    _MEMO[key] = timeline
    while len(_MEMO) > _MEMO_CAP:
        _MEMO.popitem(last=False)
    return timeline


def clear_timeline_memo() -> None:
    _MEMO.clear()
