"""Static analysis over instrumented IR (see docs/STATIC_ANALYSIS.md).

Layers:

* :mod:`repro.analysis.timeline` — symbolic replay of the program into
  a per-cell load/store event stream with checksum-contribution
  annotations.
* :mod:`repro.analysis.classify` — per-(cell, strike-time) outcome
  classification: ``detected`` / ``masked`` / ``vulnerable`` /
  ``unknown``.
* :mod:`repro.analysis.oracle` — per-trial verdict prediction by exact
  injector-RNG replication (powers ``campaign run --prune static``).
* :mod:`repro.analysis.coverage` — whole-distribution class fractions
  per benchmark and fault model (``repro analyze``,
  ``ANALYSIS_coverage.json``).
* :mod:`repro.analysis.lint` — well-formedness checks for instrumented
  IR (``repro lint``, ``instrument --lint``).
"""

from repro.analysis.classify import (
    CLASSES,
    DETECTED,
    MASKED,
    UNKNOWN,
    VULNERABLE,
    ProgramClassifier,
    detect_probability,
)
from repro.analysis.coverage import analyze_all, analyze_benchmark
from repro.analysis.lint import LintIssue, has_errors, lint_program
from repro.analysis.oracle import StaticOracle
from repro.analysis.timeline import (
    Timeline,
    TimelineUnsupported,
    build_timeline,
    clear_timeline_memo,
)

__all__ = [
    "CLASSES",
    "DETECTED",
    "MASKED",
    "UNKNOWN",
    "VULNERABLE",
    "LintIssue",
    "ProgramClassifier",
    "StaticOracle",
    "Timeline",
    "TimelineUnsupported",
    "analyze_all",
    "analyze_benchmark",
    "build_timeline",
    "clear_timeline_memo",
    "detect_probability",
    "has_errors",
    "lint_program",
]
