"""Static well-formedness checks for instrumented IR (``repro lint``).

Instrumentation bugs are quiet: a contribution added to a channel no
verifier checks, a counter pointed at a non-shadow region, a guard
that can never fire — none of them crash, they just silently erode
coverage.  The linter catches the mechanical classes:

* **uncovered-channel** (error) — a checksum channel receives
  contributions but appears in no ``ChecksumAssert`` pair.
* **no-final-assert** (error) — an instrumented program with no
  verifier at all.
* **counter-not-shadow** (error) — counter increments, pre-overwrite
  epilogues, or duplicate stores target a non-shadow region (they
  would corrupt data the checksums protect).
* **undeclared-region** (error) — an access to a region with no
  declaration.
* **channel-imbalance** (error, needs ``params``) — a final-assert
  pair whose per-generation def/use nets do not cancel on the static
  timeline: the verifier would fire on a fault-free run.
* **unreachable-guard** (warning) — an ``if`` whose condition is
  provably empty inside its loop nest (ISL emptiness on the affine
  guard polyhedron).
* **vacuous-pair** (info) — an asserted pair no contribution ever
  feeds (always-zero compare; harmless but noteworthy).
* **balance-skipped** (info) — the timeline is unavailable
  (``while`` loops, data-dependent control) so the dynamic balance
  check did not run.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ir.nodes import (
    ArrayRef,
    Assign,
    BinOp,
    Call,
    ChecksumAdd,
    ChecksumAssert,
    ChecksumReset,
    CounterIncrement,
    If,
    Loop,
    Program,
    Select,
    UnOp,
    VarRef,
    WhileLoop,
)

SEVERITIES = ("error", "warning", "info")


@dataclass(frozen=True)
class LintIssue:
    severity: str
    code: str
    message: str

    def __str__(self) -> str:
        return f"{self.severity}: [{self.code}] {self.message}"


def has_errors(issues) -> bool:
    return any(issue.severity == "error" for issue in issues)


def _expr_array_refs(expr, out: list) -> None:
    stack = [expr]
    while stack:
        node = stack.pop()
        if isinstance(node, ArrayRef):
            out.append(node)
            stack.extend(node.indices)
        elif isinstance(node, BinOp):
            stack.extend((node.left, node.right))
        elif isinstance(node, UnOp):
            stack.append(node.operand)
        elif isinstance(node, Call):
            stack.extend(node.args)
        elif isinstance(node, Select):
            stack.extend((node.cond, node.if_true, node.if_false))


class _Linter:
    def __init__(self, program: Program) -> None:
        self.program = program
        self.issues: list[LintIssue] = []
        self.arrays = {decl.name for decl in program.arrays}
        self.scalars = {decl.name for decl in program.scalars}
        self.regions = self.arrays | self.scalars
        self.shadow = {
            decl.name
            for decl in (*program.arrays, *program.scalars)
            if decl.is_shadow
        }
        self.contributed: dict[str, int] = {}
        self.asserted: set[str] = set()
        self.has_asserts = False
        self.has_instrumentation = False

    def report(self, severity: str, code: str, message: str) -> None:
        self.issues.append(LintIssue(severity, code, message))

    # -- structure walk --------------------------------------------------
    def run(self) -> list[LintIssue]:
        self._walk(self.program.body, loops=(), in_while=False)
        self._check_channels()
        return self.issues

    def _walk(self, body, loops, in_while) -> None:
        for stmt in body:
            if isinstance(stmt, Loop):
                self._walk(stmt.body, loops + (stmt,), in_while)
            elif isinstance(stmt, WhileLoop):
                self._walk(stmt.body, loops, in_while=True)
            elif isinstance(stmt, If):
                self._check_guard(stmt, loops, in_while)
                self._walk(stmt.then_body, loops, in_while)
                self._walk(stmt.else_body, loops, in_while)
            elif isinstance(stmt, Assign):
                self._check_assign(stmt)
            elif isinstance(stmt, ChecksumAdd):
                self.has_instrumentation = True
                self._count_channel(stmt.checksum)
                self._check_refs(stmt.value, f"checksum add to {stmt.checksum!r}")
                self._check_refs(stmt.count, "checksum add count")
            elif isinstance(stmt, CounterIncrement):
                self.has_instrumentation = True
                self._check_counter(stmt.counter, "counter increment")
            elif isinstance(stmt, ChecksumAssert):
                self.has_asserts = True
                for pair in stmt.pairs:
                    self.asserted.update(pair)
            elif isinstance(stmt, ChecksumReset):
                self.has_instrumentation = True

    def _count_channel(self, name: str) -> None:
        self.contributed[name] = self.contributed.get(name, 0) + 1

    def _check_refs(self, expr, where: str) -> None:
        refs: list[ArrayRef] = []
        _expr_array_refs(expr, refs)
        for ref in refs:
            if ref.array not in self.regions:
                self.report(
                    "error",
                    "undeclared-region",
                    f"{where} references undeclared region {ref.array!r}",
                )

    def _check_counter(self, ref, where: str) -> None:
        name = ref.array if isinstance(ref, ArrayRef) else ref.name
        if name not in self.regions:
            self.report(
                "error",
                "undeclared-region",
                f"{where} targets undeclared region {name!r}",
            )
        elif name not in self.shadow:
            self.report(
                "error",
                "counter-not-shadow",
                f"{where} targets non-shadow region {name!r}; it would "
                "overwrite protected data",
            )

    def _check_assign(self, stmt: Assign) -> None:
        self._check_refs(stmt.rhs, f"assignment {stmt.label or ''}".strip())
        if isinstance(stmt.lhs, ArrayRef):
            self._check_refs(stmt.lhs, "assignment target")
        instr = stmt.instrumentation
        if not instr:
            return
        self.has_instrumentation = True
        label = stmt.label or "<unlabelled>"
        for use in instr.uses:
            self._count_channel(use.checksum)
            self._check_refs(use.ref, f"{label} use contribution")
            self._check_refs(use.count, f"{label} use count")
        for counter_ref in instr.counter_increments:
            self._check_counter(counter_ref, f"{label} counter increment")
        if instr.pre_overwrite:
            adjust = instr.pre_overwrite
            self._count_channel(adjust.def_checksum)
            self._count_channel(adjust.e_use_checksum)
            self._check_counter(adjust.counter, f"{label} pre-overwrite counter")
        if instr.duplicate_store is not None:
            dup = instr.duplicate_store
            name = dup.array if isinstance(dup, ArrayRef) else dup.name
            if name not in self.regions:
                self.report(
                    "error",
                    "undeclared-region",
                    f"{label} duplicate store targets undeclared "
                    f"region {name!r}",
                )
            elif name not in self.shadow:
                self.report(
                    "error",
                    "counter-not-shadow",
                    f"{label} duplicate store targets non-shadow region "
                    f"{name!r}",
                )
        if instr.definition:
            self._count_channel(instr.definition.checksum)
            if instr.definition.aux:
                self._count_channel(instr.definition.aux_checksum)
            self._check_refs(instr.definition.count, f"{label} def count")

    # -- guard reachability ---------------------------------------------
    def _check_guard(self, stmt: If, loops, in_while: bool) -> None:
        if in_while:
            return  # while trip counts are dynamic; nothing to prove
        from repro.isl.basic_set import BasicSet
        from repro.isl.constraints import Constraint
        from repro.isl.linear import LinExpr
        from repro.isl.space import Space
        from repro.ir.analysis import to_affine
        from repro.poly.model import condition_constraints

        params = set(self.program.params)
        names = set(params)
        constraints = []
        iterators = []
        for loop in loops:
            lower = to_affine(loop.lower, names)
            upper = to_affine(loop.upper, names)
            if lower is None or upper is None:
                return
            names.add(loop.var)
            iterators.append(loop.var)
            var = LinExpr.var(loop.var)
            constraints.append(Constraint.ge(var, lower))
            constraints.append(Constraint.le(var, upper))
        guard = condition_constraints(stmt.cond, names)
        if guard is None:
            return
        space = Space.set_space(
            tuple(iterators), params=tuple(self.program.params)
        )
        domain = BasicSet(space, constraints + guard)
        if domain.is_empty():
            self.report(
                "warning",
                "unreachable-guard",
                f"guard {stmt.cond!r} is unsatisfiable inside its loop "
                "nest; the guarded instrumentation never executes",
            )

    # -- channel coverage -----------------------------------------------
    def _check_channels(self) -> None:
        if not self.has_instrumentation and not self.has_asserts:
            return
        if self.contributed and not self.has_asserts:
            self.report(
                "error",
                "no-final-assert",
                "instrumented program has no ChecksumAssert; nothing "
                "ever verifies the channels",
            )
        for name in sorted(set(self.contributed) - self.asserted):
            self.report(
                "error",
                "uncovered-channel",
                f"channel {name!r} receives {self.contributed[name]} "
                "contribution(s) but no ChecksumAssert checks it",
            )
        for name in sorted(self.asserted - set(self.contributed)):
            self.report(
                "info",
                "vacuous-pair",
                f"asserted channel {name!r} never receives a "
                "contribution (compares zero to zero)",
            )


def lint_program(program: Program, params=None) -> list[LintIssue]:
    """All lint findings for ``program``.

    With ``params`` the static timeline additionally verifies the
    per-generation def/use balance of every final-assert pair — the
    dynamic property that a fault-free run ends with every checked
    channel pair equal.
    """
    linter = _Linter(program)
    issues = linter.run()
    if params is not None and linter.has_asserts:
        issues.extend(_balance_issues(program, params))
    return issues


def _balance_issues(program: Program, params) -> list[LintIssue]:
    from repro.analysis.classify import ProgramClassifier
    from repro.analysis.timeline import TimelineUnsupported, build_timeline

    try:
        timeline = build_timeline(program, params)
    except TimelineUnsupported as exc:
        return [
            LintIssue(
                "info",
                "balance-skipped",
                f"per-generation balance not checked: {exc}",
            )
        ]
    classifier = ProgramClassifier(timeline)
    issues = []
    valid = set(classifier.valid_pairs)
    for pair in classifier.final_pairs:
        if pair not in valid:
            issues.append(
                LintIssue(
                    "error",
                    "channel-imbalance",
                    f"final-assert pair {pair!r} has a generation whose "
                    "def/use contribution net is nonzero or unknown — "
                    "the verifier can fire on a fault-free run",
                )
            )
    if not classifier.final_pairs and timeline.asserts:
        issues.append(
            LintIssue(
                "warning",
                "no-final-assert",
                "asserts exist but none runs after the last load and "
                "store; late corruption escapes verification",
            )
        )
    return issues
