"""Async shard dispatcher: a campaign as a fleet of index-range shards.

Per-trial SHA-256 seeding (:func:`repro.campaign.spec.trial_seed`)
makes every trial a pure function of ``(spec, index)``, so a campaign
cuts into contiguous **shards** of pending indices that can run
anywhere, in any order, any number of times.  The dispatcher exploits
all three freedoms:

* **fan-out** — shards go to a pool of workers behind the
  :class:`WorkerEndpoint` protocol.  The bundled transport is
  :class:`LocalProcessEndpoint` (one ``multiprocessing`` child per
  worker slot, messages over a pipe); a multi-host transport only has
  to implement the same three ``async`` methods.
* **streaming** — workers ship trial records back in small batches
  *while the shard runs*; the driver consumes them immediately (JSONL
  log append, verdict counts, incremental Wilson interval), so
  ``campaign serve`` reports live progress and per-shard throughput
  instead of a terminal summary.
* **reissue** — a worker crash mid-shard raises :class:`ShardFailed`;
  the dispatcher re-enqueues exactly the indices that never arrived
  (streamed partials are kept, deduplicated by index), replaces the
  dead endpoint, and carries on.  ``max_attempts`` bounds the retries
  per shard so a deterministically-crashing trial cannot loop forever.

Bit-identity contract: the record *set* equals ``campaign run
--workers N`` for every fault model, backend, batch size and
``--prune static`` — shards execute through the same
``_execute_trials`` loop as the engine's pool workers, prune runs in
the driver before dispatch, and verdict counts are order-independent.
``tests/campaign/test_service.py`` pins this differentially.

Workers also ship artifact-store counter deltas with each completed
shard, so the final :class:`~repro.campaign.engine.CampaignResult`
(and the log's stats trailer) carries *aggregate* cache numbers —
with a shared store directory, N workers warm from one golden run and
the trailer proves it.
"""

from __future__ import annotations

import asyncio
import multiprocessing
import time
import traceback
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Protocol, runtime_checkable

from repro.service.store import counters_add, counters_delta, counters_snapshot

#: Records per streaming message — small enough for live progress,
#: large enough that IPC never dominates a fast trial loop.
RECORD_CHUNK = 16


@dataclass(frozen=True)
class Shard:
    """One dispatchable unit: a contiguous run of pending trial indices."""

    shard_id: int
    indices: tuple[int, ...]
    attempt: int = 1


class ShardFailed(RuntimeError):
    """A shard did not complete on its worker (crash, pipe loss, or an
    error escaping the trial loop).  Carries the reason; the dispatcher
    reissues the missing indices."""


@dataclass
class ShardReport:
    """Throughput accounting for one completed shard."""

    shard_id: int
    worker: int
    trials: int
    elapsed: float
    attempt: int = 1

    @property
    def trials_per_sec(self) -> float:
        return self.trials / self.elapsed if self.elapsed > 0 else 0.0

    def to_json(self) -> dict:
        return {
            "shard_id": self.shard_id,
            "worker": self.worker,
            "trials": self.trials,
            "elapsed": self.elapsed,
            "attempt": self.attempt,
            "trials_per_sec": self.trials_per_sec,
        }


@dataclass
class ServiceProgress:
    """Live snapshot handed to the ``progress`` callback after every
    completed (or reissued) shard."""

    total_trials: int
    done_trials: int
    total_shards: int
    completed_shards: int
    reissued: int
    elapsed: float
    counts: dict[str, int] = field(default_factory=dict)
    detection_interval: tuple[float, float] = (0.0, 1.0)
    last_report: ShardReport | None = None

    @property
    def trials_per_sec(self) -> float:
        return self.done_trials / self.elapsed if self.elapsed > 0 else 0.0


@runtime_checkable
class WorkerEndpoint(Protocol):
    """Transport contract between the dispatcher and one worker.

    ``run_shard`` must invoke ``on_record`` (from the event-loop
    thread) for every finished trial and return a completion dict —
    ``{"counters": <store counter delta>, "elapsed": <seconds>}`` —
    or raise :class:`ShardFailed`.  After a failure the endpoint is
    closed and replaced; it need not be reusable.
    """

    async def start(self) -> None: ...

    async def run_shard(self, shard: Shard, on_record: Callable) -> dict: ...

    async def close(self) -> None: ...


# ----------------------------------------------------------------------
# Local-process transport
# ----------------------------------------------------------------------
def _worker_main(conn, spec_dict: dict) -> None:
    """Child-process loop: prepare once, then run shards until told to
    quit.  Runs in a fresh process; all repro state is built here."""
    from repro.campaign.engine import _batch_size, _execute_trials
    from repro.campaign.spec import spec_from_dict

    spec = spec_from_dict(spec_dict)
    # Snapshot before the lazy prepare so fork-inherited cache counters
    # are subtracted out of the first shard's delta.
    base = counters_snapshot()
    prepared = None
    batch_context = None
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break
        if not isinstance(message, tuple) or not message:
            continue
        if message[0] == "quit":
            break
        if message[0] != "shard":
            continue
        indices = message[1]
        started = time.perf_counter()
        try:
            if prepared is None:
                prepared = spec.prepare()
                if _batch_size(spec) > 1:
                    from repro.campaign.batch import BatchContext

                    batch_context = BatchContext(spec, prepared)
            buffer: list[dict] = []
            for record in _execute_trials(
                spec, prepared, indices, batch_context
            ):
                buffer.append(record.to_json())
                if len(buffer) >= RECORD_CHUNK:
                    conn.send(("records", buffer))
                    buffer = []
            if buffer:
                conn.send(("records", buffer))
            now = counters_snapshot()
            delta = counters_delta(now, base)
            base = now
            conn.send(
                (
                    "done",
                    {
                        "counters": delta,
                        "elapsed": time.perf_counter() - started,
                    },
                )
            )
        except Exception:
            try:
                conn.send(("error", traceback.format_exc()))
            except (OSError, BrokenPipeError):
                break
    try:
        conn.close()
    except OSError:
        pass


class LocalProcessEndpoint:
    """One worker child process, reached over a ``multiprocessing`` pipe.

    The pipe read blocks in a thread-pool executor so many endpoints
    multiplex on one event loop without a reader thread each being
    hand-managed; sends are small and non-blocking in practice.
    """

    def __init__(self, spec, mp_context: str | None = None) -> None:
        self.spec = spec
        method = mp_context or (
            "fork"
            if "fork" in multiprocessing.get_all_start_methods()
            else "spawn"
        )
        self._ctx = multiprocessing.get_context(method)
        self.process = None
        self._conn = None

    async def start(self) -> None:
        parent, child = self._ctx.Pipe()
        self.process = self._ctx.Process(
            target=_worker_main,
            args=(child, self.spec.to_dict()),
            daemon=True,
        )
        self.process.start()
        child.close()
        self._conn = parent

    async def run_shard(self, shard: Shard, on_record: Callable) -> dict:
        from repro.campaign.records import TrialRecord

        if self._conn is None:
            raise ShardFailed("endpoint not started")
        loop = asyncio.get_running_loop()
        try:
            self._conn.send(("shard", list(shard.indices)))
        except (OSError, BrokenPipeError) as error:
            raise ShardFailed(f"worker pipe closed: {error}") from error
        while True:
            try:
                message = await loop.run_in_executor(None, self._conn.recv)
            except (EOFError, OSError) as error:
                raise ShardFailed(
                    f"worker died mid-shard {shard.shard_id}: {error!r}"
                ) from error
            kind = message[0]
            if kind == "records":
                for data in message[1]:
                    on_record(TrialRecord.from_json(data))
            elif kind == "done":
                return message[1]
            elif kind == "error":
                raise ShardFailed(
                    f"shard {shard.shard_id} raised in worker:\n{message[1]}"
                )

    async def close(self) -> None:
        if self._conn is not None:
            try:
                self._conn.send(("quit",))
            except (OSError, BrokenPipeError):
                pass
            try:
                self._conn.close()
            except OSError:
                pass
            self._conn = None
        if self.process is not None:
            self.process.join(timeout=5)
            if self.process.is_alive():
                self.process.terminate()
                self.process.join(timeout=5)
            self.process = None


# ----------------------------------------------------------------------
# The dispatcher
# ----------------------------------------------------------------------
def _make_shards(pending: list[int], workers: int, shard_trials: int | None):
    """Contiguous shards over the pending indices.

    Default size targets several shards per worker (load balancing and
    finer-grained crash recovery) but caps at 32 trials so progress
    stays live on long campaigns.
    """
    if not pending:
        return [], 0
    if shard_trials is None:
        per = (len(pending) + workers * 4 - 1) // (workers * 4)
        shard_trials = max(1, min(32, per))
    shard_trials = max(1, int(shard_trials))
    shards = [
        Shard(shard_id=i, indices=tuple(pending[start : start + shard_trials]))
        for i, start in enumerate(range(0, len(pending), shard_trials))
    ]
    return shards, shard_trials


def run_service_campaign(
    spec,
    workers: int = 2,
    shard_trials: int | None = None,
    log_path: str | None = None,
    resume: bool = False,
    keep_records: bool = True,
    progress: Callable[[ServiceProgress], None] | None = None,
    endpoint_factory: Callable[[], WorkerEndpoint] | None = None,
    max_attempts: int = 3,
    mp_context: str | None = None,
):
    """Run a campaign through the shard dispatcher.

    Same contract as :func:`repro.campaign.engine.run_campaign` —
    records, counts, log format and resume semantics are bit-identical
    — plus streaming progress, crash-safe shard reissue and a
    ``result.service`` block with shard/throughput/reissue metrics.

    ``endpoint_factory`` swaps the transport (tests inject crashing
    endpoints; multi-host backends slot in here).  Each call must
    return a fresh, unstarted :class:`WorkerEndpoint`.
    """
    from collections import Counter

    from repro.campaign.engine import (
        _build_result,
        _load_done,
        _open_log,
        _prune_predicted,
        aggregate_stats,
    )
    from repro.campaign.records import write_record, write_stats
    from repro.campaign.stats import IncrementalSummary

    if spec.trials < 0:
        raise ValueError("trials must be >= 0")
    if workers < 1:
        raise ValueError("workers must be >= 1")
    start = time.perf_counter()
    driver_base = counters_snapshot()
    done = _load_done(spec, log_path, resume)
    pending = [i for i in range(spec.trials) if i not in done]
    handle = _open_log(log_path, spec, done)

    counts: Counter = Counter(r.verdict for r in done.values())
    kept = list(done.values()) if keep_records else []
    live = IncrementalSummary()
    live.merge(dict(counts))

    def consume(record) -> None:
        counts[record.verdict] += 1
        live.add(record.verdict)
        if keep_records:
            kept.append(record)
        if handle is not None:
            write_record(handle, record)

    pending, pruned = _prune_predicted(spec, pending, consume)
    shards, shard_size = _make_shards(pending, workers, shard_trials)

    if endpoint_factory is None:
        endpoint_factory = lambda: LocalProcessEndpoint(  # noqa: E731
            spec, mp_context=mp_context
        )

    worker_totals: dict = {}
    reports: list[ShardReport] = []
    state = {"reissued": 0, "done_trials": 0}
    done_indices: set[int] = set()
    total_trials = len(pending)

    def emit_progress(last: ShardReport | None) -> None:
        if progress is None:
            return
        progress(
            ServiceProgress(
                total_trials=total_trials,
                done_trials=state["done_trials"],
                total_shards=len(shards),
                completed_shards=len(reports),
                reissued=state["reissued"],
                elapsed=time.perf_counter() - start,
                counts=dict(live.counts),
                detection_interval=live.detection_interval(),
                last_report=last,
            )
        )

    async def drive() -> None:
        queue = deque(shards)
        next_shard_id = len(shards)

        def on_record(record) -> None:
            if record.index in done_indices:
                return
            done_indices.add(record.index)
            state["done_trials"] += 1
            consume(record)

        async def worker_loop(slot: int) -> None:
            nonlocal next_shard_id
            if not queue:
                return
            endpoint = endpoint_factory()
            await endpoint.start()
            try:
                while queue:
                    shard = queue.popleft()
                    shard_started = time.perf_counter()
                    try:
                        info = await endpoint.run_shard(shard, on_record)
                    except ShardFailed as failure:
                        missing = tuple(
                            i for i in shard.indices if i not in done_indices
                        )
                        await endpoint.close()
                        if missing:
                            if shard.attempt >= max_attempts:
                                raise RuntimeError(
                                    f"shard {shard.shard_id} failed "
                                    f"{shard.attempt} times; giving up: "
                                    f"{failure}"
                                ) from failure
                            queue.append(
                                Shard(
                                    shard_id=shard.shard_id,
                                    indices=missing,
                                    attempt=shard.attempt + 1,
                                )
                            )
                            state["reissued"] += 1
                        emit_progress(None)
                        endpoint = endpoint_factory()
                        await endpoint.start()
                        continue
                    counters_add(worker_totals, info.get("counters", {}))
                    report = ShardReport(
                        shard_id=shard.shard_id,
                        worker=slot,
                        trials=len(shard.indices),
                        elapsed=time.perf_counter() - shard_started,
                        attempt=shard.attempt,
                    )
                    reports.append(report)
                    emit_progress(report)
                    if handle is not None:
                        handle.flush()
            finally:
                await endpoint.close()

        async with asyncio.TaskGroup() as group:
            for slot in range(min(workers, max(1, len(shards)))):
                group.create_task(worker_loop(slot))

    service_meta = None
    try:
        if shards:
            try:
                asyncio.run(drive())
            except BaseExceptionGroup as group:
                # TaskGroup wraps worker-loop failures; surface the
                # first real error with the engine's exception contract.
                raise group.exceptions[0] from group
        service_meta = {
            "workers": workers,
            "shards": len(shards),
            "shard_trials": shard_size,
            "reissued": state["reissued"],
            "reports": [report.to_json() for report in reports],
        }
        if handle is not None:
            write_stats(
                handle,
                aggregate_stats(worker_totals, driver_base)
                | {"service": service_meta},
            )
    finally:
        if handle is not None:
            handle.close()

    if keep_records:
        kept.sort(key=lambda record: record.index)
    return _build_result(
        spec=spec,
        counts=dict(counts),
        records=kept if keep_records else None,
        elapsed=time.perf_counter() - start,
        resumed_trials=len(done),
        log_path=log_path,
        workers=workers,
        pruned=pruned,
        worker_totals=worker_totals,
        driver_base=driver_base,
        service=service_meta,
    )
