"""Campaign service layer: shard dispatch + the unified artifact store.

Two pieces (see ``docs/SERVICE.md``):

* :mod:`repro.service.store` — the **content-addressed artifact
  store**: one digest-keyed get-or-compute layer (in-memory LRU plus an
  opt-in shared disk directory) behind every process-wide cache the
  toolchain keeps — golden runs, compiled kernels, instrumented
  programs, and the ISL memos — with per-namespace hit/miss/eviction
  stats.  N campaign workers warm up from one golden run, and a second
  campaign over the same spec is pure cache hits.

* :mod:`repro.service.dispatcher` — the **async shard dispatcher**:
  cuts a campaign into index-range shards, fans them out to a worker
  pool over a transport-agnostic :class:`WorkerEndpoint` protocol
  (local processes today, multi-host backends later), streams JSONL
  trial records back as they complete, merges Wilson CIs incrementally
  for live progress, and reissues shards lost to worker crashes.  A
  serviced campaign's records are bit-identical to
  ``campaign run --workers N`` — per-trial SHA-256 seeding makes every
  trial a pure function of ``(spec, index)``.
"""

from repro.service.dispatcher import (
    LocalProcessEndpoint,
    ServiceProgress,
    Shard,
    ShardFailed,
    ShardReport,
    WorkerEndpoint,
    run_service_campaign,
)
from repro.service.store import (
    ENV_STORE_DIR,
    Namespace,
    clear_store,
    namespace,
    namespace_hit_rate,
    set_store_dir,
    store_dir,
    store_stats,
)

__all__ = [
    "ENV_STORE_DIR",
    "LocalProcessEndpoint",
    "Namespace",
    "ServiceProgress",
    "Shard",
    "ShardFailed",
    "ShardReport",
    "WorkerEndpoint",
    "clear_store",
    "namespace",
    "namespace_hit_rate",
    "run_service_campaign",
    "set_store_dir",
    "store_dir",
    "store_stats",
]
