"""Unified content-addressed artifact store.

Every expensive artifact the toolchain computes is a pure function of
content we already digest: golden runs key on the campaign spec's
golden digest, compiled kernels on the IR digest (+ opt level + batch
shape), instrumented programs on the printed-IR SHA-256, the ISL memos
on canonical constraint-system hashes.  Before this module each owner
kept a private ``OrderedDict`` with its own counters, its own eviction
loop, and (for the instrumentation cache) its own disk layer — and N
campaign worker processes each re-warmed all four.

The store is one get-or-compute layer shared by all of them:

* a :class:`Namespace` per artifact kind (``golden``, ``kernel``,
  ``instrument``, ``isl_empty``, ``isl_fm``, ``isl_count``), each an
  LRU-bounded in-memory map with hit/miss/eviction/disk-hit counters;
* an **opt-in shared disk directory** (:func:`set_store_dir` or the
  ``REPRO_ARTIFACT_STORE`` environment variable — the env var so
  campaign worker processes inherit it) holding one pickle per key
  under ``<dir>/<namespace>/``.  Writes are atomic (temp file +
  rename); reads are tolerant — a corrupted, truncated or unreadable
  entry is a miss, never an error.  Namespaces opt in per kind:
  artifacts that cannot round-trip a process boundary (the ISL memos
  key on interned objects) stay memory-only, and namespaces with
  non-picklable values (compiled kernels) provide ``encode``/``decode``
  hooks that persist a rebuildable form (the generated sources) instead;
* **aggregatable counters**: :func:`counters_snapshot` /
  :func:`counters_delta` let campaign workers ship monotone counter
  deltas back to the driver, so ``campaign run``/``report`` show
  *aggregate* hit/miss numbers instead of silently dropping every
  worker's view on pool teardown.

The content-addressing contract is the owners' to keep: a namespace
key must capture everything the artifact depends on.  The store only
promises that equal keys share one computation (per process, plus
across processes through the disk layer).
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
from collections import OrderedDict
from pathlib import Path
from typing import Any, Callable, Hashable, Iterable

ENV_STORE_DIR = "REPRO_ARTIFACT_STORE"

_MISS = object()

#: Counter names that only ever grow — the aggregatable subset of
#: :meth:`Namespace.stats` (``size``/``limit`` are gauges and stay
#: per-process).
COUNTER_FIELDS = ("hits", "misses", "evictions", "disk_hits")


class Namespace:
    """One artifact kind: an LRU map with counters and optional disk.

    ``encode(value)`` must return a picklable payload (or ``None`` to
    keep the entry memory-only); ``decode(payload)`` rebuilds the value
    (or returns ``None`` to treat the disk entry as a miss — the
    validation hook).  ``dir_resolver`` lets an owner point the
    namespace at its own directory (the instrumentation cache's
    ``REPRO_INSTRUMENT_CACHE`` compatibility path); when it yields
    nothing, a disk-enabled namespace falls back to
    ``<store dir>/<name>/``.
    """

    def __init__(
        self,
        name: str,
        limit: int = 128,
        disk: bool = False,
        encode: Callable[[Any], Any] | None = None,
        decode: Callable[[Any], Any] | None = None,
        dir_resolver: Callable[[], os.PathLike | str | None] | None = None,
    ) -> None:
        if limit < 1:
            raise ValueError("namespace limit must be positive")
        self.name = name
        self.limit = limit
        self.disk = disk
        self.encode = encode
        self.decode = decode
        self.dir_resolver = dir_resolver
        self._entries: "OrderedDict[Hashable, Any]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.disk_hits = 0

    # ------------------------------------------------------------------
    # Memory layer
    # ------------------------------------------------------------------
    def lookup(self, key: Hashable, default=None):
        """Memory-only probe (the ISL-memo fast path: no disk, no
        compute).  Counts a hit or a miss."""
        value = self._entries.get(key, _MISS)
        if value is _MISS:
            self.misses += 1
            return default
        self.hits += 1
        self._entries.move_to_end(key)
        return value

    def store(self, key: Hashable, value) -> None:
        """Insert (memory only), evicting LRU entries past the bound."""
        self._entries[key] = value
        self._entries.move_to_end(key)
        while len(self._entries) > self.limit:
            self._entries.popitem(last=False)
            self.evictions += 1

    def get_or_compute(self, key: Hashable, compute: Callable[[], Any]):
        """The full lookup chain: memory -> disk -> ``compute()``.

        A computed value is written through to disk (when enabled); a
        disk-loaded value is promoted into the memory layer.
        """
        value = self._entries.get(key, _MISS)
        if value is not _MISS:
            self.hits += 1
            self._entries.move_to_end(key)
            return value
        value = self._disk_load(key)
        if value is not _MISS:
            self.disk_hits += 1
        else:
            self.misses += 1
            value = compute()
            self._disk_store(key, value)
        self.store(key, value)
        return value

    def keys(self) -> list[Hashable]:
        return list(self._entries)

    def stats(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "disk_hits": self.disk_hits,
            "size": len(self._entries),
            "limit": self.limit,
        }

    def set_limit(self, limit: int) -> None:
        if limit < 1:
            raise ValueError("namespace limit must be positive")
        self.limit = limit
        while len(self._entries) > self.limit:
            self._entries.popitem(last=False)
            self.evictions += 1

    def clear(self) -> None:
        """Drop the memory layer and reset counters (disk untouched)."""
        self._entries.clear()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.disk_hits = 0

    # ------------------------------------------------------------------
    # Disk layer
    # ------------------------------------------------------------------
    def directory(self) -> Path | None:
        """Where this namespace persists, if anywhere."""
        if self.dir_resolver is not None:
            resolved = self.dir_resolver()
            if resolved is not None:
                return Path(resolved)
        if not self.disk:
            return None
        base = store_dir()
        return base / self.name if base is not None else None

    def digest(self, key: Hashable) -> str:
        """Disk filename for a key.  String keys are assumed to already
        be content digests (the instrumentation cache's SHA-256 hex);
        anything else is hashed over its ``repr``, which for the tuples
        of primitives used as keys is deterministic across processes.
        """
        if isinstance(key, str):
            return key
        return hashlib.sha256(repr(key).encode("utf-8")).hexdigest()

    def _entry_path(self, key: Hashable) -> Path | None:
        directory = self.directory()
        if directory is None:
            return None
        return directory / f"{self.digest(key)}.pkl"

    def _disk_load(self, key: Hashable):
        path = self._entry_path(key)
        if path is None:
            return _MISS
        try:
            with open(path, "rb") as handle:
                payload = pickle.load(handle)
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError,
                ImportError, IndexError, ValueError):
            return _MISS
        if self.decode is not None:
            try:
                value = self.decode(payload)
            except Exception:
                return _MISS
            return _MISS if value is None else value
        return payload

    def _disk_store(self, key: Hashable, value) -> None:
        path = self._entry_path(key)
        if path is None:
            return
        payload = value
        if self.encode is not None:
            try:
                payload = self.encode(value)
            except Exception:
                return
            if payload is None:
                return
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                dir=path.parent,
                prefix=f".{self.digest(key)[:16]}-",
                suffix=".tmp",
            )
            try:
                with os.fdopen(fd, "wb") as handle:
                    pickle.dump(
                        payload, handle, protocol=pickle.HIGHEST_PROTOCOL
                    )
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except (OSError, pickle.PicklingError, TypeError, AttributeError):
            # Unpicklable values and read-only/full directories degrade
            # to memory-only, never an error.
            pass


# ----------------------------------------------------------------------
# The process-wide registry
# ----------------------------------------------------------------------
_NAMESPACES: dict[str, Namespace] = {}
_STORE_DIR: Path | None = None


def namespace(name: str, **kwargs) -> Namespace:
    """The namespace registered under ``name``, creating it on first
    use.  Construction keyword arguments only apply on creation; later
    callers get the existing instance unchanged."""
    existing = _NAMESPACES.get(name)
    if existing is None:
        existing = Namespace(name, **kwargs)
        _NAMESPACES[name] = existing
    return existing


def namespaces() -> list[Namespace]:
    return list(_NAMESPACES.values())


def store_dir() -> Path | None:
    """The shared disk directory, if any (explicit beats env var)."""
    if _STORE_DIR is not None:
        return _STORE_DIR
    env = os.environ.get(ENV_STORE_DIR)
    return Path(env) if env else None


def set_store_dir(path: str | os.PathLike | None) -> None:
    """Enable (or with ``None`` disable) the shared disk layer."""
    global _STORE_DIR
    _STORE_DIR = Path(path) if path is not None else None


def store_stats() -> dict[str, dict[str, int]]:
    """Per-namespace stats of every registered namespace."""
    return {name: ns.stats() for name, ns in sorted(_NAMESPACES.items())}


def clear_store() -> None:
    """Drop every namespace's memory layer and counters (tests)."""
    for ns in _NAMESPACES.values():
        ns.clear()


# ----------------------------------------------------------------------
# Cross-process counter aggregation
# ----------------------------------------------------------------------
def store_counters() -> dict[str, dict[str, int]]:
    """The monotone counter subset of :func:`store_stats`."""
    return {
        name: {field: getattr(ns, field) for field in COUNTER_FIELDS}
        for name, ns in _NAMESPACES.items()
    }


def counters_snapshot() -> dict[str, dict]:
    """Everything a campaign worker reports deltas of: store counters
    plus the vector backend's dispatch counters."""
    from repro.runtime.vector import vector_stats

    return {"store": store_counters(), "vector": dict(vector_stats())}


def _diff_flat(now: dict, base: dict) -> dict[str, int]:
    return {
        key: max(0, int(value) - int(base.get(key, 0)))
        for key, value in now.items()
    }


def counters_delta(now: dict, base: dict | None) -> dict:
    """``now - base`` over a :func:`counters_snapshot` pair (clamped at
    zero; a missing base namespace counts from zero)."""
    if base is None:
        return now
    base_store = base.get("store", {})
    return {
        "store": {
            name: _diff_flat(flat, base_store.get(name, {}))
            for name, flat in now.get("store", {}).items()
        },
        "vector": _diff_flat(now.get("vector", {}), base.get("vector", {})),
    }


def counters_add(total: dict, delta: dict) -> dict:
    """Accumulate a worker delta into ``total`` in place (and return
    it).  Shapes follow :func:`counters_snapshot`."""
    for name, flat in delta.get("store", {}).items():
        into = total.setdefault("store", {}).setdefault(name, {})
        for key, value in flat.items():
            into[key] = into.get(key, 0) + value
    vector = total.setdefault("vector", {})
    for key, value in delta.get("vector", {}).items():
        vector[key] = vector.get(key, 0) + value
    return total


def merged_store_stats(extra: dict[str, dict] | None) -> dict[str, dict]:
    """This process's :func:`store_stats` with worker counter deltas
    folded in (``size``/``limit`` stay the local gauges)."""
    stats = store_stats()
    for name, flat in (extra or {}).items():
        entry = stats.setdefault(
            name,
            {field: 0 for field in COUNTER_FIELDS} | {"size": 0, "limit": 0},
        )
        for field in COUNTER_FIELDS:
            entry[field] = entry.get(field, 0) + flat.get(field, 0)
    return stats


def namespace_hit_rate(
    stats: dict[str, dict[str, int]],
    names: Iterable[str] | None = None,
) -> float:
    """Aggregate (memory + disk) hit fraction over the chosen
    namespaces — the ``>= 90%`` warm-campaign gate in CI.  Namespaces
    with zero lookups contribute nothing; with no lookups anywhere the
    rate is 0.0."""
    hits = 0
    total = 0
    for name, entry in stats.items():
        if names is not None and name not in names:
            continue
        served = entry.get("hits", 0) + entry.get("disk_hits", 0)
        hits += served
        total += served + entry.get("misses", 0)
    return hits / total if total else 0.0
