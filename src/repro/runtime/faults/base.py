"""Injector protocol, injection records, and composition.

The paper's fault model (Section 2.2): transient errors strike values
*at rest* in the memory subsystem, between the store that produced a
value and a load that consumes it, while registers and functional units
are resilient.  :class:`FaultInjector` is the contract every fault
model implements against the :class:`~repro.runtime.memory.Memory`
choke point — because *both* backends (interpreter and compiled
kernels) route every load and store through the same four ``Memory``
methods, an injector written once behaves bit-identically under either
backend for free.

Two hook families exist:

* **value hooks** — :meth:`FaultInjector.before_load` /
  :meth:`FaultInjector.after_store` may replace the stored word
  (corruption at rest; the replacement is persisted in the cell);
* **address hooks** — :meth:`FaultInjector.redirect_load` /
  :meth:`FaultInjector.redirect_store` may replace the *index tuple*
  of an access (PRESAGE-style address-generation faults: the value is
  intact, the computed address is not).  They are only consulted when
  the injector sets :attr:`FaultInjector.redirects`, keeping the
  fault-free and value-fault hot paths unchanged.

Address-fault contract (what keeps the backends bit-identical): the
*architectural* address of an access — the one the def/use checksums
rotate by, returned by ``load_bits_addr`` / ``store_bits_addr`` — is
always the address of the **intended** indices.  Under the paper's
model the address computation lives in resilient registers, so the
checksum hardware sees the intended address while the memory system
honours the corrupted one.  Both backends therefore report identical
addresses, counters and checksum streams regardless of where the
redirected access actually landed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence


class FaultInjector:
    """Base injector: hooks return a replacement word/index or None."""

    redirects: bool = False
    """Whether the memory should consult the address hooks for this
    injector.  A class-level flag so the per-access cost of address
    faults is a single attribute test for every other model."""

    def before_load(
        self, memory, name: str, indices: tuple[int, ...], word: int
    ) -> int | None:
        """Called before a load returns; may corrupt the stored word."""
        return None

    def after_store(
        self, memory, name: str, indices: tuple[int, ...], word: int
    ) -> int | None:
        """Called after a store lands; may corrupt the stored word."""
        return None

    def redirect_load(
        self, memory, name: str, indices: tuple[int, ...]
    ) -> tuple[int, ...] | None:
        """May replace the index tuple a load reads from (same region).

        Only consulted when :attr:`redirects` is true, after the load
        counter advanced, and only for accesses whose *intended*
        indices are in bounds (a program's own wild access is not an
        injection site).  A redirected access that lands out of bounds
        takes the wild-access path: deterministic garbage for a load, a
        silently dropped store.
        """
        return None

    def redirect_store(
        self, memory, name: str, indices: tuple[int, ...]
    ) -> tuple[int, ...] | None:
        """May replace the index tuple a store writes to (same region)."""
        return None

    def describe(self) -> str:
        return type(self).__name__


class NoFaults(FaultInjector):
    """Fault-free execution."""


@dataclass
class InjectionRecord:
    """What a campaign actually did (for reporting/classification).

    ``cells`` lists the index tuples (within ``array``) whose at-rest
    contents the fault directly struck — the cells a campaign masks
    out before calling a divergence *silent data corruption* (a flip
    sitting unread in a dead cell is benign, not SDC).  ``None`` means
    the classic single-cell value fault: mask exactly ``indices``.
    Address-generation loads set ``cells=()`` — nothing at rest was
    corrupted, so *any* final-state divergence is propagation.
    """

    array: str
    indices: tuple[int, ...]
    bits: tuple[int, ...]
    at_load: int
    kind: str = "value"
    cells: tuple[tuple[int, ...], ...] | None = None
    actual: tuple[int, ...] | None = None
    """Address faults: where the access really landed (may be out of
    bounds for the region)."""
    window: tuple[int, int] | None = None
    """Intermittent faults: first/last load ordinal the defect covers."""
    stuck_to: int | None = None
    """Intermittent faults: the value the defective bit is stuck at."""

    def masked_cells(self) -> tuple[tuple[int, ...], ...]:
        """Cells (in ``array``) to exclude from SDC classification."""
        if self.cells is None:
            return (self.indices,)
        return self.cells

    def to_dict(self) -> dict:
        """JSON form for campaign logs.

        Classic value faults keep the original four-key shape; model-
        specific fields appear only when set, so old logs and new
        ``random_cell`` logs stay byte-compatible.
        """
        data = {
            "array": self.array,
            "indices": list(self.indices),
            "bits": list(self.bits),
            "at_load": self.at_load,
        }
        if self.kind != "value":
            data["kind"] = self.kind
        if self.cells is not None:
            data["cells"] = [list(cell) for cell in self.cells]
        if self.actual is not None:
            data["actual"] = list(self.actual)
        if self.window is not None:
            data["window"] = list(self.window)
        if self.stuck_to is not None:
            data["stuck_to"] = self.stuck_to
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "InjectionRecord":
        return cls(
            array=data["array"],
            indices=tuple(data["indices"]),
            bits=tuple(data["bits"]),
            at_load=data["at_load"],
            kind=data.get("kind", "value"),
            cells=(
                tuple(tuple(cell) for cell in data["cells"])
                if data.get("cells") is not None
                else None
            ),
            actual=(
                tuple(data["actual"])
                if data.get("actual") is not None
                else None
            ),
            window=(
                tuple(data["window"])
                if data.get("window") is not None
                else None
            ),
            stuck_to=data.get("stuck_to"),
        )


class MultiInjector(FaultInjector):
    """Compose several injectors (fired in order)."""

    def __init__(self, injectors: Sequence[FaultInjector]) -> None:
        self.injectors = list(injectors)
        self.redirects = any(
            getattr(injector, "redirects", False) for injector in injectors
        )

    def before_load(self, memory, name, indices, word):
        result = None
        for injector in self.injectors:
            mutated = injector.before_load(memory, name, indices, word)
            if mutated is not None:
                result = mutated
                word = mutated
        return result

    def after_store(self, memory, name, indices, word):
        result = None
        for injector in self.injectors:
            mutated = injector.after_store(memory, name, indices, word)
            if mutated is not None:
                result = mutated
                word = mutated
        return result

    def redirect_load(self, memory, name, indices):
        for injector in self.injectors:
            if not getattr(injector, "redirects", False):
                continue
            redirected = injector.redirect_load(memory, name, indices)
            if redirected is not None:
                return redirected
        return None

    def redirect_store(self, memory, name, indices):
        for injector in self.injectors:
            if not getattr(injector, "redirects", False):
                continue
            redirected = injector.redirect_store(memory, name, indices)
            if redirected is not None:
                return redirected
        return None


def injectable_targets(memory, target_arrays) -> list[str]:
    """The regions a random fault may strike: the requested targets (or
    every non-shadow region), minus regions without a single cell
    (drawing from a zero-extent array would raise in ``randrange``)."""
    arrays = (
        list(target_arrays)
        if target_arrays is not None
        else memory.region_names(include_shadow=False)
    )
    return [
        a for a in arrays if all(extent > 0 for extent in memory.shape(a))
    ]


def linear_offset(indices: tuple[int, ...], shape: tuple[int, ...]) -> int:
    """Row-major linearization (bounds-checked)."""
    offset = 0
    for index, extent in zip(indices, shape):
        if not 0 <= index < extent:
            raise ValueError(f"index {indices} out of bounds for {shape}")
        offset = offset * extent + index
    return offset


def cell_at(offset: int, shape: tuple[int, ...]) -> tuple[int, ...]:
    """Row-major delinearization.

    The *leading* index absorbs any excess, so an offset past the end
    of the region maps to an out-of-bounds leading index — exactly the
    wild access a corrupted address bit produces on real hardware.
    """
    rest = offset
    indices: list[int] = []
    for extent in reversed(shape[1:]):
        rest, component = divmod(rest, extent)
        indices.append(component)
    indices.append(rest)
    return tuple(reversed(indices))
