"""Fault injection into the simulated memory subsystem.

The paper's fault model (Section 2.2): transient multi-bit errors
strike values *at rest* in the memory subsystem, between the store that
produced a value and a load that consumes it.  This package grows that
single scenario into a taxonomy (see ``docs/FAULT_MODELS.md``):

* :mod:`~repro.runtime.faults.base` — the injector protocol (value
  hooks + address-redirect hooks), :class:`InjectionRecord`, and
  composition;
* :mod:`~repro.runtime.faults.value` — the paper's own class: bits
  flipped in stored words (:class:`ScheduledBitFlip`,
  :class:`RandomCellFlipper`, :class:`BurstCorruption`);
* :mod:`~repro.runtime.faults.addrgen` — PRESAGE-style
  address-generation faults (:class:`AddressGenerationFault`): the
  value is intact, the computed address is not;
* :mod:`~repro.runtime.faults.intermittent` — ITHICA-style
  intermittent stuck bits (:class:`IntermittentStuckBit`): a defect
  that re-fires on every access within a window;
* :mod:`~repro.runtime.faults.spec` — :class:`InjectorSpec` (validated
  pure-data form), :func:`make_injector`, and the campaign
  :data:`FAULT_MODELS` vocabulary.

Everything importable from the old ``repro.runtime.faults`` module is
re-exported here unchanged.
"""

from repro.runtime.faults.addrgen import AddressGenerationFault
from repro.runtime.faults.base import (
    FaultInjector,
    InjectionRecord,
    MultiInjector,
    NoFaults,
)
from repro.runtime.faults.intermittent import IntermittentStuckBit
from repro.runtime.faults.spec import (
    FAULT_MODELS,
    INJECTOR_KINDS,
    InjectorSpec,
    injector_spec_for_model,
    make_injector,
)
from repro.runtime.faults.value import (
    BurstCorruption,
    RandomCellFlipper,
    ScheduledBitFlip,
    flip_random_bits_in_words,
)

__all__ = [
    "AddressGenerationFault",
    "BurstCorruption",
    "FAULT_MODELS",
    "FaultInjector",
    "INJECTOR_KINDS",
    "InjectionRecord",
    "InjectorSpec",
    "IntermittentStuckBit",
    "MultiInjector",
    "NoFaults",
    "RandomCellFlipper",
    "ScheduledBitFlip",
    "flip_random_bits_in_words",
    "injector_spec_for_model",
    "make_injector",
]
