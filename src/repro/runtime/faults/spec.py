"""Injector specs: fault models as validated, picklable data.

Campaign engines ship :class:`InjectorSpec` across process boundaries
instead of live injector objects (which hold an RNG mid-stream and are
not meaningfully picklable).  :func:`make_injector` turns a spec into a
fresh injector; two calls with the same spec behave identically, so any
campaign trial can be replayed from its record alone.

Validation happens **at construction** (and hence in
:meth:`InjectorSpec.from_dict`): a malformed or unknown model name
raises a ``ValueError`` naming the known kinds immediately, not deep
inside ``make_injector`` at trial time.

:data:`FAULT_MODELS` is the campaign-facing vocabulary — the values
``ProgramCampaignSpec.fault_model`` and ``campaign run --fault-model``
accept — and :func:`injector_spec_for_model` maps each model name to
the :class:`InjectorSpec` a trial uses (see ``docs/FAULT_MODELS.md``).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Mapping

from repro.runtime.faults.addrgen import AddressGenerationFault
from repro.runtime.faults.base import FaultInjector, NoFaults
from repro.runtime.faults.intermittent import IntermittentStuckBit
from repro.runtime.faults.value import (
    BurstCorruption,
    RandomCellFlipper,
    ScheduledBitFlip,
)

INJECTOR_KINDS = (
    "none",
    "scheduled",
    "random_cell",
    "addrgen",
    "stuck_bit",
    "burst",
)
"""Every ``InjectorSpec.kind`` :func:`make_injector` understands."""

FAULT_MODELS = (
    "random_cell",
    "addrgen_load",
    "addrgen_store",
    "stuck_bit",
    "burst",
)
"""Campaign fault-model names (``--fault-model`` vocabulary)."""


@dataclass(frozen=True)
class InjectorSpec:
    """A fault injector as pure data.

    Kinds and the fields they read:

    * ``"none"`` — :class:`NoFaults`;
    * ``"scheduled"`` — :class:`ScheduledBitFlip`: ``array`` /
      ``indices`` / ``bit_positions`` / ``at_load``;
    * ``"random_cell"`` — :class:`RandomCellFlipper`: ``num_bits`` /
      ``expected_loads`` / ``seed`` / ``target_arrays``;
    * ``"addrgen"`` — :class:`AddressGenerationFault`: ``addr_mode``
      (``"load"`` or ``"store"``), ``expected_loads`` or
      ``expected_stores`` (per mode), ``seed``, ``target_arrays``;
    * ``"stuck_bit"`` — :class:`IntermittentStuckBit`:
      ``expected_loads`` / ``window`` / ``stuck_to`` / ``seed`` /
      ``target_arrays``;
    * ``"burst"`` — :class:`BurstCorruption`: ``num_bits`` /
      ``burst_cells`` / ``expected_loads`` / ``seed`` /
      ``target_arrays``.
    """

    kind: str = "random_cell"
    num_bits: int = 2
    expected_loads: int = 1
    seed: int = 0
    target_arrays: tuple[str, ...] | None = None
    array: str | None = None
    indices: tuple[int, ...] = ()
    bit_positions: tuple[int, ...] = ()
    at_load: int = 1
    expected_stores: int = 1
    addr_mode: str = "load"
    window: int = 64
    stuck_to: int | None = None
    burst_cells: int = 4

    def __post_init__(self) -> None:
        if self.kind not in INJECTOR_KINDS:
            raise ValueError(
                f"unknown injector kind {self.kind!r}; expected one of "
                f"{', '.join(INJECTOR_KINDS)}"
            )
        if self.addr_mode not in ("load", "store"):
            raise ValueError(
                f"addr_mode must be 'load' or 'store', got {self.addr_mode!r}"
            )
        if self.stuck_to not in (None, 0, 1):
            raise ValueError(
                f"stuck_to must be None, 0 or 1, got {self.stuck_to!r}"
            )
        for name, minimum in (
            ("expected_loads", 1),
            ("expected_stores", 1),
            ("at_load", 1),
            ("window", 1),
            ("num_bits", 0),
            ("burst_cells", 0),
        ):
            value = getattr(self, name)
            if not isinstance(value, int) or isinstance(value, bool):
                raise ValueError(f"{name} must be an int, got {value!r}")
            if value < minimum:
                raise ValueError(f"{name} must be >= {minimum}, got {value}")
        if self.num_bits > 64:
            raise ValueError(f"num_bits must be <= 64, got {self.num_bits}")
        # Normalize sequence fields to tuples (hashability + pickling).
        for name in ("indices", "bit_positions"):
            value = getattr(self, name)
            if not isinstance(value, tuple):
                object.__setattr__(self, name, tuple(value))
        if self.target_arrays is not None and not isinstance(
            self.target_arrays, tuple
        ):
            object.__setattr__(
                self, "target_arrays", tuple(self.target_arrays)
            )

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "num_bits": self.num_bits,
            "expected_loads": self.expected_loads,
            "seed": self.seed,
            "target_arrays": (
                list(self.target_arrays)
                if self.target_arrays is not None
                else None
            ),
            "array": self.array,
            "indices": list(self.indices),
            "bit_positions": list(self.bit_positions),
            "at_load": self.at_load,
            "expected_stores": self.expected_stores,
            "addr_mode": self.addr_mode,
            "window": self.window,
            "stuck_to": self.stuck_to,
            "burst_cells": self.burst_cells,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "InjectorSpec":
        if not isinstance(data, Mapping):
            raise ValueError(
                f"injector spec must be a mapping, got {type(data).__name__}"
            )
        return cls(
            kind=data.get("kind", "random_cell"),
            num_bits=data.get("num_bits", 2),
            expected_loads=data.get("expected_loads", 1),
            seed=data.get("seed", 0),
            target_arrays=(
                tuple(data["target_arrays"])
                if data.get("target_arrays") is not None
                else None
            ),
            array=data.get("array"),
            indices=tuple(data.get("indices", ())),
            bit_positions=tuple(data.get("bit_positions", ())),
            at_load=data.get("at_load", 1),
            expected_stores=data.get("expected_stores", 1),
            addr_mode=data.get("addr_mode", "load"),
            window=data.get("window", 64),
            stuck_to=data.get("stuck_to"),
            burst_cells=data.get("burst_cells", 4),
        )


def make_injector(spec: InjectorSpec) -> FaultInjector:
    """Instantiate the injector an :class:`InjectorSpec` describes."""
    if spec.kind == "none":
        return NoFaults()
    if spec.kind == "scheduled":
        if spec.array is None:
            raise ValueError("scheduled injector needs an array")
        return ScheduledBitFlip(
            array=spec.array,
            indices=spec.indices,
            bit_positions=spec.bit_positions,
            at_load=spec.at_load,
        )
    if spec.kind == "random_cell":
        return RandomCellFlipper(
            num_bits=spec.num_bits,
            expected_loads=spec.expected_loads,
            rng=random.Random(spec.seed),
            target_arrays=spec.target_arrays,
        )
    if spec.kind == "addrgen":
        expected = (
            spec.expected_loads
            if spec.addr_mode == "load"
            else spec.expected_stores
        )
        return AddressGenerationFault(
            mode=spec.addr_mode,
            expected_events=expected,
            rng=random.Random(spec.seed),
            target_arrays=spec.target_arrays,
        )
    if spec.kind == "stuck_bit":
        return IntermittentStuckBit(
            expected_loads=spec.expected_loads,
            window=spec.window,
            rng=random.Random(spec.seed),
            target_arrays=spec.target_arrays,
            stuck_to=spec.stuck_to,
        )
    if spec.kind == "burst":
        return BurstCorruption(
            num_bits=spec.num_bits,
            burst_cells=spec.burst_cells,
            expected_loads=spec.expected_loads,
            rng=random.Random(spec.seed),
            target_arrays=spec.target_arrays,
        )
    raise ValueError(f"unknown injector kind {spec.kind!r}")


def injector_spec_for_model(
    model: str,
    *,
    seed: int,
    expected_loads: int,
    expected_stores: int = 1,
    num_bits: int = 2,
    target_arrays: tuple[str, ...] | None = None,
    window: int = 0,
    burst_cells: int = 4,
) -> InjectorSpec:
    """The per-trial :class:`InjectorSpec` of a campaign fault model.

    ``window=0`` picks the default intermittent window:
    ``max(16, expected_loads // 16)`` load events, so the defect stays
    active for a fixed fraction of the run at any problem scale.
    """
    if model not in FAULT_MODELS:
        raise ValueError(
            f"unknown fault model {model!r}; expected one of "
            f"{', '.join(FAULT_MODELS)}"
        )
    if model == "random_cell":
        return InjectorSpec(
            kind="random_cell",
            num_bits=num_bits,
            expected_loads=expected_loads,
            seed=seed,
            target_arrays=target_arrays,
        )
    if model in ("addrgen_load", "addrgen_store"):
        return InjectorSpec(
            kind="addrgen",
            addr_mode=model.removeprefix("addrgen_"),
            expected_loads=expected_loads,
            expected_stores=expected_stores,
            seed=seed,
            target_arrays=target_arrays,
        )
    if model == "stuck_bit":
        return InjectorSpec(
            kind="stuck_bit",
            expected_loads=expected_loads,
            window=window if window > 0 else max(16, expected_loads // 16),
            seed=seed,
            target_arrays=target_arrays,
        )
    return InjectorSpec(
        kind="burst",
        num_bits=num_bits,
        burst_cells=burst_cells,
        expected_loads=expected_loads,
        seed=seed,
        target_arrays=target_arrays,
    )
