"""PRESAGE-style address-generation faults.

The corruption strikes the *computed address* of one load or store, not
the value: a random bit of the access's row-major linear offset flips,
so the access lands on a different cell of the same region — or past
its end entirely, in which case the memory's wild-access path takes
over (deterministic garbage for a load, a silently dropped store).

These are the faults the paper's value checksums are structurally blind
to in one direction: a *load* through a corrupted address reads a
pristine word from the wrong cell, so nothing at rest ever disagrees
with the def-side checksum of the cell it came from; only downstream
propagation (or a replay-comparison baseline) can expose it.  A
corrupted *store* address leaves the intended cell stale and clobbers
an unintended one — the stale cell's next checked use does trip the
use-side checksum, unless the cell is never read again.

Per the architectural contract in :mod:`repro.runtime.faults.base`,
the address reported to the checksum machinery is always that of the
**intended** indices (address arithmetic replays from resilient
registers), which is what keeps interpreter and compiled trials
bit-identical under redirection.
"""

from __future__ import annotations

import random
from typing import Iterable

from repro.runtime.faults.base import (
    FaultInjector,
    InjectionRecord,
    cell_at,
    linear_offset,
)


class AddressGenerationFault(FaultInjector):
    """Flip one bit of the linear offset of a random load or store.

    The trigger is an access ordinal drawn uniformly from
    ``[1, expected_events]`` over loads (``mode="load"``) or stores
    (``mode="store"``).  The fault fires on the first in-bounds access
    to a target array at or after the trigger; the flipped bit is
    drawn over the region's offset width *plus one* spare bit, so the
    redirected access can fall outside the region (a wild access).
    Exactly one redirection per run.
    """

    redirects = True

    def __init__(
        self,
        mode: str,
        expected_events: int,
        rng: random.Random,
        target_arrays: Iterable[str] | None = None,
    ) -> None:
        if mode not in ("load", "store"):
            raise ValueError(f"mode must be 'load' or 'store', got {mode!r}")
        if expected_events < 1:
            raise ValueError("expected_events must be >= 1")
        self.mode = mode
        self.target_arrays = (
            tuple(target_arrays) if target_arrays is not None else None
        )
        self.record: InjectionRecord | None = None
        self.no_targets = self.target_arrays == ()
        if self.no_targets:
            self.trigger = 0  # RNG untouched for un-injectable specs
        else:
            self.trigger = rng.randint(1, expected_events)
        self.rng = rng
        self._pool: frozenset[str] | None = None

    @property
    def injected(self) -> bool:
        return self.record is not None

    def _targetable(self, memory, name: str) -> bool:
        if self.target_arrays is not None:
            return name in self.target_arrays
        if self._pool is None:
            self._pool = frozenset(
                memory.region_names(include_shadow=False)
            )
        return name in self._pool

    def _fire(
        self, memory, name: str, indices: tuple[int, ...], ordinal: int
    ) -> tuple[int, ...] | None:
        if self.record is not None or self.no_targets:
            return None
        if ordinal < self.trigger or not self._targetable(memory, name):
            return None
        shape = memory.shape(name)
        if not shape:
            return None  # scalars have no address arithmetic to corrupt
        size = 1
        for extent in shape:
            size *= extent
        if size <= 0:
            return None
        intended = tuple(indices)
        offset = linear_offset(intended, shape)
        bit = self.rng.randrange(size.bit_length())
        actual = cell_at(offset ^ (1 << bit), shape)
        in_bounds = actual[0] < shape[0]
        if self.mode == "load":
            # Nothing at rest is corrupted: any final-state divergence
            # is propagation, so no cell is masked.
            cells: tuple[tuple[int, ...], ...] = ()
        elif in_bounds:
            # The intended cell goes stale and the actual cell is
            # clobbered: both are directly struck.
            cells = (intended, actual)
        else:
            # The store vanished into a wild address: only the intended
            # cell (stale) is struck at rest.
            cells = (intended,)
        self.record = InjectionRecord(
            array=name,
            indices=intended,
            bits=(bit,),
            at_load=ordinal,
            kind=f"addrgen_{self.mode}",
            cells=cells,
            actual=actual,
        )
        return actual

    def redirect_load(self, memory, name, indices):
        if self.mode != "load":
            return None
        return self._fire(memory, name, indices, memory.load_count)

    def redirect_store(self, memory, name, indices):
        if self.mode != "store":
            return None
        return self._fire(memory, name, indices, memory.store_count)
