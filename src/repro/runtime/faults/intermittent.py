"""ITHICA-style intermittent stuck-bit faults.

A defective cell whose one bit reads (and writes) stuck at a fixed
value for a *window* of the execution, then heals.  Unlike the
single-shot flip of :class:`~repro.runtime.faults.value.RandomCellFlipper`,
the defect re-fires on **every access** of the cell while active — in
particular it re-corrupts the cell after a recovery rollback restores
clean words, which is exactly the scenario that separates honest
``recovery_failed`` reporting from a silent wrong-output ``recovered``.
"""

from __future__ import annotations

import random
from typing import Iterable

from repro.runtime.faults.base import (
    FaultInjector,
    InjectionRecord,
    injectable_targets,
)


class IntermittentStuckBit(FaultInjector):
    """One bit of one cell stuck at 0 or 1 for a window of loads.

    The window opens at a load ordinal drawn uniformly from
    ``[1, expected_loads]`` and covers ``window`` load events.  At the
    opening the defective array/cell/bit (and the stuck value, unless
    ``stuck_to`` pins it) are drawn and the cell's word is forced at
    rest; while the window is active every load and store of the cell
    re-forces the bit.  After the window the defect heals — the cell
    simply retains whatever (possibly forced) word it last held.
    """

    def __init__(
        self,
        expected_loads: int,
        window: int,
        rng: random.Random,
        target_arrays: Iterable[str] | None = None,
        stuck_to: int | None = None,
    ) -> None:
        if expected_loads < 1:
            raise ValueError("expected_loads must be >= 1")
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        if stuck_to not in (None, 0, 1):
            raise ValueError(f"stuck_to must be None, 0 or 1: {stuck_to}")
        self.window = window
        self.stuck_to = stuck_to
        self.target_arrays = (
            tuple(target_arrays) if target_arrays is not None else None
        )
        self.record: InjectionRecord | None = None
        self.no_targets = self.target_arrays == ()
        if self.no_targets:
            self.start = 0  # RNG untouched for un-injectable specs
        else:
            self.start = rng.randint(1, expected_loads)
        self.rng = rng
        self._array: str | None = None
        self._cell: tuple[int, ...] = ()
        self._bit = 0
        self._value = 0
        self._end = 0

    @property
    def injected(self) -> bool:
        return self.record is not None

    def _force(self, word: int) -> int:
        if self._value:
            return word | (1 << self._bit)
        return word & ~(1 << self._bit)

    def _arm(self, memory) -> bool:
        arrays = injectable_targets(memory, self.target_arrays)
        if not arrays:
            self.no_targets = True
            return False
        self._array = self.rng.choice(arrays)
        shape = memory.shape(self._array)
        self._cell = tuple(self.rng.randrange(extent) for extent in shape)
        self._bit = self.rng.randrange(64)
        self._value = (
            self.stuck_to
            if self.stuck_to is not None
            else self.rng.randint(0, 1)
        )
        self._end = memory.load_count + self.window - 1
        self.record = InjectionRecord(
            array=self._array,
            indices=self._cell,
            bits=(self._bit,),
            at_load=memory.load_count,
            kind="stuck_bit",
            cells=(self._cell,),
            window=(memory.load_count, self._end),
            stuck_to=self._value,
        )
        # The defect manifests immediately: force the bit at rest.
        word = memory.peek_bits(self._array, self._cell)
        if self._force(word) != word:
            memory.flip_bits(self._array, self._cell, (self._bit,))
        return True

    def _active(self, memory) -> bool:
        return self.record is not None and memory.load_count <= self._end

    def before_load(self, memory, name, indices, word):
        if self.no_targets:
            return None
        if self.record is None:
            if memory.load_count < self.start or not self._arm(memory):
                return None
        if (
            self._active(memory)
            and name == self._array
            and tuple(indices) == self._cell
        ):
            forced = self._force(word)
            if forced != word:
                return forced
        return None

    def after_store(self, memory, name, indices, word):
        if (
            self._active(memory)
            and name == self._array
            and tuple(indices) == self._cell
        ):
            forced = self._force(word)
            if forced != word:
                return forced
        return None
