"""Value-corruption injectors: bits flipped in stored words.

These model the paper's own fault class (Section 2.2): the address
arithmetic is correct, but the word at rest in the memory subsystem is
corrupted between the store that produced it and a load that consumes
it.  The interval/rotation checksums are designed to catch exactly
this.

* :class:`ScheduledBitFlip` — flip chosen bits of one cell at the
  program's N-th load; deterministic, used by unit tests.
* :class:`RandomCellFlipper` — the campaign primitive: at a uniformly
  random load event, flip ``k`` uniformly chosen bits of a uniformly
  chosen cell of the target arrays.
* :class:`BurstCorruption` — a spatial burst: the same random moment,
  but ``burst_cells`` *consecutive* cells (row-major) each lose
  ``num_bits`` random bits, modelling a multi-cell upset along a DRAM
  row.
"""

from __future__ import annotations

import random
from typing import Iterable, Sequence

from repro.runtime.faults.base import (
    FaultInjector,
    InjectionRecord,
    cell_at,
    injectable_targets,
)


class ScheduledBitFlip(FaultInjector):
    """Deterministically corrupt one cell at a specific load event.

    ``at_load`` counts loads globally (memory.load_count, 1-based at
    hook time).  When the trigger fires, the listed bit positions of
    the *target* cell are flipped in place; if the triggering load is
    of the target cell itself, the corrupted value is what the load
    returns.
    """

    def __init__(
        self,
        array: str,
        indices: tuple[int, ...],
        bit_positions: Sequence[int],
        at_load: int,
    ) -> None:
        self.array = array
        self.indices = tuple(indices)
        self.bit_positions = tuple(bit_positions)
        self.at_load = at_load
        self.fired = False

    def before_load(self, memory, name, indices, word):
        if not self.fired and memory.load_count >= self.at_load:
            self.fired = True
            memory.flip_bits(self.array, self.indices, self.bit_positions)
            if name == self.array and tuple(indices) == self.indices:
                return memory.peek_bits(self.array, self.indices)
        return None


class RandomCellFlipper(FaultInjector):
    """Flip ``num_bits`` random bits of a random cell at a random moment.

    The moment is a load event drawn uniformly from
    ``[1, expected_loads]``; the cell is drawn uniformly from the
    non-shadow regions listed in ``target_arrays`` (or all non-shadow
    regions when omitted).  Exactly one injection per run.

    A spec that *cannot* inject — zero bits to flip, or an explicitly
    empty target list — is detected in the constructor: the injector
    disables itself **without touching the RNG**, so the trial's
    SHA-256-derived seed stream stays byte-identical whether or not a
    neighbouring spec edit made the fault injectable.  Such trials
    report ``no_injection`` deterministically.
    """

    def __init__(
        self,
        num_bits: int,
        expected_loads: int,
        rng: random.Random,
        target_arrays: Iterable[str] | None = None,
    ) -> None:
        if expected_loads < 1:
            raise ValueError("expected_loads must be >= 1")
        if not 0 <= num_bits <= 64:
            raise ValueError(f"num_bits must be in [0, 64], got {num_bits}")
        self.num_bits = num_bits
        self.target_arrays = (
            tuple(target_arrays) if target_arrays is not None else None
        )
        self.record: InjectionRecord | None = None
        self.no_targets = num_bits == 0 or self.target_arrays == ()
        """Set when the fault can never land: an un-injectable spec
        (zero bits, empty target tuple), or the trigger fired but every
        target had zero extent.  Campaigns must report such trials as
        ``no_injection``, not undetected."""
        if self.no_targets:
            self.trigger = 0  # RNG deliberately untouched: see docstring
        else:
            self.trigger = rng.randint(1, expected_loads)
        self.rng = rng

    @property
    def injected(self) -> bool:
        """Whether a fault actually landed (False also when the program
        performed no loads, so the trigger never fired)."""
        return self.record is not None

    def before_load(self, memory, name, indices, word):
        if (
            self.record is not None
            or self.no_targets
            or memory.load_count < self.trigger
        ):
            return None
        arrays = injectable_targets(memory, self.target_arrays)
        if not arrays:
            self.no_targets = True
            return None
        array = self.rng.choice(arrays)
        shape = memory.shape(array)
        cell = tuple(self.rng.randrange(extent) for extent in shape)
        bits = tuple(self.rng.sample(range(64), self.num_bits))
        memory.flip_bits(array, cell, bits)
        self.record = InjectionRecord(
            array=array, indices=cell, bits=bits, at_load=memory.load_count
        )
        if name == array and tuple(indices) == cell:
            return memory.peek_bits(array, cell)
        return None


class BurstCorruption(FaultInjector):
    """Corrupt a run of consecutive cells at a random load event.

    Drawn like :class:`RandomCellFlipper`, but the strike covers up to
    ``burst_cells`` row-major-consecutive cells starting at a uniformly
    chosen offset (clipped at the region end); each struck cell loses
    ``num_bits`` distinct random bits.  The record's ``cells`` lists
    every struck cell so campaigns mask the whole burst, and its
    ``bits`` are the first cell's flips.
    """

    def __init__(
        self,
        num_bits: int,
        burst_cells: int,
        expected_loads: int,
        rng: random.Random,
        target_arrays: Iterable[str] | None = None,
    ) -> None:
        if expected_loads < 1:
            raise ValueError("expected_loads must be >= 1")
        if not 0 <= num_bits <= 64:
            raise ValueError(f"num_bits must be in [0, 64], got {num_bits}")
        if burst_cells < 0:
            raise ValueError(f"burst_cells must be >= 0, got {burst_cells}")
        self.num_bits = num_bits
        self.burst_cells = burst_cells
        self.target_arrays = (
            tuple(target_arrays) if target_arrays is not None else None
        )
        self.record: InjectionRecord | None = None
        self.no_targets = (
            num_bits == 0 or burst_cells == 0 or self.target_arrays == ()
        )
        if self.no_targets:
            self.trigger = 0  # RNG untouched, as in RandomCellFlipper
        else:
            self.trigger = rng.randint(1, expected_loads)
        self.rng = rng

    @property
    def injected(self) -> bool:
        return self.record is not None

    def before_load(self, memory, name, indices, word):
        if (
            self.record is not None
            or self.no_targets
            or memory.load_count < self.trigger
        ):
            return None
        arrays = injectable_targets(memory, self.target_arrays)
        if not arrays:
            self.no_targets = True
            return None
        array = self.rng.choice(arrays)
        shape = memory.shape(array)
        size = 1
        for extent in shape:
            size *= extent
        start = self.rng.randrange(size)
        struck: list[tuple[int, ...]] = []
        first_bits: tuple[int, ...] = ()
        for offset in range(start, min(start + self.burst_cells, size)):
            cell = cell_at(offset, shape)
            bits = tuple(self.rng.sample(range(64), self.num_bits))
            memory.flip_bits(array, cell, bits)
            struck.append(cell)
            if not first_bits:
                first_bits = bits
        self.record = InjectionRecord(
            array=array,
            indices=struck[0],
            bits=first_bits,
            at_load=memory.load_count,
            kind="burst",
            cells=tuple(struck),
        )
        if name == array and tuple(indices) in set(struck):
            return memory.peek_bits(array, tuple(indices))
        return None


def flip_random_bits_in_words(
    words: list[int], num_bits: int, rng: random.Random
) -> list[tuple[int, int]]:
    """Flip ``num_bits`` distinct bits chosen over a whole word array.

    Mutates ``words`` in place; returns ``(word_index, bit)`` pairs.
    Used by the Table 1 fault-coverage experiment, where bits are drawn
    uniformly over *all* bits of the array (paper Section 6.1).
    """
    total_bits = len(words) * 64
    positions = rng.sample(range(total_bits), num_bits)
    flipped: list[tuple[int, int]] = []
    for position in positions:
        index, bit = divmod(position, 64)
        words[index] ^= 1 << bit
        flipped.append((index, bit))
    return flipped
