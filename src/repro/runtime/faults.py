"""Fault injection into the simulated memory subsystem.

The paper's fault model (Section 2.2): transient multi-bit errors
strike values *at rest* in the memory subsystem, between the store that
produced a value and a load that consumes it.  Injectors here hook the
memory's load path and corrupt the stored word just before the load
returns — the corruption is persistent (the cell stays corrupted), as a
real upset would be until overwritten.

Three injectors:

* :class:`NoFaults` — the null injector.
* :class:`ScheduledBitFlip` — flip chosen bits of one cell when the
  program's N-th load (globally or of that cell) occurs; deterministic,
  used by unit tests.
* :class:`RandomCellFlipper` — a campaign primitive: at a uniformly
  random load event, flip ``k`` uniformly chosen bits of a uniformly
  chosen cell of the target arrays.  Used by the detection-coverage
  experiments.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable, Sequence


class FaultInjector:
    """Base injector: hooks return a replacement word or None."""

    def before_load(
        self, memory, name: str, indices: tuple[int, ...], word: int
    ) -> int | None:
        """Called before a load returns; may corrupt the stored word."""
        return None

    def after_store(
        self, memory, name: str, indices: tuple[int, ...], word: int
    ) -> int | None:
        """Called after a store lands; may corrupt the stored word."""
        return None

    def describe(self) -> str:
        return type(self).__name__


class NoFaults(FaultInjector):
    """Fault-free execution."""


@dataclass
class InjectionRecord:
    """What a campaign actually did (for reporting/debugging)."""

    array: str
    indices: tuple[int, ...]
    bits: tuple[int, ...]
    at_load: int


class ScheduledBitFlip(FaultInjector):
    """Deterministically corrupt one cell at a specific load event.

    ``at_load`` counts loads globally (memory.load_count, 1-based at
    hook time).  When the trigger fires, the listed bit positions of
    the *target* cell are flipped in place; if the triggering load is
    of the target cell itself, the corrupted value is what the load
    returns.
    """

    def __init__(
        self,
        array: str,
        indices: tuple[int, ...],
        bit_positions: Sequence[int],
        at_load: int,
    ) -> None:
        self.array = array
        self.indices = tuple(indices)
        self.bit_positions = tuple(bit_positions)
        self.at_load = at_load
        self.fired = False

    def before_load(self, memory, name, indices, word):
        if not self.fired and memory.load_count >= self.at_load:
            self.fired = True
            memory.flip_bits(self.array, self.indices, self.bit_positions)
            if name == self.array and tuple(indices) == self.indices:
                return memory.peek_bits(self.array, self.indices)
        return None


class RandomCellFlipper(FaultInjector):
    """Flip ``num_bits`` random bits of a random cell at a random moment.

    The moment is a load event drawn uniformly from
    ``[1, expected_loads]``; the cell is drawn uniformly from the
    non-shadow regions listed in ``target_arrays`` (or all non-shadow
    regions when omitted).  Exactly one injection per run.
    """

    def __init__(
        self,
        num_bits: int,
        expected_loads: int,
        rng: random.Random,
        target_arrays: Iterable[str] | None = None,
    ) -> None:
        if expected_loads < 1:
            raise ValueError("expected_loads must be >= 1")
        self.num_bits = num_bits
        self.trigger = rng.randint(1, expected_loads)
        self.rng = rng
        self.target_arrays = tuple(target_arrays) if target_arrays else None
        self.record: InjectionRecord | None = None
        self.no_targets = False
        """Set when the trigger fired but no targetable cell existed
        (empty target list, or every target has zero extent).  Campaigns
        must report such trials as ``no_injection``, not undetected."""

    @property
    def injected(self) -> bool:
        """Whether a fault actually landed (False also when the program
        performed no loads, so the trigger never fired)."""
        return self.record is not None

    def before_load(self, memory, name, indices, word):
        if (
            self.record is not None
            or self.no_targets
            or memory.load_count < self.trigger
        ):
            return None
        arrays = (
            list(self.target_arrays)
            if self.target_arrays is not None
            else memory.region_names(include_shadow=False)
        )
        # Only regions with at least one cell are injectable (scalars
        # have shape () and count as one cell).
        arrays = [
            a
            for a in arrays
            if all(extent > 0 for extent in memory.shape(a))
        ]
        if not arrays:
            self.no_targets = True
            return None
        array = self.rng.choice(arrays)
        shape = memory.shape(array)
        cell = tuple(self.rng.randrange(extent) for extent in shape)
        bits = tuple(self.rng.sample(range(64), self.num_bits))
        memory.flip_bits(array, cell, bits)
        self.record = InjectionRecord(
            array=array, indices=cell, bits=bits, at_load=memory.load_count
        )
        if name == array and tuple(indices) == cell:
            return memory.peek_bits(array, cell)
        return None


class MultiInjector(FaultInjector):
    """Compose several injectors (fired in order)."""

    def __init__(self, injectors: Sequence[FaultInjector]) -> None:
        self.injectors = list(injectors)

    def before_load(self, memory, name, indices, word):
        result = None
        for injector in self.injectors:
            mutated = injector.before_load(memory, name, indices, word)
            if mutated is not None:
                result = mutated
                word = mutated
        return result

    def after_store(self, memory, name, indices, word):
        result = None
        for injector in self.injectors:
            mutated = injector.after_store(memory, name, indices, word)
            if mutated is not None:
                result = mutated
                word = mutated
        return result


@dataclass(frozen=True)
class InjectorSpec:
    """A fault injector as pure data.

    Campaign engines ship these across process boundaries instead of
    live injector objects (which hold an RNG mid-stream and are not
    meaningfully picklable).  :func:`make_injector` turns a spec into a
    fresh injector; two calls with the same spec behave identically, so
    any campaign trial can be replayed from its record alone.

    Kinds: ``"none"`` (:class:`NoFaults`), ``"scheduled"``
    (:class:`ScheduledBitFlip`, uses ``array``/``indices``/
    ``bit_positions``/``at_load``), ``"random_cell"``
    (:class:`RandomCellFlipper`, uses ``num_bits``/``expected_loads``/
    ``seed``/``target_arrays``).
    """

    kind: str = "random_cell"
    num_bits: int = 2
    expected_loads: int = 1
    seed: int = 0
    target_arrays: tuple[str, ...] | None = None
    array: str | None = None
    indices: tuple[int, ...] = ()
    bit_positions: tuple[int, ...] = ()
    at_load: int = 1

    def to_dict(self) -> dict:
        data = {
            "kind": self.kind,
            "num_bits": self.num_bits,
            "expected_loads": self.expected_loads,
            "seed": self.seed,
            "target_arrays": (
                list(self.target_arrays)
                if self.target_arrays is not None
                else None
            ),
            "array": self.array,
            "indices": list(self.indices),
            "bit_positions": list(self.bit_positions),
            "at_load": self.at_load,
        }
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "InjectorSpec":
        return cls(
            kind=data.get("kind", "random_cell"),
            num_bits=data.get("num_bits", 2),
            expected_loads=data.get("expected_loads", 1),
            seed=data.get("seed", 0),
            target_arrays=(
                tuple(data["target_arrays"])
                if data.get("target_arrays") is not None
                else None
            ),
            array=data.get("array"),
            indices=tuple(data.get("indices", ())),
            bit_positions=tuple(data.get("bit_positions", ())),
            at_load=data.get("at_load", 1),
        )


def make_injector(spec: InjectorSpec) -> FaultInjector:
    """Instantiate the injector an :class:`InjectorSpec` describes."""
    if spec.kind == "none":
        return NoFaults()
    if spec.kind == "scheduled":
        if spec.array is None:
            raise ValueError("scheduled injector needs an array")
        return ScheduledBitFlip(
            array=spec.array,
            indices=spec.indices,
            bit_positions=spec.bit_positions,
            at_load=spec.at_load,
        )
    if spec.kind == "random_cell":
        return RandomCellFlipper(
            num_bits=spec.num_bits,
            expected_loads=spec.expected_loads,
            rng=random.Random(spec.seed),
            target_arrays=spec.target_arrays,
        )
    raise ValueError(f"unknown injector kind {spec.kind!r}")


def flip_random_bits_in_words(
    words: list[int], num_bits: int, rng: random.Random
) -> list[tuple[int, int]]:
    """Flip ``num_bits`` distinct bits chosen over a whole word array.

    Mutates ``words`` in place; returns ``(word_index, bit)`` pairs.
    Used by the Table 1 fault-coverage experiment, where bits are drawn
    uniformly over *all* bits of the array (paper Section 6.1).
    """
    total_bits = len(words) * 64
    positions = rng.sample(range(total_bits), num_bits)
    flipped: list[tuple[int, int]] = []
    for position in positions:
        index, bit = divmod(position, 64)
        words[index] ^= 1 << bit
        flipped.append((index, bit))
    return flipped
