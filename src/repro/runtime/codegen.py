"""IR → Python source generation for the compiled execution backend.

The emitter lowers one (possibly instrumented) program to the source of
a single Python function ``_kernel(_rt)`` whose observable behaviour is
**bit-identical** to :class:`~repro.runtime.interpreter.Interpreter`:

* every load and store goes through the same :class:`Memory` methods in
  the same order, so fault injectors trigger on exactly the same access
  (the injector's trigger is a load-event index — ordering is part of
  the contract, not an implementation detail); this covers the
  address-redirect hooks too: a redirected access lands on the same
  cell under either backend, and the fused ``_lba``/``_sba`` calls
  return the **intended** (architectural) address — exactly what the
  interpreter's separate ``address_of`` on the intended indices
  yields — so checksum streams stay bit-identical under
  address-generation faults;
* :class:`~repro.runtime.costmodel.OpCounts` accumulate in local
  integers and are spilled into the shared context once, in a
  ``finally`` block, so partial counts survive step-limit aborts;
* the statement step counter, bundle load cache, halt-on-mismatch
  unwind and checksum contribution order all replicate the interpreter
  statement by statement.

The strategy is three-address-code style: every counted operation's
operands are materialized as *atoms* (constants, ``v_<name>`` locals or
``_t<n>`` temporaries) so that counting code can mention them without
re-evaluating anything.  Where the operand types are statically known
(region element types, loop iterators, literals) the float/int
classification of :meth:`Interpreter._count_arith` is resolved at
compile time; otherwise a runtime ``isinstance`` check is emitted that
mirrors the interpreter exactly.

Programs using features the emitter does not model (``register_budget``
spill simulation is handled one level up, in
:mod:`repro.runtime.compile`) raise :class:`CompileError`; callers fall
back to the interpreter.
"""

from __future__ import annotations

from repro.ir.nodes import (
    ArrayRef,
    Assign,
    BinOp,
    Call,
    ChecksumAdd,
    ChecksumAssert,
    ChecksumReset,
    Const,
    CounterIncrement,
    Expr,
    If,
    Loop,
    Program,
    Select,
    Stmt,
    UnOp,
    VarRef,
    WhileLoop,
    walk_expressions,
)
from repro.runtime.state import _valid_name

MASK64 = (1 << 64) - 1

_COUNTERS = (
    "loads",
    "stores",
    "fp_adds",
    "fp_muls",
    "fp_divs",
    "fp_sqrts",
    "fp_others",
    "int_ops",
    "branches",
    "checksum_ops",
    "counter_ops",
)

_CMP_OPS = ("==", "!=", "<", "<=", ">", ">=")
_ARITH_FP_BUCKET = {
    "+": "_n_fp_adds",
    "-": "_n_fp_adds",
    "*": "_n_fp_muls",
    "/": "_n_fp_divs",
    "%": "_n_fp_divs",
}


class CompileError(Exception):
    """The program uses a construct the codegen backend cannot lower."""


def _pytype(elem_type: str) -> str:
    if elem_type == "f64":
        return "float"
    if elem_type == "i64":
        return "int"
    raise CompileError(f"unknown element type {elem_type!r}")


class _Emitter:
    """Stateful line emitter for one program."""

    def __init__(self, program: Program) -> None:
        self.program = program
        self.lines: list[str] = []
        self.depth = 1
        self._temp = 0
        self.scalar_types = {d.name: d.elem_type for d in program.scalars}
        self.array_types = {d.name: d.elem_type for d in program.arrays}
        # Names resolvable without touching memory: parameters plus the
        # loop iterators of enclosing loops.  The interpreter looks these
        # up in ``_env`` before falling back to a scalar load, and a loop
        # variable is always in ``_env`` while its body runs — so static
        # lexical resolution gives the same answer.
        self.bound: set[str] = set(program.params)
        # Per-bundle compile-time memo: syntactically identical data
        # references whose indices are count-free atoms resolve to the
        # same runtime cache key, so the interpreter's second access is
        # always a cache hit with no observable effect — the emitted
        # code can reuse the first load's atoms outright.
        self._memo: dict | None = None
        # Inside a conditionally executed expression region (select
        # branch, short-circuit right operand) memo entries must not be
        # created: the load may not have happened on this path.
        self._cond_depth = 0

    # -- low-level helpers ------------------------------------------------
    def out(self, line: str) -> None:
        self.lines.append("    " * self.depth + line)

    def tmp(self) -> str:
        self._temp += 1
        return f"_t{self._temp}"

    def _as_int(self, atom: str, typ: str) -> str:
        return atom if typ == "int" else f"int({atom})"

    def _elem_type(self, name: str) -> str:
        if name in self.array_types:
            return self.array_types[name]
        if name in self.scalar_types:
            return self.scalar_types[name]
        raise CompileError(f"no region {name!r} declared")

    def _decode(self, bits_atom: str, elem_type: str) -> str:
        if elem_type == "f64":
            return f"_unpd(_pkq({bits_atom}))[0]"
        if elem_type == "i64":
            return (
                f"({bits_atom} - 18446744073709551616 "
                f"if {bits_atom} >= 9223372036854775808 else {bits_atom})"
            )
        raise CompileError(f"unknown element type {elem_type!r}")

    def _encode(self, value_atom: str, value_type: str, elem_type: str) -> str:
        if elem_type == "f64":
            inner = value_atom if value_type == "float" else f"float({value_atom})"
            return f"_unpq(_pkd({inner}))[0]"
        if elem_type == "i64":
            inner = value_atom if value_type == "int" else f"int({value_atom})"
            return f"{inner} & 18446744073709551615"
        raise CompileError(f"unknown element type {elem_type!r}")

    # -- data references --------------------------------------------------
    def _index_tuple(self, indices, cache) -> str:
        """Atom for an int-converted index tuple (evaluated in order)."""
        if not indices:
            return "()"
        atoms = [
            self._as_int(*self.eval_expr(index, cache)) for index in indices
        ]
        return "(" + ", ".join(atoms) + ",)"

    def _memoizable(self, ref) -> bool:
        """Re-evaluating this ref's indices has no observable effect.

        The interpreter re-evaluates index expressions on every cache
        access, which re-counts their arithmetic; only refs indexed by
        bare iterators/params or literals may skip that re-evaluation.
        """
        if isinstance(ref, VarRef):
            return True
        return all(
            isinstance(index, Const)
            or (isinstance(index, VarRef) and index.name in self.bound)
            for index in ref.indices
        )

    def _invalidate_memo(self, name: str) -> None:
        """Drop memo entries that may alias a freshly stored cell."""
        if self._memo:
            for ref in [
                r
                for r in self._memo
                if (r.array if isinstance(r, ArrayRef) else r.name) == name
            ]:
                del self._memo[ref]

    def load_ref(self, ref, cache: str | None):
        """Emit a load of a data reference.

        Returns ``(value, bits, address, type)`` atom strings; address
        is only materialized on the cached path (the interpreter's
        uncached loads compute it too, but it is never observable
        there — ``Memory.address_of`` touches no counters).
        """
        memoizable = (
            cache is not None
            and self._memo is not None
            and self._memoizable(ref)
        )
        if memoizable:
            hit4 = self._memo.get(ref)
            if hit4 is not None:
                return hit4
        if isinstance(ref, ArrayRef):
            name = ref.array
            idx = self._index_tuple(ref.indices, cache)
        else:
            name = ref.name
            if name not in self.scalar_types and name not in self.array_types:
                raise CompileError(f"unbound data reference {name!r}")
            idx = "()"
        elem_type = self._elem_type(name)
        if cache is None:
            bits = self.tmp()
            value = self.tmp()
            self.out(f"{bits} = _lb({name!r}, {idx})")
            self.out("_n_loads += 1")
            self.out(f"{value} = {self._decode(bits, elem_type)}")
            return value, bits, "None", _pytype(elem_type)
        key = self.tmp()
        hit = self.tmp()
        self.out(f"{key} = ({name!r}, {idx})")
        self.out(f"{hit} = {cache}.get({key})")
        self.out(f"if {hit} is None:")
        self.depth += 1
        bits = self.tmp()
        addr = self.tmp()
        self.out(f"{bits}, {addr} = _lba({name!r}, {key}[1])")
        self.out("_n_loads += 1")
        self.out(f"{hit} = ({self._decode(bits, elem_type)}, {bits}, {addr})")
        self.out(f"{cache}[{key}] = {hit}")
        self.depth -= 1
        result = (
            f"{hit}[0]",
            f"{hit}[1]",
            f"{hit}[2]",
            _pytype(elem_type),
        )
        if memoizable and self._cond_depth == 0:
            self._memo[ref] = result
        return result

    # -- expressions ------------------------------------------------------
    def eval_expr(self, expr: Expr, cache: str | None) -> tuple[str, str]:
        """Emit evaluation code; return ``(atom, type)`` with type one of
        ``"int"``, ``"float"``, ``"dyn"``."""
        if isinstance(expr, Const):
            if isinstance(expr.value, bool) or not isinstance(
                expr.value, (int, float)
            ):
                raise CompileError(f"unsupported constant {expr.value!r}")
            typ = "float" if isinstance(expr.value, float) else "int"
            return repr(expr.value), typ
        if isinstance(expr, VarRef):
            if expr.name in self.bound:
                return f"v_{expr.name}", "int"
            if expr.name in self.scalar_types:
                value, _, _, typ = self.load_ref(expr, cache)
                return value, typ
            raise CompileError(f"unbound name {expr.name!r}")
        if isinstance(expr, ArrayRef):
            value, _, _, typ = self.load_ref(expr, cache)
            return value, typ
        if isinstance(expr, BinOp):
            return self._emit_binop(expr, cache)
        if isinstance(expr, UnOp):
            return self._emit_unop(expr, cache)
        if isinstance(expr, Call):
            return self._emit_call(expr, cache)
        if isinstance(expr, Select):
            return self._emit_select(expr, cache)
        raise CompileError(f"cannot compile expression {expr!r}")

    def _emit_count_arith(self, op: str, la: str, lt: str, ra: str, rt: str):
        bucket = _ARITH_FP_BUCKET[op]
        if lt == "float" or rt == "float":
            self.out(f"{bucket} += 1")
        elif lt == "int" and rt == "int":
            self.out("_n_int_ops += 1")
        else:
            self.out(f"if isinstance({la}, float) or isinstance({ra}, float):")
            self.out(f"    {bucket} += 1")
            self.out("else:")
            self.out("    _n_int_ops += 1")

    def _emit_binop(self, expr: BinOp, cache) -> tuple[str, str]:
        op = expr.op
        res = self.tmp()
        if op in ("&&", "||"):
            la, _ = self.eval_expr(expr.left, cache)
            self.out("_n_branches += 1")
            if op == "&&":
                self.out(f"if {la}:")
                self.depth += 1
                self._cond_depth += 1
                ra, _ = self.eval_expr(expr.right, cache)
                self._cond_depth -= 1
                self.out(f"{res} = 1 if {ra} else 0")
                self.depth -= 1
                self.out("else:")
                self.out(f"    {res} = 0")
            else:
                self.out(f"if {la}:")
                self.out(f"    {res} = 1")
                self.out("else:")
                self.depth += 1
                self._cond_depth += 1
                ra, _ = self.eval_expr(expr.right, cache)
                self._cond_depth -= 1
                self.out(f"{res} = 1 if {ra} else 0")
                self.depth -= 1
            return res, "int"
        la, lt = self.eval_expr(expr.left, cache)
        ra, rt = self.eval_expr(expr.right, cache)
        if op in _CMP_OPS:
            self.out("_n_int_ops += 1")
            self.out(f"{res} = 1 if {la} {op} {ra} else 0")
            return res, "int"
        if op not in _ARITH_FP_BUCKET:
            raise CompileError(f"unknown binary op {op!r}")
        self._emit_count_arith(op, la, lt, ra, rt)
        if lt == "int" and rt == "int":
            rtype = "int"
        elif lt == "float" or rt == "float":
            rtype = "float"
        else:
            rtype = "dyn"
        if op in ("+", "-", "*"):
            self.out(f"{res} = {la} {op} {ra}")
        elif op == "/":
            if rtype == "int":
                self.out(f"{res} = _idiv({la}, {ra})")
            elif rtype == "float":
                self.out(f"{res} = _fdiv({la}, {ra})")
            else:
                self.out(f"{res} = _xdiv({la}, {ra})")
        else:  # "%"
            self.out(f"{res} = _rmod({la}, {ra})")
        return res, rtype

    def _emit_unop(self, expr: UnOp, cache) -> tuple[str, str]:
        oa, ot = self.eval_expr(expr.operand, cache)
        res = self.tmp()
        if expr.op == "-":
            # _count_arith("-", operand, 0): the literal 0 is an int, so
            # the classification depends only on the operand.
            if ot == "float":
                self.out("_n_fp_adds += 1")
            elif ot == "int":
                self.out("_n_int_ops += 1")
            else:
                self.out(f"if isinstance({oa}, float):")
                self.out("    _n_fp_adds += 1")
                self.out("else:")
                self.out("    _n_int_ops += 1")
            self.out(f"{res} = -({oa})")
            return res, ot
        if expr.op == "!":
            self.out("_n_int_ops += 1")
            self.out(f"{res} = 0 if {oa} else 1")
            return res, "int"
        raise CompileError(f"unknown unary op {expr.op!r}")

    def _emit_call(self, expr: Call, cache) -> tuple[str, str]:
        evaluated = [self.eval_expr(arg, cache) for arg in expr.args]
        atoms = [atom for atom, _ in evaluated]
        func = expr.func
        res = self.tmp()
        arity = {"mod": 2}.get(func, 1)
        if func in ("min", "max"):
            if not atoms:
                raise CompileError(f"{func}() needs at least one argument")
        elif len(atoms) < arity:
            raise CompileError(f"{func}() needs {arity} argument(s)")
        if func == "sqrt":
            self.out("_n_fp_sqrts += 1")
            self.out(f"{res} = _rsqrt({atoms[0]})")
            return res, "float"
        if func == "abs":
            self.out("_n_fp_others += 1")
            self.out(f"{res} = abs({atoms[0]})")
            return res, evaluated[0][1]
        if func in ("min", "max"):
            self.out("_n_int_ops += 1")
            if len(atoms) == 1:
                self.out(f"{res} = {atoms[0]}")
                return res, evaluated[0][1]
            self.out(f"{res} = {func}({', '.join(atoms)})")
            types = {typ for _, typ in evaluated}
            return res, types.pop() if len(types) == 1 else "dyn"
        if func == "exp":
            self.out("_n_fp_others += 1")
            self.out(f"{res} = _rexp({atoms[0]})")
            return res, "float"
        if func == "sin":
            self.out("_n_fp_others += 1")
            self.out(f"{res} = _sin({atoms[0]})")
            return res, "float"
        if func == "cos":
            self.out("_n_fp_others += 1")
            self.out(f"{res} = _cos({atoms[0]})")
            return res, "float"
        if func == "floor":
            self.out("_n_int_ops += 1")
            self.out(f"{res} = _floor({atoms[0]})")
            return res, "int"
        if func == "mod":
            self.out("_n_int_ops += 1")
            self.out(f"{res} = {atoms[0]} % {atoms[1]}")
            lt, rt = evaluated[0][1], evaluated[1][1]
            if lt == "int" and rt == "int":
                return res, "int"
            if lt == "float" or rt == "float":
                return res, "float"
            return res, "dyn"
        raise CompileError(f"unknown intrinsic {func!r}")

    def _emit_select(self, expr: Select, cache) -> tuple[str, str]:
        self.out("_n_branches += 1")
        ca, _ = self.eval_expr(expr.cond, cache)
        res = self.tmp()
        self._cond_depth += 1
        self.out(f"if {ca}:")
        self.depth += 1
        ta, tt = self.eval_expr(expr.if_true, cache)
        self.out(f"{res} = {ta}")
        self.depth -= 1
        self.out("else:")
        self.depth += 1
        fa, ft = self.eval_expr(expr.if_false, cache)
        self.out(f"{res} = {fa}")
        self.depth -= 1
        self._cond_depth -= 1
        return res, tt if tt == ft else "dyn"

    # -- statements -------------------------------------------------------
    def emit_body(self, body) -> None:
        for stmt in body:
            self.emit_statement(stmt)

    def emit_statement(self, stmt: Stmt) -> None:
        self.out("_steps += 1")
        self.out("if _steps > _max: _slimit(_rt)")
        if isinstance(stmt, Assign):
            self._emit_assign(stmt)
        elif isinstance(stmt, Loop):
            self._emit_loop(stmt)
        elif isinstance(stmt, WhileLoop):
            self._emit_while(stmt)
        elif isinstance(stmt, If):
            self._emit_if(stmt)
        elif isinstance(stmt, ChecksumAdd):
            self._emit_checksum_add(stmt)
        elif isinstance(stmt, CounterIncrement):
            self._emit_counter_increment(stmt)
        elif isinstance(stmt, ChecksumAssert):
            self._emit_assert(stmt)
        elif isinstance(stmt, ChecksumReset):
            self._emit_reset(stmt)
        else:
            raise CompileError(f"cannot compile statement {stmt!r}")

    def _emit_loop(self, stmt: Loop) -> None:
        lo, lt = self.eval_expr(stmt.lower, None)
        hi, ht = self.eval_expr(stmt.upper, None)
        shadowed = stmt.var in self.bound
        saved = None
        if shadowed:
            saved = self.tmp()
            self.out(f"{saved} = v_{stmt.var}")
        self.out(
            f"for v_{stmt.var} in range({self._as_int(lo, lt)}, "
            f"{self._as_int(hi, ht)} + 1):"
        )
        self.depth += 1
        self.out("_n_branches += 1")
        self.bound.add(stmt.var)
        self.emit_body(stmt.body)
        if not stmt.body:
            self.out("pass")
        self.depth -= 1
        if not shadowed:
            self.bound.discard(stmt.var)
        self.out("_n_branches += 1")
        if shadowed:
            self.out(f"v_{stmt.var} = {saved}")

    def _emit_while(self, stmt: WhileLoop) -> None:
        self.out("while True:")
        self.depth += 1
        self.out("_n_branches += 1")
        ca, _ = self.eval_expr(stmt.cond, None)
        self.out(f"if not {ca}: break")
        if stmt.counter is not None:
            if stmt.counter not in self.scalar_types:
                raise CompileError(
                    f"while counter {stmt.counter!r} is not a scalar"
                )
            cur = self.tmp()
            self.out(f"{cur} = _mload({stmt.counter!r}, ())")
            self.out(f"_mstore({stmt.counter!r}, (), int({cur}) + 1)")
            self.out(
                "_n_loads += 1; _n_stores += 1; "
                "_n_int_ops += 1; _n_counter_ops += 1"
            )
        self.emit_body(stmt.body)
        self.depth -= 1

    def _emit_if(self, stmt: If) -> None:
        self.out("_n_branches += 1")
        ca, _ = self.eval_expr(stmt.cond, None)
        self.out(f"if {ca}:")
        self.depth += 1
        self.emit_body(stmt.then_body)
        if not stmt.then_body:
            self.out("pass")
        self.depth -= 1
        if stmt.else_body:
            self.out("else:")
            self.depth += 1
            self.emit_body(stmt.else_body)
            self.depth -= 1

    def _emit_csadd(
        self, which: str, bits: str, count: str, address: str
    ) -> None:
        """Inline ``ChecksumState.add`` for the single-channel case.

        Channel 0 never rotates, ``bits`` atoms are already masked
        (memory words and encode results live in [0, 2^64)), and the
        checksum name is validated at compile time — so the plain-sum
        update inlines to one dict read-modify-write.  Multi-channel
        runs take the method call (rotation needs the address).
        """
        if not _valid_name(which):
            raise CompileError(f"unknown checksum {which!r}")
        self.out("if _ch1:")
        self.depth += 1
        self.out("_cs.contribution_count += 1")
        self.out(
            f"_s0[{which!r}] = (_s0.get({which!r}, 0) + {bits} * {count}) "
            "& 18446744073709551615"
        )
        self.depth -= 1
        self.out("else:")
        self.out(f"    _csadd({which!r}, {bits}, {count}, {address})")

    def _exprs_need_cache(self, exprs) -> bool:
        """Whether any expression performs a data load (and therefore
        needs the bundle's runtime load-cache dict)."""
        for expr in exprs:
            for node in walk_expressions(expr):
                if isinstance(node, ArrayRef):
                    return True
                if isinstance(node, VarRef) and node.name not in self.bound:
                    return True
        return False

    def _counter_location(self, ref, cache) -> tuple[str, str]:
        """(region name, index-tuple atom) of a shadow counter ref."""
        if isinstance(ref, ArrayRef):
            return ref.array, self._index_tuple(ref.indices, cache)
        return ref.name, "()"

    def _emit_bump_counter(self, ref, cache, amount_atom: str) -> None:
        name, loc = self._counter_location(ref, cache)
        if name not in self.array_types and name not in self.scalar_types:
            raise CompileError(f"counter region {name!r} not declared")
        cur = self.tmp()
        self.out(f"{cur} = int(_mload({name!r}, {loc}))")
        self.out(f"_mstore({name!r}, {loc}, {cur} + {amount_atom})")
        self.out(
            "_n_loads += 1; _n_stores += 1; "
            "_n_int_ops += 1; _n_counter_ops += 1"
        )

    def _emit_assign(self, stmt: Assign) -> None:
        instr = stmt.instrumentation
        exprs = [stmt.rhs]
        if isinstance(stmt.lhs, ArrayRef):
            exprs.extend(stmt.lhs.indices)
        refs_through_cache = bool(
            instr and (instr.uses or instr.pre_overwrite)
        )
        if instr:
            exprs.extend(use.count for use in instr.uses)
            for counter_ref in instr.counter_increments:
                if isinstance(counter_ref, ArrayRef):
                    exprs.extend(counter_ref.indices)
            if isinstance(instr.duplicate_store, ArrayRef):
                exprs.extend(instr.duplicate_store.indices)
            if instr.definition:
                exprs.append(instr.definition.count)
        cached = refs_through_cache or self._exprs_need_cache(exprs)
        self._memo = {}
        if cached:
            self.out("_bc = {}")
        # 1. Target location (index loads go through the bundle cache).
        if isinstance(stmt.lhs, ArrayRef):
            tname = stmt.lhs.array
            if tname not in self.array_types:
                raise CompileError(f"store to undeclared array {tname!r}")
            tidx = self.tmp()
            self.out(
                f"{tidx} = {self._index_tuple(stmt.lhs.indices, '_bc')}"
            )
            if stmt.lhs.indices:
                self.out(f"_n_int_ops += {len(stmt.lhs.indices)}")
            elem_type = self.array_types[tname]
        else:
            tname = stmt.lhs.name
            if tname not in self.scalar_types:
                raise CompileError(f"store to undeclared scalar {tname!r}")
            tidx = "()"
            elem_type = self.scalar_types[tname]
        # 2. Right-hand side.
        va, vt = self.eval_expr(stmt.rhs, "_bc")
        # 3. Use contributions, counter bumps, pre-overwrite adjustment.
        if instr:
            for use in instr.uses:
                _, ubits, uaddr, _ = self.load_ref(use.ref, "_bc")
                ca, ct = self.eval_expr(use.count, "_bc")
                self._emit_csadd(
                    use.checksum, ubits, self._as_int(ca, ct), uaddr
                )
                self.out("_n_checksum_ops += _channels")
            for counter_ref in instr.counter_increments:
                self._emit_bump_counter(counter_ref, "_bc", "1")
            if instr.pre_overwrite:
                self._emit_pre_overwrite(stmt, instr.pre_overwrite)
        # 4. The store (encode, store through memory, drop cache entry).
        bits = self.tmp()
        addr = self.tmp()
        self.out(f"{bits} = {self._encode(va, vt, elem_type)}")
        self.out(f"{addr} = _sba({tname!r}, {tidx}, {bits})")
        self.out("_n_stores += 1")
        if cached:
            self.out(f"_bc.pop(({tname!r}, {tidx}), None)")
        self._invalidate_memo(tname)
        # 4b. Duplication baseline: second store of the same bits.
        if instr and instr.duplicate_store is not None:
            dup = instr.duplicate_store
            if isinstance(dup, ArrayRef):
                dname = dup.array
                didx = self.tmp()
                self.out(
                    f"{didx} = {self._index_tuple(dup.indices, '_bc')}"
                )
            else:
                dname = dup.name
                didx = "()"
            if (
                dname not in self.array_types
                and dname not in self.scalar_types
            ):
                raise CompileError(f"duplicate store to undeclared {dname!r}")
            self.out(f"_sb({dname!r}, {didx}, {bits})")
            self.out("_n_stores += 1")
            if cached:
                self.out(f"_bc.pop(({dname!r}, {didx}), None)")
            self._invalidate_memo(dname)
        # 5. Def contribution — the register copy just stored.
        if instr and instr.definition:
            d = instr.definition
            ca, ct = self.eval_expr(d.count, "_bc")
            self._emit_csadd(
                d.checksum, bits, self._as_int(ca, ct), addr
            )
            self.out("_n_checksum_ops += _channels")
            if d.aux:
                self._emit_csadd(d.aux_checksum, bits, "1", addr)
                self.out("_n_checksum_ops += _channels")

    def _emit_pre_overwrite(self, stmt: Assign, adjust) -> None:
        # Algorithm 3 lines 13-16: old value + shadow counter, then the
        # counter location is re-evaluated for the reset store (the
        # interpreter evaluates it once per counter access).
        _, obits, oaddr, _ = self.load_ref(stmt.lhs, "_bc")
        name, loc = self._counter_location(adjust.counter, "_bc")
        if name not in self.array_types and name not in self.scalar_types:
            raise CompileError(f"counter region {name!r} not declared")
        cv = self.tmp()
        self.out(f"{cv} = int(_mload({name!r}, {loc}))")
        self.out("_n_loads += 1; _n_counter_ops += 1")
        self._emit_csadd(
            adjust.def_checksum, obits, f"({cv} - 1)", oaddr
        )
        self._emit_csadd(adjust.e_use_checksum, obits, "1", oaddr)
        self.out("_n_checksum_ops += 2 * _channels")
        name2, loc2 = self._counter_location(adjust.counter, "_bc")
        self.out(f"_mstore({name2!r}, {loc2}, 0)")
        self.out("_n_stores += 1")

    def _emit_checksum_add(self, stmt: ChecksumAdd) -> None:
        value = stmt.value
        is_data_ref = isinstance(value, ArrayRef) or (
            isinstance(value, VarRef) and value.name in self.scalar_types
        )
        cached = is_data_ref or self._exprs_need_cache(
            [value, stmt.count]
        )
        self._memo = {}
        if cached:
            self.out("_bc = {}")
        if is_data_ref:
            # A data reference: contribute the loaded bits and address.
            # Note the interpreter's _is_data_ref checks scalar
            # declarations *before* the environment, so a scalar that
            # shadows a loop variable still loads from memory here.
            _, ba, aa, _ = self.load_ref(value, "_bc")
        else:
            va, vt = self.eval_expr(value, "_bc")
            ba = self.tmp()
            if vt == "int":
                self.out(f"{ba} = {va} & 18446744073709551615")
            elif vt == "float":
                self.out(f"{ba} = _unpq(_pkd({va}))[0]")
            else:
                self.out(f"{ba} = _encdyn({va})")
            aa = "None"
        ca, ct = self.eval_expr(stmt.count, "_bc")
        self._emit_csadd(stmt.checksum, ba, self._as_int(ca, ct), aa)
        self.out("_n_checksum_ops += _channels")

    def _emit_counter_increment(self, stmt: CounterIncrement) -> None:
        exprs = [stmt.amount]
        if isinstance(stmt.counter, ArrayRef):
            exprs.extend(stmt.counter.indices)
        self._memo = {}
        if self._exprs_need_cache(exprs):
            self.out("_bc = {}")
        aa, at = self.eval_expr(stmt.amount, "_bc")
        amount = self.tmp()
        self.out(f"{amount} = {self._as_int(aa, at)}")
        self._emit_bump_counter(stmt.counter, "_bc", amount)

    def _emit_assert(self, stmt: ChecksumAssert) -> None:
        pairs = tuple(tuple(pair) for pair in stmt.pairs)
        self.out(f"_n_branches += {len(pairs)} * _channels")
        found = self.tmp()
        self.out(f"{found} = _verify({pairs!r})")
        self.out(f"if {found}:")
        self.depth += 1
        self.out("if _first is None: _first = _steps")
        self.out(f"_mismatches.extend({found})")
        self.out("if _halt: raise _Halt")
        self.depth -= 1

    def _emit_reset(self, stmt: ChecksumReset) -> None:
        self.out("for _sums in _cs.sums:")
        if stmt.names is None:
            self.out("    for _k in list(_sums): _sums[_k] = 0")
        else:
            names = tuple(stmt.names)
            self.out(f"    for _k in {names!r}: _sums[_k] = 0")


def generate_source(program: Program) -> str:
    """The Python source of ``_kernel(_rt)`` for one program."""
    em = _Emitter(program)
    em.out("_mem = _rt.memory")
    em.out("_lb = _mem.load_bits")
    em.out("_lba = _mem.load_bits_addr")
    em.out("_sb = _mem.store_bits")
    em.out("_sba = _mem.store_bits_addr")
    em.out("_mload = _mem.load")
    em.out("_mstore = _mem.store")
    em.out("_cs = _rt.checksums")
    em.out("_csadd = _cs.add")
    em.out("_verify = _cs.verify")
    em.out("_channels = _cs.channels")
    em.out("_s0 = _cs.sums[0]")
    em.out("_ch1 = _channels == 1")
    em.out("_halt = _rt.halt_on_mismatch")
    em.out("_mismatches = _rt.mismatches")
    em.out("_max = _INF if _rt.max_steps is None else _rt.max_steps")
    for param in program.params:
        em.out(f"v_{param} = _rt.params[{param!r}]")
    for counter in _COUNTERS:
        em.out(f"_n_{counter} = 0")
    em.out("_steps = 0")
    em.out("_first = None")
    em.out("try:")
    em.depth += 1
    em.out("try:")
    em.depth += 1
    em.emit_body(program.body)
    if not program.body:
        em.out("pass")
    em.depth -= 1
    em.out("except _Halt:")
    em.out("    pass")
    em.depth -= 1
    em.out("finally:")
    em.depth += 1
    em.out("_c = _rt.counts")
    for counter in _COUNTERS:
        em.out(f"_c.{counter} += _n_{counter}")
    em.out("_rt.statements_executed = _steps")
    em.out("_rt.first_detection_step = _first")
    em.depth -= 1
    header = f"def _kernel(_rt):\n"
    return header + "\n".join(em.lines) + "\n"


def generate_checkpoint_source(program: Program) -> str:
    """Python source of ``_checkpoint`` / ``_restore`` for one program.

    The recovery subsystem snapshots every region the program declares
    (shadow counters included — they are epoch state like any other).
    The checkpoint function is unrolled per region with literal names,
    and is copy-on-write: a region whose write-generation counter
    matches the previous checkpoint shares that checkpoint's immutable
    word tuple instead of copying again.

    Compiled and interpreted recovery share the :class:`Memory` region
    API, so both backends observe identical snapshot contents; the
    generated form exists so compiled kernels carry their own
    checkpoint/restore code (no per-region dict walk at run time).
    """
    names = [d.name for d in program.arrays] + [d.name for d in program.scalars]
    lines = [
        "def _checkpoint(_mem, _prev):",
        "    _pw, _pv = _prev if _prev is not None else (None, None)",
        "    _words = {}",
        "    _vers = {}",
    ]
    for name in names:
        lines += [
            f"    _v = _mem.region_version({name!r})",
            f"    if _pv is not None and _pv[{name!r}] == _v:",
            f"        _words[{name!r}] = _pw[{name!r}]",
            "    else:",
            f"        _words[{name!r}] = _mem.copy_region_words({name!r})",
            f"    _vers[{name!r}] = _v",
        ]
    if not names:
        lines.append("    pass")
    lines += [
        "    return _words, _vers",
        "def _restore(_mem, _words, _names):",
        "    for _n in _names:",
        "        _mem.restore_region_words(_n, _words[_n])",
    ]
    return "\n".join(lines) + "\n"
