"""IR → Python source generation for the compiled execution backend.

The emitter lowers one (possibly instrumented) program to the source of
a single Python function ``_kernel(_rt)`` whose observable behaviour is
**bit-identical** to :class:`~repro.runtime.interpreter.Interpreter`:

* every load and store goes through the same :class:`Memory` methods in
  the same order, so fault injectors trigger on exactly the same access
  (the injector's trigger is a load-event index — ordering is part of
  the contract, not an implementation detail); this covers the
  address-redirect hooks too: a redirected access lands on the same
  cell under either backend, and the fused ``_lba``/``_sba`` calls
  return the **intended** (architectural) address — exactly what the
  interpreter's separate ``address_of`` on the intended indices
  yields — so checksum streams stay bit-identical under
  address-generation faults;
* :class:`~repro.runtime.costmodel.OpCounts` accumulate in local
  integers and are spilled into the shared context once, in a
  ``finally`` block, so partial counts survive step-limit aborts;
* the statement step counter, bundle load cache, halt-on-mismatch
  unwind and checksum contribution order all replicate the interpreter
  statement by statement.

The strategy is three-address-code style: every counted operation's
operands are materialized as *atoms* (constants, ``v_<name>`` locals or
``_t<n>`` temporaries) so that counting code can mention them without
re-evaluating anything.  Where the operand types are statically known
(region element types, loop iterators, literals) the float/int
classification of :meth:`Interpreter._count_arith` is resolved at
compile time; otherwise a runtime ``isinstance`` check is emitted that
mirrors the interpreter exactly.

On top of that baseline the emitter runs the optimization pipeline of
:mod:`repro.runtime.opt` when given a non-trivial :class:`OptConfig`:

* **count coalescing / folding** — pure subexpressions fold to single
  Python expressions and their statically known count vectors are
  buffered and flushed as one merged ``_n_* += k`` line per basic
  block.  Pending counts are always materialized before any point
  where a ``ChecksumAssert`` could raise ``_Halt`` (the only unwind
  that still returns a result) and at every divergent-control suite
  boundary; aborting exceptions (``StepLimitExceeded``,
  ``InterpreterError``, strict memory errors) discard the result, so
  they need no flush.  Folded *raising* atoms (``/``/``%`` by zero)
  are materialized at the interpreter's exact evaluation point so
  error order is preserved; non-raising folds may move freely.
* **LICM** — loop-invariant non-raising folded values are computed in
  a per-loop preamble (speculatively: they are pure, so evaluating
  them for a zero-trip loop is unobservable).  Counts are *not*
  hoisted — they accrue at each use site exactly as interpreted.
* **guard fusion** — an ``&&`` conjunction of pure leaves (the guard
  chains index-set splitting emits) compiles to one merged range test;
  the interpreter's per-leaf count scenarios are replayed from a
  compile-time simulation on whichever side the test lands.
* **unrolling** — constant-trip loops up to ``UNROLL_LIMIT`` and
  provably 0/1-trip loops (the ``min``/``max``-clamped degenerate
  split pieces) lose their ``for`` machinery.
* **static bundle-cache elimination** — when affine analysis decides
  every bundle-cache hit/miss at compile time, the runtime dict
  disappears and cache hits re-count their index arithmetic without
  touching memory, exactly as the interpreter's dict hit would.
* **inlined memory** (``inline_mem``) — a second kernel body with
  bounds checks and word-array accesses inlined, used only when no
  fault injector is attached (the selection happens at run time in
  :class:`~repro.runtime.compile.CompiledKernel`); out-of-bounds
  accesses fall back to the :class:`Memory` methods so wild-read and
  strict-mode semantics stay identical.

Programs using features the emitter does not model (``register_budget``
spill simulation is handled one level up, in
:mod:`repro.runtime.compile`) raise :class:`CompileError`; callers fall
back to the interpreter.
"""

from __future__ import annotations

import re

from repro.ir.nodes import (
    ArrayRef,
    Assign,
    BinOp,
    Call,
    ChecksumAdd,
    ChecksumAssert,
    ChecksumReset,
    Const,
    CounterIncrement,
    Expr,
    If,
    Loop,
    Program,
    Select,
    Stmt,
    UnOp,
    VarRef,
    WhileLoop,
    walk_expressions,
)
from repro.runtime.opt import (
    COUNTERS as _COUNTERS,
    OptConfig,
    UNROLL_LIMIT,
    analyze_guard_chain,
    fuse_condition,
    loop_trip_at_most_one,
    loop_trip_constant,
    ref_affine_key,
    try_fold,
)
from repro.runtime.state import _valid_name

MASK64 = (1 << 64) - 1

_CMP_OPS = ("==", "!=", "<", "<=", ">", ">=")
_ARITH_FP_BUCKET = {
    "+": "_n_fp_adds",
    "-": "_n_fp_adds",
    "*": "_n_fp_muls",
    "/": "_n_fp_divs",
    "%": "_n_fp_divs",
}

_SIMPLE_ATOM = re.compile(r"^(?:[A-Za-z_]\w*|-?\d+)$")
_FREE_VARS = re.compile(r"\bv_(\w+)")


class CompileError(Exception):
    """The program uses a construct the codegen backend cannot lower."""


def program_elem_types(program) -> dict[str, str]:
    """Region name -> element type for every declared array and scalar.

    Shared by backends that need the full type map up front (the vector
    planner) instead of the emitter's incremental lookups.
    """
    types = {d.name: d.elem_type for d in program.arrays}
    types.update({d.name: d.elem_type for d in program.scalars})
    return types


def _pytype(elem_type: str) -> str:
    if elem_type == "f64":
        return "float"
    if elem_type == "i64":
        return "int"
    raise CompileError(f"unknown element type {elem_type!r}")


class _Frame:
    """One LICM hoisting target: the preamble of one loop statement."""

    __slots__ = ("var", "depth", "preamble", "cache", "outer")

    def __init__(self, var: str | None, depth: int, outer: list[str]) -> None:
        self.var = var
        self.depth = depth
        self.preamble: list[str] = []
        self.cache: dict[str, str] = {}
        self.outer = outer


class _Emitter:
    """Stateful line emitter for one program."""

    def __init__(self, program: Program, opt: OptConfig | None = None) -> None:
        self.program = program
        self.opt = opt if opt is not None else OptConfig()
        self.lines: list[str] = []
        self.depth = 1
        self._temp = 0
        self.scalar_types = {d.name: d.elem_type for d in program.scalars}
        self.array_types = {d.name: d.elem_type for d in program.arrays}
        # Names resolvable without touching memory: parameters plus the
        # loop iterators of enclosing loops.  The interpreter looks these
        # up in ``_env`` before falling back to a scalar load, and a loop
        # variable is always in ``_env`` while its body runs — so static
        # lexical resolution gives the same answer.
        self.bound: set[str] = set(program.params)
        # Per-bundle compile-time memo: syntactically identical data
        # references whose indices are count-free atoms resolve to the
        # same runtime cache key, so the interpreter's second access is
        # always a cache hit with no observable effect — the emitted
        # code can reuse the first load's atoms outright.
        self._memo: dict | None = None
        # Inside a conditionally executed expression region (select
        # branch, short-circuit right operand) memo entries must not be
        # created: the load may not have happened on this path.
        self._cond_depth = 0
        # Pending (compile-time constant) count increments, flushed as
        # one merged line per basic block; ``_pend_ch`` counts pending
        # multiples of the runtime ``_channels`` for checksum_ops.
        self._pend: dict[str, int] = {}
        self._pend_ch = 0
        # Static bundle cache (affine symbolic simulation of the
        # interpreter's per-bundle load cache); ``None`` → dynamic.
        self._symcache: dict | None = None
        # LICM frame stack (innermost last).
        self.frames: list[_Frame] = []
        self._hoist_n = 0
        # name -> (local index, rank) for inlined-memory regions.
        self._region_local: dict[str, tuple[int, int]] = {}
        if self.opt.inline_mem:
            decls = list(program.arrays) + list(program.scalars)
            for i, decl in enumerate(decls):
                rank = len(getattr(decl, "dims", ()) or ())
                if rank <= 2:
                    self._region_local[decl.name] = (i, rank)

    # -- low-level helpers ------------------------------------------------
    def out(self, line: str) -> None:
        self.lines.append("    " * self.depth + line)

    def tmp(self) -> str:
        self._temp += 1
        return f"_t{self._temp}"

    def _as_int(self, atom: str, typ: str) -> str:
        return atom if typ == "int" else f"int({atom})"

    def _simple(self, atom: str) -> str:
        """Materialize a compound atom into a temp for repeated use."""
        if _SIMPLE_ATOM.match(atom):
            return atom
        t = self.tmp()
        self.out(f"{t} = {atom}")
        return t

    def _elem_type(self, name: str) -> str:
        if name in self.array_types:
            return self.array_types[name]
        if name in self.scalar_types:
            return self.scalar_types[name]
        raise CompileError(f"no region {name!r} declared")

    def _decode(self, bits_atom: str, elem_type: str) -> str:
        if elem_type == "f64":
            return f"_unpd(_pkq({bits_atom}))[0]"
        if elem_type == "i64":
            return (
                f"({bits_atom} - 18446744073709551616 "
                f"if {bits_atom} >= 9223372036854775808 else {bits_atom})"
            )
        raise CompileError(f"unknown element type {elem_type!r}")

    def _encode(self, value_atom: str, value_type: str, elem_type: str) -> str:
        if elem_type == "f64":
            inner = value_atom if value_type == "float" else f"float({value_atom})"
            return f"_unpq(_pkd({inner}))[0]"
        if elem_type == "i64":
            inner = value_atom if value_type == "int" else f"int({value_atom})"
            return f"{inner} & 18446744073709551615"
        raise CompileError(f"unknown element type {elem_type!r}")

    # -- pending counter buffer -------------------------------------------
    def count(self, bucket: str, n: int = 1) -> None:
        """Record ``n`` interpreter count units for ``bucket``.

        With folding enabled the increment is buffered and later merged
        into one flush line; otherwise it is emitted immediately (the
        level-0 reference emission).  Callers must only use this for
        increments that are *unconditional* at the current emission
        point — runtime-conditional counts (dynamic cache miss arms,
        channel-dependent totals) are emitted directly.
        """
        if not n:
            return
        if self.opt.fold:
            self._pend[bucket] = self._pend.get(bucket, 0) + n
        else:
            self.out(f"_n_{bucket} += {n}" if n != 1 else f"_n_{bucket} += 1")

    def count_channels(self, n: int = 1) -> None:
        """``checksum_ops += n * _channels`` (runtime channel count)."""
        if self.opt.fold:
            self._pend_ch += n
        else:
            self.out(
                "_n_checksum_ops += _channels"
                if n == 1
                else f"_n_checksum_ops += {n} * _channels"
            )

    def flush(self) -> None:
        """Materialize pending counts as one merged increment line."""
        parts = []
        for bucket in _COUNTERS:
            value = self._pend.get(bucket)
            if value:
                parts.append(f"_n_{bucket} += {value}")
        if self._pend_ch:
            parts.append(
                "_n_checksum_ops += _channels"
                if self._pend_ch == 1
                else f"_n_checksum_ops += {self._pend_ch} * _channels"
            )
        self._pend.clear()
        self._pend_ch = 0
        if parts:
            self.out("; ".join(parts))

    def _arm_begin(self) -> tuple[dict[str, int], int, int]:
        """Enter a conditionally executed suite: its counts must land
        inside the suite, so give it a fresh pending buffer."""
        saved = (self._pend, self._pend_ch, len(self.lines))
        self._pend = {}
        self._pend_ch = 0
        return saved

    def _arm_end(self, saved) -> None:
        """Flush the arm's own counts inside the suite and restore the
        caller's buffer (emitting ``pass`` for an empty suite)."""
        pend, pend_ch, mark = saved
        self.flush()
        if len(self.lines) == mark:
            self.out("pass")
        self._pend = pend
        self._pend_ch = pend_ch

    # -- LICM frames -------------------------------------------------------
    def _push_frame(self, var: str | None) -> _Frame | None:
        if not self.opt.licm:
            return None
        frame = _Frame(var, self.depth, self.lines)
        self.frames.append(frame)
        self.lines = []
        return frame

    def _pop_frame(self, frame: _Frame | None) -> None:
        if frame is None:
            return
        self.frames.pop()
        body = self.lines
        self.lines = frame.outer
        pad = "    " * frame.depth
        self.lines.extend(pad + line for line in frame.preamble)
        self.lines.extend(body)

    def _hoist_to(
        self, atom: str, free: frozenset[str] | set[str], min_frames: int = 0
    ) -> str:
        """Hoist a pure non-raising value atom to the outermost frame
        it is invariant in; counts are never hoisted (they stay at the
        use site), so speculative evaluation is unobservable."""
        target = None
        for frame in reversed(self.frames):
            if frame.var is not None and frame.var in free:
                break
            target = frame
        if target is None:
            return atom
        if target.var is None and target is self.frames[-1]:
            # Top-level straight-line code: nothing to hoist out of.
            return atom
        name = target.cache.get(atom)
        if name is None:
            self._hoist_n += 1
            name = f"_h{self._hoist_n}"
            target.cache[atom] = name
            target.preamble.append(f"{name} = {atom}")
        return name

    def _hoist_atom(self, atom: str) -> str:
        """Best-effort hoist of a scaffolding atom (fused guard bounds):
        pure affine/min/max forms whose free variables are exactly the
        ``v_`` names it mentions."""
        if not self.opt.licm or not self.frames or _SIMPLE_ATOM.match(atom):
            return atom
        free = set(_FREE_VARS.findall(atom))
        return self._hoist_to(atom, free)

    # -- folding -----------------------------------------------------------
    def _use_folded(self, f, condition: bool = False) -> str:
        """Account a folded expression's counts and return its atom.

        Raising atoms are materialized immediately so a division/modulo
        error aborts at the interpreter's exact evaluation point (no
        load may be reordered before it); non-raising atoms are pure
        and may be inlined or hoisted freely.
        """
        for bucket, n in f.counts:
            self.count(bucket, n)
        if f.raising:
            t = self.tmp()
            self.out(f"{t} = {f.atom}")
            return t
        atom = f.condition if condition else f.atom
        if self.opt.licm and f.complexity >= 3 and self.frames:
            return self._hoist_to(atom, f.free)
        return atom

    # -- data references --------------------------------------------------
    def _index_atoms(self, indices, cache) -> list[str]:
        """Int-converted index atoms (evaluated in order)."""
        return [
            self._as_int(*self.eval_expr(index, cache)) for index in indices
        ]

    @staticmethod
    def _tuple_atom(atoms: list[str]) -> str:
        if not atoms:
            return "()"
        return "(" + ", ".join(atoms) + ",)"

    def _index_tuple(self, indices, cache) -> str:
        return self._tuple_atom(self._index_atoms(indices, cache))

    def _memoizable(self, ref) -> bool:
        """Re-evaluating this ref's indices has no observable effect.

        The interpreter re-evaluates index expressions on every cache
        access, which re-counts their arithmetic; only refs indexed by
        bare iterators/params or literals may skip that re-evaluation.
        """
        if isinstance(ref, VarRef):
            return True
        return all(
            isinstance(index, Const)
            or (isinstance(index, VarRef) and index.name in self.bound)
            for index in ref.indices
        )

    def _invalidate_memo(self, name: str) -> None:
        """Drop memo entries that may alias a freshly stored cell."""
        if self._memo:
            for ref in [
                r
                for r in self._memo
                if (r.array if isinstance(r, ArrayRef) else r.name) == name
            ]:
                del self._memo[ref]

    # -- raw memory access (inlined-memory fast path) ---------------------
    def _emit_raw_load(
        self, name: str, idx_atoms: list[str], need_addr: bool
    ) -> tuple[str, str | None]:
        """Emit one load event; returns ``(bits_atom, addr_atom)``.

        Memory-side load counting is handled here (inline arm bumps the
        local ``_lc``; the method fallback self-counts) — OpCounts'
        ``loads`` bucket is the caller's job.
        """
        info = self._region_local.get(name)
        idx = self._tuple_atom(idx_atoms)
        if info is None or info[1] != len(idx_atoms):
            bits = self.tmp()
            if need_addr:
                addr = self.tmp()
                self.out(f"{bits}, {addr} = _lba({name!r}, {idx})")
                return bits, addr
            self.out(f"{bits} = _lb({name!r}, {idx})")
            return bits, None
        ri, rank = info
        bits = self.tmp()
        if rank == 0:
            self.out(f"_lc += 1; {bits} = _w{ri}[0]")
            return bits, (f"_b{ri}" if need_addr else None)
        atoms = [self._simple(a) for a in idx_atoms]
        idx = self._tuple_atom(atoms)
        addr = self.tmp() if need_addr else None
        if rank == 1:
            o = atoms[0]
            self.out(f"if 0 <= {o} < _d{ri}_0:")
            self.out(f"    _lc += 1; {bits} = _w{ri}[{o}]")
            if need_addr:
                self.out(f"    {addr} = _b{ri} + {o} * 8")
        else:
            i, j = atoms
            self.out(
                f"if 0 <= {i} < _d{ri}_0 and 0 <= {j} < _d{ri}_1:"
            )
            if need_addr:
                off = self.tmp()
                self.out(f"    {off} = {i} * _d{ri}_1 + {j}")
                self.out(f"    _lc += 1; {bits} = _w{ri}[{off}]")
                self.out(f"    {addr} = _b{ri} + {off} * 8")
            else:
                self.out(f"    _lc += 1; {bits} = _w{ri}[{i} * _d{ri}_1 + {j}]")
        self.out("else:")
        if need_addr:
            self.out(f"    {bits}, {addr} = _lba({name!r}, {idx})")
        else:
            self.out(f"    {bits} = _lb({name!r}, {idx})")
        return bits, addr

    def _emit_raw_store(
        self, name: str, idx_atoms: list[str], bits_atom: str, need_addr: bool
    ) -> str | None:
        """Emit one store event (``bits_atom`` must be pre-masked);
        returns the address atom when requested."""
        info = self._region_local.get(name)
        idx = self._tuple_atom(idx_atoms)
        if info is None or info[1] != len(idx_atoms):
            if need_addr:
                addr = self.tmp()
                self.out(f"{addr} = _sba({name!r}, {idx}, {bits_atom})")
                return addr
            self.out(f"_sb({name!r}, {idx}, {bits_atom})")
            return None
        ri, rank = info
        if rank == 0:
            self.out(f"_sc += 1; _w{ri}[0] = {bits_atom}; _R{ri}.version += 1")
            return f"_b{ri}" if need_addr else None
        atoms = [self._simple(a) for a in idx_atoms]
        idx = self._tuple_atom(atoms)
        addr = self.tmp() if need_addr else None
        if rank == 1:
            o = atoms[0]
            self.out(f"if 0 <= {o} < _d{ri}_0:")
            self.out(
                f"    _sc += 1; _w{ri}[{o}] = {bits_atom}; _R{ri}.version += 1"
            )
            if need_addr:
                self.out(f"    {addr} = _b{ri} + {o} * 8")
        else:
            i, j = atoms
            off = self.tmp()
            self.out(f"if 0 <= {i} < _d{ri}_0 and 0 <= {j} < _d{ri}_1:")
            self.out(f"    {off} = {i} * _d{ri}_1 + {j}")
            self.out(
                f"    _sc += 1; _w{ri}[{off}] = {bits_atom}; "
                f"_R{ri}.version += 1"
            )
            if need_addr:
                self.out(f"    {addr} = _b{ri} + {off} * 8")
        self.out("else:")
        if need_addr:
            self.out(f"    {addr} = _sba({name!r}, {idx}, {bits_atom})")
        else:
            self.out(f"    _sb({name!r}, {idx}, {bits_atom})")
        return addr

    # -- bundle cache planning --------------------------------------------
    def _scan_reads(self, expr, conditional: bool, reads: list) -> None:
        """Collect data-reference read events (with a flag for reads on
        conditionally executed paths) from one expression tree."""
        if isinstance(expr, Const):
            return
        if isinstance(expr, VarRef):
            if expr.name not in self.bound and (
                expr.name in self.scalar_types or expr.name in self.array_types
            ):
                reads.append((expr, conditional))
            return
        if isinstance(expr, ArrayRef):
            reads.append((expr, conditional))
            for index in expr.indices:
                self._scan_reads(index, conditional, reads)
            return
        if isinstance(expr, BinOp):
            cond_right = conditional or expr.op in ("&&", "||")
            self._scan_reads(expr.left, conditional, reads)
            self._scan_reads(expr.right, cond_right, reads)
            return
        if isinstance(expr, UnOp):
            self._scan_reads(expr.operand, conditional, reads)
            return
        if isinstance(expr, Call):
            for arg in expr.args:
                self._scan_reads(arg, conditional, reads)
            return
        if isinstance(expr, Select):
            self._scan_reads(expr.cond, conditional, reads)
            self._scan_reads(expr.if_true, True, reads)
            self._scan_reads(expr.if_false, True, reads)
            return
        # Unknown node: emission will raise CompileError; treat as a
        # conditional read so planning stays conservative.
        reads.append((None, True))

    def _ref_key(self, ref):
        return ref_affine_key(ref, self.bound, self.scalar_types)

    def _begin_bundle(self, exprs, explicit_reads=(), writes=()) -> bool:
        """Choose the bundle's load-cache strategy and open the bundle.

        Returns whether the *dynamic* runtime cache dict is live (the
        pre-optimizer machinery: ``_bc`` dict plus store pops).  In
        static mode :attr:`_symcache` simulates the interpreter's cache
        at compile time; with no reads at all no cache exists.
        """
        reads: list = []
        for expr in exprs:
            self._scan_reads(expr, False, reads)
        for ref in explicit_reads:
            # Explicit reads load even when a loop variable shadows the
            # scalar name (the interpreter's _is_data_ref checks the
            # declaration before the environment).
            reads.append((ref, False))
            if isinstance(ref, ArrayRef):
                for index in ref.indices:
                    self._scan_reads(index, False, reads)
        self._memo = {}
        self._symcache = None
        if not reads:
            return False
        static = False
        if self.opt.static_cache:
            if len(reads) == 1:
                # A single read event can never hit any cache: it is
                # always the bundle's first (and only) load.
                static = True
            elif all(ref is not None and not c for ref, c in reads):
                keys = []
                ok = True
                for ref, _ in reads:
                    key = self._ref_key(ref)
                    if key is None:
                        ok = False
                        break
                    if isinstance(ref, ArrayRef) and any(
                        try_fold(index, self.bound) is None
                        for index in ref.indices
                    ):
                        ok = False
                        break
                    keys.append(key)
                if ok:
                    for ref in writes:
                        if ref is None:
                            continue
                        key = self._ref_key(ref)
                        if key is None:
                            ok = False
                            break
                        keys.append(key)
                if ok:
                    from repro.runtime.opt import keys_never_alias

                    static = all(
                        a == b or keys_never_alias(a, b)
                        for m, a in enumerate(keys)
                        for b in keys[m + 1 :]
                    )
        if static:
            self._symcache = {}
            self._memo = None
            return False
        self.out("_bc = {}")
        return True

    def _end_bundle(self) -> None:
        self._symcache = None
        self._memo = None

    def _pop_store_key(self, ref, cached: bool, tname: str, tidx: str) -> None:
        """Invalidate the stored cell's cache entry (both cache modes)."""
        if self._symcache is not None:
            key = self._ref_key(ref)
            if key is not None:
                self._symcache.pop(key, None)
            # A non-affine store key can only occur in a single-read
            # bundle, where no later read exists to observe staleness.
            return
        if cached:
            self.out(f"_bc.pop(({tname!r}, {tidx}), None)")
        self._invalidate_memo(tname)

    # -- loads -------------------------------------------------------------
    def load_ref(
        self, ref, cache: str | None, need_value: bool = True,
        need_addr: bool = False,
    ):
        """Emit a load of a data reference.

        Returns ``(value, bits, address, type)`` atom strings; value and
        address are only guaranteed materialized when requested (the
        interpreter's cached loads always compute the address, but it
        is observable only through checksum contributions — and
        ``Memory.address_of`` is pure and uncounted, so deferring it is
        invisible).
        """
        if self._symcache is not None:
            return self._load_ref_static(ref, need_value, need_addr)
        memoizable = (
            cache is not None
            and self._memo is not None
            and self._memoizable(ref)
        )
        if memoizable:
            hit4 = self._memo.get(ref)
            if hit4 is not None:
                return hit4
        if isinstance(ref, ArrayRef):
            name = ref.array
            idx_atoms = self._index_atoms(ref.indices, cache)
        else:
            name = ref.name
            if name not in self.scalar_types and name not in self.array_types:
                raise CompileError(f"unbound data reference {name!r}")
            idx_atoms = []
        elem_type = self._elem_type(name)
        if cache is None:
            bits, _ = self._emit_raw_load(name, idx_atoms, need_addr=False)
            self.count("loads")
            value = self.tmp()
            self.out(f"{value} = {self._decode(bits, elem_type)}")
            return value, bits, "None", _pytype(elem_type)
        key = self.tmp()
        hit = self.tmp()
        self.out(f"{key} = ({name!r}, {self._tuple_atom(idx_atoms)})")
        self.out(f"{hit} = {cache}.get({key})")
        self.out(f"if {hit} is None:")
        self.depth += 1
        bits, addr = self._emit_raw_load(name, idx_atoms, need_addr=True)
        self.out("_n_loads += 1")
        self.out(f"{hit} = ({self._decode(bits, elem_type)}, {bits}, {addr})")
        self.out(f"{cache}[{key}] = {hit}")
        self.depth -= 1
        result = (
            f"{hit}[0]",
            f"{hit}[1]",
            f"{hit}[2]",
            _pytype(elem_type),
        )
        if memoizable and self._cond_depth == 0:
            self._memo[ref] = result
        return result

    def _load_ref_static(self, ref, need_value: bool, need_addr: bool):
        """Static-cache load: the hit/miss decision was made at compile
        time, so a hit emits no memory traffic at all — only the index
        re-evaluation counts the interpreter's dict hit would accrue."""
        if isinstance(ref, ArrayRef):
            name = ref.array
            indices = ref.indices
        else:
            name = ref.name
            if name not in self.scalar_types and name not in self.array_types:
                raise CompileError(f"unbound data reference {name!r}")
            indices = ()
        elem_type = self._elem_type(name)
        key = self._ref_key(ref)
        entry = self._symcache.get(key) if key is not None else None
        if entry is not None:
            # Cache hit: the interpreter re-evaluates the index
            # expressions to build the runtime key (re-counting their
            # arithmetic) and touches nothing else.
            for index in indices:
                folded = try_fold(index, self.bound)
                for bucket, n in folded.counts:
                    self.count(bucket, n)
            value = entry["value"]
            if need_value and value is None:
                value = self.tmp()
                self.out(f"{value} = {self._decode(entry['bits'], elem_type)}")
                entry["value"] = value
            addr = entry["addr"]
            if need_addr and addr is None:
                addr = self.tmp()
                self.out(f"{addr} = _adr({name!r}, {entry['idx']})")
                entry["addr"] = addr
            return (
                value if value is not None else "None",
                entry["bits"],
                addr if addr is not None else "None",
                _pytype(elem_type),
            )
        idx_atoms = self._index_atoms(indices, None)
        bits, addr = self._emit_raw_load(name, idx_atoms, need_addr=need_addr)
        self.count("loads")
        value = None
        if need_value:
            value = self.tmp()
            self.out(f"{value} = {self._decode(bits, elem_type)}")
        entry = {
            "bits": bits,
            "addr": addr,
            "value": value,
            "idx": self._tuple_atom(idx_atoms),
        }
        if key is not None and self._cond_depth == 0:
            self._symcache[key] = entry
        return (
            value if value is not None else "None",
            bits,
            addr if addr is not None else "None",
            _pytype(elem_type),
        )

    # -- expressions ------------------------------------------------------
    def eval_expr(self, expr: Expr, cache: str | None) -> tuple[str, str]:
        """Emit evaluation code; return ``(atom, type)`` with type one of
        ``"int"``, ``"float"``, ``"dyn"``."""
        if self.opt.fold:
            folded = try_fold(expr, self.bound)
            if folded is not None:
                return self._use_folded(folded), folded.typ
        return self._eval_dispatch(expr, cache)

    def eval_cond(self, expr: Expr, cache: str | None) -> str:
        """Like :meth:`eval_expr` but in condition position: a folded
        comparison keeps its raw (un-reified) boolean form."""
        if self.opt.fold:
            folded = try_fold(expr, self.bound)
            if folded is not None:
                return self._use_folded(folded, condition=True)
        return self._eval_dispatch(expr, cache)[0]

    def _eval_dispatch(self, expr: Expr, cache: str | None) -> tuple[str, str]:
        if isinstance(expr, Const):
            if isinstance(expr.value, bool) or not isinstance(
                expr.value, (int, float)
            ):
                raise CompileError(f"unsupported constant {expr.value!r}")
            typ = "float" if isinstance(expr.value, float) else "int"
            return repr(expr.value), typ
        if isinstance(expr, VarRef):
            if expr.name in self.bound:
                return f"v_{expr.name}", "int"
            if expr.name in self.scalar_types:
                value, _, _, typ = self.load_ref(expr, cache)
                return value, typ
            raise CompileError(f"unbound name {expr.name!r}")
        if isinstance(expr, ArrayRef):
            value, _, _, typ = self.load_ref(expr, cache)
            return value, typ
        if isinstance(expr, BinOp):
            return self._emit_binop(expr, cache)
        if isinstance(expr, UnOp):
            return self._emit_unop(expr, cache)
        if isinstance(expr, Call):
            return self._emit_call(expr, cache)
        if isinstance(expr, Select):
            return self._emit_select(expr, cache)
        raise CompileError(f"cannot compile expression {expr!r}")

    def _emit_count_arith(self, op: str, la: str, lt: str, ra: str, rt: str):
        bucket = _ARITH_FP_BUCKET[op]
        if lt == "float" or rt == "float":
            self.count(bucket[3:])
        elif lt == "int" and rt == "int":
            self.count("int_ops")
        else:
            self.flush()
            self.out(f"if isinstance({la}, float) or isinstance({ra}, float):")
            self.out(f"    {bucket} += 1")
            self.out("else:")
            self.out("    _n_int_ops += 1")

    def _emit_binop(self, expr: BinOp, cache) -> tuple[str, str]:
        op = expr.op
        res = self.tmp()
        if op in ("&&", "||"):
            la, _ = self.eval_expr(expr.left, cache)
            self.count("branches")
            if op == "&&":
                self.out(f"if {la}:")
                self.depth += 1
                saved = self._arm_begin()
                self._cond_depth += 1
                ra, _ = self.eval_expr(expr.right, cache)
                self._cond_depth -= 1
                self.out(f"{res} = 1 if {ra} else 0")
                self._arm_end(saved)
                self.depth -= 1
                self.out("else:")
                self.out(f"    {res} = 0")
            else:
                self.out(f"if {la}:")
                self.out(f"    {res} = 1")
                self.out("else:")
                self.depth += 1
                saved = self._arm_begin()
                self._cond_depth += 1
                ra, _ = self.eval_expr(expr.right, cache)
                self._cond_depth -= 1
                self.out(f"{res} = 1 if {ra} else 0")
                self._arm_end(saved)
                self.depth -= 1
            return res, "int"
        la, lt = self.eval_expr(expr.left, cache)
        ra, rt = self.eval_expr(expr.right, cache)
        if op in _CMP_OPS:
            self.count("int_ops")
            self.out(f"{res} = 1 if {la} {op} {ra} else 0")
            return res, "int"
        if op not in _ARITH_FP_BUCKET:
            raise CompileError(f"unknown binary op {op!r}")
        self._emit_count_arith(op, la, lt, ra, rt)
        if lt == "int" and rt == "int":
            rtype = "int"
        elif lt == "float" or rt == "float":
            rtype = "float"
        else:
            rtype = "dyn"
        if op in ("+", "-", "*"):
            self.out(f"{res} = {la} {op} {ra}")
        elif op == "/":
            if rtype == "int":
                self.out(f"{res} = _idiv({la}, {ra})")
            elif rtype == "float":
                self.out(f"{res} = _fdiv({la}, {ra})")
            else:
                self.out(f"{res} = _xdiv({la}, {ra})")
        else:  # "%"
            self.out(f"{res} = _rmod({la}, {ra})")
        return res, rtype

    def _emit_unop(self, expr: UnOp, cache) -> tuple[str, str]:
        oa, ot = self.eval_expr(expr.operand, cache)
        res = self.tmp()
        if expr.op == "-":
            # _count_arith("-", operand, 0): the literal 0 is an int, so
            # the classification depends only on the operand.
            if ot == "float":
                self.count("fp_adds")
            elif ot == "int":
                self.count("int_ops")
            else:
                self.flush()
                self.out(f"if isinstance({oa}, float):")
                self.out("    _n_fp_adds += 1")
                self.out("else:")
                self.out("    _n_int_ops += 1")
            self.out(f"{res} = -({oa})")
            return res, ot
        if expr.op == "!":
            self.count("int_ops")
            self.out(f"{res} = 0 if {oa} else 1")
            return res, "int"
        raise CompileError(f"unknown unary op {expr.op!r}")

    def _emit_call(self, expr: Call, cache) -> tuple[str, str]:
        evaluated = [self.eval_expr(arg, cache) for arg in expr.args]
        atoms = [atom for atom, _ in evaluated]
        func = expr.func
        res = self.tmp()
        arity = {"mod": 2}.get(func, 1)
        if func in ("min", "max"):
            if not atoms:
                raise CompileError(f"{func}() needs at least one argument")
        elif len(atoms) < arity:
            raise CompileError(f"{func}() needs {arity} argument(s)")
        if func == "sqrt":
            self.count("fp_sqrts")
            self.out(f"{res} = _rsqrt({atoms[0]})")
            return res, "float"
        if func == "abs":
            self.count("fp_others")
            self.out(f"{res} = abs({atoms[0]})")
            return res, evaluated[0][1]
        if func in ("min", "max"):
            self.count("int_ops")
            if len(atoms) == 1:
                self.out(f"{res} = {atoms[0]}")
                return res, evaluated[0][1]
            self.out(f"{res} = {func}({', '.join(atoms)})")
            types = {typ for _, typ in evaluated}
            return res, types.pop() if len(types) == 1 else "dyn"
        if func == "exp":
            self.count("fp_others")
            self.out(f"{res} = _rexp({atoms[0]})")
            return res, "float"
        if func == "sin":
            self.count("fp_others")
            self.out(f"{res} = _sin({atoms[0]})")
            return res, "float"
        if func == "cos":
            self.count("fp_others")
            self.out(f"{res} = _cos({atoms[0]})")
            return res, "float"
        if func == "floor":
            self.count("int_ops")
            self.out(f"{res} = _floor({atoms[0]})")
            return res, "int"
        if func == "mod":
            self.count("int_ops")
            self.out(f"{res} = {atoms[0]} % {atoms[1]}")
            lt, rt = evaluated[0][1], evaluated[1][1]
            if lt == "int" and rt == "int":
                return res, "int"
            if lt == "float" or rt == "float":
                return res, "float"
            return res, "dyn"
        raise CompileError(f"unknown intrinsic {func!r}")

    def _emit_select(self, expr: Select, cache) -> tuple[str, str]:
        self.count("branches")
        ca = self.eval_cond(expr.cond, cache)
        res = self.tmp()
        self._cond_depth += 1
        self.out(f"if {ca}:")
        self.depth += 1
        saved = self._arm_begin()
        ta, tt = self.eval_expr(expr.if_true, cache)
        self.out(f"{res} = {ta}")
        self._arm_end(saved)
        self.depth -= 1
        self.out("else:")
        self.depth += 1
        saved = self._arm_begin()
        fa, ft = self.eval_expr(expr.if_false, cache)
        self.out(f"{res} = {fa}")
        self._arm_end(saved)
        self.depth -= 1
        self._cond_depth -= 1
        return res, tt if tt == ft else "dyn"

    # -- statements -------------------------------------------------------
    def emit_body(self, body) -> None:
        for stmt in body:
            self.emit_statement(stmt)

    def emit_statement(self, stmt: Stmt) -> None:
        # The step-limit unwind discards the result, so pending counts
        # need no flush here (they become unobservable on that path).
        self.out("_steps += 1")
        self.out("if _steps > _max: _slimit(_rt)")
        if isinstance(stmt, Assign):
            self._emit_assign(stmt)
        elif isinstance(stmt, Loop):
            self._emit_loop(stmt)
        elif isinstance(stmt, WhileLoop):
            self._emit_while(stmt)
        elif isinstance(stmt, If):
            self._emit_if(stmt)
        elif isinstance(stmt, ChecksumAdd):
            self._emit_checksum_add(stmt)
        elif isinstance(stmt, CounterIncrement):
            self._emit_counter_increment(stmt)
        elif isinstance(stmt, ChecksumAssert):
            self._emit_assert(stmt)
        elif isinstance(stmt, ChecksumReset):
            self._emit_reset(stmt)
        else:
            raise CompileError(f"cannot compile statement {stmt!r}")

    def _emit_loop(self, stmt: Loop) -> None:
        if self.opt.unroll:
            trip = loop_trip_constant(stmt.lower, stmt.upper, self.bound)
            if trip is not None and trip <= UNROLL_LIMIT:
                self._emit_loop_unrolled(stmt, trip)
                return
            if trip is None and loop_trip_at_most_one(
                stmt.lower, stmt.upper, self.bound
            ):
                self._emit_loop_single(stmt)
                return
        lo, lt = self.eval_expr(stmt.lower, None)
        hi, ht = self.eval_expr(stmt.upper, None)
        shadowed = stmt.var in self.bound
        saved = None
        if shadowed:
            saved = self.tmp()
            self.out(f"{saved} = v_{stmt.var}")
        self.flush()
        frame = self._push_frame(stmt.var)
        self.out(
            f"for v_{stmt.var} in range({self._as_int(lo, lt)}, "
            f"{self._as_int(hi, ht)} + 1):"
        )
        self.depth += 1
        mark = len(self.lines)
        self.count("branches")
        self.bound.add(stmt.var)
        self.emit_body(stmt.body)
        self.flush()
        if len(self.lines) == mark:
            self.out("pass")
        self.depth -= 1
        self._pop_frame(frame)
        if not shadowed:
            self.bound.discard(stmt.var)
        self.count("branches")
        if shadowed:
            self.out(f"v_{stmt.var} = {saved}")

    def _emit_loop_unrolled(self, stmt: Loop, trip: int) -> None:
        """A provably constant-trip loop: straight-line iterations.

        Both bounds are still evaluated (the interpreter counts them);
        the ``for``/``range`` machinery disappears.  Iterations stay in
        one basic block, so their counts coalesce into single flushes.
        """
        lo, lt = self.eval_expr(stmt.lower, None)
        self.eval_expr(stmt.upper, None)
        shadowed = stmt.var in self.bound
        saved = None
        if shadowed:
            saved = self.tmp()
            self.out(f"{saved} = v_{stmt.var}")
        if trip == 0:
            self.count("branches")  # the (only) exit test
            return
        lo_int = self._simple(self._as_int(lo, lt))
        frame = self._push_frame(stmt.var)
        self.bound.add(stmt.var)
        for k in range(trip):
            self.count("branches")
            self.out(
                f"v_{stmt.var} = {lo_int}"
                if k == 0
                else f"v_{stmt.var} = {lo_int} + {k}"
            )
            self.emit_body(stmt.body)
        self._pop_frame(frame)
        if not shadowed:
            self.bound.discard(stmt.var)
        self.count("branches")
        if shadowed:
            self.out(f"v_{stmt.var} = {saved}")

    def _emit_loop_single(self, stmt: Loop) -> None:
        """A provably 0/1-trip loop (clamped degenerate split piece):
        one ``if`` instead of a ``for``."""
        lo, lt = self.eval_expr(stmt.lower, None)
        hi, ht = self.eval_expr(stmt.upper, None)
        shadowed = stmt.var in self.bound
        saved = None
        if shadowed:
            saved = self.tmp()
            self.out(f"{saved} = v_{stmt.var}")
        lo_int = self._simple(self._as_int(lo, lt))
        hi_int = self._simple(self._as_int(hi, ht))
        self.flush()
        frame = self._push_frame(stmt.var)
        self.out(f"if {lo_int} <= {hi_int}:")
        self.depth += 1
        arm = self._arm_begin()
        self.count("branches")
        self.out(f"v_{stmt.var} = {lo_int}")
        self.bound.add(stmt.var)
        self.emit_body(stmt.body)
        self._arm_end(arm)
        self.depth -= 1
        self._pop_frame(frame)
        if not shadowed:
            self.bound.discard(stmt.var)
        self.count("branches")
        if shadowed:
            self.out(f"v_{stmt.var} = {saved}")

    def _emit_while(self, stmt: WhileLoop) -> None:
        self.flush()
        self.out("while True:")
        self.depth += 1
        self.count("branches")
        ca = self.eval_cond(stmt.cond, None)
        self.flush()
        self.out(f"if not {ca}: break")
        if stmt.counter is not None:
            if stmt.counter not in self.scalar_types:
                raise CompileError(
                    f"while counter {stmt.counter!r} is not a scalar"
                )
            cur = self.tmp()
            self.out(f"{cur} = _mload({stmt.counter!r}, ())")
            self.out(f"_mstore({stmt.counter!r}, (), int({cur}) + 1)")
            self.count("loads")
            self.count("stores")
            self.count("int_ops")
            self.count("counter_ops")
        self.emit_body(stmt.body)
        self.flush()
        self.depth -= 1

    def _emit_if(self, stmt: If) -> None:
        if self.opt.fuse_guards:
            chain = analyze_guard_chain(stmt.cond, self.bound)
            if chain is not None and not any(
                leaf.raising for leaf in chain.leaves
            ):
                self._emit_fused_if(stmt, chain)
                return
        self.count("branches")
        ca = self.eval_cond(stmt.cond, None)
        self.flush()
        self.out(f"if {ca}:")
        self.depth += 1
        arm = self._arm_begin()
        self.emit_body(stmt.then_body)
        self._arm_end(arm)
        self.depth -= 1
        if stmt.else_body:
            self.out("else:")
            self.depth += 1
            arm = self._arm_begin()
            self.emit_body(stmt.else_body)
            self._arm_end(arm)
            self.depth -= 1

    def _scenario_line(self, counts: dict[str, int]) -> None:
        """Direct (un-buffered) merged increment for one guard-chain
        count scenario, plus the If statement's own branch test."""
        merged = dict(counts)
        merged["branches"] = merged.get("branches", 0) + 1
        parts = [
            f"_n_{bucket} += {merged[bucket]}"
            for bucket in _COUNTERS
            if merged.get(bucket)
        ]
        self.out("; ".join(parts))

    def _emit_fused_if(self, stmt: If, chain) -> None:
        """Guard fusion: one merged range test decides the branch; the
        interpreter's exact per-"first false leaf" count vectors are
        replayed by re-testing individual (pure, non-raising) leaves
        only on the false side."""
        fused = self._hoist_guard_bounds(fuse_condition(chain, self.bound))
        self.flush()
        self.out(f"if {fused}:")
        self.depth += 1
        self._scenario_line(chain.scenarios[-1])
        arm = self._arm_begin()
        self.emit_body(stmt.then_body)
        self._arm_end(arm)
        self.depth -= 1
        self.out("else:")
        self.depth += 1
        leaves = chain.leaves
        if len(leaves) == 2:
            self.out(f"if not {leaves[0].condition}:")
            self.out(f"    {self._merged_scenario(chain.scenarios[0])}")
            self.out("else:")
            self.out(f"    {self._merged_scenario(chain.scenarios[1])}")
        else:
            for i, leaf in enumerate(leaves[:-1]):
                kw = "if" if i == 0 else "elif"
                self.out(f"{kw} not {leaf.condition}:")
                self.out(f"    {self._merged_scenario(chain.scenarios[i])}")
            self.out("else:")
            self.out(
                f"    {self._merged_scenario(chain.scenarios[len(leaves) - 1])}"
            )
        if stmt.else_body:
            arm = self._arm_begin()
            self.emit_body(stmt.else_body)
            self._arm_end(arm)
        self.depth -= 1

    def _merged_scenario(self, counts: dict[str, int]) -> str:
        merged = dict(counts)
        merged["branches"] = merged.get("branches", 0) + 1
        return "; ".join(
            f"_n_{bucket} += {merged[bucket]}"
            for bucket in _COUNTERS
            if merged.get(bucket)
        )

    def _hoist_guard_bounds(self, fused: str) -> str:
        """Hoist loop-invariant fused-bound subexpressions (``min``/
        ``max`` clamps and affine bounds) out of the test."""
        if not self.opt.licm or not self.frames:
            return fused
        parts = fused.split(" and ")
        out_parts = []
        for part in parts:
            pieces = part.split(" <= ")
            if len(pieces) in (2, 3):
                pieces = [self._hoist_atom(p) for p in pieces]
                out_parts.append(" <= ".join(pieces))
            else:
                out_parts.append(part)
        return " and ".join(out_parts)

    def _emit_csadd(
        self, which: str, bits: str, count: str, address: str
    ) -> None:
        """Inline ``ChecksumState.add`` for the single-channel case.

        Channel 0 never rotates, ``bits`` atoms are already masked
        (memory words and encode results live in [0, 2^64)), and the
        checksum name is validated at compile time — so the plain-sum
        update inlines to one dict read-modify-write.  Multi-channel
        runs take the method call (rotation needs the address).
        """
        if not _valid_name(which):
            raise CompileError(f"unknown checksum {which!r}")
        self.out("if _ch1:")
        self.depth += 1
        self.out("_cs.contribution_count += 1")
        self.out(
            f"_s0[{which!r}] = (_s0.get({which!r}, 0) + {bits} * {count}) "
            "& 18446744073709551615"
        )
        self.depth -= 1
        self.out("else:")
        self.out(f"    _csadd({which!r}, {bits}, {count}, {address})")

    def _counter_location(self, ref, cache) -> tuple[str, str]:
        """(region name, index-tuple atom) of a shadow counter ref."""
        if isinstance(ref, ArrayRef):
            return ref.array, self._index_tuple(ref.indices, cache)
        return ref.name, "()"

    def _emit_bump_counter(self, ref, cache, amount_atom: str) -> None:
        name, loc = self._counter_location(ref, cache)
        if name not in self.array_types and name not in self.scalar_types:
            raise CompileError(f"counter region {name!r} not declared")
        cur = self.tmp()
        self.out(f"{cur} = int(_mload({name!r}, {loc}))")
        self.out(f"_mstore({name!r}, {loc}, {cur} + {amount_atom})")
        self.count("loads")
        self.count("stores")
        self.count("int_ops")
        self.count("counter_ops")

    def _emit_assign(self, stmt: Assign) -> None:
        instr = stmt.instrumentation
        exprs = [stmt.rhs]
        if isinstance(stmt.lhs, ArrayRef):
            exprs.extend(stmt.lhs.indices)
        explicit_reads = []
        writes = [stmt.lhs]
        if instr:
            exprs.extend(use.count for use in instr.uses)
            explicit_reads.extend(use.ref for use in instr.uses)
            for counter_ref in instr.counter_increments:
                if isinstance(counter_ref, ArrayRef):
                    exprs.extend(counter_ref.indices)
            if instr.pre_overwrite:
                explicit_reads.append(stmt.lhs)
                adj_counter = instr.pre_overwrite.counter
                if isinstance(adj_counter, ArrayRef):
                    # The counter location is evaluated twice (load and
                    # reset store) — two read events per index read.
                    exprs.extend(adj_counter.indices)
                    exprs.extend(adj_counter.indices)
            if isinstance(instr.duplicate_store, ArrayRef):
                exprs.extend(instr.duplicate_store.indices)
            if instr.duplicate_store is not None:
                writes.append(instr.duplicate_store)
            if instr.definition:
                exprs.append(instr.definition.count)
        cached = self._begin_bundle(exprs, explicit_reads, writes)
        # 1. Target location (index loads go through the bundle cache).
        if isinstance(stmt.lhs, ArrayRef):
            tname = stmt.lhs.array
            if tname not in self.array_types:
                raise CompileError(f"store to undeclared array {tname!r}")
            tidx_atoms = self._index_atoms(stmt.lhs.indices, "_bc")
            tidx_atoms = [self._simple(a) for a in tidx_atoms]
            tidx = self.tmp()
            self.out(f"{tidx} = {self._tuple_atom(tidx_atoms)}")
            self.count("int_ops", len(stmt.lhs.indices))
            elem_type = self.array_types[tname]
        else:
            tname = stmt.lhs.name
            if tname not in self.scalar_types:
                raise CompileError(f"store to undeclared scalar {tname!r}")
            tidx_atoms = []
            tidx = "()"
            elem_type = self.scalar_types[tname]
        # 2. Right-hand side.
        va, vt = self.eval_expr(stmt.rhs, "_bc")
        # 3. Use contributions, counter bumps, pre-overwrite adjustment.
        if instr:
            for use in instr.uses:
                _, ubits, uaddr, _ = self.load_ref(
                    use.ref, "_bc", need_value=False, need_addr=True
                )
                ca, ct = self.eval_expr(use.count, "_bc")
                self._emit_csadd(
                    use.checksum, ubits, self._as_int(ca, ct), uaddr
                )
                self.count_channels()
            for counter_ref in instr.counter_increments:
                self._emit_bump_counter(counter_ref, "_bc", "1")
            if instr.pre_overwrite:
                self._emit_pre_overwrite(stmt, instr.pre_overwrite)
        # 4. The store (encode, store through memory, drop cache entry).
        bits = self.tmp()
        self.out(f"{bits} = {self._encode(va, vt, elem_type)}")
        need_addr = bool(instr and instr.definition)
        addr = self._emit_raw_store(tname, tidx_atoms, bits, need_addr)
        self.count("stores")
        self._pop_store_key(stmt.lhs, cached, tname, tidx)
        # 4b. Duplication baseline: second store of the same bits.
        if instr and instr.duplicate_store is not None:
            dup = instr.duplicate_store
            if isinstance(dup, ArrayRef):
                dname = dup.array
                didx_atoms = [
                    self._simple(a)
                    for a in self._index_atoms(dup.indices, "_bc")
                ]
                didx = self.tmp()
                self.out(f"{didx} = {self._tuple_atom(didx_atoms)}")
            else:
                dname = dup.name
                didx_atoms = []
                didx = "()"
            if (
                dname not in self.array_types
                and dname not in self.scalar_types
            ):
                raise CompileError(f"duplicate store to undeclared {dname!r}")
            self._emit_raw_store(dname, didx_atoms, bits, need_addr=False)
            self.count("stores")
            self._pop_store_key(dup, cached, dname, didx)
        # 5. Def contribution — the register copy just stored.
        if instr and instr.definition:
            d = instr.definition
            ca, ct = self.eval_expr(d.count, "_bc")
            self._emit_csadd(
                d.checksum, bits, self._as_int(ca, ct), addr
            )
            self.count_channels()
            if d.aux:
                self._emit_csadd(d.aux_checksum, bits, "1", addr)
                self.count_channels()
        self._end_bundle()

    def _emit_pre_overwrite(self, stmt: Assign, adjust) -> None:
        # Algorithm 3 lines 13-16: old value + shadow counter, then the
        # counter location is re-evaluated for the reset store (the
        # interpreter evaluates it once per counter access).
        _, obits, oaddr, _ = self.load_ref(
            stmt.lhs, "_bc", need_value=False, need_addr=True
        )
        name, loc = self._counter_location(adjust.counter, "_bc")
        if name not in self.array_types and name not in self.scalar_types:
            raise CompileError(f"counter region {name!r} not declared")
        cv = self.tmp()
        self.out(f"{cv} = int(_mload({name!r}, {loc}))")
        self.count("loads")
        self.count("counter_ops")
        self._emit_csadd(
            adjust.def_checksum, obits, f"({cv} - 1)", oaddr
        )
        self._emit_csadd(adjust.e_use_checksum, obits, "1", oaddr)
        self.count_channels(2)
        name2, loc2 = self._counter_location(adjust.counter, "_bc")
        self.out(f"_mstore({name2!r}, {loc2}, 0)")
        self.count("stores")

    def _emit_checksum_add(self, stmt: ChecksumAdd) -> None:
        value = stmt.value
        is_data_ref = isinstance(value, ArrayRef) or (
            isinstance(value, VarRef) and value.name in self.scalar_types
        )
        if is_data_ref:
            self._begin_bundle([stmt.count], explicit_reads=[value])
            # A data reference: contribute the loaded bits and address.
            # Note the interpreter's _is_data_ref checks scalar
            # declarations *before* the environment, so a scalar that
            # shadows a loop variable still loads from memory here.
            _, ba, aa, _ = self.load_ref(
                value, "_bc", need_value=False, need_addr=True
            )
        else:
            self._begin_bundle([value, stmt.count])
            va, vt = self.eval_expr(value, "_bc")
            ba = self.tmp()
            if vt == "int":
                self.out(f"{ba} = {va} & 18446744073709551615")
            elif vt == "float":
                self.out(f"{ba} = _unpq(_pkd({va}))[0]")
            else:
                self.out(f"{ba} = _encdyn({va})")
            aa = "None"
        ca, ct = self.eval_expr(stmt.count, "_bc")
        self._emit_csadd(stmt.checksum, ba, self._as_int(ca, ct), aa)
        self.count_channels()
        self._end_bundle()

    def _emit_counter_increment(self, stmt: CounterIncrement) -> None:
        exprs = [stmt.amount]
        if isinstance(stmt.counter, ArrayRef):
            exprs.extend(stmt.counter.indices)
        self._begin_bundle(exprs)
        aa, at = self.eval_expr(stmt.amount, "_bc")
        amount = self.tmp()
        self.out(f"{amount} = {self._as_int(aa, at)}")
        self._emit_bump_counter(stmt.counter, "_bc", amount)
        self._end_bundle()

    def _emit_assert(self, stmt: ChecksumAssert) -> None:
        # Everything pending must be architecturally visible before a
        # possible _Halt unwind — that is the one exception path that
        # still returns a result.
        self.flush()
        pairs = tuple(tuple(pair) for pair in stmt.pairs)
        self.out(f"_n_branches += {len(pairs)} * _channels")
        found = self.tmp()
        self.out(f"{found} = _verify({pairs!r})")
        self.out(f"if {found}:")
        self.depth += 1
        self.out("if _first is None: _first = _steps")
        self.out(f"_mismatches.extend({found})")
        self.out("if _halt: raise _Halt")
        self.depth -= 1

    def _emit_reset(self, stmt: ChecksumReset) -> None:
        self.flush()
        self.out("for _sums in _cs.sums:")
        if stmt.names is None:
            self.out("    for _k in list(_sums): _sums[_k] = 0")
        else:
            names = tuple(stmt.names)
            self.out(f"    for _k in {names!r}: _sums[_k] = 0")


def generate_source(program: Program, opt: OptConfig | None = None) -> str:
    """The Python source of ``_kernel(_rt)`` for one program.

    ``opt`` selects the optimization pipeline; the default (level-0)
    configuration reproduces the straight-line reference emission.
    """
    em = _Emitter(program, opt)
    opt = em.opt
    em.out("_mem = _rt.memory")
    em.out("_lb = _mem.load_bits")
    em.out("_lba = _mem.load_bits_addr")
    em.out("_sb = _mem.store_bits")
    em.out("_sba = _mem.store_bits_addr")
    em.out("_mload = _mem.load")
    em.out("_mstore = _mem.store")
    if opt.static_cache:
        em.out("_adr = _mem.address_of")
    if opt.inline_mem:
        decls = list(program.arrays) + list(program.scalars)
        for name, (ri, rank) in em._region_local.items():
            em.out(f"_R{ri} = _mem._regions[{name!r}]")
            em.out(f"_w{ri} = _R{ri}.words")
            em.out(f"_b{ri} = _R{ri}.base")
            if rank == 1:
                em.out(f"(_d{ri}_0,) = _R{ri}.shape")
            elif rank == 2:
                em.out(f"_d{ri}_0, _d{ri}_1 = _R{ri}.shape")
        em.out("_lc = 0")
        em.out("_sc = 0")
    em.out("_cs = _rt.checksums")
    em.out("_csadd = _cs.add")
    em.out("_verify = _cs.verify")
    em.out("_channels = _cs.channels")
    em.out("_s0 = _cs.sums[0]")
    em.out("_ch1 = _channels == 1")
    em.out("_halt = _rt.halt_on_mismatch")
    em.out("_mismatches = _rt.mismatches")
    em.out("_max = _INF if _rt.max_steps is None else _rt.max_steps")
    for param in program.params:
        em.out(f"v_{param} = _rt.params[{param!r}]")
    for counter in _COUNTERS:
        em.out(f"_n_{counter} = 0")
    em.out("_steps = 0")
    em.out("_first = None")
    em.out("try:")
    em.depth += 1
    em.out("try:")
    em.depth += 1
    frame = em._push_frame(None)
    em.emit_body(program.body)
    em.flush()
    if frame is not None:
        if not em.lines and not frame.preamble:
            em.out("pass")
        em._pop_frame(frame)
    elif em.lines[-1].strip() == "try:":
        em.out("pass")
    em.depth -= 1
    em.out("except _Halt:")
    em.out("    pass")
    em.depth -= 1
    em.out("finally:")
    em.depth += 1
    if opt.inline_mem:
        em.out("_mem.load_count += _lc")
        em.out("_mem.store_count += _sc")
    em.out("_c = _rt.counts")
    for counter in _COUNTERS:
        em.out(f"_c.{counter} += _n_{counter}")
    em.out("_rt.statements_executed = _steps")
    em.out("_rt.first_detection_step = _first")
    em.depth -= 1
    header = "def _kernel(_rt):\n"
    return header + "\n".join(em.lines) + "\n"


def generate_checkpoint_source(program: Program) -> str:
    """Python source of ``_checkpoint`` / ``_restore`` for one program.

    The recovery subsystem snapshots every region the program declares
    (shadow counters included — they are epoch state like any other).
    The checkpoint function is unrolled per region with literal names,
    and is copy-on-write: a region whose write-generation counter
    matches the previous checkpoint shares that checkpoint's immutable
    word tuple instead of copying again.

    Compiled and interpreted recovery share the :class:`Memory` region
    API, so both backends observe identical snapshot contents; the
    generated form exists so compiled kernels carry their own
    checkpoint/restore code (no per-region dict walk at run time).
    """
    names = [d.name for d in program.arrays] + [d.name for d in program.scalars]
    lines = [
        "def _checkpoint(_mem, _prev):",
        "    _pw, _pv = _prev if _prev is not None else (None, None)",
        "    _words = {}",
        "    _vers = {}",
    ]
    for name in names:
        lines += [
            f"    _v = _mem.region_version({name!r})",
            f"    if _pv is not None and _pv[{name!r}] == _v:",
            f"        _words[{name!r}] = _pw[{name!r}]",
            "    else:",
            f"        _words[{name!r}] = _mem.copy_region_words({name!r})",
            f"    _vers[{name!r}] = _v",
        ]
    if not names:
        lines.append("    pass")
    lines += [
        "    return _words, _vers",
        "def _restore(_mem, _words, _names):",
        "    for _n in _names:",
        "        _mem.restore_region_words(_n, _words[_n])",
    ]
    return "\n".join(lines) + "\n"
