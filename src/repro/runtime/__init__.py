"""Execution substrate with the paper's fault model.

The paper evaluates on real hardware and assumes transient faults live
in the *memory subsystem* (caches, DRAM, write queues) while registers
and functional units are resilient (Section 2.2).  This package
simulates exactly that boundary:

* :mod:`repro.runtime.memory` — a word-addressed memory holding every
  program array and scalar as raw 64-bit patterns; all loads and stores
  go through it.
* :mod:`repro.runtime.faults` — the fault-model taxonomy: value flips
  in stored words (scheduled, random-cell, burst), PRESAGE-style
  address-generation faults that redirect an access, and ITHICA-style
  intermittent stuck bits (see docs/FAULT_MODELS.md).
* :mod:`repro.runtime.state` — register-resident checksum channels
  (plain modulo-2^64 sum, plus the address-rotated second checksum of
  Section 6.1) and the verifier.
* :mod:`repro.runtime.interpreter` — the IR interpreter; instrumented
  assignments execute as bundles with a per-cell load cache, so a
  checksum contribution always sees the same register value as the use
  it protects.
* :mod:`repro.runtime.costmodel` — dynamic operation accounting used by
  the Figure 10/11 overhead estimates, including the hardware-assist
  mode where checksum operations cost a nop.
* :mod:`repro.runtime.compile` / :mod:`repro.runtime.codegen` — the
  compile-once backend: IR lowered to Python source, ``exec``'d once,
  cached by IR content hash, bit-identical to the interpreter (see
  docs/BACKENDS.md).
"""

from repro.runtime.memory import Memory, MemoryError64, decode_value, encode_value
from repro.runtime.faults import (
    FAULT_MODELS,
    AddressGenerationFault,
    BurstCorruption,
    FaultInjector,
    InjectorSpec,
    IntermittentStuckBit,
    NoFaults,
    RandomCellFlipper,
    ScheduledBitFlip,
    make_injector,
)
from repro.runtime.state import ChecksumState, ChecksumMismatch
from repro.runtime.interpreter import ExecutionResult, Interpreter, run_program
from repro.runtime.costmodel import CostModel, CostParams
from repro.runtime.compile import (
    BACKENDS,
    CompiledKernel,
    CompileError,
    compile_program,
    execute_program,
    run_compiled,
)

__all__ = [
    "BACKENDS",
    "CompiledKernel",
    "CompileError",
    "compile_program",
    "execute_program",
    "run_compiled",
    "Memory",
    "MemoryError64",
    "decode_value",
    "encode_value",
    "AddressGenerationFault",
    "BurstCorruption",
    "FAULT_MODELS",
    "FaultInjector",
    "InjectorSpec",
    "IntermittentStuckBit",
    "NoFaults",
    "RandomCellFlipper",
    "ScheduledBitFlip",
    "make_injector",
    "ChecksumState",
    "ChecksumMismatch",
    "ExecutionResult",
    "Interpreter",
    "run_program",
    "CostModel",
    "CostParams",
]
