"""IR interpreter with the paper's register/memory fault boundary.

Execution semantics:

* Iterators, parameters and checksum state are *registers* — plain
  Python values the fault injector can never touch.
* Array elements and declared scalars live in the simulated
  :class:`~repro.runtime.memory.Memory`; every load/store passes
  through it (and through the fault injector).  That choke point is
  also the trigger site for *address-generation* faults
  (:mod:`repro.runtime.faults.addrgen`): the memory may redirect an
  access to a different cell, while the interpreter keeps computing
  the architectural address — ``address_of`` on the **intended**
  indices, matching the compiled backend's fused ``*_addr`` calls —
  for every checksum rotation, because address arithmetic lives in
  resilient registers under the paper's model.
* An **instrumented assignment executes as one bundle** with a per-cell
  load cache: each distinct cell is loaded once, and the checksum
  contributions consume the *same register copy* as the computation —
  the register-residency requirement of Section 5.  Free-standing
  checksum statements (prologue / epilogue / inspector) load through
  memory like any other code.

The interpreter also fills an :class:`~repro.runtime.costmodel.OpCounts`
with dynamic operation counts, which the Figure 10/11 harnesses convert
into overhead estimates.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping

from repro.ir.nodes import (
    ArrayRef,
    Assign,
    BinOp,
    Call,
    ChecksumAdd,
    ChecksumAssert,
    ChecksumReset,
    Const,
    CounterIncrement,
    Expr,
    If,
    Loop,
    Program,
    Select,
    Stmt,
    UnOp,
    VarRef,
    WhileLoop,
)
from repro.runtime.costmodel import OpCounts
from repro.runtime.memory import Memory, build_memory_for_program, encode_value
from repro.runtime.state import ChecksumMismatch, ChecksumState

MASK64 = (1 << 64) - 1


class InterpreterError(RuntimeError):
    """Runtime error during interpretation."""


class StepLimitExceeded(InterpreterError):
    """The step budget ran out (runaway while loop guard)."""


class _HaltDetected(Exception):
    """Internal: fail-stop unwind after a verifier mismatch."""


@dataclass
class ExecutionResult:
    """Everything observable about one run."""

    checksums: ChecksumState
    mismatches: list[ChecksumMismatch]
    counts: OpCounts
    memory: Memory
    statements_executed: int
    spills: int = 0
    """Register spills simulated under a ``register_budget``."""
    first_detection_step: int | None = None
    """Statement index at which a verifier first flagged a mismatch
    (None when no verifier fired) — the detection-latency metric."""

    @property
    def error_detected(self) -> bool:
        return bool(self.mismatches)


@dataclass
class _CachedLoad:
    value: float | int
    bits: int
    address: int


class Interpreter:
    """Executes one program against one memory image."""

    def __init__(
        self,
        program: Program,
        params: Mapping[str, int],
        memory: Memory | None = None,
        injector=None,
        channels: int = 1,
        max_steps: int | None = 50_000_000,
        wild_reads: bool = False,
        profile: bool = False,
        register_budget: int | None = None,
        halt_on_mismatch: bool = False,
        checksums: ChecksumState | None = None,
    ) -> None:
        self.halt_on_mismatch = halt_on_mismatch
        """Stop execution at the first failing verifier — gives fail-
        stop semantics and lets campaigns measure detection latency."""
        self.first_detection_step: int | None = None
        self.program = program
        self.params = {p: int(params[p]) for p in program.params}
        self.register_budget = register_budget
        """Maximum values held in registers per statement bundle.
        When the bundle needs more, the least-recently-used value is
        *spilled*: it leaves the register file, and its next use
        re-loads it through (faultable) memory.  Section 5: such spill
        traffic needs its own checksum contributions — the spilled
        register value enters the def checksum, the reloaded value the
        use checksum, so corruption of the spill slot is caught."""
        self.spill_count = 0
        self.statement_profile: dict[int, int] | None = (
            {} if profile else None
        )
        """With ``profile=True``: ``id(assign) -> execution count`` for
        every assignment — the instance counts the pipeline-model cost
        estimator multiplies block costs by."""
        if memory is None:
            memory = build_memory_for_program(
                program, self.params, injector, wild_reads=wild_reads
            )
        elif injector is not None:
            memory.injector = injector
        self.memory = memory
        if checksums is None:
            checksums = ChecksumState(channels=channels)
        elif checksums.channels != channels:
            raise InterpreterError(
                f"resumed checksum state has {checksums.channels} channels, "
                f"interpreter was asked for {channels}"
            )
        self.checksums = checksums
        """Normally a fresh :class:`ChecksumState`; the recovery
        controller passes a shared one so accumulators persist across
        the per-epoch sub-runs it stitches together."""
        self.counts = OpCounts()
        self.mismatches: list[ChecksumMismatch] = []
        self.max_steps = max_steps
        self._steps = 0
        self._env: dict[str, int] = dict(self.params)
        self._scalar_types = {d.name: d.elem_type for d in program.scalars}
        # Type-keyed dispatch tables: one dict lookup per statement /
        # expression instead of an isinstance chain re-walked on every
        # visit (bench_backends.py measures the win).
        self._stmt_dispatch = {
            Assign: self._exec_assign,
            Loop: self._exec_loop,
            WhileLoop: self._exec_while,
            If: self._exec_if,
            ChecksumAdd: self._exec_checksum_add,
            CounterIncrement: self._exec_counter_increment,
            ChecksumAssert: self._exec_assert,
            ChecksumReset: self._exec_reset,
        }
        self._eval_dispatch = {
            Const: self._eval_const,
            VarRef: self._eval_varref,
            ArrayRef: self._eval_arrayref,
            BinOp: self._eval_binop,
            UnOp: self._eval_unop,
            Call: self._eval_call,
            Select: self._eval_select,
        }

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def run(self) -> ExecutionResult:
        try:
            self._exec_body(self.program.body)
        except _HaltDetected:
            pass
        return ExecutionResult(
            checksums=self.checksums,
            mismatches=self.mismatches,
            counts=self.counts,
            memory=self.memory,
            statements_executed=self._steps,
            spills=self.spill_count,
            first_detection_step=self.first_detection_step,
        )

    # ------------------------------------------------------------------
    # Statement execution
    # ------------------------------------------------------------------
    def _exec_body(self, body) -> None:
        for stmt in body:
            self._exec_statement(stmt)

    def _exec_statement(self, stmt: Stmt) -> None:
        self._steps += 1
        if self.max_steps is not None and self._steps > self.max_steps:
            raise StepLimitExceeded(
                f"exceeded {self.max_steps} statement executions"
            )
        handler = self._stmt_dispatch.get(type(stmt))
        if handler is None:
            # Subclassed node types miss the exact-type table.
            for node_type, candidate in self._stmt_dispatch.items():
                if isinstance(stmt, node_type):
                    handler = candidate
                    break
            else:
                raise InterpreterError(f"cannot execute statement {stmt!r}")
        handler(stmt)

    def _exec_reset(self, stmt: ChecksumReset) -> None:
        for sums in self.checksums.sums:
            keys = stmt.names if stmt.names is not None else list(sums)
            for key in keys:
                sums[key] = 0

    def _exec_loop(self, stmt: Loop) -> None:
        lower = int(self._eval(stmt.lower, None))
        upper = int(self._eval(stmt.upper, None))
        saved = self._env.get(stmt.var)
        for value in range(lower, upper + 1):
            self.counts.branches += 1
            self._env[stmt.var] = value
            self._exec_body(stmt.body)
        self.counts.branches += 1  # the final (exit) test
        if saved is None:
            self._env.pop(stmt.var, None)
        else:
            self._env[stmt.var] = saved

    def _exec_while(self, stmt: WhileLoop) -> None:
        while True:
            self.counts.branches += 1
            cond = self._eval(stmt.cond, None)
            if not cond:
                break
            if stmt.counter is not None:
                # The instrumenter's iteration counter (Figure 9 `iter`).
                current = self.memory.load(stmt.counter, ())
                self.memory.store(stmt.counter, (), int(current) + 1)
                self.counts.loads += 1
                self.counts.stores += 1
                self.counts.int_ops += 1
                self.counts.counter_ops += 1
            self._exec_body(stmt.body)

    def _exec_if(self, stmt: If) -> None:
        self.counts.branches += 1
        if self._eval(stmt.cond, None):
            self._exec_body(stmt.then_body)
        else:
            self._exec_body(stmt.else_body)

    # -- the instrumented-assignment bundle ------------------------------
    def _exec_assign(self, stmt: Assign) -> None:
        if self.statement_profile is not None:
            key = id(stmt)
            self.statement_profile[key] = (
                self.statement_profile.get(key, 0) + 1
            )
        cache: dict[tuple, _CachedLoad] = {}
        self._evicted: dict[tuple, _CachedLoad] = {}
        self._bundle_instrumented = stmt.instrumentation is not None
        instr = stmt.instrumentation
        # 1. Resolve the target location (indices are control + possible
        #    indirect loads, which go through the cache).
        if isinstance(stmt.lhs, ArrayRef):
            target_indices = tuple(
                int(self._eval(index, cache)) for index in stmt.lhs.indices
            )
            target = (stmt.lhs.array, target_indices)
            self.counts.int_ops += len(target_indices)
        else:
            target = (stmt.lhs.name, ())
        # 2. Compute the right-hand side.
        value = self._eval(stmt.rhs, cache)
        # 3. Use contributions — consume cached register copies.
        if instr:
            for use in instr.uses:
                cached = self._ref_through_cache(use.ref, cache)
                count = int(self._eval(use.count, cache))
                self.checksums.add(
                    use.checksum, cached.bits, count, cached.address
                )
                self.counts.checksum_ops += self.checksums.channels
            for counter_ref in instr.counter_increments:
                self._bump_counter(counter_ref, cache, +1)
            if instr.pre_overwrite:
                self._pre_overwrite(stmt, instr.pre_overwrite, cache)
        # 4. The store.
        elem_type = self._elem_type_of(stmt.lhs)
        bits = encode_value(value, elem_type)
        self.memory.store_bits(target[0], target[1], bits)
        self.counts.stores += 1
        address = self.memory.address_of(target[0], target[1])
        # Invalidate the cache entry for the stored cell (a pending
        # spill of the old value is dead once the cell is rewritten).
        cache.pop(target, None)
        self._evicted.pop(target, None)
        # 4b. Duplication baseline: second store of the same bits.
        if instr and instr.duplicate_store is not None:
            dup = instr.duplicate_store
            if isinstance(dup, ArrayRef):
                dup_indices = tuple(
                    int(self._eval(i, cache)) for i in dup.indices
                )
                dup_target = (dup.array, dup_indices)
            else:
                dup_target = (dup.name, ())
            self.memory.store_bits(dup_target[0], dup_target[1], bits)
            self.counts.stores += 1
            cache.pop(dup_target, None)
        # 5. Def contribution — uses the register copy just stored.
        if instr and instr.definition:
            d = instr.definition
            count = int(self._eval(d.count, cache))
            self.checksums.add(d.checksum, bits, count, address)
            self.counts.checksum_ops += self.checksums.channels
            if d.aux:
                self.checksums.add(d.aux_checksum, bits, 1, address)
                self.counts.checksum_ops += self.checksums.channels

    def _pre_overwrite(self, stmt: Assign, adjust, cache) -> None:
        """Algorithm 3 lines 13–16 for dynamic-use-count definitions."""
        # Old value: an ordinary (faultable) load of the target cell.
        old = self._ref_through_cache(stmt.lhs, cache)
        counter_value = int(self._load_counter(adjust.counter, cache))
        self.checksums.add(
            adjust.def_checksum, old.bits, counter_value - 1, old.address
        )
        self.checksums.add(adjust.e_use_checksum, old.bits, 1, old.address)
        self.counts.checksum_ops += 2 * self.checksums.channels
        self._store_counter(adjust.counter, cache, 0)

    # -- free-standing checksum statements --------------------------------
    def _exec_checksum_add(self, stmt: ChecksumAdd) -> None:
        cache: dict[tuple, _CachedLoad] = {}
        if isinstance(stmt.value, (ArrayRef, VarRef)) and self._is_data_ref(
            stmt.value
        ):
            cached = self._ref_through_cache(stmt.value, cache)
            bits, address = cached.bits, cached.address
        else:
            value = self._eval(stmt.value, cache)
            bits = encode_value(
                value, "i64" if isinstance(value, int) else "f64"
            )
            address = None
        count = int(self._eval(stmt.count, cache))
        self.checksums.add(stmt.checksum, bits, count, address)
        self.counts.checksum_ops += self.checksums.channels

    def _exec_counter_increment(self, stmt: CounterIncrement) -> None:
        cache: dict[tuple, _CachedLoad] = {}
        amount = int(self._eval(stmt.amount, cache))
        self._bump_counter(stmt.counter, cache, amount)

    def _exec_assert(self, stmt: ChecksumAssert) -> None:
        self.counts.branches += len(stmt.pairs) * self.checksums.channels
        found = self.checksums.verify(stmt.pairs)
        if found and self.first_detection_step is None:
            self.first_detection_step = self._steps
        self.mismatches.extend(found)
        if found and self.halt_on_mismatch:
            raise _HaltDetected()

    # ------------------------------------------------------------------
    # Counters (shadow state in memory)
    # ------------------------------------------------------------------
    def _counter_location(self, ref, cache) -> tuple[str, tuple[int, ...]]:
        if isinstance(ref, ArrayRef):
            indices = tuple(int(self._eval(i, cache)) for i in ref.indices)
            return ref.array, indices
        return ref.name, ()

    def _load_counter(self, ref, cache) -> int:
        name, indices = self._counter_location(ref, cache)
        self.counts.loads += 1
        self.counts.counter_ops += 1
        return int(self.memory.load(name, indices))

    def _store_counter(self, ref, cache, value: int) -> None:
        name, indices = self._counter_location(ref, cache)
        self.counts.stores += 1
        self.memory.store(name, indices, value)

    def _bump_counter(self, ref, cache, amount: int) -> None:
        name, indices = self._counter_location(ref, cache)
        current = int(self.memory.load(name, indices))
        self.memory.store(name, indices, current + amount)
        self.counts.loads += 1
        self.counts.stores += 1
        self.counts.int_ops += 1
        self.counts.counter_ops += 1

    # ------------------------------------------------------------------
    # Expression evaluation
    # ------------------------------------------------------------------
    def _is_data_ref(self, ref) -> bool:
        if isinstance(ref, ArrayRef):
            return True
        return ref.name in self._scalar_types

    def _elem_type_of(self, ref) -> str:
        if isinstance(ref, ArrayRef):
            return self.memory.elem_type(ref.array)
        if ref.name in self._scalar_types:
            return self._scalar_types[ref.name]
        return "i64"

    def _ref_through_cache(self, ref, cache) -> _CachedLoad:
        """Load a data reference once per bundle; reuse the register copy.

        With a ``register_budget``, overflowing the bundle's register
        file spills the least-recently-used value; its next use reloads
        through memory with the Section 5 spill contributions (the
        spilled register value into ``def``, the reloaded value into
        ``use``) when the bundle is instrumented.
        """
        if isinstance(ref, ArrayRef):
            indices = tuple(int(self._eval(i, cache)) for i in ref.indices)
            key = (ref.array, indices)
        else:
            key = (ref.name, ())
        if cache is not None and key in cache:
            if self.register_budget is not None:
                # LRU refresh.
                cached = cache.pop(key)
                cache[key] = cached
                return cached
            return cache[key]
        bits = self.memory.load_bits(key[0], key[1])
        self.counts.loads += 1
        elem_type = (
            self.memory.elem_type(key[0])
            if self.memory.has(key[0])
            else "f64"
        )
        from repro.runtime.memory import decode_value

        cached = _CachedLoad(
            value=decode_value(bits, elem_type),
            bits=bits,
            address=self.memory.address_of(key[0], key[1]),
        )
        evicted = getattr(self, "_evicted", None)
        if evicted is not None and key in evicted:
            # A spilled value returns from memory: pair the spilled
            # register copy (def) with the reloaded copy (use), so a
            # corrupted spill slot unbalances the checksums.
            old = evicted.pop(key)
            if getattr(self, "_bundle_instrumented", False):
                self.checksums.add("def", old.bits, 1, old.address)
                self.checksums.add("use", cached.bits, 1, cached.address)
                self.counts.checksum_ops += 2 * self.checksums.channels
        if cache is not None:
            cache[key] = cached
            if (
                self.register_budget is not None
                and len(cache) > self.register_budget
            ):
                victim_key = next(iter(cache))
                if victim_key == key and len(cache) > 1:
                    victim_key = next(
                        k for k in cache if k != key
                    )
                victim = cache.pop(victim_key)
                if evicted is not None:
                    evicted[victim_key] = victim
                self.counts.stores += 1  # the spill store
                self.spill_count += 1
        return cached

    def _eval(self, expr: Expr, cache) -> float | int:
        handler = self._eval_dispatch.get(type(expr))
        if handler is None:
            for node_type, candidate in self._eval_dispatch.items():
                if isinstance(expr, node_type):
                    handler = candidate
                    break
            else:
                raise InterpreterError(f"cannot evaluate {expr!r}")
        return handler(expr, cache)

    def _eval_const(self, expr: Const, cache) -> float | int:
        return expr.value

    def _eval_varref(self, expr: VarRef, cache) -> float | int:
        if expr.name in self._env:
            return self._env[expr.name]
        if expr.name in self._scalar_types:
            return self._ref_through_cache(expr, cache).value
        raise InterpreterError(f"unbound name {expr.name!r}")

    def _eval_arrayref(self, expr: ArrayRef, cache) -> float | int:
        return self._ref_through_cache(expr, cache).value

    def _eval_unop(self, expr: UnOp, cache) -> float | int:
        operand = self._eval(expr.operand, cache)
        if expr.op == "-":
            self._count_arith("-", operand, 0)
            return -operand
        if expr.op == "!":
            self.counts.int_ops += 1
            return 0 if operand else 1
        raise InterpreterError(f"unknown unary op {expr.op!r}")

    def _eval_select(self, expr: Select, cache) -> float | int:
        self.counts.branches += 1
        if self._eval(expr.cond, cache):
            return self._eval(expr.if_true, cache)
        return self._eval(expr.if_false, cache)

    def _eval_binop(self, expr: BinOp, cache) -> float | int:
        op = expr.op
        if op == "&&":
            left = self._eval(expr.left, cache)
            self.counts.branches += 1
            if not left:
                return 0
            return 1 if self._eval(expr.right, cache) else 0
        if op == "||":
            left = self._eval(expr.left, cache)
            self.counts.branches += 1
            if left:
                return 1
            return 1 if self._eval(expr.right, cache) else 0
        left = self._eval(expr.left, cache)
        right = self._eval(expr.right, cache)
        if op in ("==", "!=", "<", "<=", ">", ">="):
            self.counts.int_ops += 1
            result = {
                "==": left == right,
                "!=": left != right,
                "<": left < right,
                "<=": left <= right,
                ">": left > right,
                ">=": left >= right,
            }[op]
            return 1 if result else 0
        self._count_arith(op, left, right)
        if op == "+":
            return left + right
        if op == "-":
            return left - right
        if op == "*":
            return left * right
        if op == "/":
            if isinstance(left, int) and isinstance(right, int):
                if right == 0:
                    raise InterpreterError("integer division by zero")
                return left // right
            if right == 0:
                # IEEE semantics: x/0 is ±inf, 0/0 is NaN; corrupted
                # data keeps flowing until the verifier flags it.
                if left == 0:
                    return float("nan")
                sign = math.copysign(1.0, float(left)) * math.copysign(
                    1.0, float(right)
                )
                return math.copysign(math.inf, sign)
            return left / right
        if op == "%":
            if right == 0:
                raise InterpreterError("modulo by zero")
            return left % right
        raise InterpreterError(f"unknown binary op {op!r}")

    def _count_arith(self, op: str, left, right) -> None:
        is_float = isinstance(left, float) or isinstance(right, float)
        if not is_float:
            self.counts.int_ops += 1
        elif op in ("+", "-"):
            self.counts.fp_adds += 1
        elif op == "*":
            self.counts.fp_muls += 1
        elif op in ("/", "%"):
            self.counts.fp_divs += 1
        else:
            self.counts.fp_others += 1

    def _eval_call(self, expr: Call, cache) -> float | int:
        args = [self._eval(a, cache) for a in expr.args]
        func = expr.func
        if func == "sqrt":
            self.counts.fp_sqrts += 1
            if args[0] < 0:
                # IEEE semantics (like C's sqrt): a corrupted negative
                # operand yields NaN and execution continues — the
                # checksum verifier, not a crash, reports the fault.
                return float("nan")
            return math.sqrt(args[0])
        if func == "abs":
            self.counts.fp_others += 1
            return abs(args[0])
        if func == "min":
            self.counts.int_ops += 1
            return min(args)
        if func == "max":
            self.counts.int_ops += 1
            return max(args)
        if func == "exp":
            self.counts.fp_others += 1
            try:
                return math.exp(args[0])
            except OverflowError:
                return math.inf
        if func == "sin":
            self.counts.fp_others += 1
            return math.sin(args[0])
        if func == "cos":
            self.counts.fp_others += 1
            return math.cos(args[0])
        if func == "floor":
            self.counts.int_ops += 1
            return math.floor(args[0])
        if func == "mod":
            self.counts.int_ops += 1
            return args[0] % args[1]
        raise InterpreterError(f"unknown intrinsic {func!r}")


def run_program(
    program: Program,
    params: Mapping[str, int],
    initial_values: Mapping[str, object] | None = None,
    injector=None,
    channels: int = 1,
    max_steps: int | None = 50_000_000,
    wild_reads: bool = False,
    register_budget: int | None = None,
    halt_on_mismatch: bool = False,
    memory: Memory | None = None,
    checksums: ChecksumState | None = None,
) -> ExecutionResult:
    """Convenience wrapper: build memory, initialize arrays, run.

    ``initial_values`` maps array/scalar names to nested sequences or
    numpy arrays; regions not mentioned start zeroed.  ``wild_reads``
    enables the corrupted-address semantics used by fault campaigns;
    ``register_budget`` enables the Section 5 spill modeling.
    """
    interpreter = Interpreter(
        program,
        params,
        memory=memory,
        injector=injector,
        channels=channels,
        max_steps=max_steps,
        wild_reads=wild_reads,
        register_budget=register_budget,
        halt_on_mismatch=halt_on_mismatch,
        checksums=checksums,
    )
    if initial_values:
        for name, values in initial_values.items():
            interpreter.memory.initialize(name, values)
    return interpreter.run()
