"""Effect/observability analysis for the kernel optimizer.

Everything the optimizing emitter (:mod:`repro.runtime.codegen`) folds,
moves or deletes must first be proven unobservable, where "observable"
is defined by the interpreter's contract:

* **Load/store event order** — fault injectors trigger on the live
  ``Memory.load_count`` / ``store_count``, so a load may never be
  created, deleted or reordered past another load/store unless the
  interpreter's own bundle cache provably behaves identically.
* **Operation counts** — :class:`OpCounts` locals become observable
  only when a result is returned: at a ``ChecksumAssert``-triggered
  ``_Halt`` unwind (caught, spilled, returned) and at normal
  completion.  ``InterpreterError``/``StepLimitExceeded`` propagate and
  discard the result, so between observable points counter updates may
  be coalesced — but every pending update must be materialized before a
  possible ``_Halt``.
* **Pure values** — arithmetic over parameters, loop iterators and
  constants has no effect beyond its count contribution (plus a
  possible ``InterpreterError`` from ``/``/``%`` by zero, which aborts
  the run), so such expressions fold into single Python expressions
  and, when non-raising, may be hoisted and evaluated speculatively.

Provided analyses:

* :func:`try_fold` — fold a pure expression into one Python expression
  string with its *static count vector* (exactly what the interpreter
  counts evaluating it) and free variables; ``None`` for anything
  effectful, branch-count-dynamic or type-ambiguous.
* :func:`analyze_guard_chain` / :func:`fuse_condition` — decompose an
  ``&&`` conjunction into pure leaves with per-"first false leaf" count
  scenarios (derived by simulating ``Interpreter._eval_binop``, since
  branch increments land after each left subtree finishes), and build a
  single merged range test over the conjunction's domain.
* :func:`ref_affine_key` / :func:`keys_never_alias` — normalized affine
  index forms supporting must-alias ("the interpreter's bundle cache is
  guaranteed to hit — the second load never happens") and never-alias
  ("distinct cells — both loads happen") proofs.
* :func:`loop_trip_constant` / :func:`loop_trip_at_most_one` — trip
  facts for the unroller, covering the ``min``/``max``-clamped
  degenerate pieces index-set splitting emits.
"""

from __future__ import annotations

from fractions import Fraction

from dataclasses import dataclass

from repro.ir.analysis import to_affine
from repro.ir.nodes import (
    ArrayRef,
    BinOp,
    Call,
    Const,
    Expr,
    Select,
    UnOp,
    VarRef,
)

_CMP_OPS = ("==", "!=", "<", "<=", ">", ">=")

#: Counter buckets, matching ``OpCounts`` fields and ``_n_<name>`` locals.
COUNTERS = (
    "loads",
    "stores",
    "fp_adds",
    "fp_muls",
    "fp_divs",
    "fp_sqrts",
    "fp_others",
    "int_ops",
    "branches",
    "checksum_ops",
    "counter_ops",
)

_ARITH_FP_BUCKET = {
    "+": "fp_adds",
    "-": "fp_adds",
    "*": "fp_muls",
    "/": "fp_divs",
    "%": "fp_divs",
}


@dataclass(frozen=True)
class Folded:
    """A pure expression folded to one Python expression string.

    ``counts`` is the exact count vector the interpreter accrues
    evaluating the expression once, in full (folding rejects
    short-circuiting shapes whose counts vary, so "in full" is the only
    case — a folded ``Select`` requires both arms to count equally).
    ``cond_atom``, when set, is a cheaper truthiness-equivalent form
    (raw comparison instead of ``1 if .. else 0``) valid in condition
    position only.
    """

    atom: str
    typ: str  # "int" | "float"
    counts: tuple[tuple[str, int], ...]
    free: frozenset[str]
    raising: bool
    complexity: int
    cond_atom: str | None = None

    @property
    def condition(self) -> str:
        return self.cond_atom if self.cond_atom is not None else self.atom


def _mk(atom, typ, counts, free, raising, complexity, cond_atom=None) -> Folded:
    return Folded(
        atom=atom,
        typ=typ,
        counts=tuple((k, counts[k]) for k in COUNTERS if counts.get(k)),
        free=free,
        raising=raising,
        complexity=complexity,
        cond_atom=cond_atom,
    )


def _merge(*counts) -> dict[str, int]:
    out: dict[str, int] = {}
    for c in counts:
        items = c.items() if isinstance(c, dict) else c
        for k, v in items:
            out[k] = out.get(k, 0) + v
    return out


def try_fold(expr: Expr, bound) -> Folded | None:
    """Fold ``expr`` when it is pure with a static count vector.

    Pure: no memory access — every leaf is an int/float constant or a
    name in ``bound`` (a parameter or enclosing loop iterator, which
    the interpreter resolves from its environment without a load).
    Static counts: no ``&&``/``||`` (their counts depend on runtime
    truth), ``Select`` only when both arms count identically, and no
    operation whose int/float bucket is undecidable at compile time.
    """
    if isinstance(expr, Const):
        value = expr.value
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            return None
        typ = "float" if isinstance(value, float) else "int"
        return _mk(repr(value), typ, {}, frozenset(), False, 1)
    if isinstance(expr, VarRef):
        if expr.name in bound:
            return _mk(
                f"v_{expr.name}", "int", {}, frozenset((expr.name,)), False, 1
            )
        return None
    if isinstance(expr, ArrayRef):
        return None
    if isinstance(expr, Select):
        cond = try_fold(expr.cond, bound)
        if cond is None:
            return None
        t = try_fold(expr.if_true, bound)
        f = try_fold(expr.if_false, bound)
        if t is None or f is None:
            return None
        if t.counts != f.counts or t.typ != f.typ:
            return None
        # Interpreter: branch counted first, then cond, then one arm —
        # with equal arm counts the vector is static; the conditional
        # expression evaluates exactly one arm, like the interpreter.
        counts = _merge(cond.counts, t.counts, {"branches": 1})
        return _mk(
            f"({t.atom} if {cond.condition} else {f.atom})",
            t.typ,
            counts,
            cond.free | t.free | f.free,
            cond.raising or t.raising or f.raising,
            cond.complexity + t.complexity + f.complexity + 1,
        )
    if isinstance(expr, UnOp):
        inner = try_fold(expr.operand, bound)
        if inner is None:
            return None
        if expr.op == "-":
            bucket = "fp_adds" if inner.typ == "float" else "int_ops"
            return _mk(
                f"(-{inner.atom})",
                inner.typ,
                _merge(inner.counts, {bucket: 1}),
                inner.free,
                inner.raising,
                inner.complexity + 1,
            )
        if expr.op == "!":
            return _mk(
                f"(0 if {inner.atom} else 1)",
                "int",
                _merge(inner.counts, {"int_ops": 1}),
                inner.free,
                inner.raising,
                inner.complexity + 1,
                cond_atom=f"(not {inner.condition})",
            )
        return None
    if isinstance(expr, BinOp):
        op = expr.op
        if op in ("&&", "||"):
            return None
        left = try_fold(expr.left, bound)
        right = try_fold(expr.right, bound)
        if left is None or right is None:
            return None
        free = left.free | right.free
        raising = left.raising or right.raising
        complexity = left.complexity + right.complexity + 1
        if op in _CMP_OPS:
            return _mk(
                f"(1 if {left.atom} {op} {right.atom} else 0)",
                "int",
                _merge(left.counts, right.counts, {"int_ops": 1}),
                free,
                raising,
                complexity,
                cond_atom=f"({left.atom} {op} {right.atom})",
            )
        if op not in _ARITH_FP_BUCKET:
            return None
        typ = "float" if "float" in (left.typ, right.typ) else "int"
        bucket = _ARITH_FP_BUCKET[op] if typ == "float" else "int_ops"
        counts = _merge(left.counts, right.counts, {bucket: 1})
        if op in ("+", "-", "*"):
            atom = f"({left.atom} {op} {right.atom})"
        elif op == "/":
            if typ == "int":
                atom = f"_idiv({left.atom}, {right.atom})"
                raising = True
            else:
                atom = f"_fdiv({left.atom}, {right.atom})"
        else:  # "%"
            atom = f"_rmod({left.atom}, {right.atom})"
            raising = True
        return _mk(atom, typ, counts, free, raising, complexity)
    if isinstance(expr, Call):
        args = [try_fold(arg, bound) for arg in expr.args]
        if not args or any(a is None for a in args):
            return None
        free = frozenset().union(*[a.free for a in args])
        raising = any(a.raising for a in args)
        complexity = sum(a.complexity for a in args) + 1
        counts = _merge(*[dict(a.counts) for a in args])
        func = expr.func
        if func == "sqrt":
            return _mk(
                f"_rsqrt({args[0].atom})", "float",
                _merge(counts, {"fp_sqrts": 1}), free, raising, complexity,
            )
        if func == "abs":
            return _mk(
                f"abs({args[0].atom})", args[0].typ,
                _merge(counts, {"fp_others": 1}), free, raising, complexity,
            )
        if func in ("min", "max"):
            counts = _merge(counts, {"int_ops": 1})
            if len(args) == 1:
                return _mk(
                    args[0].atom, args[0].typ, counts, free, raising,
                    complexity,
                )
            types = {a.typ for a in args}
            if len(types) != 1:
                return None  # result type (and downstream buckets) dynamic
            atom = f"{func}({', '.join(a.atom for a in args)})"
            return _mk(atom, types.pop(), counts, free, raising, complexity)
        if func in ("exp", "sin", "cos"):
            helper = {"exp": "_rexp", "sin": "_sin", "cos": "_cos"}[func]
            return _mk(
                f"{helper}({args[0].atom})", "float",
                _merge(counts, {"fp_others": 1}), free, raising, complexity,
            )
        if func == "floor":
            return _mk(
                f"_floor({args[0].atom})", "int",
                _merge(counts, {"int_ops": 1}), free, raising, complexity,
            )
        if func == "mod" and len(args) == 2:
            lt, rt = args[0].typ, args[1].typ
            typ = "float" if "float" in (lt, rt) else "int"
            return _mk(
                f"({args[0].atom} % {args[1].atom})", typ,
                _merge(counts, {"int_ops": 1}), free, True, complexity,
            )
        return None
    return None


# ----------------------------------------------------------------------
# Guard-chain analysis (&& conjunctions)
# ----------------------------------------------------------------------


@dataclass
class GuardChain:
    """A fusable ``&&`` conjunction of pure foldable leaves.

    ``scenarios[i]`` is the count vector the interpreter accrues when
    leaf ``i`` is the first false one; ``scenarios[len(leaves)]`` is
    the all-true vector.  Derived by simulating the interpreter's
    evaluation (each ``&&`` node counts its branch *after* its left
    subtree finishes — so a failure at the first leaf still counts one
    branch per enclosing ``&&`` on the unwind path), not by positional
    formula: the tree's associativity moves where increments land.
    """

    exprs: list[Expr]
    leaves: list[Folded]
    scenarios: list[dict[str, int]]


def analyze_guard_chain(expr: Expr, bound) -> GuardChain | None:
    if not (isinstance(expr, BinOp) and expr.op == "&&"):
        return None
    exprs: list[Expr] = []

    def collect(node: Expr) -> None:
        if isinstance(node, BinOp) and node.op == "&&":
            collect(node.left)
            collect(node.right)
        else:
            exprs.append(node)

    collect(expr)
    if len(exprs) < 2:
        return None
    leaves = []
    for leaf in exprs:
        f = try_fold(leaf, bound)
        if f is None:
            return None
        leaves.append(f)

    def simulate(first_false: int) -> dict[str, int]:
        counts: dict[str, int] = {}
        state = {"next": 0}

        def ev(node: Expr) -> bool:
            if isinstance(node, BinOp) and node.op == "&&":
                left = ev(node.left)
                counts["branches"] = counts.get("branches", 0) + 1
                if not left:
                    return False
                return ev(node.right)
            i = state["next"]
            state["next"] = i + 1
            for k, v in leaves[i].counts:
                counts[k] = counts.get(k, 0) + v
            return i != first_false

        ev(expr)
        return counts

    scenarios = [simulate(i) for i in range(len(leaves))]
    scenarios.append(simulate(len(leaves)))
    return GuardChain(exprs=exprs, leaves=leaves, scenarios=scenarios)


def _affine_atom(coeffs, const) -> str:
    """Python expression for an affine form over kernel ``v_`` locals."""
    terms = []
    for name, c in coeffs:
        if c == 1:
            terms.append(f"v_{name}")
        elif c == -1:
            terms.append(f"-v_{name}")
        else:
            terms.append(f"{c} * v_{name}")
    if const or not terms:
        terms.append(repr(const))
    joined = " + ".join(terms).replace("+ -", "- ")
    return f"({joined})" if len(terms) > 1 else joined


def _range_bound(expr: Expr, names) -> tuple[str, str, str] | None:
    """Rewrite an affine comparison as a one-variable range bound.

    Returns ``(var, "lo"|"hi", bound_atom)`` — meaning ``v_var >= atom``
    or ``v_var <= atom`` — when the comparison is affine with a ±1
    coefficient on some variable.  Strict forms shift by one (integer
    domain).  Equality/``!=`` never merge.
    """
    if not (isinstance(expr, BinOp) and expr.op in ("<", "<=", ">", ">=")):
        return None
    left = to_affine(expr.left, names)
    right = to_affine(expr.right, names)
    if left is None or right is None:
        return None
    diff = left - right  # expr  <=>  diff OP 0
    row = diff.int_row()
    if row is None:
        return None
    coeffs, const = row
    units = [(v, c) for v, c in coeffs if c in (1, -1)]
    if not units:
        return None
    var, c = units[0]
    # diff = c*var + rest;  expr  <=>  c*var OP -rest  <=>  var OP' bound.
    rest = tuple((v, k) for v, k in coeffs if v != var)
    op = expr.op
    if c == -1:
        op = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}[op]
        bound_coeffs, bound_const = rest, const
    else:
        bound_coeffs = tuple((v, -k) for v, k in rest)
        bound_const = -const
    if op == "<":
        bound_const -= 1
        op = "<="
    elif op == ">":
        bound_const += 1
        op = ">="
    atom = _affine_atom(bound_coeffs, bound_const)
    return var, ("hi" if op == "<=" else "lo"), atom


def fuse_condition(chain: GuardChain, names) -> str:
    """One Python expression true iff every conjunct is true.

    Single-variable ±1-coefficient affine bounds merge into chained
    range tests ``lo <= v_x <= hi`` over the conjunction's domain
    (multiple bounds combine with ``min``/``max`` — constant-folded
    when literal, uncounted otherwise, which is sound: the fused test
    is pure scaffolding whose truthiness equals the conjunction's; all
    counting is replayed by the caller from the chain's scenarios).
    Leftover conjuncts stay as ``and`` terms.
    """
    lowers: dict[str, list[str]] = {}
    uppers: dict[str, list[str]] = {}
    rest: list[str] = []
    order: list[str] = []
    for leaf, raw in zip(chain.leaves, chain.exprs):
        merged = _range_bound(raw, names)
        if merged is None:
            rest.append(leaf.condition)
            continue
        var, kind, atom = merged
        if var not in order:
            order.append(var)
        (lowers if kind == "lo" else uppers).setdefault(var, []).append(atom)
    parts: list[str] = []
    for var in order:
        lo = _combine(lowers.get(var, []), "max")
        hi = _combine(uppers.get(var, []), "min")
        if lo is not None and hi is not None:
            parts.append(f"{lo} <= v_{var} <= {hi}")
        elif lo is not None:
            parts.append(f"{lo} <= v_{var}")
        else:
            parts.append(f"v_{var} <= {hi}")
    parts.extend(rest)
    return " and ".join(parts) if parts else "1"


def _combine(atoms: list[str], func: str) -> str | None:
    if not atoms:
        return None
    if len(atoms) == 1:
        return atoms[0]
    if all(_is_int_literal(a) for a in atoms):
        values = [int(a) for a in atoms]
        return repr(max(values) if func == "max" else min(values))
    return f"{func}({', '.join(atoms)})"


def _is_int_literal(atom: str) -> bool:
    try:
        int(atom)
    except ValueError:
        return False
    return True


# ----------------------------------------------------------------------
# Affine reference keys (bundle-cache elimination)
# ----------------------------------------------------------------------


def ref_affine_key(ref, bound, scalar_names) -> tuple | None:
    """Normalized affine form of a data ref's runtime cache key.

    Two refs with equal keys hit the same interpreter bundle-cache slot
    on every execution (must-alias); :func:`keys_never_alias` gives the
    disjointness proof.  ``None`` when any index is not affine over
    ``bound``.
    """
    if isinstance(ref, VarRef):
        if ref.name in scalar_names:
            return (ref.name, ())
        return None
    rows = []
    for index in ref.indices:
        affine = to_affine(index, bound)
        if affine is None:
            return None
        row = affine.int_row()
        if row is None:
            return None
        rows.append(row)
    return (ref.array, tuple(rows))


def keys_never_alias(a: tuple, b: tuple) -> bool:
    """Whether two affine keys denote distinct runtime keys on every
    execution: different region names, different arities, or some
    dimension whose difference is a nonzero constant (the forms share
    the live-iterator variable space, equal at any single point)."""
    if a[0] != b[0] or len(a[1]) != len(b[1]):
        return True
    for (rca, ca), (rcb, cb) in zip(a[1], b[1]):
        if rca == rcb and ca != cb:
            return True
    return False


# ----------------------------------------------------------------------
# Trip-count facts (unrolling)
# ----------------------------------------------------------------------


def _lower_candidates(expr: Expr, names) -> list:
    """Affine expressions provably ``<= expr`` (max distributes)."""
    affine = to_affine(expr, names)
    if affine is not None:
        return [affine]
    if isinstance(expr, Call) and expr.func == "max" and expr.args:
        out = []
        for arg in expr.args:
            out.extend(_lower_candidates(arg, names))
        return out
    return []


def _upper_candidates(expr: Expr, names) -> list:
    """Affine expressions provably ``>= expr`` (min distributes)."""
    affine = to_affine(expr, names)
    if affine is not None:
        return [affine]
    if isinstance(expr, Call) and expr.func == "min" and expr.args:
        out = []
        for arg in expr.args:
            out.extend(_upper_candidates(arg, names))
        return out
    return []


def loop_trip_constant(lower: Expr, upper: Expr, names) -> int | None:
    """The trip count ``upper - lower + 1`` when provably constant
    (inclusive bounds), clamped at zero."""
    lo = to_affine(lower, names)
    hi = to_affine(upper, names)
    if lo is None or hi is None:
        return None
    diff = hi - lo
    if not diff.is_constant():
        return None
    value = diff.constant_value()
    if getattr(value, "denominator", 1) != 1:
        return None
    return max(0, int(value) + 1)


def loop_trip_at_most_one(lower: Expr, upper: Expr, names) -> bool:
    """Prove the loop executes 0 or 1 times for every parameter value:
    ∃ affine u ≥ upper and l ≤ lower with ``u - l <= 0`` constant.
    Covers the clamped degenerate pieces index-set splitting emits
    (``for i = max(n-2, 2) .. min(n-2, 2)`` and friends)."""
    for u in _upper_candidates(upper, names):
        for low in _lower_candidates(lower, names):
            diff = u - low
            if diff.is_constant() and diff.constant_value() <= 0:
                return True
    return False


def integer_rows_rank(rows, names) -> int:
    """Rank of the coefficient submatrix of affine ``int_row`` rows
    restricted to ``names`` (ordered).  Full column rank over a vector
    nest's band variables proves the write map is injective across
    lanes — distinct lanes always store to distinct cells."""
    matrix = [
        [Fraction(dict(row[0]).get(name, 0)) for name in names]
        for row in rows
    ]
    rank = 0
    cols = len(names)
    row_at = 0
    for col in range(cols):
        pivot = None
        for r in range(row_at, len(matrix)):
            if matrix[r][col] != 0:
                pivot = r
                break
        if pivot is None:
            continue
        matrix[row_at], matrix[pivot] = matrix[pivot], matrix[row_at]
        lead = matrix[row_at][col]
        for r in range(row_at + 1, len(matrix)):
            if matrix[r][col] != 0:
                factor = matrix[r][col] / lead
                for c in range(col, cols):
                    matrix[r][c] -= factor * matrix[row_at][c]
        row_at += 1
        rank += 1
    return rank
