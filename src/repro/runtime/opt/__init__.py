"""Optimization pipeline for the compiled execution backend.

The compiled backend's emitter consults an :class:`OptConfig` choosing
which passes run during lowering.  Three user-facing levels:

* **0** — the straight-line three-address emitter, one counted
  operation per line (the pre-optimizer backend, kept as the reference
  point and differential baseline).
* **1** — source-level optimization: expression folding with coalesced
  count updates, loop-invariant code motion into per-loop preambles,
  guard fusion of the ``&&`` chains index-set splitting emits, small
  constant-trip and provably-0/1-trip loop unrolling, and static
  elimination of the per-bundle load cache where affine alias analysis
  proves every hit/miss at compile time.
* **2** — level 1 plus an inlined-memory fast kernel: a second
  compiled entry with bounds checks and word array accesses inlined
  (no :class:`Memory` method calls on the hot path), selected at run
  time only when no fault injector is attached — injected runs take
  the level-1 entry, so every injector observation point is preserved
  verbatim.

Every pass is bound by the bit-identity contract spelled out in
:mod:`repro.runtime.opt.analysis`: identical load/store event order,
identical :class:`OpCounts`, identical checksum streams and identical
failure behaviour, at every level.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.runtime.opt.analysis import (
    COUNTERS,
    Folded,
    GuardChain,
    analyze_guard_chain,
    fuse_condition,
    keys_never_alias,
    loop_trip_at_most_one,
    loop_trip_constant,
    ref_affine_key,
    try_fold,
)

__all__ = [
    "DEFAULT_OPT_LEVEL",
    "OPT_LEVELS",
    "OptConfig",
    "config_for_level",
    "COUNTERS",
    "Folded",
    "GuardChain",
    "analyze_guard_chain",
    "fuse_condition",
    "keys_never_alias",
    "loop_trip_at_most_one",
    "loop_trip_constant",
    "ref_affine_key",
    "try_fold",
]

OPT_LEVELS = (0, 1, 2)
DEFAULT_OPT_LEVEL = 2

#: Cap for full constant-trip unrolling; provable 0/1-trip loops are
#: always rewritten to an ``if`` regardless of this cap.
UNROLL_LIMIT = 4


@dataclass(frozen=True)
class OptConfig:
    """Pass selection for one lowering of one program."""

    level: int = 0
    fold: bool = False
    licm: bool = False
    fuse_guards: bool = False
    unroll: bool = False
    static_cache: bool = False
    #: Emit the inlined-memory fast path (level 2's second entry);
    #: set per-source by the compiler, not per level.
    inline_mem: bool = False

    def fingerprint(self) -> str:
        """Stable cache-key component (kernel LRU, instrumentation
        cache): every field that changes generated code."""
        return (
            f"opt{self.level}:f{int(self.fold)}l{int(self.licm)}"
            f"g{int(self.fuse_guards)}u{int(self.unroll)}"
            f"s{int(self.static_cache)}i{int(self.inline_mem)}"
        )


def config_for_level(level: int, inline_mem: bool = False) -> OptConfig:
    """The :class:`OptConfig` for a user-facing ``--opt-level``."""
    if level not in OPT_LEVELS:
        raise ValueError(
            f"opt level must be one of {OPT_LEVELS}, got {level!r}"
        )
    if level == 0:
        return OptConfig(level=0, inline_mem=False)
    return OptConfig(
        level=level,
        fold=True,
        licm=True,
        fuse_guards=True,
        unroll=True,
        static_cache=True,
        inline_mem=inline_mem and level >= 2,
    )
