"""Simulated memory subsystem.

Every program array and scalar lives here as raw 64-bit words; the
interpreter's loads and stores all pass through :class:`Memory`, which
gives fault injectors a single choke point and gives each element a
stable *address* (used by the rotated second checksum of Section 6.1).

Words store bit patterns (Python ints in ``[0, 2^64)``); values are
encoded/decoded according to the element type (IEEE-754 double or
two's-complement int64).  A bit flip is therefore exactly a bit flip in
the value's machine representation, as in the paper's fault-coverage
experiments.
"""

from __future__ import annotations

import struct
from typing import Iterable, Mapping

MASK64 = (1 << 64) - 1
WORD_BYTES = 8

_np = None


def lazy_numpy():
    """Module-level lazy numpy import (one attribute check per call).

    The bulk helpers (:meth:`Memory.initialize`, :meth:`Memory.to_array`,
    :meth:`Memory.region_words_array`) sit on the vector backend's hot
    path; a function-local ``import numpy`` per call costs a sys.modules
    lookup each time and keeps numpy a hard dependency of module import
    if hoisted naively — this helper does neither.
    """
    global _np
    if _np is None:
        import numpy

        _np = numpy
    return _np


class MemoryError64(RuntimeError):
    """Out-of-bounds or undeclared access."""


def encode_value(value: float | int, elem_type: str) -> int:
    """Encode a Python value as a 64-bit pattern."""
    if elem_type == "f64":
        return struct.unpack("<Q", struct.pack("<d", float(value)))[0]
    if elem_type == "i64":
        return int(value) & MASK64
    raise ValueError(f"unknown element type {elem_type!r}")


def decode_value(bits: int, elem_type: str) -> float | int:
    """Decode a 64-bit pattern into a Python value."""
    bits &= MASK64
    if elem_type == "f64":
        return struct.unpack("<d", struct.pack("<Q", bits))[0]
    if elem_type == "i64":
        return bits - (1 << 64) if bits >= (1 << 63) else bits
    raise ValueError(f"unknown element type {elem_type!r}")


class _Region:
    """One array (or scalar, shape ()) in memory."""

    __slots__ = (
        "name", "shape", "elem_type", "base", "words", "is_shadow", "version"
    )

    def __init__(
        self,
        name: str,
        shape: tuple[int, ...],
        elem_type: str,
        base: int,
        is_shadow: bool,
    ) -> None:
        self.name = name
        self.shape = shape
        self.elem_type = elem_type
        self.base = base
        size = 1
        for extent in shape:
            size *= extent
        self.words = [0] * size
        self.is_shadow = is_shadow
        # Monotonic write-generation counter: bumped on every mutation a
        # *program* can perform (stores, pokes, initialization, restore).
        # Injected corruption (`flip_bits`, injector hooks) deliberately
        # does NOT bump it — a transient flip is invisible to software,
        # so checkpoint copy-on-write must not treat it as a dirty write.
        self.version = 0

    def offset(self, indices: tuple[int, ...]) -> int:
        shape = self.shape
        rank = len(shape)
        if len(indices) != rank:
            raise MemoryError64(
                f"{self.name}: rank {rank} indexed with {indices}"
            )
        # Unrolled rank-1/rank-2 fast paths: this sits on the hot path
        # of every simulated load and store.
        if rank == 1:
            index = indices[0]
            if 0 <= index < shape[0]:
                return index
        elif rank == 2:
            i, j = indices
            if 0 <= i < shape[0] and 0 <= j < shape[1]:
                return i * shape[1] + j
        elif rank == 0:
            return 0
        else:
            offset = 0
            for index, extent in zip(indices, shape):
                if not 0 <= index < extent:
                    break
                offset = offset * extent + index
            else:
                return offset
        raise MemoryError64(
            f"{self.name}{list(indices)}: index out of bounds "
            f"for shape {self.shape}"
        )


def _wild_word(name: str, indices: tuple[int, ...]) -> int:
    """Deterministic garbage for an out-of-range access."""
    import hashlib

    digest = hashlib.blake2b(
        f"{name}:{indices}".encode(), digest_size=8
    ).digest()
    return int.from_bytes(digest, "little")


class Memory:
    """Word-addressed memory with per-access fault hooks.

    The optional ``injector`` (see :mod:`repro.runtime.faults`) is
    consulted on every load and store with the element's address; it
    may mutate the stored word (modelling corruption at rest) — the
    interpreter only ever sees what :meth:`load` returns.

    Injectors with :attr:`~repro.runtime.faults.FaultInjector.redirects`
    set are additionally offered the chance to *redirect* each access
    (address-generation faults): the access then reads or writes a
    different cell of the same region — or, out of bounds, takes the
    wild-access path.  Two invariants keep both backends bit-identical
    under redirection:

    * the redirect hook runs after the access counter advanced and only
      for accesses whose intended indices are themselves in bounds (a
      program's own wild access is never an injection site);
    * the *address* the fused ``*_addr`` methods return — the one the
      rotated checksums consume — is always that of the **intended**
      indices: under the paper's fault model address arithmetic lives
      in resilient registers, so the checksum machinery sees the
      architectural address while the memory honours the corrupted one.
    """

    def __init__(self, injector=None, wild_reads: bool = False) -> None:
        self._regions: dict[str, _Region] = {}
        self._next_base = 0x1000
        self.injector = injector
        self.load_count = 0
        self.store_count = 0
        self.wild_reads = wild_reads
        """With ``wild_reads=True`` an out-of-bounds access behaves like
        hardware with a corrupted address (paper Section 2.2: "an error
        in the addressing logic ... might result in an incorrect
        address"): the load returns a deterministic garbage word and a
        store is silently dropped, instead of aborting the simulation.
        Fault campaigns enable this; normal runs keep the strict checks
        so harness bugs surface."""
        self.wild_accesses = 0

    # -- declaration ----------------------------------------------------
    def declare(
        self,
        name: str,
        shape: Iterable[int] = (),
        elem_type: str = "f64",
        is_shadow: bool = False,
    ) -> None:
        if name in self._regions:
            raise MemoryError64(f"region {name!r} already declared")
        shape_t = tuple(int(s) for s in shape)
        if any(s < 0 for s in shape_t):
            raise MemoryError64(f"negative extent in {name!r}: {shape_t}")
        region = _Region(name, shape_t, elem_type, self._next_base, is_shadow)
        self._regions[name] = region
        self._next_base += max(1, len(region.words)) * WORD_BYTES
        # Pad between regions so addresses stay distinctive.
        self._next_base += 64

    def has(self, name: str) -> bool:
        return name in self._regions

    def region_names(self, include_shadow: bool = False) -> list[str]:
        return [
            r.name
            for r in self._regions.values()
            if include_shadow or not r.is_shadow
        ]

    def shape(self, name: str) -> tuple[int, ...]:
        return self._region(name).shape

    def elem_type(self, name: str) -> str:
        return self._region(name).elem_type

    def address_of(self, name: str, indices: tuple[int, ...] = ()) -> int:
        region = self._region(name)
        try:
            return region.base + region.offset(indices) * WORD_BYTES
        except MemoryError64:
            if not self.wild_reads:
                raise
            return (_wild_word(name, indices) & 0xFFFF_FFF8) | 0x8000_0000

    # -- raw access -----------------------------------------------------
    def load_bits(self, name: str, indices: tuple[int, ...] = ()) -> int:
        region = self._region(name)
        try:
            offset = region.offset(indices)
        except MemoryError64:
            if not self.wild_reads:
                raise
            self.load_count += 1
            self.wild_accesses += 1
            return _wild_word(name, indices)
        self.load_count += 1
        injector = self.injector
        if injector is not None:
            if getattr(injector, "redirects", False):
                redirected = injector.redirect_load(self, name, indices)
                if redirected is not None:
                    try:
                        offset = region.offset(redirected)
                    except MemoryError64:
                        if not self.wild_reads:
                            raise
                        self.wild_accesses += 1
                        return _wild_word(name, redirected)
            mutated = injector.before_load(
                self, name, indices, region.words[offset]
            )
            if mutated is not None:
                region.words[offset] = mutated & MASK64
        return region.words[offset]

    def store_bits(self, name: str, indices: tuple[int, ...], bits: int) -> None:
        region = self._region(name)
        try:
            offset = region.offset(indices)
        except MemoryError64:
            if not self.wild_reads:
                raise
            self.store_count += 1
            self.wild_accesses += 1
            return
        self.store_count += 1
        injector = self.injector
        if injector is not None and getattr(injector, "redirects", False):
            redirected = injector.redirect_store(self, name, indices)
            if redirected is not None:
                try:
                    offset = region.offset(redirected)
                except MemoryError64:
                    if not self.wild_reads:
                        raise
                    self.wild_accesses += 1
                    return  # store dropped at a wild address
        region.words[offset] = bits & MASK64
        region.version += 1
        if injector is not None:
            mutated = injector.after_store(
                self, name, indices, region.words[offset]
            )
            if mutated is not None:
                region.words[offset] = mutated & MASK64

    def load_bits_addr(
        self, name: str, indices: tuple[int, ...] = ()
    ) -> tuple[int, int]:
        """Fused :meth:`load_bits` + :meth:`address_of` (one region walk).

        Counter, injector-hook and wild-read semantics are identical to
        calling the two methods in sequence; the compiled backend uses
        this on its hot path to avoid the double region lookup.
        """
        region = self._region(name)
        try:
            offset = region.offset(indices)
        except MemoryError64:
            if not self.wild_reads:
                raise
            self.load_count += 1
            self.wild_accesses += 1
            word = _wild_word(name, indices)
            return word, (word & 0xFFFF_FFF8) | 0x8000_0000
        self.load_count += 1
        address = region.base + offset * WORD_BYTES
        injector = self.injector
        if injector is not None:
            if getattr(injector, "redirects", False):
                redirected = injector.redirect_load(self, name, indices)
                if redirected is not None:
                    try:
                        offset = region.offset(redirected)
                    except MemoryError64:
                        if not self.wild_reads:
                            raise
                        self.wild_accesses += 1
                        # The architectural (intended) address is what
                        # the checksums rotate by.
                        return _wild_word(name, redirected), address
            mutated = injector.before_load(
                self, name, indices, region.words[offset]
            )
            if mutated is not None:
                region.words[offset] = mutated & MASK64
        return region.words[offset], address

    def store_bits_addr(
        self, name: str, indices: tuple[int, ...], bits: int
    ) -> int:
        """Fused :meth:`store_bits` + :meth:`address_of`; returns the
        stored element's address (same semantics as the sequence)."""
        region = self._region(name)
        try:
            offset = region.offset(indices)
        except MemoryError64:
            if not self.wild_reads:
                raise
            self.store_count += 1
            self.wild_accesses += 1
            return (_wild_word(name, indices) & 0xFFFF_FFF8) | 0x8000_0000
        self.store_count += 1
        address = region.base + offset * WORD_BYTES
        injector = self.injector
        if injector is not None and getattr(injector, "redirects", False):
            redirected = injector.redirect_store(self, name, indices)
            if redirected is not None:
                try:
                    offset = region.offset(redirected)
                except MemoryError64:
                    if not self.wild_reads:
                        raise
                    self.wild_accesses += 1
                    return address  # store dropped at a wild address
        region.words[offset] = bits & MASK64
        region.version += 1
        if injector is not None:
            mutated = injector.after_store(
                self, name, indices, region.words[offset]
            )
            if mutated is not None:
                region.words[offset] = mutated & MASK64
        return address

    def peek_bits(self, name: str, indices: tuple[int, ...] = ()) -> int:
        """Read without triggering fault hooks or counters (for tests)."""
        region = self._region(name)
        return region.words[region.offset(indices)]

    def poke_bits(self, name: str, indices: tuple[int, ...], bits: int) -> None:
        """Write without hooks (initialization, direct corruption)."""
        region = self._region(name)
        region.words[region.offset(indices)] = bits & MASK64
        region.version += 1

    # -- typed access ---------------------------------------------------
    def load(self, name: str, indices: tuple[int, ...] = ()) -> float | int:
        region = self._region(name)
        return decode_value(self.load_bits(name, indices), region.elem_type)

    def store(self, name: str, indices: tuple[int, ...], value: float | int) -> None:
        region = self._region(name)
        self.store_bits(name, indices, encode_value(value, region.elem_type))

    def peek(self, name: str, indices: tuple[int, ...] = ()) -> float | int:
        region = self._region(name)
        return decode_value(self.peek_bits(name, indices), region.elem_type)

    def poke(self, name: str, indices: tuple[int, ...], value: float | int) -> None:
        region = self._region(name)
        self.poke_bits(name, indices, encode_value(value, region.elem_type))

    # -- bulk helpers -----------------------------------------------------
    def initialize(self, name: str, values) -> None:
        """Fill a region from a nested sequence / numpy array / scalar.

        Bit-exact with per-element :func:`encode_value`: the fast path
        reinterprets a float64/int64 array as uint64 words (the same
        IEEE-754 / two's-complement patterns ``struct`` produces); inputs
        numpy cannot represent losslessly (object arrays, out-of-range
        Python ints) take the element loop.
        """
        np = lazy_numpy()
        region = self._region(name)
        flat = np.asarray(values).reshape(-1)
        if flat.size != len(region.words):
            raise MemoryError64(
                f"initializer for {name!r} has {flat.size} values, "
                f"region holds {len(region.words)}"
            )
        kind = flat.dtype.kind
        if region.elem_type == "f64" and kind in "iuf":
            bits = (
                np.ascontiguousarray(flat.astype(np.float64))
                .view(np.uint64)
                .tolist()
            )
        elif region.elem_type == "i64" and kind in "iu":
            # int64 <- smaller ints widen exactly; uint64 wraps like
            # ``int(v) & MASK64`` does.
            bits = (
                np.ascontiguousarray(flat.astype(np.int64))
                .view(np.uint64)
                .tolist()
            )
        else:
            bits = [
                encode_value(value, region.elem_type)
                for value in flat.tolist()
            ]
        region.words[:] = bits
        region.version += 1

    def to_array(self, name: str):
        """The region's current contents as a numpy array (no hooks)."""
        np = lazy_numpy()
        region = self._region(name)
        words = np.array(region.words, dtype=np.uint64)
        arr = (
            words.view(np.float64)
            if region.elem_type == "f64"
            else words.view(np.int64)
        )
        return arr.reshape(region.shape) if region.shape else arr.reshape(())

    def region_words_array(self, name: str):
        """A region's raw words as a fresh ``uint64`` array (no hooks).

        The vector backend builds its transactional mirrors from this,
        and the batched campaign runner uses it for ``(T, words)`` golden
        comparison images.
        """
        np = lazy_numpy()
        return np.array(self._region(name).words, dtype=np.uint64)

    def snapshot(self) -> dict[str, list[int]]:
        """Raw words of every region (for corruption diffing in tests)."""
        return {name: list(r.words) for name, r in self._regions.items()}

    # -- checkpoint support ----------------------------------------------
    def region_version(self, name: str) -> int:
        """Write-generation counter of a region (checkpoint dirtiness)."""
        return self._region(name).version

    def copy_region_words(self, name: str) -> tuple[int, ...]:
        """Immutable snapshot of a region's raw words (no hooks)."""
        return tuple(self._region(name).words)

    def restore_region_words(self, name: str, words) -> None:
        """Overwrite a region's raw words from a snapshot (no hooks).

        Counts as a program-visible write: the region's version is
        bumped so a later checkpoint re-copies the restored contents.
        """
        region = self._region(name)
        if len(words) != len(region.words):
            raise MemoryError64(
                f"snapshot for {name!r} has {len(words)} words, "
                f"region holds {len(region.words)}"
            )
        region.words[:] = words
        region.version += 1

    def flip_bits(
        self, name: str, indices: tuple[int, ...], bit_positions: Iterable[int]
    ) -> None:
        """Directly corrupt a cell (test/experiment helper)."""
        region = self._region(name)
        offset = region.offset(indices)
        word = region.words[offset]
        for bit in bit_positions:
            if not 0 <= bit < 64:
                raise ValueError(f"bit position {bit} out of range")
            word ^= 1 << bit
        region.words[offset] = word

    # -- internal -----------------------------------------------------
    def _region(self, name: str) -> _Region:
        region = self._regions.get(name)
        if region is None:
            raise MemoryError64(f"no region {name!r} declared")
        return region


def build_memory_for_program(
    program, params: Mapping[str, int], injector=None, wild_reads: bool = False
) -> Memory:
    """Declare all of a program's arrays and scalars.

    Array extents are affine in the parameters and are evaluated here.
    """
    from repro.ir.analysis import to_affine

    memory = Memory(injector=injector, wild_reads=wild_reads)
    for decl in program.arrays:
        shape = []
        for dim in decl.dims:
            affine = to_affine(dim, set(program.params))
            if affine is None:
                raise MemoryError64(
                    f"array {decl.name!r} extent {dim} is not affine in params"
                )
            shape.append(int(affine.evaluate(params)))
        memory.declare(
            decl.name, shape, elem_type=decl.elem_type, is_shadow=decl.is_shadow
        )
    for decl in program.scalars:
        memory.declare(
            decl.name, (), elem_type=decl.elem_type, is_shadow=decl.is_shadow
        )
    return memory
