"""Compile-once execution backend.

:func:`compile_program` lowers a program through
:mod:`repro.runtime.codegen` to one Python function, ``exec``s it once
and caches the :class:`CompiledKernel` in a process-wide LRU keyed by a
stable content hash of the IR tree.  Campaign trials — thousands of
runs of the *same* instrumented program — then pay codegen exactly once
per worker process and per-trial cost drops to a plain function call.

Bit-identity contract: a kernel run and an interpreter run of the same
program observe the same memory access sequence (fault injectors fire
on the same load), produce equal :class:`ExecutionResult` fields, and
raise the same exceptions (step budget, division by zero, out-of-bounds
in strict mode).  ``tests/runtime/test_compile_differential.py`` pins
this for every bundled benchmark.

Fallback: programs using constructs the emitter cannot lower raise
:class:`CompileError`; :func:`run_compiled` (and everything layered on
it) silently falls back to the interpreter.  A ``register_budget``
(Section 5 spill modeling) always uses the interpreter — spill traffic
is a per-bundle LRU simulation the generated code does not carry.
Failed compiles are cached too, so a fallback is decided once, not per
trial.
"""

from __future__ import annotations

import hashlib
import math
import struct
import time
from dataclasses import dataclass
from typing import Callable, Mapping

from repro.ir.nodes import Program
from repro.runtime.codegen import (
    CompileError,
    generate_checkpoint_source,
    generate_source,
)
from repro.runtime.opt import DEFAULT_OPT_LEVEL, OPT_LEVELS, config_for_level
from repro.runtime.costmodel import OpCounts
from repro.runtime.interpreter import (
    ExecutionResult,
    InterpreterError,
    StepLimitExceeded,
    run_program,
)
from repro.runtime.memory import (
    Memory,
    build_memory_for_program,
    encode_value,
)
from repro.runtime.state import ChecksumState

__all__ = [
    "CompileError",
    "CompiledKernel",
    "VectorVerificationError",
    "compile_program",
    "ir_digest",
    "run_compiled",
    "execute_program",
    "kernel_cache_stats",
    "clear_kernel_cache",
    "BACKENDS",
]

BACKENDS = ("interp", "compiled", "vector")


class VectorVerificationError(AssertionError):
    """``verify_vector`` caught the vector backend diverging from the
    scalar kernel on a contract field.  Always a backend bug: the vector
    path must be bit-identical or fall back."""


class _Halt(Exception):
    """Kernel-internal fail-stop unwind (mirrors _HaltDetected)."""


class _RuntimeContext:
    """Everything a generated kernel touches at run time."""

    __slots__ = (
        "memory",
        "checksums",
        "counts",
        "mismatches",
        "params",
        "max_steps",
        "halt_on_mismatch",
        "statements_executed",
        "first_detection_step",
    )

    def __init__(
        self,
        memory: Memory,
        checksums: ChecksumState,
        params: dict[str, int],
        max_steps: int | None,
        halt_on_mismatch: bool,
    ) -> None:
        self.memory = memory
        self.checksums = checksums
        self.counts = OpCounts()
        self.mismatches: list = []
        self.params = params
        self.max_steps = max_steps
        self.halt_on_mismatch = halt_on_mismatch
        self.statements_executed = 0
        self.first_detection_step: int | None = None


def _slimit(rt: _RuntimeContext) -> None:
    raise StepLimitExceeded(
        f"exceeded {rt.max_steps} statement executions"
    )


def _idiv(left, right):
    if right == 0:
        raise InterpreterError("integer division by zero")
    return left // right


def _fdiv(left, right):
    if right == 0:
        # IEEE semantics: x/0 is ±inf, 0/0 is NaN; corrupted data keeps
        # flowing until the verifier flags it.
        if left == 0:
            return float("nan")
        sign = math.copysign(1.0, float(left)) * math.copysign(
            1.0, float(right)
        )
        return math.copysign(math.inf, sign)
    return left / right


def _xdiv(left, right):
    if isinstance(left, int) and isinstance(right, int):
        return _idiv(left, right)
    return _fdiv(left, right)


def _rmod(left, right):
    if right == 0:
        raise InterpreterError("modulo by zero")
    return left % right


def _rsqrt(value):
    if value < 0:
        return float("nan")
    return math.sqrt(value)


def _rexp(value):
    try:
        return math.exp(value)
    except OverflowError:
        return math.inf


def _encdyn(value):
    return encode_value(value, "i64" if isinstance(value, int) else "f64")


_BASE_NAMESPACE = {
    "_Halt": _Halt,
    "_INF": float("inf"),
    "_slimit": _slimit,
    "_idiv": _idiv,
    "_fdiv": _fdiv,
    "_xdiv": _xdiv,
    "_rmod": _rmod,
    "_rsqrt": _rsqrt,
    "_rexp": _rexp,
    "_encdyn": _encdyn,
    "_sin": math.sin,
    "_cos": math.cos,
    "_floor": math.floor,
    "_pkd": struct.Struct("<d").pack,
    "_pkq": struct.Struct("<Q").pack,
    "_unpd": struct.Struct("<d").unpack,
    "_unpq": struct.Struct("<Q").unpack,
}


@dataclass
class CompiledKernel:
    """One program, lowered and ``exec``'d once."""

    program: Program
    digest: str
    source: str
    entry: Callable[[_RuntimeContext], None]
    checkpoint_source: str
    checkpoint_entry: Callable
    restore_entry: Callable
    #: Optimization level the sources were generated at.
    opt_level: int = DEFAULT_OPT_LEVEL
    #: Batch shape the kernel was compiled for (``None`` = single-trial;
    #: a cache-key discriminator for the batched campaign runner).
    batch_shape: tuple[int, ...] | None = None
    #: Level ≥ 2 only: the inlined-memory fast entry, selected at run
    #: time when no fault injector is attached to the memory image.
    fast_source: str | None = None
    fast_entry: Callable[[_RuntimeContext], None] | None = None
    #: Vector backend: whole-array plan, built lazily on the first
    #: injector-free dispatch (``None`` once built = unplannable).
    vector_plan: object = None
    vector_plan_built: bool = False

    def _vector_plan_for(self):
        if not self.vector_plan_built:
            from repro.runtime.vector import plan_program

            self.vector_plan = plan_program(self.program)
            self.vector_plan_built = True
        return self.vector_plan

    def execute(
        self,
        params: Mapping[str, int],
        initial_values: Mapping[str, object] | None = None,
        memory: Memory | None = None,
        injector=None,
        channels: int = 1,
        max_steps: int | None = 50_000_000,
        wild_reads: bool = False,
        halt_on_mismatch: bool = False,
        checksums: ChecksumState | None = None,
        vectorize: bool = False,
        verify_vector: bool = False,
    ) -> ExecutionResult:
        """Run the kernel; mirrors ``run_program``'s contract.

        A caller-supplied ``checksums`` state is used as-is (the
        recovery controller threads one state through its per-epoch
        sub-runs); otherwise a fresh one is created.

        ``vectorize=True`` lets the run dispatch to the vector backend
        when no injector is attached, the program planned, and the
        profitability probe for this (kernel, params, channels) key
        measured a win.  A vector-committed result carries a zeroed
        :class:`OpCounts` — the per-op breakdown is out of the vector
        identity contract; memory load/store totals, checksums, the
        final image, steps, mismatches and first detection are exact.
        ``verify_vector=True`` runs *both* backends (vector against a
        cloned state) and raises :class:`VectorVerificationError` on
        any contract-field divergence; the scalar result is returned.
        """
        run_params = {p: int(params[p]) for p in self.program.params}
        if memory is None:
            memory = build_memory_for_program(
                self.program, run_params, injector, wild_reads=wild_reads
            )
        elif injector is not None:
            memory.injector = injector
        if initial_values:
            for name, values in initial_values.items():
                memory.initialize(name, values)
        if checksums is None:
            checksums = ChecksumState(channels=channels)
        elif checksums.channels != channels:
            raise InterpreterError(
                f"resumed checksum state has {checksums.channels} channels, "
                f"kernel was asked for {channels}"
            )
        want_vector = (
            vectorize and not wild_reads and memory.injector is None
        )
        _vec = None
        if want_vector:
            from repro.runtime import vector as _vec

            want_vector = (
                _vec.vector_enabled()
                and self._vector_plan_for() is not None
            )
        vclone_mem = vclone_sums = vout = None
        probe_key = probe_seconds = None
        if want_vector and verify_vector:
            # Vector runs on a cloned state; the scalar run below stays
            # authoritative for the returned result.
            vclone_mem = _clone_memory(self.program, run_params, memory)
            vclone_sums = _clone_checksums(checksums)
            vout = _vec.execute_vector(
                self,
                run_params,
                vclone_mem,
                vclone_sums,
                max_steps,
                halt_on_mismatch,
            )
        elif want_vector:
            key = _vec.profit_key(self, run_params, channels)
            state = _vec.profit_state(key)
            if state is True:
                out = _vec.execute_vector(
                    self,
                    run_params,
                    memory,
                    checksums,
                    max_steps,
                    halt_on_mismatch,
                )
                if out is not None:
                    return ExecutionResult(
                        checksums=checksums,
                        mismatches=out["mismatches"],
                        counts=OpCounts(),
                        memory=memory,
                        statements_executed=out["statements_executed"],
                        spills=0,
                        first_detection_step=out["first_detection_step"],
                    )
            elif state is None:
                # Undecided key: time an uncommitted vector attempt now
                # and the scalar run we perform anyway; the faster path
                # wins the memo for every later dispatch of this key.
                probe_seconds = _vec.probe(
                    self,
                    run_params,
                    memory,
                    checksums,
                    max_steps,
                    halt_on_mismatch,
                )
                if probe_seconds is not None:
                    probe_key = key
        rt = _RuntimeContext(
            memory=memory,
            checksums=checksums,
            params=run_params,
            max_steps=max_steps,
            halt_on_mismatch=halt_on_mismatch,
        )
        # The inlined-memory entry bypasses the injector observation
        # points, so it only ever runs on injector-free memory (golden
        # runs, benchmarks, batched-trial golden replays).
        entry = self.entry
        if self.fast_entry is not None and memory.injector is None:
            entry = self.fast_entry
        if probe_key is not None:
            started = time.perf_counter()
            entry(rt)
            _vec.record_profit(
                probe_key, probe_seconds, time.perf_counter() - started
            )
        else:
            entry(rt)
        result = ExecutionResult(
            checksums=rt.checksums,
            mismatches=rt.mismatches,
            counts=rt.counts,
            memory=memory,
            statements_executed=rt.statements_executed,
            spills=0,
            first_detection_step=rt.first_detection_step,
        )
        if vout is not None:
            _check_vector_identity(
                self.program.name,
                memory,
                checksums,
                result,
                vclone_mem,
                vclone_sums,
                vout,
            )
        return result


def _clone_memory(program: Program, run_params, memory: Memory) -> Memory:
    """Injector-free copy of a memory image for differential runs.

    A fresh build declares regions in the same order, so bases (and
    with them the rotated-channel addresses) are identical by
    construction.
    """
    clone = build_memory_for_program(program, run_params)
    for name, region in memory._regions.items():
        clone._regions[name].words[:] = list(region.words)
        clone._regions[name].version = region.version
    clone.load_count = memory.load_count
    clone.store_count = memory.store_count
    return clone


def _clone_checksums(checksums: ChecksumState) -> ChecksumState:
    clone = ChecksumState(channels=checksums.channels)
    clone.sums = [dict(channel) for channel in checksums.sums]
    clone.contribution_count = checksums.contribution_count
    return clone


def _check_vector_identity(
    name, memory, checksums, result, vmem, vsums, vout
) -> None:
    """Compare every vector-contract field; raise on the first diff."""
    problems = []
    for rname, region in memory._regions.items():
        if list(vmem._regions[rname].words) != list(region.words):
            problems.append(f"final image of region {rname!r}")
    if vsums.sums != checksums.sums:
        problems.append("checksum sums")
    if vsums.contribution_count != checksums.contribution_count:
        problems.append("contribution count")
    if vmem.load_count != memory.load_count:
        problems.append(
            f"load count {vmem.load_count} != {memory.load_count}"
        )
    if vmem.store_count != memory.store_count:
        problems.append(
            f"store count {vmem.store_count} != {memory.store_count}"
        )
    if vout["statements_executed"] != result.statements_executed:
        problems.append(
            f"steps {vout['statements_executed']} != "
            f"{result.statements_executed}"
        )
    if vout["mismatches"] != list(result.mismatches):
        problems.append("mismatch events")
    if vout["first_detection_step"] != result.first_detection_step:
        problems.append(
            f"first detection {vout['first_detection_step']} != "
            f"{result.first_detection_step}"
        )
    if problems:
        raise VectorVerificationError(
            f"vector backend diverged on {name!r}: " + "; ".join(problems)
        )


def ir_digest(program: Program) -> str:
    """Stable content hash of an IR tree (the kernel cache key).

    ``repr`` of a frozen-dataclass tree is deterministic and complete
    (every field, every literal, including int/float distinction), so
    structurally equal programs share one cache slot.
    """
    return hashlib.sha256(repr(program).encode("utf-8")).hexdigest()


#: Cached under keys ``(ir digest, opt level, batch shape)`` — a
#: level-0 and a level-2 kernel of the same program must never alias.
KERNEL_CACHE_LIMIT = 128


def _assemble_kernel(
    program: Program,
    digest: str,
    level: int,
    batch_shape: tuple[int, ...] | None,
    source: str,
    checkpoint_source: str,
    fast_source: str | None,
) -> CompiledKernel:
    """``exec`` already-generated sources into a kernel.

    Shared by the compile path and the artifact store's disk decode —
    a persisted kernel is its generated sources, so loading one pays a
    ``compile``/``exec``, never a codegen run.
    """
    namespace = dict(_BASE_NAMESPACE)
    exec(  # noqa: S102 - generated from a closed IR, no user strings
        compile(source, f"<compiled {program.name}>", "exec"), namespace
    )
    exec(  # noqa: S102 - same closed-IR provenance
        compile(
            checkpoint_source,
            f"<checkpoint {program.name}>",
            "exec",
        ),
        namespace,
    )
    fast_entry = None
    if fast_source is not None:
        # Separate namespace: both sources define ``_kernel``.
        fast_namespace = dict(_BASE_NAMESPACE)
        exec(  # noqa: S102 - same closed-IR provenance
            compile(
                fast_source, f"<compiled-fast {program.name}>", "exec"
            ),
            fast_namespace,
        )
        fast_entry = fast_namespace["_kernel"]
    return CompiledKernel(
        program=program,
        digest=digest,
        source=source,
        entry=namespace["_kernel"],
        checkpoint_source=checkpoint_source,
        checkpoint_entry=namespace["_checkpoint"],
        restore_entry=namespace["_restore"],
        opt_level=level,
        batch_shape=batch_shape,
        fast_source=fast_source,
        fast_entry=fast_entry,
    )


def _build_kernel(
    program: Program,
    digest: str,
    level: int,
    batch_shape: tuple[int, ...] | None,
) -> CompiledKernel:
    opt = config_for_level(level)
    source = generate_source(program, opt)
    checkpoint_source = generate_checkpoint_source(program)
    fast_source = None
    if level >= 2:
        fast_opt = config_for_level(level, inline_mem=True)
        fast_source = generate_source(program, fast_opt)
    return _assemble_kernel(
        program, digest, level, batch_shape, source, checkpoint_source,
        fast_source,
    )


def _kernel_encode(entry):
    """Disk codec: a kernel's ``exec``'d functions cannot pickle, but
    its generated sources can; a failed compile persists as its message."""
    if isinstance(entry, CompileError):
        return {"kind": "error", "message": str(entry)}
    return {
        "kind": "kernel",
        "program": entry.program,
        "digest": entry.digest,
        "level": entry.opt_level,
        "batch_shape": entry.batch_shape,
        "source": entry.source,
        "checkpoint_source": entry.checkpoint_source,
        "fast_source": entry.fast_source,
    }


def _kernel_decode(payload):
    if not isinstance(payload, dict):
        return None
    if payload.get("kind") == "error":
        return CompileError(payload.get("message", "cached compile failure"))
    if payload.get("kind") != "kernel":
        return None
    return _assemble_kernel(
        payload["program"],
        payload["digest"],
        payload["level"],
        payload["batch_shape"],
        payload["source"],
        payload["checkpoint_source"],
        payload["fast_source"],
    )


def _kernel_ns():
    from repro.service.store import namespace

    return namespace(
        "kernel",
        limit=KERNEL_CACHE_LIMIT,
        disk=True,
        encode=_kernel_encode,
        decode=_kernel_decode,
    )


def compile_program(
    program: Program,
    cache: bool = True,
    opt_level: int | None = None,
    batch_shape: tuple[int, ...] | None = None,
) -> CompiledKernel:
    """Compile (or fetch from the cache) a kernel for ``program``.

    ``opt_level`` selects the optimization pipeline (default
    :data:`DEFAULT_OPT_LEVEL`); at level ≥ 2 the kernel carries a second
    inlined-memory entry used only on injector-free runs.  Raises
    :class:`CompileError` when the program cannot be lowered; the
    failure itself is cached so repeated attempts stay cheap.

    The cache is the ``kernel`` namespace of the unified artifact store;
    with a shared disk directory configured, a kernel compiled by one
    process re-assembles everywhere else from its persisted sources.
    """
    level = DEFAULT_OPT_LEVEL if opt_level is None else int(opt_level)
    if level not in OPT_LEVELS:
        raise ValueError(
            f"opt level must be one of {OPT_LEVELS}, got {opt_level!r}"
        )
    if batch_shape is not None:
        batch_shape = tuple(int(n) for n in batch_shape)
    digest = ir_digest(program)
    if not cache:
        return _build_kernel(program, digest, level, batch_shape)
    key = (digest, level, batch_shape)

    def build():
        try:
            return _build_kernel(program, digest, level, batch_shape)
        except CompileError as error:
            return error

    entry = _kernel_ns().get_or_compute(key, build)
    if isinstance(entry, CompileError):
        raise entry
    return entry


def kernel_cache_stats() -> dict[str, int]:
    return _kernel_ns().stats()


def clear_kernel_cache() -> None:
    ns = _kernel_ns()
    ns.clear()
    ns.set_limit(KERNEL_CACHE_LIMIT)


def run_compiled(
    program: Program,
    params: Mapping[str, int],
    initial_values: Mapping[str, object] | None = None,
    injector=None,
    channels: int = 1,
    max_steps: int | None = 50_000_000,
    wild_reads: bool = False,
    register_budget: int | None = None,
    halt_on_mismatch: bool = False,
    fallback: bool = True,
    opt_level: int | None = None,
    vectorize: bool = False,
    verify_vector: bool = False,
) -> ExecutionResult:
    """``run_program`` signature, compiled backend.

    With ``fallback=True`` (default) any :class:`CompileError` — or a
    ``register_budget``, which the kernel cannot model — reruns through
    the interpreter; ``fallback=False`` surfaces the error (used by the
    differential tests to prove no silent fallback happened).
    ``vectorize``/``verify_vector`` thread through to
    :meth:`CompiledKernel.execute` (no effect on interpreter reruns —
    the vector backend only shadows the compiled kernel).
    """
    if register_budget is not None:
        if not fallback:
            raise CompileError(
                "register_budget spill modeling needs the interpreter"
            )
        return run_program(
            program,
            params,
            initial_values=initial_values,
            injector=injector,
            channels=channels,
            max_steps=max_steps,
            wild_reads=wild_reads,
            register_budget=register_budget,
            halt_on_mismatch=halt_on_mismatch,
        )
    try:
        kernel = compile_program(program, opt_level=opt_level)
    except CompileError:
        if not fallback:
            raise
        return run_program(
            program,
            params,
            initial_values=initial_values,
            injector=injector,
            channels=channels,
            max_steps=max_steps,
            wild_reads=wild_reads,
            halt_on_mismatch=halt_on_mismatch,
        )
    return kernel.execute(
        params,
        initial_values=initial_values,
        injector=injector,
        channels=channels,
        max_steps=max_steps,
        wild_reads=wild_reads,
        halt_on_mismatch=halt_on_mismatch,
        vectorize=vectorize,
        verify_vector=verify_vector,
    )


def execute_program(
    program: Program,
    params: Mapping[str, int],
    backend: str = "compiled",
    **kwargs,
) -> ExecutionResult:
    """Backend dispatcher: one of :data:`BACKENDS`.

    ``"vector"`` is the compiled backend with vector dispatch enabled —
    still probe-gated and injector-guarded, never a forced vector run.
    """
    if backend == "interp":
        kwargs.pop("opt_level", None)  # interpreter has no optimizer
        kwargs.pop("vectorize", None)
        kwargs.pop("verify_vector", None)
        return run_program(program, params, **kwargs)
    if backend == "compiled":
        return run_compiled(program, params, **kwargs)
    if backend == "vector":
        kwargs.setdefault("vectorize", True)
        return run_compiled(program, params, **kwargs)
    raise ValueError(
        f"unknown backend {backend!r}; expected one of {BACKENDS}"
    )
