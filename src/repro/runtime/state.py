"""Register-resident checksum state and the verifier.

The paper keeps four checksums in registers (Section 5): ``def`` /
``use`` and the auxiliary ``e_def`` / ``e_use`` pair that hardens the
dynamic-use-count scheme (Section 4.1).  The operator is integer
modulo addition over 64-bit words; a contribution may be scaled by a
(possibly negative) use count.

Section 6.1's *two-checksum* scheme adds a second channel in which each
value is left-rotated by an address-derived amount (bits 3–7 of the
element's byte address, giving rotations 0..31) before being summed —
implemented here as additional channels, so the same instrumented
program can maintain one or many checksums.

Checksums are plain Python attributes — never stored in the simulated
memory — which models their register residency: fault injectors cannot
touch them.
"""

from __future__ import annotations

from dataclasses import dataclass

MASK64 = (1 << 64) - 1

CHECKSUM_NAMES = ("def", "use", "e_def", "e_use")


def _valid_name(which: str) -> bool:
    """Base name, or a localization-qualified ``<base>@<group>``."""
    base, _, group = which.partition("@")
    return base in CHECKSUM_NAMES and (group != "" or "@" not in which)


def rotate_left(bits: int, amount: int) -> int:
    """64-bit left rotation."""
    amount %= 64
    bits &= MASK64
    if amount == 0:
        return bits
    return ((bits << amount) | (bits >> (64 - amount))) & MASK64


def address_rotation(address: int) -> int:
    """Rotation amount from bits 3..7 of the byte address (Section 6.1).

    Elements are 8-byte aligned, so bits 0..2 are always zero; bits 3..7
    give a 0..31 rotation that differs between nearby elements.
    """
    return (address >> 3) & 0x1F


@dataclass
class ChecksumMismatch:
    """One failed verifier comparison."""

    channel: int
    left: str
    right: str
    left_value: int
    right_value: int

    def __str__(self) -> str:
        return (
            f"channel {self.channel}: {self.left}_cs=0x{self.left_value:016x} "
            f"!= {self.right}_cs=0x{self.right_value:016x}"
        )


class ChecksumState:
    """All checksum channels of one execution.

    ``channels=1`` is the paper's software scheme; ``channels=2`` adds
    the rotated checksum.  Contributions carry the element's address so
    rotated channels can derive their rotation; address ``None`` (e.g.
    a compiler temporary that never had a memory home) rotates by 0.

    Checksum *names* are open-ended: the four classics (``def``,
    ``use``, ``e_def``, ``e_use``) always exist, and instrumentation
    may add qualified groups such as ``def@A`` — the per-array
    localization extension — which are created on first contribution.
    """

    def __init__(self, channels: int = 1) -> None:
        if channels < 1:
            raise ValueError("at least one checksum channel required")
        self.channels = channels
        self.sums: list[dict[str, int]] = [
            {name: 0 for name in CHECKSUM_NAMES} for _ in range(channels)
        ]
        self.contribution_count = 0

    # ------------------------------------------------------------------
    def add(
        self,
        which: str,
        bits: int,
        count: int = 1,
        address: int | None = None,
    ) -> None:
        """``<which>_cs += bits * count`` on every channel (mod 2^64)."""
        if which not in self.sums[0]:
            if not _valid_name(which):
                raise ValueError(f"unknown checksum {which!r}")
            for sums in self.sums:
                sums[which] = 0
        bits &= MASK64
        self.contribution_count += 1
        for channel in range(self.channels):
            value = bits
            if channel > 0 and address is not None:
                value = rotate_left(bits, address_rotation(address) * channel)
            sums = self.sums[channel]
            sums[which] = (sums[which] + value * count) & MASK64

    def get(self, which: str, channel: int = 0) -> int:
        return self.sums[channel].get(which, 0)

    # ------------------------------------------------------------------
    def snapshot(self) -> tuple[list[dict[str, int]], int]:
        """Copy of all channels' sums plus the contribution count.

        The checkpoint subsystem stores this next to the memory image so
        a rollback rewinds the register-resident accumulators together
        with the arrays they summarize.
        """
        return [dict(sums) for sums in self.sums], self.contribution_count

    def restore(self, saved: tuple[list[dict[str, int]], int]) -> None:
        """Rewind to a :meth:`snapshot` (in place, bindings preserved)."""
        snapshot_sums, count = saved
        if len(snapshot_sums) != self.channels:
            raise ValueError(
                f"snapshot has {len(snapshot_sums)} channels, "
                f"state has {self.channels}"
            )
        for sums, saved_sums in zip(self.sums, snapshot_sums):
            sums.clear()
            sums.update(saved_sums)
        self.contribution_count = count

    # ------------------------------------------------------------------
    def verify(
        self, pairs: tuple[tuple[str, str], ...] = (("def", "use"), ("e_def", "e_use"))
    ) -> list[ChecksumMismatch]:
        """Compare checksum pairs on every channel; return mismatches."""
        mismatches: list[ChecksumMismatch] = []
        for channel in range(self.channels):
            sums = self.sums[channel]
            for left, right in pairs:
                if sums.get(left, 0) != sums.get(right, 0):
                    mismatches.append(
                        ChecksumMismatch(
                            channel=channel,
                            left=left,
                            right=right,
                            left_value=sums.get(left, 0),
                            right_value=sums.get(right, 0),
                        )
                    )
        return mismatches

    def matches(self) -> bool:
        return not self.verify()

    def __repr__(self) -> str:
        parts = []
        for channel, sums in enumerate(self.sums):
            inner = ", ".join(f"{k}=0x{v:016x}" for k, v in sums.items())
            parts.append(f"ch{channel}({inner})")
        return f"ChecksumState[{'; '.join(parts)}]"
